#!/usr/bin/env python
"""Full pipeline with source files on disk and exported visualizations.

Demonstrates the engine as a downstream user would deploy it:

1. write a mixed corpus to ``.jsonl`` source files,
2. read the sources back and run the *parallel* engine (8 simulated
   processors),
3. export the ThemeView terrain as PGM image + JSON, and the document
   coordinates as CSV -- "the final primary product of the text
   engine" (paper §2.1, step 9).

Run:  python examples/themeview_export.py [output_dir]
"""

import sys
from pathlib import Path

from repro.datasets import generate_pubmed, generate_trec
from repro.engine import EngineConfig, ParallelTextEngine
from repro.text import merge_corpora, read_corpus, write_corpus
from repro.viz import (
    build_themeview,
    export_json,
    labels_from_result,
    render_ascii,
    write_pgm,
    write_svg,
)


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. sources on disk
    med = generate_pubmed(120_000, seed=3, n_themes=5)
    web = generate_trec(120_000, seed=3, n_themes=5)
    write_corpus(med, out_dir / "sources" / "pubmed.jsonl")
    write_corpus(web, out_dir / "sources" / "gov2.jsonl")
    print(f"wrote source files under {out_dir / 'sources'}")

    # 2. scan the sources and process on 8 simulated processors
    sources = [
        read_corpus(out_dir / "sources" / "pubmed.jsonl"),
        read_corpus(out_dir / "sources" / "gov2.jsonl"),
    ]
    corpus = merge_corpora("mixed-sources", sources)
    print(f"merged corpus: {len(corpus)} documents")
    config = EngineConfig(n_major_terms=400, n_clusters=8)
    result = ParallelTextEngine(8, config=config).run(corpus)
    print(result.summary())

    # 3. exports
    view = build_themeview(
        result.coords,
        result.assignments,
        cluster_labels=labels_from_result(result),
        grid=64,
    )
    write_pgm(view, out_dir / "themeview.pgm")
    export_json(view, out_dir / "themeview.json")
    write_svg(
        result.coords,
        out_dir / "themeview.svg",
        assignments=result.assignments,
        view=view,
    )
    csv_path = out_dir / "coordinates.csv"
    with csv_path.open("w") as f:
        f.write("doc_id,x,y,cluster\n")
        for doc_id, (x, y), c in zip(
            result.doc_ids, result.coords, result.assignments
        ):
            f.write(f"{doc_id},{x:.6f},{y:.6f},{c}\n")
    print(f"exported: {out_dir / 'themeview.pgm'}")
    print(f"          {out_dir / 'themeview.svg'}")
    print(f"          {out_dir / 'themeview.json'}")
    print(f"          {csv_path}")

    print("\nterrain preview:")
    small = build_themeview(
        result.coords,
        result.assignments,
        cluster_labels=labels_from_result(result),
        grid=40,
    )
    print(render_ascii(small))


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "examples/output"
    )
    main(target)
