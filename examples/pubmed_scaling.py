#!/usr/bin/env python
"""PubMed scaling study on the simulated cluster.

Reproduces a slice of the paper's §4.2: the parallel engine processes
a synthetic stand-in for the 2.75 GB PubMed subset at 4..32
processors, reporting virtual wall-clock time, self-relative speedup,
and the per-component time breakdown (the Figure 5 / 6 shapes).

Run:  python examples/pubmed_scaling.py
"""

from repro.bench import (
    default_figure_config,
    format_series,
    make_workload,
    run_sweep,
)
from repro.engine import PAPER_LABELS


def main() -> None:
    print("generating the 2.75 GB PubMed stand-in corpus ...")
    workload = make_workload(
        "pubmed", "2.75 GB", represented_bytes=2.75e9, downscale=10_000.0
    )
    corpus = workload.corpus
    print(
        f"  {len(corpus)} generated documents ({corpus.nbytes:,} bytes) "
        f"representing {corpus.represented_bytes:.3g} bytes"
    )

    procs = (4, 8, 16, 32)
    print(f"simulating the engine at P = {procs} ...")
    sweep = run_sweep(
        workload,
        procs=procs,
        config=default_figure_config(),
        progress=lambda msg: print("  " + msg),
    )

    print()
    print(
        format_series(
            "Overall wall clock (virtual minutes)",
            "Processors",
            procs,
            {"2.75 GB": [sweep.wall(p) / 60 for p in procs]},
        )
    )
    print()
    print(
        format_series(
            "Speedup vs ideal serial run",
            "Processors",
            procs,
            {"2.75 GB": [sweep.speedup(p) for p in procs]},
        )
    )
    print()
    pct = {
        PAPER_LABELS[c]: [
            sweep.component_percentages(p).get(c, 0.0) for p in procs
        ]
        for c in ("scan", "index", "topic", "am", "docvec", "clusproj")
    }
    print(
        format_series(
            "Time percentage per component", "Component/P", procs, pct,
            fmt="{:.1f}",
        )
    )
    print(
        "\nNote how every component's share stays roughly constant as "
        "processors\nincrease -- except topicality, whose replicated "
        "merge and Allreduce\ncommunication grow with P (the paper's "
        "observation in §4.2)."
    )


if __name__ == "__main__":
    main()
