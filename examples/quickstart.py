#!/usr/bin/env python
"""Quickstart: from raw documents to a ThemeView terrain.

Generates a small PubMed-like corpus, runs the serial text engine
(scan -> index -> topicality -> association matrix -> signatures ->
k-means -> PCA projection), and renders the resulting theme landscape
as ASCII art -- the reproduction of the paper's Figure 2 product.

Run:  python examples/quickstart.py
"""

from repro.datasets import generate_pubmed
from repro.engine import EngineConfig, SerialTextEngine
from repro.viz import build_themeview, labels_from_result, render_ascii


def main() -> None:
    print("generating a ~250 KB PubMed-like corpus ...")
    corpus = generate_pubmed(250_000, seed=42, n_themes=6)
    print(f"  {len(corpus)} documents, {corpus.nbytes:,} bytes")

    config = EngineConfig(n_major_terms=300, n_clusters=6)
    print("running the text processing engine ...")
    result = SerialTextEngine(config).run(corpus)
    print(result.summary())

    print("\ntop topic terms (anchoring dimensions):")
    for t in result.topic_terms[:10]:
        print(
            f"  {t.term:<28} topicality={t.score:8.2f} "
            f"df={t.df:>4} cf={t.cf:>5}"
        )

    print("\nstage timings (real seconds):")
    for name, secs in result.timings.component_seconds.items():
        pct = result.timings.component_percentages[name]
        print(f"  {name:<10} {secs:8.4f}s  ({pct:4.1f}%)")

    print("\nThemeView terrain:")
    view = build_themeview(
        result.coords,
        result.assignments,
        cluster_labels=labels_from_result(result),
        grid=48,
    )
    print(render_ascii(view))


if __name__ == "__main__":
    main()
