#!/usr/bin/env python
"""Interactive analysis of an engine run (the paper's "next frontier").

Runs the engine on a mixed-theme corpus and then exercises the analyst
interactions the paper's conclusion motivates: probing a region of the
ThemeView, finding documents similar to one being read, summarising
clusters, and seeding a search from query terms.

Run:  python examples/interactive_analysis.py
"""

import numpy as np

from repro.analysis import AnalysisSession
from repro.datasets import generate_pubmed
from repro.engine import EngineConfig, SerialTextEngine


def main() -> None:
    print("building the collection view ...")
    corpus = generate_pubmed(200_000, seed=8, n_themes=5)
    config = EngineConfig(n_major_terms=300, n_clusters=5)
    result = SerialTextEngine(config).run(corpus)
    print(result.summary())

    session = AnalysisSession(result)

    print("\n--- cluster summaries ------------------------------------")
    for c in range(result.centroids.shape[0]):
        s = session.cluster_summary(c, n_terms=4, n_docs=3)
        print(
            f"cluster {c}: {s.size:>3} docs | {' '.join(s.top_terms):<60}"
            f" | e.g. docs {s.representative_docs}"
        )

    print("\n--- probing a mountain ------------------------------------")
    # pick the densest spot of the landscape
    densest = result.coords[
        np.argmin(
            np.sum(
                (result.coords - result.coords.mean(axis=0)) ** 2, axis=1
            )
        )
    ]
    terms = session.region_terms(densest[0], densest[1], radius=0.3)
    print(f"the region around ({densest[0]:.2f}, {densest[1]:.2f}) is about:")
    print("  " + " ".join(terms))
    hits = session.nearest_documents(densest[0], densest[1], k=5)
    print("nearest documents:", [h.doc_id for h in hits])

    print("\n--- 'more like this' ---------------------------------------")
    seed_doc = hits[0].doc_id
    title = corpus[seed_doc].fields["title"]
    print(f"reading doc {seed_doc}: {title[:70]} ...")
    for h in session.similar_documents(seed_doc, k=5):
        print(
            f"  doc {h.doc_id:>4}  cosine={h.score:.3f}  "
            f"cluster={h.cluster}"
        )

    print("\n--- term query ---------------------------------------------")
    query_terms = result.topic_term_strings[:2]
    print(f"query: {' '.join(query_terms)}")
    for h in session.query(query_terms, k=5):
        print(f"  doc {h.doc_id:>4}  score={h.score:.3f}")

    print("\n--- weakly themed documents --------------------------------")
    for o in session.outliers(k=5):
        print(
            f"  doc {o.doc_id:>4}  distance={o.score:.3f}  "
            f"cluster={o.cluster}"
        )


if __name__ == "__main__":
    main()
