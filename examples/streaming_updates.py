#!/usr/bin/env python
"""Streaming updates: placing new documents into an existing landscape.

The paper's motivating streams (newswire feeds, message traffic) grow
continuously.  This example builds a model once, then streams batches
of new documents into it with :func:`project_new_documents` -- each
arrival gets a signature, a cluster, and a landscape position in
microseconds, no re-run required -- until vocabulary drift trips the
refresh policy.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro.datasets import generate_newswire, generate_trec
from repro.engine import (
    EngineConfig,
    SerialTextEngine,
    project_new_documents,
    refresh_recommended,
)
from repro.text import Corpus


def main() -> None:
    print("building the initial model from the newswire archive ...")
    corpus = generate_newswire(220_000, seed=19, n_themes=5)
    half = len(corpus) // 2
    base = Corpus("base", corpus.documents[:half])
    result = SerialTextEngine(
        EngineConfig(n_major_terms=300, n_clusters=5)
    ).run(base)
    print(result.summary())

    # stream 1: more documents from the same collection
    stream = corpus.documents[half:]
    print(f"\nstreaming {len(stream)} same-domain documents ...")
    batch = project_new_documents(result, stream)
    print(f"  null signatures: {batch.null_fraction:.1%}")
    per_cluster = np.bincount(
        batch.assignments, minlength=result.centroids.shape[0]
    )
    print(f"  arrivals per cluster: {per_cluster.tolist()}")
    print(
        "  refresh recommended:"
        f" {refresh_recommended(batch)}"
    )

    # stream 2: off-domain documents (a web crawl hits the feed)
    alien = generate_trec(60_000, seed=77).documents
    print(f"\nstreaming {len(alien)} off-domain (web) documents ...")
    batch2 = project_new_documents(result, alien)
    print(f"  null signatures: {batch2.null_fraction:.1%}")
    print(
        "  refresh recommended:"
        f" {refresh_recommended(batch2)}"
    )
    print(
        "\nWhen drift pushes the null rate over the threshold, re-run "
        "the engine on\nthe grown collection -- the streaming analogue "
        "of the paper's adaptive-\ndimensionality remedy."
    )


if __name__ == "__main__":
    main()
