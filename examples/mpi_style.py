#!/usr/bin/env python
"""Running mpi4py-style code on the virtual-time simulator.

The SPMD program below is written against the ``mpi4py`` lowercase
API (the one its tutorial teaches).  On a real cluster you would run
it with ``mpiexec -n 8 python script.py`` and ``MPI.COMM_WORLD``;
here the same function runs unchanged on the simulated cluster via
:class:`repro.runtime.MPIComm` -- with deterministic results and
virtual timing for free.

Run:  python examples/mpi_style.py
"""

import numpy as np

from repro.runtime import Cluster, MPIComm, SUM, MAX


def mpi_program(comm) -> float:
    """Distributed mean/max pipeline, mpi4py idioms throughout."""
    rank = comm.Get_rank()
    size = comm.Get_size()

    # root builds and scatters the work
    if rank == 0:
        chunks = np.array_split(np.arange(1_000, dtype=np.float64), size)
        data = [c for c in chunks]
    else:
        data = None
    chunk = comm.scatter(data, root=0)

    # local compute + global reductions
    local_sum = float(chunk.sum())
    local_max = float(chunk.max())
    total = comm.allreduce(local_sum, op=SUM)
    biggest = comm.allreduce(local_max, op=MAX)

    # neighbour exchange around a ring
    right = (rank + 1) % size
    left = (rank - 1) % size
    comm.send(local_sum, dest=right, tag=7)
    neighbour_sum = comm.recv(source=left, tag=7)

    # group statistics per parity
    sub = comm.Split(color=rank % 2)
    parity_sum = sub.allreduce(local_sum, op=SUM)

    comm.Barrier()
    if rank == 0:
        print(f"global sum  = {total:.0f} (expected {999 * 1000 / 2:.0f})")
        print(f"global max  = {biggest:.0f}")
        print(f"rank 0 got neighbour sum {neighbour_sum:.0f} from rank {left}")
        print(f"even-ranks partial sum = {parity_sum:.0f}")
    return total


def main() -> None:
    for nprocs in (2, 4, 8):
        print(f"--- simulated cluster, P={nprocs} " + "-" * 20)
        res = Cluster(nprocs).run(lambda ctx: mpi_program(MPIComm(ctx)))
        assert all(r == 999 * 1000 / 2 for r in res.rank_results)
        print(
            f"virtual wall time: {res.wall_time * 1e3:.3f} ms, "
            f"utilization: {[round(u, 2) for u in res.utilization]}"
        )


if __name__ == "__main__":
    main()
