#!/usr/bin/env python
"""Dynamic load balancing on a skewed web corpus (paper §3.3 / Fig. 9).

A GOV2-like crawl mixes text-dense pages with runs of markup-heavy
pages, so partitions balanced by *bytes* carry very different
inverted-file-indexing loads.  This example runs the parallel engine
twice -- with static partitioning and with the GA-atomic shared task
queue -- and prints each processor's inversion busy time, plus the
standalone §3.3 strategy comparison (GA queue vs master-worker).

Run:  python examples/trec_loadbalance.py
"""

from dataclasses import replace

import numpy as np

from repro.baselines import run_ga_queue, run_master_worker, run_static
from repro.bench import default_figure_config, format_series
from repro.datasets import generate_trec
from repro.engine import ParallelTextEngine
from repro.runtime import Cluster


def engine_comparison(nprocs: int = 8) -> None:
    print("generating a skewed 2 MB GOV2-like corpus ...")
    corpus = generate_trec(2_000_000, seed=9, max_body_tokens=2_000)
    print(f"  {len(corpus)} documents")
    base = replace(default_figure_config(), chunk_docs=1)
    rows = {}
    for label, dyn in (("dynamic LB", True), ("static LB", False)):
        cfg = replace(base, dynamic_load_balancing=dyn)
        res = ParallelTextEngine(nprocs, config=cfg).run(corpus)
        per_rank = res.timings.extras["index_invert_per_rank"]
        rows[label] = list(per_rank)
    print()
    print(
        format_series(
            f"Inversion busy time per processor (seconds, P={nprocs})",
            "Strategy",
            list(range(nprocs)),
            rows,
            fmt="{:.4f}",
        )
    )
    for label, vals in rows.items():
        arr = np.array(vals)
        print(
            f"  {label}: wall={arr.max():.4f}s  "
            f"imbalance(max/mean)={arr.max() / arr.mean():.3f}"
        )


def strategy_comparison() -> None:
    print("\nstrategy ablation: 16 ranks, 60 fine-grained tasks each")
    nprocs = 16
    rng = np.random.default_rng(1)
    costs = [
        list(rng.uniform(0.5, 1.5, size=60) * 1e-4 * (1 + 3 * (r % 2)))
        for r in range(nprocs)
    ]
    for name, strategy in (
        ("static partitioning ", run_static),
        ("master-worker       ", run_master_worker),
        ("GA fetch-and-inc    ", run_ga_queue),
    ):
        res = Cluster(nprocs).run(lambda ctx: strategy(ctx, costs))
        print(f"  {name} wall = {res.wall_time * 1e3:8.3f} ms")
    print(
        "\nThe GA-atomic queue matches the master-worker's balancing "
        "without the\nmaster's serialized dispatch -- the paper's "
        "argument for GA atomics."
    )


if __name__ == "__main__":
    engine_comparison()
    strategy_comparison()
