"""Knowledge signature (DocVec) tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signature import compute_signatures, major_lookup_arrays


def _setup():
    # majors (canonical order): gids [10, 4, 7]; topics = first 2 dims
    association = np.array(
        [
            [0.5, 0.0],
            [0.2, 0.3],
            [0.0, 1.0],
        ]
    )
    sorted_gids, positions = major_lookup_arrays([10, 4, 7])
    return association, sorted_gids, positions


def test_frequency_weighted_l1_normalized():
    a, sg, pos = _setup()
    # doc: gid 10 twice, gid 7 once -> 2*row0 + 1*row2 = [1.0, 1.0]
    doc = np.array([10, 7, 10], dtype=np.int64)
    batch = compute_signatures([doc], sg, pos, a)
    np.testing.assert_allclose(batch.signatures[0], [0.5, 0.5])
    assert batch.n_null == 0


def test_signatures_sum_to_one_or_zero():
    a, sg, pos = _setup()
    rng = np.random.default_rng(0)
    docs = [
        rng.integers(0, 15, size=rng.integers(0, 12)).astype(np.int64)
        for _ in range(50)
    ]
    batch = compute_signatures(docs, sg, pos, a)
    sums = batch.signatures.sum(axis=1)
    for s, is_null in zip(sums, batch.null_mask):
        if is_null:
            assert s == 0.0
        else:
            assert abs(s - 1.0) < 1e-12


def test_doc_without_major_terms_is_null():
    a, sg, pos = _setup()
    batch = compute_signatures(
        [np.array([1, 2, 3], dtype=np.int64)], sg, pos, a
    )
    assert batch.n_null == 1
    assert np.all(batch.signatures[0] == 0.0)


def test_empty_doc_is_null():
    a, sg, pos = _setup()
    batch = compute_signatures([np.empty(0, dtype=np.int64)], sg, pos, a)
    assert batch.n_null == 1


def test_zero_association_row_can_null():
    """A doc whose only major term has an all-zero row is null."""
    a = np.zeros((1, 2))
    sg, pos = major_lookup_arrays([5])
    batch = compute_signatures([np.array([5, 5], dtype=np.int64)], sg, pos, a)
    assert batch.n_null == 1


def test_batch_shapes():
    a, sg, pos = _setup()
    batch = compute_signatures([], sg, pos, a)
    assert batch.signatures.shape == (0, 2)
    assert batch.null_mask.shape == (0,)


def test_major_lookup_arrays_roundtrip():
    gids = [42, 3, 17, 99, 8]
    sg, pos = major_lookup_arrays(gids)
    assert list(sg) == sorted(gids)
    # position k of the sorted array maps back to the canonical rank
    for k, g in enumerate(sg):
        assert gids[pos[k]] == g


@settings(max_examples=100)
@given(
    major_gids=st.lists(
        st.integers(min_value=0, max_value=100),
        min_size=1,
        max_size=20,
        unique=True,
    ),
    doc=st.lists(st.integers(min_value=0, max_value=100), max_size=40),
)
def test_property_signature_l1_invariant(major_gids, doc):
    rng = np.random.default_rng(7)
    a = rng.random((len(major_gids), 3))
    sg, pos = major_lookup_arrays(major_gids)
    batch = compute_signatures(
        [np.array(doc, dtype=np.int64)], sg, pos, a
    )
    s = batch.signatures[0].sum()
    assert np.all(batch.signatures >= 0)
    assert abs(s - 1.0) < 1e-9 or (s == 0.0 and batch.null_mask[0])
