"""Property-based tests of the association-matrix pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signature import (
    association_matrix,
    cooccurrence_counts,
    doc_presence_indices,
    major_lookup_arrays,
)


def _brute_cooccurrence(doc_sets, n_major, n_topics):
    c = np.zeros((n_major, n_topics), dtype=np.int64)
    for present in doc_sets:
        for i in present:
            for j in present:
                if j < n_topics:
                    c[i, j] += 1
    return c


@settings(max_examples=100)
@given(
    n_major=st.integers(min_value=1, max_value=12),
    docs=st.lists(
        st.sets(st.integers(min_value=0, max_value=11), max_size=8),
        max_size=25,
    ),
)
def test_cooccurrence_matches_bruteforce(n_major, docs):
    n_topics = max(1, n_major // 2)
    doc_sets = [
        sorted(x for x in d if x < n_major) for d in docs
    ]
    arrays = [np.array(d, dtype=np.int64) for d in doc_sets]
    got = cooccurrence_counts(arrays, n_major, n_topics)
    want = _brute_cooccurrence(doc_sets, n_major, n_topics)
    np.testing.assert_array_equal(got, want)


@settings(max_examples=100)
@given(
    docs=st.lists(
        st.sets(st.integers(min_value=0, max_value=9), max_size=6),
        min_size=1,
        max_size=20,
    )
)
def test_diagonal_counts_equal_df(docs):
    """C[j, j] for a topic j equals that term's document frequency."""
    n_major, n_topics = 10, 4
    arrays = [np.array(sorted(d), dtype=np.int64) for d in docs]
    c = cooccurrence_counts(arrays, n_major, n_topics)
    for j in range(n_topics):
        df_j = sum(1 for d in docs if j in d)
        assert c[j, j] == df_j


@settings(max_examples=100)
@given(
    docs=st.lists(
        st.sets(st.integers(min_value=0, max_value=7), max_size=6),
        min_size=1,
        max_size=20,
    )
)
def test_association_bounds_hold(docs):
    """0 <= A <= 1 and A[i,j] <= P(j|i) for true counts and dfs."""
    n_major, n_topics = 8, 3
    arrays = [np.array(sorted(d), dtype=np.int64) for d in docs]
    c = cooccurrence_counts(arrays, n_major, n_topics)
    df = np.array(
        [sum(1 for d in docs if i in d) for i in range(n_major)],
        dtype=np.int64,
    )
    a = association_matrix(c, df, df[:n_topics], n_docs=len(docs))
    assert np.all(a >= 0.0)
    assert np.all(a <= 1.0 + 1e-12)
    cond = c / np.maximum(df[:, None], 1)
    assert np.all(a <= cond + 1e-12)


@settings(max_examples=100)
@given(
    major_gids=st.lists(
        st.integers(min_value=0, max_value=200),
        min_size=1,
        max_size=15,
        unique=True,
    ),
    doc=st.lists(st.integers(min_value=0, max_value=200), max_size=30),
)
def test_presence_indices_match_set_intersection(major_gids, doc):
    sorted_gids, positions = major_lookup_arrays(major_gids)
    got = doc_presence_indices(
        np.array(doc, dtype=np.int64), sorted_gids, positions
    )
    want = sorted(
        i for i, g in enumerate(major_gids) if g in set(doc)
    )
    assert got.tolist() == want
