"""Association matrix tests."""

import numpy as np
import pytest

from repro.signature import (
    association_matrix,
    cooccurrence_counts,
    doc_presence_indices,
    major_lookup_arrays,
)


def test_doc_presence_maps_gids_to_canonical_ranks():
    # canonical major ranking: gids [9, 2, 7] at ranks [0, 1, 2]
    sorted_gids, positions = major_lookup_arrays([9, 2, 7])
    doc = np.array([7, 2, 7, 100], dtype=np.int64)
    idx = doc_presence_indices(doc, sorted_gids, positions)
    np.testing.assert_array_equal(idx, [1, 2])  # ranks of gid2, gid7


def test_doc_presence_empty_cases():
    sorted_gids, positions = major_lookup_arrays([3])
    assert doc_presence_indices(
        np.empty(0, dtype=np.int64), sorted_gids, positions
    ).size == 0
    assert doc_presence_indices(
        np.array([3]), *major_lookup_arrays([])
    ).size == 0


def test_cooccurrence_counts_pairs():
    # 3 majors, 2 topics (= majors 0, 1)
    docs = [
        np.array([0, 1]),  # doc contains majors 0,1 -> topics 0,1
        np.array([1, 2]),  # majors 1,2 -> topic 1
        np.array([2]),  # major 2, no topic
    ]
    c = cooccurrence_counts(docs, 3, 2)
    expected = np.array(
        [
            [1, 1],  # major 0 with topic 0 (doc0), topic 1 (doc0)
            [1, 2],  # major 1 with topic 0 (doc0), topic 1 (doc0, doc1)
            [0, 1],  # major 2 with topic 1 (doc1)
        ]
    )
    np.testing.assert_array_equal(c, expected)


def test_association_self_anchoring():
    """A topic term's own row should peak on its own dimension."""
    # topic 0 appears in docs {0,1}; major 2 appears in {0}
    docs = [np.array([0, 2]), np.array([0]), np.array([1])]
    c = cooccurrence_counts(docs, 3, 2)
    df_major = np.array([2, 1, 1])
    df_topic = np.array([2, 1])
    a = association_matrix(c, df_major, df_topic, n_docs=3)
    assert a[0, 0] == pytest.approx(1.0 - 2 / 3)  # P(t0|t0)=1 minus P(t0)
    assert a[0, 0] == a[:, 0].max()


def test_association_independent_terms_zero():
    """Co-occurrence at the independence rate clips to ~0."""
    # major 1 occurs in half the docs; topic 0 in half; together in 1/4
    n = 100
    c = np.array([[50], [25]])
    df_major = np.array([50, 50])
    df_topic = np.array([50])
    a = association_matrix(c, df_major, df_topic, n_docs=n)
    assert a[1, 0] == 0.0  # P(t0|t1)=0.5 == P(t0) -> excess 0
    assert a[0, 0] == 0.5


def test_association_nonnegative_and_bounded():
    rng = np.random.default_rng(0)
    n_major, n_topics, n_docs = 20, 5, 200
    df_major = rng.integers(1, n_docs, size=n_major)
    df_topic = df_major[:n_topics]
    c = np.minimum(
        rng.integers(0, n_docs, size=(n_major, n_topics)),
        df_major[:, None],
    )
    a = association_matrix(c, df_major, df_topic, n_docs)
    assert np.all(a >= 0)
    assert np.all(a <= 1.0 + 1e-12)


def test_association_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        association_matrix(
            np.zeros((3, 2)), np.zeros(4), np.zeros(2), 10
        )
