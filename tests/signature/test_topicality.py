"""Bookstein condensation topicality tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signature import (
    RankedTerm,
    condensation_scores,
    local_candidates,
    rank_candidates,
    select_major_terms,
)


def test_clumped_term_scores_above_scattered():
    # both terms occur 20 times in 100 docs; one clumps into 2 docs,
    # the other spreads over 20 docs
    df = np.array([2, 20])
    cf = np.array([20, 20])
    s = condensation_scores(df, cf, n_docs=100)
    assert s[0] > s[1]
    assert s[0] > 0


def test_random_scatter_scores_near_zero():
    # df == expected df under random scatter -> z ~ 0
    d = 1000
    cf = 50
    expected_df = d * (1 - (1 - 1 / d) ** cf)
    s = condensation_scores(
        np.array([round(expected_df)]), np.array([cf]), n_docs=d
    )
    assert abs(s[0]) < 0.5


def test_zero_df_is_neg_inf():
    s = condensation_scores(np.array([0]), np.array([0]), n_docs=10)
    assert s[0] == -np.inf


def test_no_docs():
    s = condensation_scores(np.array([1]), np.array([1]), n_docs=0)
    assert s[0] == -np.inf


def test_rank_candidates_ties_break_on_term():
    a = RankedTerm("zeta", 0, 1.0, 2, 2)
    b = RankedTerm("alpha", 1, 1.0, 2, 2)
    c = RankedTerm("mid", 2, 5.0, 2, 2)
    assert rank_candidates([a, b, c]) == [c, b, a]


def test_local_candidates_filters_min_df():
    terms = ["a", "b", "c"]
    df = np.array([1, 3, 5])
    cf = np.array([1, 30, 5])
    out = local_candidates(terms, 0, df, cf, n_docs=50, min_df=2, limit=10)
    assert {t.term for t in out} == {"b", "c"}


def test_local_candidates_limit():
    n = 50
    terms = [f"t{i:02d}" for i in range(n)]
    df = np.full(n, 2)
    cf = np.arange(10, 10 + n)
    out = local_candidates(terms, 100, df, cf, n_docs=500, min_df=2, limit=7)
    assert len(out) == 7
    # gids offset by gid_lo
    assert all(100 <= t.gid < 150 for t in out)
    # returned in canonical rank order
    assert out == rank_candidates(out)


def test_local_candidates_empty_when_nothing_eligible():
    out = local_candidates(
        ["a"], 0, np.array([1]), np.array([1]), 10, min_df=2, limit=5
    )
    assert out == []


def test_select_major_terms_topic_fraction():
    cands = [
        RankedTerm(f"t{i:03d}", i, 100.0 - i, 5, 10) for i in range(60)
    ]
    majors, topics = select_major_terms(cands, 40, 0.10)
    assert len(majors) == 40
    assert len(topics) == 4
    assert topics == majors[:4]  # topics are the top of the majors


def test_select_major_terms_min_two_topics():
    cands = [RankedTerm(f"t{i}", i, 10.0 - i, 5, 10) for i in range(10)]
    majors, topics = select_major_terms(cands, 5, 0.10)
    assert len(topics) == 2  # max(2, round(5*0.1))


def test_select_major_terms_fewer_candidates_than_n():
    cands = [RankedTerm("a", 0, 1.0, 5, 10)]
    majors, topics = select_major_terms(cands, 100, 0.10)
    assert len(majors) == 1
    assert len(topics) == 1  # clamped to available


@settings(max_examples=100)
@given(
    df=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=50),
    extra=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=50),
    n_docs=st.integers(min_value=40, max_value=2000),
)
def test_property_scores_finite_and_monotone_in_clumping(df, extra, n_docs):
    """For fixed cf, smaller df (more clumping) never lowers the score."""
    n = min(len(df), len(extra))
    df_arr = np.array(df[:n])
    cf_arr = df_arr + np.array(extra[:n])
    s = condensation_scores(df_arr, cf_arr, n_docs)
    assert np.all(np.isfinite(s))
    # monotonicity check: same cf, df and df+1
    cf0 = int(cf_arr[0]) + 1
    s_low_df = condensation_scores(np.array([1]), np.array([cf0]), n_docs)
    s_high_df = condensation_scores(
        np.array([min(cf0, n_docs)]), np.array([cf0]), n_docs
    )
    assert s_low_df[0] >= s_high_df[0]
