"""Shared fixtures for the faceted-analytics tests.

One stamped engine run (serial reference engine, deterministic) is
shared module-wide; stamped stores at several shard counts are built
from it on demand.
"""

import pytest

from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.facets import FacetSpec, extract_facets
from repro.index.termindex import build_term_postings
from repro.serve.store import build_shards

ENGINE_CONFIG = EngineConfig(n_major_terms=200, n_clusters=5, chunk_docs=8)

N_SOURCES = 3
SPAN_S = 600.0


@pytest.fixture(scope="session")
def stamped_corpus():
    return generate_pubmed(
        60_000,
        seed=4,
        n_themes=4,
        facets=FacetSpec(n_sources=N_SOURCES, span_s=SPAN_S, seed=4),
    )


@pytest.fixture(scope="session")
def result(stamped_corpus):
    return SerialTextEngine(ENGINE_CONFIG).run(stamped_corpus)


@pytest.fixture(scope="session")
def postings(stamped_corpus, result):
    return build_term_postings(
        stamped_corpus, result, ENGINE_CONFIG.tokenizer
    )


@pytest.fixture(scope="session")
def facets(stamped_corpus):
    return extract_facets(stamped_corpus)


@pytest.fixture(scope="session")
def stamped_stores(result, postings, facets, tmp_path_factory):
    """Stamped store directories keyed by shard count."""
    base = tmp_path_factory.mktemp("stamped-stores")
    built = {}
    for p in (1, 2, 4):
        out = base / f"store-{p}"
        build_shards(result, out, p, postings=postings, facets=facets)
        built[p] = out
    return built


@pytest.fixture(scope="session")
def plain_store(result, postings, tmp_path_factory):
    """An unstamped store (facet queries must be turned away)."""
    out = tmp_path_factory.mktemp("plain-store") / "store"
    build_shards(result, out, 2, postings=postings)
    return out
