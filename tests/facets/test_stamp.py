"""Stamping: separate rng stream, byte-identical unstamped output."""

import numpy as np
import pytest

from repro.datasets import (
    generate_newswire,
    generate_pubmed,
    generate_trec,
)
from repro.facets import (
    FacetSpec,
    extract_facets,
    facet_meta,
    stamp_corpus,
)
from repro.ingest.feed import FeedConfig, FeedSource
from repro.text.io import read_corpus, write_corpus

GENERATORS = {
    "pubmed": generate_pubmed,
    "trec": generate_trec,
    "newswire": generate_newswire,
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_stamping_never_perturbs_content(name):
    gen = GENERATORS[name]
    plain = gen(20_000, seed=7, n_themes=3)
    stamped = gen(
        20_000, seed=7, n_themes=3, facets=FacetSpec(n_sources=4)
    )
    assert len(plain.documents) == len(stamped.documents)
    for a, b in zip(plain.documents, stamped.documents):
        assert a.doc_id == b.doc_id
        assert a.fields == b.fields
    assert "facets" not in plain.meta
    assert "facets" in stamped.meta


def test_stamp_is_seed_deterministic_and_idempotent():
    spec = FacetSpec(n_sources=5, span_s=100.0, seed=11)
    a = generate_pubmed(15_000, seed=3, facets=spec)
    b = generate_pubmed(15_000, seed=3, facets=spec)
    assert a.meta["facets"] == b.meta["facets"]
    restamped = stamp_corpus(a, spec)
    assert restamped.meta["facets"] == b.meta["facets"]


def test_stamps_sorted_and_in_span():
    spec = FacetSpec(n_sources=4, span_s=250.0, t0_s=50.0, seed=2)
    corpus = generate_pubmed(15_000, seed=2, facets=spec)
    fac = extract_facets(corpus)
    stamps = np.asarray(fac.stamp_s)
    assert np.all(np.diff(stamps) >= 0)
    assert stamps.min() >= 50.0
    assert stamps.max() < 300.0
    src = np.asarray(fac.source)
    assert src.min() >= 0 and src.max() < 4


def test_facet_meta_roundtrips_through_jsonl(tmp_path):
    corpus = generate_pubmed(
        15_000, seed=5, facets=FacetSpec(n_sources=3, seed=5)
    )
    path = tmp_path / "stamped.jsonl"
    write_corpus(corpus, path)
    back = read_corpus(path)
    assert back.meta["facets"] == corpus.meta["facets"]


def test_extract_facets_none_for_unstamped():
    corpus = generate_pubmed(10_000, seed=1)
    assert extract_facets(corpus) is None


def test_feed_stamping_never_perturbs_documents_or_arrivals():
    plain_cfg = FeedConfig(batch_docs=6, n_batches=3, seed=9)
    stamped_cfg = FeedConfig(
        batch_docs=6, n_batches=3, seed=9, facet_sources=4
    )
    plain = FeedSource(plain_cfg).batches()
    stamped = FeedSource(stamped_cfg).batches()
    assert len(plain) == len(stamped)
    for (pc, pa), (sc, sa) in zip(plain, stamped):
        assert pa == sa
        assert [d.fields for d in pc.documents] == [
            d.fields for d in sc.documents
        ]
        assert "facets" not in pc.meta
        assert "facets" in sc.meta


def test_feed_stamps_fall_in_arrival_gaps():
    cfg = FeedConfig(batch_docs=8, n_batches=4, seed=3, facet_sources=2)
    prev = 0.0
    for corpus, arrival in FeedSource(cfg).batches():
        stamps = np.asarray(corpus.meta["facets"]["stamp_s"])
        assert np.all(np.diff(stamps) >= 0)
        assert stamps.min() >= prev
        assert stamps.max() <= arrival
        prev = arrival


def test_facet_meta_shape():
    meta = facet_meta(
        np.array([1.0, 2.0]), np.array([0, 1]), 2
    )
    assert meta["n_sources"] == 2
    assert meta["source_names"] == ["src-00", "src-01"]
    assert meta["stamp_s"] == [1.0, 2.0]


def test_facet_spec_validation():
    with pytest.raises(ValueError):
        FacetSpec(n_sources=0)
    with pytest.raises(ValueError):
        FacetSpec(span_s=0.0)
    with pytest.raises(ValueError):
        FacetSpec(n_sources=2, source_names=("just-one",))
    with pytest.raises(ValueError):
        FeedConfig(facet_sources=-1)
