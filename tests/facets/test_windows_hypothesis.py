"""Property tests for the window-analytics kernels.

* window-count additivity: per-source counts over any partition of a
  range sum to the whole-range counts (half-open windows never double
  count or drop a stamp);
* shard-order independence: per-window tf totals merged over shards in
  any order, at any shard count, select the same top terms;
* emerging scores are pure int64 arithmetic (no float drift).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facets.windows import emerging_scores
from repro.serve.query import ShardStore, topk_int_score_row
from repro.serve.store import Container, load_manifest, load_model


@pytest.fixture(scope="module")
def shard_stores(stamped_stores):
    """``{P: [ShardStore, ...]}`` over the stamped store fixtures."""
    out = {}
    for p, store_dir in stamped_stores.items():
        manifest = load_manifest(store_dir)
        model = load_model(store_dir)
        out[p] = [
            ShardStore(Container(str(store_dir / s.file)), model)
            for s in manifest.shards
        ]
    return out


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.floats(min_value=-50.0, max_value=700.0,
                  allow_nan=False, allow_infinity=False),
        min_size=2,
        max_size=6,
        unique=True,
    )
)
def test_window_count_additivity(shard_stores, edges):
    edges = sorted(edges)
    shard = shard_stores[1][0]
    total, _ = shard.op_facet_counts(edges[0], edges[-1], 3)
    summed = np.zeros(3, dtype=np.int64)
    for t0, t1 in zip(edges, edges[1:]):
        counts, _ = shard.op_facet_counts(t0, t1, 3)
        summed += counts
    assert np.array_equal(summed, total)


@settings(max_examples=25, deadline=None)
@given(
    t0=st.floats(min_value=0.0, max_value=550.0,
                 allow_nan=False, allow_infinity=False),
    width=st.floats(min_value=1.0, max_value=400.0,
                    allow_nan=False, allow_infinity=False),
    source=st.sampled_from([-1, 0, 1, 2]),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_window_terms_shard_order_independent(
    shard_stores, t0, width, source, order_seed
):
    t1 = t0 + width
    ref_totals, ref_docs, _ = shard_stores[1][0].op_window_tf(
        t0, t1, source
    )
    k = 10
    ref_top = topk_int_score_row(
        ref_totals, np.arange(ref_totals.size), k
    )
    for p in (2, 4):
        shards = list(shard_stores[p])
        np.random.default_rng(order_seed).shuffle(shards)
        totals = np.zeros_like(ref_totals)
        docs = 0
        for s in shards:
            part, n, _ = s.op_window_tf(t0, t1, source)
            totals += part
            docs += n
        assert docs == ref_docs
        assert np.array_equal(totals, ref_totals)
        top = topk_int_score_row(totals, np.arange(totals.size), k)
        assert np.array_equal(top, ref_top)


@settings(max_examples=50, deadline=None)
@given(
    tf_prev=st.lists(
        st.integers(min_value=0, max_value=10**6),
        min_size=1,
        max_size=12,
    ),
    tf_cur_seed=st.integers(min_value=0, max_value=2**16),
)
def test_emerging_scores_exact_int64(tf_prev, tf_cur_seed):
    tf_prev = np.array(tf_prev, dtype=np.int64)
    tf_cur = np.random.default_rng(tf_cur_seed).integers(
        0, 10**6, size=tf_prev.size
    )
    scores = emerging_scores(tf_prev, tf_cur)
    assert scores.dtype == np.int64
    total_prev = int(tf_prev.sum())
    total_cur = int(tf_cur.sum())
    for i in range(tf_prev.size):
        expect = int(tf_cur[i]) * (total_prev + 1) - int(
            tf_prev[i]
        ) * (total_cur + 1)
        assert int(scores[i]) == expect
        # sign agrees with the smoothed rate comparison
        rate_cmp = tf_cur[i] / (total_cur + 1) - tf_prev[i] / (
            total_prev + 1
        )
        if expect > 0:
            assert rate_cmp > 0
        elif expect < 0:
            assert rate_cmp < 0
