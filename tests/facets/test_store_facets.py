"""Facet sections on disk: version bump, fallback, corruption."""

import numpy as np
import pytest

from repro.serve.query import Query
from repro.serve.store import (
    FACET_BLOCK_ROWS,
    FACET_FORMAT_VERSION,
    FORMAT_VERSION,
    Container,
    FacetSections,
    ShardFormatError,
    encode_facet_sections,
    load_facet_sections,
    load_manifest,
    write_container,
)


def test_stamped_store_bumps_container_version(stamped_stores):
    manifest = load_manifest(stamped_stores[2])
    assert manifest.facets is not None
    for shard in manifest.shards:
        cont = Container(str(stamped_stores[2] / shard.file))
        assert cont.version == FACET_FORMAT_VERSION
        assert "facet_stamp_s" in cont
        assert "facet_block_lo" in cont


def test_unstamped_store_keeps_old_version(plain_store):
    manifest = load_manifest(plain_store)
    assert manifest.facets is None
    for shard in manifest.shards:
        cont = Container(str(plain_store / shard.file))
        assert cont.version == FORMAT_VERSION
        assert "facet_stamp_s" not in cont
        assert load_facet_sections(cont, shard.n_docs) is None


def test_manifest_facets_bracket_all_stamps(stamped_stores, facets):
    manifest = load_manifest(stamped_stores[4])
    fac = manifest.facets
    stamps = np.asarray(facets.stamp_s)
    assert fac.stamp_lo == pytest.approx(float(stamps.min()))
    assert fac.stamp_hi == pytest.approx(float(stamps.max()))
    assert fac.n_sources == 3


def test_block_bounds_cover_rows(stamped_stores):
    manifest = load_manifest(stamped_stores[1])
    shard = manifest.shards[0]
    cont = Container(str(stamped_stores[1] / shard.file))
    sections = load_facet_sections(cont, shard.n_docs)
    stamps = np.asarray(sections.stamp_s)
    for b in range(sections.n_blocks):
        lo = b * FACET_BLOCK_ROWS
        hi = min(lo + FACET_BLOCK_ROWS, shard.n_docs)
        chunk = stamps[lo:hi]
        assert sections.block_lo[b] == pytest.approx(float(chunk.min()))
        assert sections.block_hi[b] == pytest.approx(float(chunk.max()))


def _read_arrays(path):
    """Materialized (memmap-free) copies of every section."""
    cont = Container(str(path))
    return {
        name: np.array(cont.load(name))
        for name in cont.section_names
    }, cont.meta


@pytest.mark.parametrize(
    "mutate",
    [
        lambda a: {"facet_stamp_s": a["facet_stamp_s"][:-1]},
        lambda a: {"facet_source": a["facet_source"][:-2]},
        lambda a: {"facet_block_lo": a["facet_block_lo"][:-1]},
        lambda a: {
            "facet_block_lo": a["facet_block_hi"] + 1.0,
        },
    ],
    ids=["stamp-len", "source-len", "bounds-len", "lo-gt-hi"],
)
def test_corrupt_facet_sections_raise_naming_path(
    result, postings, facets, tmp_path, mutate
):
    from repro.serve.store import build_shards

    store = tmp_path / "store"
    build_shards(result, store, 1, postings=postings, facets=facets)
    manifest = load_manifest(store)
    shard = manifest.shards[0]
    path = store / shard.file
    arrays, meta = _read_arrays(path)
    arrays.update(mutate(arrays))
    write_container(
        str(path), arrays, meta, version=FACET_FORMAT_VERSION
    )
    with pytest.raises(ShardFormatError) as exc_info:
        FacetSections(Container(str(path)), shard.n_docs)
    assert str(path) in str(exc_info.value)
    assert "facet" in str(exc_info.value)


def test_encode_facet_sections_roundtrip():
    stamps = np.sort(np.random.default_rng(0).uniform(0, 50, 300))
    source = np.random.default_rng(1).integers(0, 4, 300)
    sections = encode_facet_sections(stamps, source)
    assert np.array_equal(sections["facet_stamp_s"], stamps)
    assert np.array_equal(
        sections["facet_source"], source.astype(np.int64)
    )
    nblocks = -(-300 // FACET_BLOCK_ROWS)
    assert sections["facet_block_lo"].shape == (nblocks,)
    assert np.all(
        sections["facet_block_lo"] <= sections["facet_block_hi"]
    )


def test_window_rows_matches_bruteforce(stamped_stores):
    manifest = load_manifest(stamped_stores[2])
    shard = manifest.shards[1]
    cont = Container(str(stamped_stores[2] / shard.file))
    sections = load_facet_sections(cont, shard.n_docs)
    stamps = np.asarray(sections.stamp_s)
    sources = np.asarray(sections.source)
    for t0, t1, src in ((0.0, 200.0, -1), (150.0, 450.0, 1),
                        (400.0, 700.0, 2), (100.0, 100.0, -1)):
        rows, scanned = sections.window_rows(t0, t1, src)
        expect = np.flatnonzero((stamps >= t0) & (stamps < t1))
        if src >= 0:
            expect = expect[sources[expect] == src]
        assert np.array_equal(rows, expect)
        assert scanned >= 16 * sections.n_blocks


def test_facet_query_kinds_reject_unstamped_store(plain_store):
    from repro.serve.broker import query_store

    resp = query_store(
        plain_store, Query(kind="facet_counts", t0=0.0, t1=100.0)
    )
    assert "not stamped" in resp["error"]
