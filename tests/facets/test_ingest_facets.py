"""Facet sections through the delta builder and the compactor.

The same stamped rows must produce byte-identical facet sections no
matter which writer persisted them: a fresh ``build_shards``, an
``append_generation`` publish, or a ``compact_store`` rewrite.
"""

import numpy as np
import pytest

from repro.facets import FacetData, extract_facets
from repro.index.termindex import concat_postings
from repro.ingest.delta import extend_result
from repro.ingest.compact import compact_store
from repro.ingest.delta import append_generation, build_delta
from repro.ingest.feed import FeedConfig, FeedSource
from repro.serve.broker import serve
from repro.serve.query import Query, canonical_response
from repro.serve.store import (
    Container,
    build_shards,
    load_manifest,
)
from repro.serve.workload import ClientScript

from .conftest import ENGINE_CONFIG, N_SOURCES

FACET_SECTIONS = (
    "facet_stamp_s",
    "facet_source",
    "facet_block_lo",
    "facet_block_hi",
)


@pytest.fixture(scope="module")
def feed_batches(result):
    cfg = FeedConfig(
        batch_docs=6,
        n_batches=2,
        seed=4,
        themes=4,
        skip_docs=int(result.doc_ids.size),
        start_doc_id=int(result.doc_ids[-1]) + 1,
        facet_sources=N_SOURCES,
    )
    return FeedSource(cfg).batches()


@pytest.fixture(scope="module")
def grown_store(result, postings, facets, feed_batches, tmp_path_factory):
    """A stamped store with one appended generation."""
    store = tmp_path_factory.mktemp("grown") / "store"
    build_shards(result, store, 2, postings=postings, facets=facets)
    deltas = [
        build_delta(
            result,
            corpus.documents,
            tokenizer_config=ENGINE_CONFIG.tokenizer,
            facets=extract_facets(corpus),
        )
        for corpus, _arrival in feed_batches
    ]
    append_generation(store, deltas, published_s=0.0)
    return store


def test_delta_segments_carry_facet_sections(grown_store, feed_batches):
    manifest = load_manifest(grown_store)
    assert manifest.facets is not None
    assert len(manifest.deltas) == 2
    for (corpus, _arrival), seg in zip(feed_batches, manifest.deltas):
        cont = Container(str(grown_store / seg.file))
        fac = extract_facets(corpus)
        assert np.array_equal(
            np.asarray(cont.load("facet_stamp_s")), fac.stamp_s
        )
        assert np.array_equal(
            np.asarray(cont.load("facet_source")), fac.source
        )


def test_manifest_stamp_bounds_extend_with_deltas(
    grown_store, facets, feed_batches
):
    manifest = load_manifest(grown_store)
    stamps = [np.asarray(facets.stamp_s)] + [
        np.asarray(extract_facets(c).stamp_s) for c, _ in feed_batches
    ]
    allstamps = np.concatenate(stamps)
    assert manifest.facets.stamp_lo == float(allstamps.min())
    assert manifest.facets.stamp_hi == float(allstamps.max())


def test_unstamped_batch_rejected_on_stamped_store(
    grown_store, result, feed_batches
):
    corpus, _ = feed_batches[0]
    delta = build_delta(
        result,
        corpus.documents,
        tokenizer_config=ENGINE_CONFIG.tokenizer,
    )
    with pytest.raises(ValueError, match="unstamped"):
        append_generation(grown_store, [delta])


def test_stamped_batch_rejected_on_plain_store(
    plain_store, result, feed_batches
):
    corpus, _ = feed_batches[0]
    delta = build_delta(
        result,
        corpus.documents,
        tokenizer_config=ENGINE_CONFIG.tokenizer,
        facets=extract_facets(corpus),
    )
    with pytest.raises(ValueError, match="not stamped"):
        append_generation(plain_store, [delta])


def test_source_count_mismatch_rejected(
    grown_store, result, feed_batches
):
    corpus, _ = feed_batches[0]
    fac = extract_facets(corpus)
    delta = build_delta(
        result,
        corpus.documents,
        tokenizer_config=ENGINE_CONFIG.tokenizer,
        facets=FacetData(
            stamp_s=fac.stamp_s,
            source=fac.source,
            n_sources=fac.n_sources + 2,
            source_names=fac.source_names
            + ("src-xx", "src-yy"),
        ),
    )
    with pytest.raises(ValueError, match="sources"):
        append_generation(grown_store, [delta])


def test_compaction_matches_fresh_stamped_build(
    result, postings, facets, feed_batches, tmp_path
):
    store = tmp_path / "store"
    build_shards(result, store, 2, postings=postings, facets=facets)
    deltas = [
        build_delta(
            result,
            corpus.documents,
            tokenizer_config=ENGINE_CONFIG.tokenizer,
            facets=extract_facets(corpus),
        )
        for corpus, _arrival in feed_batches
    ]
    append_generation(store, deltas, published_s=0.0)
    compacted = compact_store(store)
    assert compacted.facets is not None
    assert not compacted.deltas

    # fresh reference build over the same merged rows
    batch_corpora = [c for c, _arrival in feed_batches]
    merged_result = extend_result(
        result,
        batch_corpora,
        tokenizer_config=ENGINE_CONFIG.tokenizer,
    )
    merged_postings = concat_postings(
        [postings] + [d.postings for d in deltas]
    )
    stamp_parts = [np.asarray(facets.stamp_s)] + [
        np.asarray(extract_facets(c).stamp_s) for c in batch_corpora
    ]
    source_parts = [np.asarray(facets.source)] + [
        np.asarray(extract_facets(c).source) for c in batch_corpora
    ]
    fresh_dir = tmp_path / "fresh"
    build_shards(
        merged_result,
        fresh_dir,
        compacted.nshards,
        postings=merged_postings,
        facets=FacetData(
            stamp_s=np.concatenate(stamp_parts),
            source=np.concatenate(source_parts),
            n_sources=N_SOURCES,
            source_names=facets.source_names,
        ),
    )
    fresh = load_manifest(fresh_dir)
    assert fresh.facets.stamp_lo == compacted.facets.stamp_lo
    assert fresh.facets.stamp_hi == compacted.facets.stamp_hi
    for cs, fs in zip(compacted.shards, fresh.shards):
        cc = Container(str(store / cs.file))
        fc = Container(str(fresh_dir / fs.file))
        for name in FACET_SECTIONS:
            assert np.array_equal(
                np.asarray(cc.load(name)), np.asarray(fc.load(name))
            ), name


def test_window_answers_unchanged_by_compaction(
    result, postings, facets, feed_batches, tmp_path
):
    store = tmp_path / "store"
    build_shards(result, store, 2, postings=postings, facets=facets)
    deltas = [
        build_delta(
            result,
            corpus.documents,
            tokenizer_config=ENGINE_CONFIG.tokenizer,
            facets=extract_facets(corpus),
        )
        for corpus, _arrival in feed_batches
    ]
    append_generation(store, deltas, published_s=0.0)
    scripts = [
        ClientScript(
            client=0,
            queries=(
                Query(kind="facet_counts", t0=0.0, t1=700.0),
                Query(kind="window_terms", t0=50.0, t1=450.0, k=10),
                Query(kind="emerging", t0=300.0, t1=600.0, k=10),
            ),
            think_s=(0.0, 0.0, 0.0),
        )
    ]
    before = serve(store, scripts)
    compact_store(store)
    after = serve(store, scripts)
    key = lambda rep: {
        (r["client"], r["seq"]): canonical_response(r["response"])
        for r in rep.responses
    }
    assert key(before) == key(after)
