"""Broker window queries: exactness, shard independence, metrics."""

import pytest

from repro.runtime.metrics import facets_summary
from repro.serve.broker import serve
from repro.serve.query import Query, canonical_response
from repro.serve.workload import (
    ClientScript,
    generate_dashboard_workload,
    store_profile,
)

WINDOWS = (
    (0.0, 200.0, -1),
    (100.0, 400.0, 1),
    (300.0, 601.0, 2),
    (450.0, 600.0, -1),
)


def _facet_scripts():
    queries = []
    for kind in ("facet_counts", "window_terms", "emerging"):
        for t0, t1, source in WINDOWS:
            queries.append(
                Query(
                    kind=kind, t0=t0, t1=t1, source=source, k=8
                )
            )
    return [
        ClientScript(
            client=0,
            queries=tuple(queries),
            think_s=(0.0,) * len(queries),
        )
    ]


def _answers(report):
    return {
        (r["client"], r["seq"]): canonical_response(r["response"])
        for r in report.responses
    }


@pytest.fixture(scope="module")
def facet_reports(stamped_stores):
    scripts = _facet_scripts()
    return {
        p: serve(store, scripts)
        for p, store in stamped_stores.items()
    }


def test_window_answers_identical_across_shard_counts(facet_reports):
    ref = _answers(facet_reports[1])
    assert len(ref) == 12
    for p in (2, 4):
        assert _answers(facet_reports[p]) == ref


def test_facet_counts_shape(facet_reports):
    resp = facet_reports[2].responses[0]["response"]
    assert resp["kind"] == "facet_counts"
    assert len(resp["counts"]) == len(resp["sources"]) == 3
    assert resp["total"] == sum(resp["counts"])
    assert not resp["partial"]


def test_window_terms_sorted_by_tf_then_term_row(facet_reports):
    for r in facet_reports[4].responses:
        resp = r["response"]
        if resp["kind"] != "window_terms":
            continue
        tfs = [t["tf"] for t in resp["terms"]]
        assert tfs == sorted(tfs, reverse=True)
        assert all(tf > 0 for tf in tfs)


def test_emerging_scores_positive_and_sorted(facet_reports):
    saw_terms = False
    for r in facet_reports[1].responses:
        resp = r["response"]
        if resp["kind"] != "emerging":
            continue
        scores = [t["score"] for t in resp["terms"]]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 0 for s in scores)
        assert all(t["tf"] > 0 for t in resp["terms"])
        saw_terms = saw_terms or bool(resp["terms"])
    assert saw_terms


def test_facets_summary_counters(facet_reports):
    summary = facets_summary(facet_reports[2].metrics)
    assert summary["windows_served"] == 12
    assert summary["windows_by_kind"] == {
        "facet_counts": 4.0,
        "window_terms": 4.0,
        "emerging": 4.0,
    }
    assert summary["facet_bytes_scanned"] > 0


def test_facets_summary_identical_across_schedulers(
    stamped_stores, monkeypatch
):
    scripts = _facet_scripts()
    fast = serve(stamped_stores[2], scripts)
    monkeypatch.setenv("REPRO_SCHED_SLOWPATH", "1")
    slow = serve(stamped_stores[2], scripts)
    assert facets_summary(fast.metrics) == facets_summary(slow.metrics)
    assert _answers(fast) == _answers(slow)


def test_facets_summary_empty_without_facets(plain_store):
    scripts = [
        ClientScript(
            client=0,
            queries=(Query(kind="cluster", cluster=0),),
            think_s=(0.0,),
        )
    ]
    report = serve(plain_store, scripts)
    assert facets_summary(report.metrics) == {}


def test_unstamped_store_gets_typed_error(plain_store):
    scripts = [
        ClientScript(
            client=0,
            queries=(
                Query(kind="facet_counts", t0=0.0, t1=100.0),
                Query(kind="window_terms", t0=0.0, t1=100.0),
                Query(kind="emerging", t0=50.0, t1=100.0),
            ),
            think_s=(0.0, 0.0, 0.0),
        )
    ]
    report = serve(plain_store, scripts)
    for r in report.responses:
        assert "not stamped" in r["response"]["error"]


def test_mp_backend_matches_sim(stamped_stores):
    scripts = _facet_scripts()
    sim = serve(stamped_stores[2], scripts)
    mp = serve(stamped_stores[2], scripts, backend="mp")
    assert _answers(sim) == _answers(mp)


# ----------------------------------------------------------------------
# dashboard workload generator
# ----------------------------------------------------------------------
def test_dashboard_workload_deterministic(stamped_stores):
    profile = store_profile(stamped_stores[2])
    a = generate_dashboard_workload(profile, seed=3)
    b = generate_dashboard_workload(profile, seed=3)
    assert a == b
    c = generate_dashboard_workload(profile, seed=4)
    assert a != c


def test_dashboard_windows_inside_stamp_range(stamped_stores):
    profile = store_profile(stamped_stores[2])
    lo, hi = profile.facet_range
    scripts = generate_dashboard_workload(
        profile, n_clients=6, polls_per_client=5, seed=1
    )
    saw_window = saw_search = False
    for script in scripts:
        for q in script.queries:
            if q.kind in ("facet_counts", "window_terms", "emerging"):
                saw_window = True
                assert lo <= q.t0 < q.t1
                assert q.t1 <= hi + 1e-6
                assert -1 <= q.source < profile.n_sources
            else:
                saw_search = True
    assert saw_window and saw_search


def test_dashboard_workload_rejects_unstamped_profile(plain_store):
    profile = store_profile(plain_store)
    with pytest.raises(ValueError, match="unstamped"):
        generate_dashboard_workload(profile)


def test_dashboard_windows_slide_forward(stamped_stores):
    profile = store_profile(stamped_stores[2])
    scripts = generate_dashboard_workload(
        profile,
        n_clients=4,
        polls_per_client=6,
        seed=2,
        search_fraction=0.0,
    )
    lo, hi = profile.facet_range
    for script in scripts:
        ends = [q.t1 for q in script.queries]
        assert ends == sorted(ends)
        assert ends[-1] == pytest.approx(hi)
