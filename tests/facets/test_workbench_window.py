"""The workbench ``window`` verb: epoch-pinned set restriction."""

import pytest

from repro.serve.query import Query, canonical_response
from repro.serve.store import load_model
from repro.workbench import (
    WorkbenchOp,
    WorkbenchScript,
    serve_workbench,
)


@pytest.fixture(scope="module")
def search_terms(stamped_stores):
    """Two real model terms, so the base set is never empty."""
    return tuple(load_model(stamped_stores[1]).terms[:2])


def _script(terms, t0, t1, source=-1):
    return WorkbenchScript(
        tenant=0,
        client=0,
        ops=(
            WorkbenchOp(verb="open"),
            WorkbenchOp(
                verb="search",
                name="base",
                query=Query(kind="search", terms=terms, k=40),
            ),
            WorkbenchOp(
                verb="window",
                name="recent",
                base="base",
                t0=t0,
                t1=t1,
                source=source,
            ),
            WorkbenchOp(verb="keyphrases", base="recent", n=6),
            WorkbenchOp(verb="close"),
        ),
        think_s=(0.0,) * 5,
    )


def _answers(report):
    return {
        (r["client"], r["seq"]): canonical_response(r["response"])
        for r in report.responses
    }


def test_window_restricts_set(stamped_stores, search_terms):
    report = serve_workbench(
        stamped_stores[2], [_script(search_terms, 0.0, 300.0)]
    )
    assert not report.rejected
    by_seq = {r["seq"]: r["response"] for r in report.responses}
    base = by_seq[1]
    windowed = by_seq[2]
    assert windowed["size"] <= base["size"]
    base_docs = {h["doc"] for h in base["hits"]}
    assert {h["doc"] for h in windowed["hits"]} <= base_docs


def test_window_answers_identical_across_shard_counts(
    stamped_stores, search_terms
):
    scripts = [
        _script(search_terms, 0.0, 300.0),
        _script(search_terms, 150.0, 601.0, source=1),
    ]
    # distinct clients so responses key uniquely
    scripts[1] = WorkbenchScript(
        tenant=0,
        client=1,
        ops=scripts[1].ops,
        think_s=scripts[1].think_s,
    )
    ref = None
    for p in sorted(stamped_stores):
        report = serve_workbench(stamped_stores[p], scripts)
        answers = _answers(report)
        if ref is None:
            ref = answers
        else:
            assert answers == ref


def test_window_preserves_canonical_order(stamped_stores, search_terms):
    report = serve_workbench(
        stamped_stores[1], [_script(search_terms, 0.0, 450.0)]
    )
    windowed = {r["seq"]: r["response"] for r in report.responses}[2]
    scores = [h["score"] for h in windowed["hits"]]
    assert scores == sorted(scores, reverse=True)


def test_window_source_filter_narrows(stamped_stores, search_terms):
    all_src = serve_workbench(
        stamped_stores[2], [_script(search_terms, 0.0, 601.0)]
    )
    one_src = serve_workbench(
        stamped_stores[2], [_script(search_terms, 0.0, 601.0, source=0)]
    )
    size_all = {
        r["seq"]: r["response"] for r in all_src.responses
    }[2]["size"]
    size_one = {
        r["seq"]: r["response"] for r in one_src.responses
    }[2]["size"]
    assert size_one <= size_all


def test_window_rejects_unstamped_store(plain_store, search_terms):
    report = serve_workbench(
        plain_store, [_script(search_terms, 0.0, 300.0)]
    )
    assert any(
        rej.verb == "window" and rej.reason == "unstamped_store"
        for rej in report.rejected
    )


def test_window_unknown_base_rejected(stamped_stores):
    script = WorkbenchScript(
        tenant=0,
        client=0,
        ops=(
            WorkbenchOp(verb="open"),
            WorkbenchOp(
                verb="window",
                name="w",
                base="nonexistent",
                t0=0.0,
                t1=100.0,
            ),
            WorkbenchOp(verb="close"),
        ),
        think_s=(0.0, 0.0, 0.0),
    )
    report = serve_workbench(stamped_stores[1], [script])
    assert any(
        rej.verb == "window" and rej.reason == "unknown_set"
        for rej in report.rejected
    )


def test_window_op_requires_known_verb():
    with pytest.raises(ValueError, match="unknown workbench verb"):
        WorkbenchOp(verb="windowed")
