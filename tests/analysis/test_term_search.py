"""Ranked term search over the major-term postings index."""

import numpy as np
import pytest

from repro.analysis.session import AnalysisSession
from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import (
    build_term_postings,
    icf_weights,
)

CONFIG = EngineConfig(n_major_terms=150, n_clusters=4, chunk_docs=8)


@pytest.fixture(scope="module")
def corpus():
    return generate_pubmed(50_000, seed=7, n_themes=4)


@pytest.fixture(scope="module")
def result(corpus):
    return SerialTextEngine(CONFIG).run(corpus)


@pytest.fixture(scope="module")
def postings(corpus, result):
    return build_term_postings(corpus, result, CONFIG.tokenizer)


@pytest.fixture(scope="module")
def session(result, postings):
    return AnalysisSession(result, postings=postings)


def _brute_force(result, postings, terms, k):
    """Reference tf.icf ranking straight from the postings arrays."""
    term_row = {t.term: i for i, t in enumerate(result.major_terms)}
    icf = icf_weights(
        np.array([t.df for t in result.major_terms]), result.n_docs
    )
    scores = np.zeros(len(result.doc_ids))
    for t in terms:
        r = term_row.get(t)
        if r is None:
            continue
        lo, hi = postings.offsets[r], postings.offsets[r + 1]
        for row, tf in zip(
            postings.rows[lo:hi], postings.tf[lo:hi]
        ):
            scores[row] += tf * icf[r]
    idx = np.argsort(-scores, kind="stable")[: min(k, len(scores))]
    return [
        (int(result.doc_ids[i]), float(scores[i]))
        for i in idx
        if scores[i] > 0
    ]


class TestTermSearch:
    def test_matches_brute_force(self, result, postings, session):
        terms = [result.major_terms[i].term for i in (0, 5, 17)]
        hits = session.term_search(terms, k=15)
        assert [
            (h.doc_id, h.score) for h in hits
        ] == _brute_force(result, postings, terms, 15)

    def test_single_term_docs_contain_it(self, result, session):
        term = result.major_terms[3].term
        hits = session.term_search([term], k=10)
        assert hits
        assert all(h.score > 0 for h in hits)
        # descending, ties broken by global row order (stable)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_terms_empty(self, session):
        assert session.term_search(["zzz-never-a-term"], k=5) == []
        assert session.term_search([], k=5) == []

    def test_k_clamped(self, result, session):
        term = result.major_terms[0].term
        hits = session.term_search([term], k=10**9)
        assert len(hits) <= result.n_docs
        assert session.term_search([term], k=0)  # clamps to 1


class TestAttachPostings:
    def test_requires_postings(self, result):
        bare = AnalysisSession(result)
        with pytest.raises(ValueError, match="postings"):
            bare.term_search(["anything"])

    def test_rejects_mismatched_postings(self, result, postings):
        bad = postings.restrict(0, postings.n_docs - 1)
        bare = AnalysisSession(result)
        with pytest.raises(ValueError, match="documents"):
            bare.attach_postings(bad)

    def test_attach_after_init(self, result, postings):
        late = AnalysisSession(result)
        late.attach_postings(postings)
        term = result.major_terms[0].term
        assert late.term_search([term], k=3)
