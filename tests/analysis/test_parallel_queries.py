"""Parallel interactive query tests (the paper's future-work frontier)."""

import numpy as np
import pytest

from repro.analysis import AnalysisSession, Query, run_query_batch
from repro.datasets import generate_pubmed
from repro.engine import EngineConfig, SerialTextEngine


@pytest.fixture(scope="module")
def result():
    corpus = generate_pubmed(120_000, seed=37, n_themes=4)
    cfg = EngineConfig(n_major_terms=150, n_clusters=4, kmeans_sample=48)
    return SerialTextEngine(cfg).run(corpus)


@pytest.fixture(scope="module")
def serial_session(result):
    return AnalysisSession(result)


def _hit_ids(hits):
    return [h.doc_id for h in hits]


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_similar_matches_serial(result, serial_session, nprocs):
    target = int(result.doc_ids[5])
    answers = run_query_batch(
        result, [Query("similar", (target,), k=6)], nprocs
    )
    serial_hits = serial_session.similar_documents(target, k=6)
    assert _hit_ids(answers[0].hits) == _hit_ids(serial_hits)
    for a, b in zip(answers[0].hits, serial_hits):
        assert a.score == pytest.approx(b.score)


@pytest.mark.parametrize("nprocs", [1, 3])
def test_terms_query_matches_serial(result, serial_session, nprocs):
    terms = result.topic_term_strings[:2]
    answers = run_query_batch(result, [Query("terms", tuple(terms), k=5)], nprocs)
    serial_hits = serial_session.query(list(terms), k=5)
    assert _hit_ids(answers[0].hits) == _hit_ids(serial_hits)


def test_nearest_matches_serial(result, serial_session):
    x, y = map(float, result.coords[7][:2])
    answers = run_query_batch(result, [Query("nearest", (x, y), k=4)], 4)
    serial_hits = serial_session.nearest_documents(x, y, k=4)
    assert _hit_ids(answers[0].hits) == _hit_ids(serial_hits)


def test_batch_of_mixed_queries(result):
    queries = [
        Query("similar", (0,), k=3),
        Query("nearest", (0.0, 0.0), k=3),
        Query("terms", (result.topic_term_strings[0],), k=3),
    ]
    answers = run_query_batch(result, queries, 3)
    assert len(answers) == 3
    for a in answers:
        assert len(a.hits) == 3
        assert a.latency_s > 0


def test_latency_improves_with_procs():
    """Interaction latency must shrink with processors at represented
    scale -- the feasibility claim of the paper's conclusion."""
    import dataclasses

    corpus = generate_pubmed(150_000, seed=11, n_themes=4)
    cfg = EngineConfig(n_major_terms=150, n_clusters=4, kmeans_sample=48)
    res = SerialTextEngine(cfg).run(corpus)
    # declare a multi-GB represented size so per-query compute matters
    big = dataclasses.replace(res)
    big.meta["represented"] = True
    queries = [Query("similar", (0,), k=5)]

    from repro.runtime import MachineSpec

    machine = MachineSpec(workload_scale=10_000.0)
    t1 = run_query_batch(big, queries, 1, machine=machine)[0].latency_s
    t8 = run_query_batch(big, queries, 8, machine=machine)[0].latency_s
    assert t8 < t1 / 3


def test_unknown_query_kind_rejected(result):
    with pytest.raises(ValueError, match="unknown query kind"):
        run_query_batch(result, [Query("fuzzy", (1,), k=3)], 2)


def test_requires_signatures(result):
    import dataclasses

    bare = dataclasses.replace(result, signatures=None)
    with pytest.raises(ValueError, match="signatures"):
        run_query_batch(bare, [Query("similar", (0,), k=3)], 2)


def test_deterministic(result):
    queries = [Query("similar", (3,), k=5)]
    a1 = run_query_batch(result, queries, 4)
    a2 = run_query_batch(result, queries, 4)
    assert _hit_ids(a1[0].hits) == _hit_ids(a2[0].hits)
    assert a1[0].latency_s == a2[0].latency_s
