"""Interactive analysis layer tests."""

import numpy as np
import pytest

from repro.analysis import AnalysisSession, ClusterSummary
from repro.datasets import generate_pubmed
from repro.engine import EngineConfig, SerialTextEngine


@pytest.fixture(scope="module")
def session():
    corpus = generate_pubmed(120_000, seed=31, n_themes=4)
    cfg = EngineConfig(n_major_terms=150, n_clusters=4, kmeans_sample=64)
    result = SerialTextEngine(cfg).run(corpus)
    return AnalysisSession(result), corpus


def test_requires_signatures():
    corpus = generate_pubmed(40_000, seed=1)
    cfg = EngineConfig(
        n_major_terms=60, n_clusters=3, keep_signatures=False
    )
    res = SerialTextEngine(cfg).run(corpus)
    with pytest.raises(ValueError, match="keep_signatures"):
        AnalysisSession(res)


def test_nearest_documents_orders_by_distance(session):
    sess, _ = session
    x, y = sess.result.coords[0][:2]
    hits = sess.nearest_documents(x, y, k=5)
    assert len(hits) == 5
    assert hits[0].doc_id == int(sess.result.doc_ids[0])
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_nearest_documents_k_clamped(session):
    sess, corpus = session
    hits = sess.nearest_documents(0.0, 0.0, k=10_000)
    assert len(hits) == len(corpus)


def test_region_terms_name_the_mountain(session):
    sess, _ = session
    # probe at a cluster centroid's projected position
    c0_docs = np.flatnonzero(sess.result.assignments == 0)
    center = sess.result.coords[c0_docs].mean(axis=0)
    terms = sess.region_terms(center[0], center[1], radius=0.4)
    assert terms
    assert all(t in sess.result.topic_term_strings for t in terms)


def test_region_terms_empty_region(session):
    sess, _ = session
    assert sess.region_terms(1e6, 1e6, radius=0.001) == []


def test_similar_documents_self_similarity(session):
    sess, _ = session
    doc = int(sess.result.doc_ids[3])
    hits = sess.similar_documents(doc, k=5, include_self=True)
    assert hits[0].doc_id == doc
    assert hits[0].score == pytest.approx(1.0)
    hits_no_self = sess.similar_documents(doc, k=5)
    assert all(h.doc_id != doc for h in hits_no_self)


def test_similar_documents_prefer_same_theme(session):
    sess, corpus = session
    labels = corpus.meta["theme_labels"]
    agree = 0
    total = 0
    for doc in range(0, len(corpus), 5):
        for h in sess.similar_documents(doc, k=3):
            total += 1
            agree += labels[h.doc_id] == labels[doc]
    assert agree / total > 0.6


def test_similar_documents_unknown_doc(session):
    sess, _ = session
    with pytest.raises(KeyError):
        sess.similar_documents(10_000)


def test_query_by_topic_terms(session):
    sess, _ = session
    term = sess.result.topic_term_strings[0]
    hits = sess.query([term], k=5)
    assert len(hits) == 5
    # the top hits' signatures should weight the queried dimension
    dim = sess.result.topic_term_strings.index(term)
    top_sig = sess.result.signatures[
        np.flatnonzero(sess.result.doc_ids == hits[0].doc_id)[0]
    ]
    assert top_sig[dim] > np.median(sess.result.signatures[:, dim])


def test_query_unknown_terms_empty(session):
    sess, _ = session
    assert sess.query(["zzz-not-a-term"], k=5) == []


def test_cluster_summary(session):
    sess, corpus = session
    sizes = 0
    for c in range(sess.result.centroids.shape[0]):
        s = sess.cluster_summary(c)
        assert isinstance(s, ClusterSummary)
        assert s.size >= 0
        sizes += s.size
        assert len(s.representative_docs) <= 5
        for t in s.top_terms:
            assert t in sess.result.topic_term_strings
        # representative docs really belong to the cluster
        for d in s.representative_docs:
            row = np.flatnonzero(sess.result.doc_ids == d)[0]
            assert sess.result.assignments[row] == c
    assert sizes == len(corpus)


def test_cluster_summary_bad_id(session):
    sess, _ = session
    with pytest.raises(KeyError):
        sess.cluster_summary(99)


def test_describe_selection_names_cluster_theme(session):
    sess, _ = session
    members = np.flatnonzero(sess.result.assignments == 1)
    sel = [int(sess.result.doc_ids[i]) for i in members[:8]]
    terms = sess.describe_selection(sel)
    assert terms
    # discriminating terms of cluster-1 docs include the cluster's own
    # strongest centroid dimension
    centroid = sess.result.centroids[1]
    top_dim = int(np.argmax(centroid))
    assert sess.result.topic_term_strings[top_dim] in terms


def test_describe_selection_empty_and_unknown(session):
    sess, _ = session
    assert sess.describe_selection([]) == []
    import pytest as _pytest

    with _pytest.raises(KeyError):
        sess.describe_selection([99999])


def test_describe_selection_whole_collection_is_neutral(session):
    sess, corpus = session
    all_ids = [int(d) for d in sess.result.doc_ids]
    terms = sess.describe_selection(all_ids)
    # mean(selection) == mean(all): no positive excess anywhere
    assert terms == []


def test_outliers_sorted_desc(session):
    sess, _ = session
    outs = sess.outliers(k=5)
    scores = [o.score for o in outs]
    assert scores == sorted(scores, reverse=True)
    assert all(o.score >= 0 for o in outs)
