"""Tests for GA whole-array convenience operations."""

import numpy as np
import pytest

from repro.ga import GlobalArray, IrregularBlockDistribution
from repro.runtime import Cluster


def test_fill_and_scale():
    def program(ctx):
        ga = GlobalArray.create(ctx, "a", (9,))
        ga.fill(2.0)
        ga.scale(3.0)
        return ga.get(0, 9)

    res = Cluster(3).run(program)
    for r in res.rank_results:
        np.testing.assert_allclose(r, 6.0)


def test_copy_from():
    def program(ctx):
        src = GlobalArray.create(ctx, "src", (6,), dtype=np.int64)
        dst = GlobalArray.create(ctx, "dst", (6,), dtype=np.float64)
        src.sync()
        if ctx.rank == 0:
            src.put(0, np.arange(6))
        src.sync()
        dst.copy_from(src)
        return dst.get(0, 6)

    res = Cluster(2).run(program)
    np.testing.assert_allclose(res.rank_results[0], np.arange(6.0))


def test_copy_from_shape_mismatch():
    def program(ctx):
        a = GlobalArray.create(ctx, "a", (4,))
        b = GlobalArray.create(ctx, "b", (5,))
        a.copy_from(b)

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)


def test_dot():
    def program(ctx):
        a = GlobalArray.create(ctx, "a", (8,))
        b = GlobalArray.create(ctx, "b", (8,))
        a.fill(2.0)
        b.fill(3.0)
        return a.dot(b)

    res = Cluster(4).run(program)
    assert res.rank_results == [48.0] * 4


def test_dot_2d():
    def program(ctx):
        a = GlobalArray.create(ctx, "a", (4, 3))
        a.fill(1.0)
        return a.dot(a)

    res = Cluster(2).run(program)
    assert res.rank_results == [12.0, 12.0]


def test_gather_scatter_elements():
    def program(ctx):
        ga = GlobalArray.create(ctx, "g", (10,), dtype=np.int64)
        ga.sync()
        if ctx.rank == 0:
            ga.scatter_elements(
                np.array([9, 0, 5]), np.array([90, 10, 50])
            )
        ga.sync()
        return ga.gather_elements(np.array([0, 5, 9, 1]))

    res = Cluster(3).run(program)
    for r in res.rank_results:
        np.testing.assert_array_equal(r, [10, 50, 90, 0])


def test_gather_elements_bounds():
    def program(ctx):
        ga = GlobalArray.create(ctx, "g", (4,))
        ga.gather_elements(np.array([4]))

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)


def test_scatter_elements_length_mismatch():
    def program(ctx):
        ga = GlobalArray.create(ctx, "g", (4,))
        ga.scatter_elements(np.array([0, 1]), np.array([1.0]))

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(1).run(program)


def test_irregular_distribution_array():
    def program(ctx):
        dist = IrregularBlockDistribution.from_counts([1, 4, 2])
        ga = GlobalArray.create(ctx, "i", (7,), dtype=np.int64, dist=dist)
        ga.sync()
        lo, hi = ga.local_range()
        ga.local_view()[:] = ctx.rank
        ga.sync()
        return (lo, hi, ga.get(0, 7))

    res = Cluster(3).run(program)
    assert [r[:2] for r in res.rank_results] == [(0, 1), (1, 5), (5, 7)]
    np.testing.assert_array_equal(
        res.rank_results[0][2], [0, 1, 1, 1, 1, 2, 2]
    )


def test_irregular_distribution_wrong_size():
    def program(ctx):
        dist = IrregularBlockDistribution.from_counts([1, 2])
        GlobalArray.create(ctx, "i", (7,), dist=dist)

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)
