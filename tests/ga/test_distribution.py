"""Tests for block distributions, incl. property-based coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import BlockDistribution
from repro.runtime import RuntimeMisuseError


def test_even_split():
    d = BlockDistribution(8, 4)
    assert [d.local_range(r) for r in range(4)] == [
        (0, 2),
        (2, 4),
        (4, 6),
        (6, 8),
    ]


def test_uneven_split_front_loaded():
    d = BlockDistribution(10, 4)
    assert [d.local_range(r) for r in range(4)] == [
        (0, 3),
        (3, 6),
        (6, 8),
        (8, 10),
    ]


def test_more_procs_than_rows():
    d = BlockDistribution(2, 5)
    counts = [d.local_count(r) for r in range(5)]
    assert counts == [1, 1, 0, 0, 0]


def test_empty_array():
    d = BlockDistribution(0, 3)
    assert all(d.local_count(r) == 0 for r in range(3))


def test_owner_errors():
    d = BlockDistribution(4, 2)
    with pytest.raises(RuntimeMisuseError):
        d.owner_of(4)
    with pytest.raises(RuntimeMisuseError):
        d.local_range(2)
    with pytest.raises(RuntimeMisuseError):
        d.owners_of_range(2, 1)


@settings(max_examples=200)
@given(
    nrows=st.integers(min_value=0, max_value=500),
    nprocs=st.integers(min_value=1, max_value=33),
)
def test_ranges_partition_rows(nrows, nprocs):
    """Local ranges tile [0, nrows) exactly, with balanced sizes."""
    d = BlockDistribution(nrows, nprocs)
    cursor = 0
    sizes = []
    for r in range(nprocs):
        lo, hi = d.local_range(r)
        assert lo == cursor
        assert hi >= lo
        cursor = hi
        sizes.append(hi - lo)
    assert cursor == nrows
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=200)
@given(
    nrows=st.integers(min_value=1, max_value=300),
    nprocs=st.integers(min_value=1, max_value=17),
    data=st.data(),
)
def test_owner_of_matches_local_range(nrows, nprocs, data):
    d = BlockDistribution(nrows, nprocs)
    row = data.draw(st.integers(min_value=0, max_value=nrows - 1))
    owner = d.owner_of(row)
    lo, hi = d.local_range(owner)
    assert lo <= row < hi


@settings(max_examples=100)
@given(
    nrows=st.integers(min_value=1, max_value=200),
    nprocs=st.integers(min_value=1, max_value=9),
    data=st.data(),
)
def test_owners_of_range_covers_exactly(nrows, nprocs, data):
    d = BlockDistribution(nrows, nprocs)
    lo = data.draw(st.integers(min_value=0, max_value=nrows))
    hi = data.draw(st.integers(min_value=lo, max_value=nrows))
    parts = d.owners_of_range(lo, hi)
    cursor = lo
    for rank, sub_lo, sub_hi in parts:
        assert sub_lo == cursor
        assert sub_lo < sub_hi
        assert d.owner_of(sub_lo) == rank
        assert d.owner_of(sub_hi - 1) == rank
        cursor = sub_hi
    assert cursor == hi
