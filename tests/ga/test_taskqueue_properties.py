"""Property tests for the shared task queue's hand-out guarantees.

Exactly-once without fault injection (hypothesis over arbitrary task
counts and chunk sizes), and no-task-lost (at-least-once with leases)
when a claimant fail-stop crashes mid-chunk.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import SharedTaskQueue
from repro.runtime import Cluster, CrashFault, FaultPlan


def _drain(ctx, counts, chunk, work_s=1e-4):
    q = SharedTaskQueue(ctx, "q", counts, chunk=chunk)
    claimed = []
    while True:
        got = q.next_chunk()
        if got is None:
            break
        lo, hi = got
        ctx.charge(work_s * (hi - lo))
        claimed.extend(range(lo, hi))
        q.complete(lo, hi)
    ctx.comm.barrier()
    return claimed


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(st.integers(0, 12), min_size=1, max_size=6),
    chunk=st.integers(1, 5),
)
def test_every_task_handed_out_exactly_once(counts, chunk):
    def program(ctx):
        return _drain(ctx, counts, chunk)

    res = Cluster(len(counts)).run(program)
    all_tasks = sorted(t for claims in res.rank_results for t in claims)
    assert all_tasks == list(range(sum(counts)))


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(st.integers(0, 12), min_size=1, max_size=6),
    chunk=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_exactly_once_is_schedule_independent(counts, chunk, seed):
    """Per-rank claim costs perturb the interleaving, never the union."""

    def program(ctx):
        # deterministic per-rank work skew derived from the seed
        skew = 1e-5 * ((seed + ctx.rank * 13) % 7 + 1)
        return _drain(ctx, counts, chunk, work_s=skew)

    res = Cluster(len(counts)).run(program)
    all_tasks = sorted(t for claims in res.rank_results for t in claims)
    assert all_tasks == list(range(sum(counts)))


@settings(max_examples=20, deadline=None)
@given(
    ntasks=st.integers(1, 30),
    chunk=st.integers(1, 4),
    victim=st.integers(0, 2),
    at_call=st.integers(5, 14),
)
def test_no_task_lost_when_claimant_crashes(ntasks, chunk, victim, at_call):
    """A crashed rank's leased chunks are reclaimed by survivors.

    Results are recorded in globally-visible state *before*
    ``complete`` (as the engine does), so a task completed by the
    victim stays done; a chunk the victim claimed but never completed
    is orphaned mid-flight and must be re-issued to a survivor.  Every
    task ends up processed at least once, none more than twice.
    """
    nprocs = 3
    counts = [ntasks, 0, 0]
    plan = FaultPlan(
        faults=(CrashFault(rank=victim, at_call=at_call),),
        comm_timeout_s=5.0,
        detection_latency_s=0.0,
    )

    def program(ctx):
        q = SharedTaskQueue(ctx, "q", counts, chunk=chunk)
        log = ctx.world.registry.setdefault("done-log", [])
        saw_crash = False
        idle_rounds = 0
        while True:
            got = q.next_chunk()
            if got is None:
                if saw_crash or idle_rounds > 50:
                    # drained (post-reclamation), or no crash happened;
                    # return the shared log so the driver can read it
                    return log
                # idle: burn virtual time so the failure detector can
                # report a death, then retry the queue for orphans
                ctx.charge(1e-3)
                idle_rounds += 1
                saw_crash = bool(ctx.failed_ranks())
                continue
            lo, hi = got
            ctx.charge(1e-4 * (hi - lo))
            # a sync point between claim and completion: the victim
            # dies somewhere in the loop, orphaning its live lease
            ctx.rpc(ctx.rank, lambda: None)
            log.extend(range(lo, hi))  # durable, pre-completion record
            q.complete(lo, hi)

    res = Cluster(nprocs, faults=plan).run(program, raise_on_failure=False)
    logs = [r for r in res.rank_results if r is not None]
    assert logs, "at least one rank must survive and finish"
    done = sorted(logs[0])  # every survivor returned the same object
    # every task processed at least once, despite the crash ...
    assert set(done) == set(range(ntasks))
    # ... and none more than twice (processed once orphaned, once
    # after lease reclamation)
    for t in set(done):
        assert done.count(t) <= 2
