"""Tests for the distributed vocabulary hashmap."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import GlobalHashMap, term_owner
from repro.runtime import Cluster


def test_ids_unique_and_stable():
    words = [f"word{i}" for i in range(50)]

    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        # overlapping insertions from all ranks
        mine = {w: hm.get_or_insert(w) for w in words}
        ctx.comm.barrier()
        again = {w: hm.get_or_insert(w) for w in words}
        return (mine, again)

    res = Cluster(4).run(program)
    ids0 = res.rank_results[0][0]
    assert len(set(ids0.values())) == len(words)  # all unique
    for mine, again in res.rank_results:
        assert mine == ids0  # every rank agrees
        assert again == mine  # reinsertion is idempotent


def test_lookup_found_and_missing():
    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        if ctx.rank == 0:
            gid = hm.get_or_insert("alpha")
        ctx.comm.barrier()
        return (hm.lookup("alpha"), hm.lookup("nope"))

    res = Cluster(3).run(program)
    for found, missing in res.rank_results:
        assert found is not None
        assert missing is None


def test_global_size_counts_once():
    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        for w in ["a", "b", "c"]:
            hm.get_or_insert(w)  # same three words from every rank
        hm.get_or_insert(f"rank-only-{ctx.rank}")
        ctx.comm.barrier()
        return hm.global_size()

    res = Cluster(4).run(program)
    assert res.rank_results == [3 + 4] * 4


def test_local_items_partition_by_owner():
    words = [f"t{i}" for i in range(30)]

    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        for w in words:
            hm.get_or_insert(w)
        ctx.comm.barrier()
        return hm.local_items()

    res = Cluster(3).run(program)
    seen = {}
    for rank, items in enumerate(res.rank_results):
        for term, gid in items:
            assert term_owner(term, 3) == rank
            assert gid % 3 == rank  # strided ID encodes the owner
            assert term not in seen
            seen[term] = gid
    assert set(seen) == set(words)


def test_all_items_collective():
    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        hm.get_or_insert(f"w{ctx.rank}")
        ctx.comm.barrier()
        return hm.all_items()

    res = Cluster(3).run(program)
    assert set(res.rank_results[0]) == {"w0", "w1", "w2"}
    assert res.rank_results[0] == res.rank_results[1] == res.rank_results[2]


def test_remote_insert_costs_more_than_local():
    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        # find a term owned locally and one owned remotely
        local = next(
            f"l{i}" for i in range(1000) if term_owner(f"l{i}", 2) == ctx.rank
        )
        remote = next(
            f"r{i}" for i in range(1000) if term_owner(f"r{i}", 2) != ctx.rank
        )
        t0 = ctx.now
        hm.get_or_insert(local)
        local_cost = ctx.now - t0
        t0 = ctx.now
        hm.get_or_insert(remote)
        remote_cost = ctx.now - t0
        return (local_cost, remote_cost)

    res = Cluster(2).run(program)
    for local_cost, remote_cost in res.rank_results:
        assert remote_cost > local_cost > 0.0


@settings(max_examples=30, deadline=None)
@given(
    terms=st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=40,
    ),
    nprocs=st.integers(min_value=1, max_value=5),
)
def test_property_unique_consistent_ids(terms, nprocs):
    """All ranks agree on IDs; IDs are unique per distinct term."""

    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        # each rank inserts a rank-dependent shuffle of the same terms
        order = terms[ctx.rank :] + terms[: ctx.rank]
        out = {t: hm.get_or_insert(t) for t in order}
        ctx.comm.barrier()
        return out

    res = Cluster(nprocs).run(program)
    base = res.rank_results[0]
    distinct = set(terms)
    assert len(set(base.values())) == len(distinct)
    for m in res.rank_results[1:]:
        assert m == base
