"""Tests for the shared task queue / dynamic load balancer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import SharedTaskQueue
from repro.runtime import Cluster


def _drain(ctx, counts, chunk):
    q = SharedTaskQueue(ctx, "q", counts, chunk=chunk)
    claimed = []
    while True:
        got = q.next_chunk()
        if got is None:
            break
        lo, hi = got
        claimed.extend(range(lo, hi))
    ctx.comm.barrier()
    return claimed


def test_every_task_claimed_exactly_once():
    def program(ctx):
        return _drain(ctx, [5, 7, 0, 3], chunk=2)

    res = Cluster(4).run(program)
    all_tasks = sorted(t for claims in res.rank_results for t in claims)
    assert all_tasks == list(range(15))


def test_own_tasks_claimed_first():
    def program(ctx):
        q = SharedTaskQueue(ctx, "q", [4, 4], chunk=1)
        first = q.next_chunk()
        ctx.comm.barrier()
        return first

    res = Cluster(2).run(program)
    lo0, _ = res.rank_results[0]
    lo1, _ = res.rank_results[1]
    assert 0 <= lo0 < 4  # rank 0's own range
    assert 4 <= lo1 < 8  # rank 1's own range


def test_idle_rank_steals():
    """A rank with no tasks of its own still gets work."""

    def program(ctx):
        claims = _drain(ctx, [20, 0], chunk=3)
        return claims

    res = Cluster(2).run(program)
    # rank 1 owned nothing but must have stolen something: rank 0 and
    # rank 1 interleave claims in virtual time, so both make progress.
    assert len(res.rank_results[1]) > 0
    both = sorted(res.rank_results[0] + res.rank_results[1])
    assert both == list(range(20))


def test_chunking_respects_boundaries():
    def program(ctx):
        q = SharedTaskQueue(ctx, "q", [5, 0, 0], chunk=4)
        if ctx.rank == 0:
            chunks = []
            while (got := q.next_chunk()) is not None:
                chunks.append(got)
            ctx.comm.barrier()
            return chunks
        ctx.comm.barrier()
        return None

    res = Cluster(3).run(program)
    assert res.rank_results[0] == [(0, 4), (4, 5)]


def test_owner_of_task():
    def program(ctx):
        q = SharedTaskQueue(ctx, "q", [3, 0, 4], chunk=1)
        ctx.comm.barrier()
        return [q.owner_of_task(t) for t in range(7)]

    res = Cluster(3).run(program)
    assert res.rank_results[0] == [0, 0, 0, 2, 2, 2, 2]


def test_empty_queue():
    def program(ctx):
        q = SharedTaskQueue(ctx, "q", [0, 0], chunk=1)
        return q.next_chunk()

    res = Cluster(2).run(program)
    assert res.rank_results == [None, None]


@settings(max_examples=25, deadline=None)
@given(
    counts=st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=6
    ),
    chunk=st.integers(min_value=1, max_value=7),
)
def test_property_exactly_once_any_shape(counts, chunk):
    nprocs = len(counts)

    def program(ctx):
        return _drain(ctx, counts, chunk)

    res = Cluster(nprocs).run(program)
    all_tasks = sorted(t for claims in res.rank_results for t in claims)
    assert all_tasks == list(range(sum(counts)))
