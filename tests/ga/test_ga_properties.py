"""Property-based tests of GlobalArray semantics.

Random sequences of *commutative* operations (accumulate and
fetch-and-increment) from random ranks must leave the array in the
state an order-independent shadow computation predicts, for any
processor count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import GlobalArray
from repro.runtime import Cluster


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=5),
    size=st.integers(min_value=1, max_value=12),
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # issuing rank mod
            st.integers(min_value=0, max_value=11),  # row mod
            st.integers(min_value=-5, max_value=5),  # value
        ),
        max_size=40,
    ),
)
def test_accumulate_matches_shadow(nprocs, size, ops):
    shadow = np.zeros(size)
    plan = [[] for _ in range(nprocs)]
    for who, row, val in ops:
        r = who % nprocs
        i = row % size
        plan[r].append((i, float(val)))
        shadow[i] += val

    def program(ctx):
        ga = GlobalArray.create(ctx, "acc", (size,))
        ga.sync()
        for i, val in plan[ctx.rank]:
            ga.acc(i, np.array([val]))
        ga.sync()
        return ga.get(0, size)

    res = Cluster(nprocs).run(program)
    for got in res.rank_results:
        np.testing.assert_allclose(got, shadow)


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=5),
    counts=st.lists(
        st.integers(min_value=0, max_value=15), min_size=1, max_size=5
    ),
)
def test_read_inc_tickets_partition_range(nprocs, counts):
    """Per-rank read_inc draws partition [0, total) with no gaps."""
    per_rank = [counts[r % len(counts)] for r in range(nprocs)]
    total = sum(per_rank)

    def program(ctx):
        ga = GlobalArray.create(ctx, "ctr", (1,), dtype=np.int64)
        ga.sync()
        got = [ga.read_inc(0) for _ in range(per_rank[ctx.rank])]
        ga.sync()
        return got

    res = Cluster(nprocs).run(program)
    tickets = sorted(t for got in res.rank_results for t in got)
    assert tickets == list(range(total))


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=4),
    size=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=100),
)
def test_disjoint_puts_compose(nprocs, size, seed):
    """Each rank puts into its own block; the result tiles exactly."""
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, size=size).astype(np.float64)

    def program(ctx):
        ga = GlobalArray.create(ctx, "p", (size,))
        ga.sync()
        lo, hi = ga.local_range()
        if hi > lo:
            ga.put(lo, data[lo:hi])
        ga.sync()
        return ga.get(0, size)

    res = Cluster(nprocs).run(program)
    for got in res.rank_results:
        np.testing.assert_allclose(got, data)
