"""Tests for GlobalArray one-sided semantics and cost accounting."""

import numpy as np
import pytest

from repro.ga import GlobalArray
from repro.runtime import Cluster


def test_create_and_local_views_tile_array():
    def program(ctx):
        ga = GlobalArray.create(ctx, "a", (10, 3))
        lo, hi = ga.local_range()
        ga.local_view()[:] = ctx.rank
        ga.sync()
        full = ga.get(0, 10)
        return (lo, hi, full)

    res = Cluster(3).run(program)
    full = res.rank_results[0][2]
    # every row filled by its owner
    for r, (lo, hi, _) in enumerate(res.rank_results):
        assert np.all(full[lo:hi] == r)


def test_put_get_roundtrip_across_ranks():
    def program(ctx):
        ga = GlobalArray.create(ctx, "b", (8,), dtype=np.int64)
        ga.sync()
        if ctx.rank == 0:
            ga.put(0, np.arange(8))
        ga.sync()
        return ga.get(2, 6)

    res = Cluster(4).run(program)
    for r in res.rank_results:
        np.testing.assert_array_equal(r, [2, 3, 4, 5])


def test_acc_accumulates_from_all_ranks():
    def program(ctx):
        ga = GlobalArray.create(ctx, "c", (4,))
        ga.sync()
        ga.acc(0, np.ones(4))
        ga.sync()
        return ga.get(0, 4)

    res = Cluster(5).run(program)
    for r in res.rank_results:
        np.testing.assert_array_equal(r, [5.0] * 4)


def test_acc_with_alpha():
    def program(ctx):
        ga = GlobalArray.create(ctx, "d", (2,))
        ga.sync()
        ga.acc(0, np.ones(2), alpha=2.0)
        ga.sync()
        return ga.get(0, 2)

    res = Cluster(3).run(program)
    np.testing.assert_array_equal(res.rank_results[0], [6.0, 6.0])


def test_read_inc_hands_out_unique_values():
    def program(ctx):
        ga = GlobalArray.create(ctx, "ctr", (1,), dtype=np.int64)
        ga.sync()
        got = [ga.read_inc(0) for _ in range(10)]
        ga.sync()
        final = ga.get(0, 1)[0]
        return (got, int(final))

    res = Cluster(4).run(program)
    all_vals = [v for got, _ in res.rank_results for v in got]
    assert sorted(all_vals) == list(range(40))
    assert all(final == 40 for _, final in res.rank_results)


def test_read_inc_requires_integer_array():
    def program(ctx):
        ga = GlobalArray.create(ctx, "f", (1,), dtype=np.float64)
        ga.read_inc(0)

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)


def test_remote_access_costs_more_than_local():
    def program(ctx):
        ga = GlobalArray.create(ctx, "g", (2, 1000))
        ga.sync()
        lo, _ = ga.local_range()
        t0 = ctx.now
        ga.get(lo, lo + 1)  # local row
        local_cost = ctx.now - t0
        other = (lo + 1) % 2
        t0 = ctx.now
        ga.get(other, other + 1)  # remote row
        remote_cost = ctx.now - t0
        return (local_cost, remote_cost)

    res = Cluster(2).run(program)
    for local_cost, remote_cost in res.rank_results:
        assert remote_cost > local_cost > 0.0


def test_shape_mismatch_detected():
    def program(ctx):
        shape = (4,) if ctx.rank == 0 else (5,)
        GlobalArray.create(ctx, "h", shape)

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)


def test_out_of_bounds_rejected():
    def program(ctx):
        ga = GlobalArray.create(ctx, "i", (4,))
        ga.get(3, 9)

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)


def test_destroy_removes_registry_entry():
    def program(ctx):
        ga = GlobalArray.create(ctx, "j", (4,))
        ga.sync()
        ga.destroy()
        ctx.comm.barrier()
        return "ga:j" in ctx.world.registry

    res = Cluster(2).run(program)
    assert res.rank_results == [False, False]


def test_get_returns_copy():
    def program(ctx):
        ga = GlobalArray.create(ctx, "k", (4,))
        ga.sync()
        block = ga.get(0, 4)
        block += 100  # must not write through
        ga.sync()
        return float(ga.get(0, 1)[0])

    res = Cluster(2).run(program)
    assert res.rank_results == [0.0, 0.0]
