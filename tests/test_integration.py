"""End-to-end integration tests across every subsystem.

Source files on disk (in the paper's corpora formats) -> parallel
engine on a simulated cluster -> persisted results -> interactive
analysis -> ThemeView export.
"""

import json

import numpy as np
import pytest

from repro.analysis import AnalysisSession
from repro.datasets import generate_pubmed, generate_trec
from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
    load_result,
    save_result,
)
from repro.text import (
    merge_corpora,
    read_source,
    write_medline,
    write_trec_sgml,
)
from repro.viz import (
    build_themeview,
    export_json,
    labels_from_result,
    render_ascii,
    write_pgm,
)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Full pipeline run shared by the assertions below."""
    root = tmp_path_factory.mktemp("integration")

    # 1. realistic source files on disk
    med = generate_pubmed(70_000, seed=23, n_themes=4)
    gov = generate_trec(70_000, seed=23, n_themes=4)
    write_medline(med, root / "pubmed.med")
    write_trec_sgml(gov, root / "gov2.trec")

    # 2. scan the sources back and merge
    sources = [read_source(root / "pubmed.med"), read_source(root / "gov2.trec")]
    corpus = merge_corpora("mixed", sources)

    # 3. parallel engine
    cfg = EngineConfig(n_major_terms=150, n_clusters=5, kmeans_sample=48)
    result = ParallelTextEngine(6, config=cfg).run(corpus)

    # 4. persist + reload
    save_result(result, root / "result.npz")
    loaded = load_result(root / "result.npz")

    # 5. viz exports
    view = build_themeview(
        loaded.coords,
        loaded.assignments,
        cluster_labels=labels_from_result(loaded),
        grid=32,
    )
    write_pgm(view, root / "tv.pgm")
    export_json(view, root / "tv.json")

    return {
        "root": root,
        "corpus": corpus,
        "cfg": cfg,
        "result": result,
        "loaded": loaded,
        "view": view,
    }


def test_sources_roundtrip_preserved_documents(pipeline):
    corpus = pipeline["corpus"]
    assert len(corpus) > 30
    # mixed corpus carries both field families
    names = corpus.field_names
    assert "abstract" in names  # pubmed part
    assert "url" in names or "body" in names  # trec part


def test_engine_output_complete(pipeline):
    result = pipeline["result"]
    corpus = pipeline["corpus"]
    assert result.n_docs == len(corpus)
    assert result.coords.shape == (len(corpus), 2)
    assert result.n_topics >= 2
    assert np.isfinite(result.coords).all()
    assert result.timings.virtual


def test_parallel_equals_serial_on_mixed_sources(pipeline):
    s = SerialTextEngine(pipeline["cfg"]).run(pipeline["corpus"])
    p = pipeline["result"]
    assert p.major_term_strings == s.major_term_strings
    np.testing.assert_array_equal(p.association, s.association)
    np.testing.assert_allclose(p.coords, s.coords, atol=1e-7)


def test_persisted_result_identical(pipeline):
    result, loaded = pipeline["result"], pipeline["loaded"]
    np.testing.assert_array_equal(loaded.signatures, result.signatures)
    assert loaded.major_terms == result.major_terms


def test_analysis_over_loaded_result(pipeline):
    sess = AnalysisSession(pipeline["loaded"])
    doc = int(pipeline["loaded"].doc_ids[0])
    assert sess.similar_documents(doc, k=3)
    summary = sess.cluster_summary(0)
    assert summary.size >= 0
    term = pipeline["loaded"].topic_term_strings[0]
    assert sess.query([term], k=3)


def test_viz_exports_valid(pipeline):
    root = pipeline["root"]
    assert (root / "tv.pgm").read_bytes().startswith(b"P5")
    obj = json.loads((root / "tv.json").read_text())
    assert obj["grid"] == 32
    text = render_ascii(pipeline["view"])
    assert len(text.splitlines()) >= 32


def test_chrome_trace_of_engine_run(pipeline, tmp_path):
    from repro.engine.parallel import _engine_rank_main
    from repro.runtime import Cluster, MachineSpec
    from repro.text import partition_documents

    corpus = pipeline["corpus"]
    parts = partition_documents(corpus.documents, 3)
    sim = Cluster(3, MachineSpec()).run(
        _engine_rank_main, parts, corpus.field_names, pipeline["cfg"]
    )
    path = tmp_path / "trace.json"
    sim.tracer.write_chrome_trace(path)
    events = json.loads(path.read_text())
    names = {e["name"] for e in events}
    assert {"scan", "index", "topic", "am", "docvec", "clusproj"} <= names
