"""PCA projection tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.project import fit_pca


def test_recovers_dominant_direction():
    rng = np.random.default_rng(0)
    t = rng.normal(size=200)
    pts = np.outer(t, [3.0, 4.0, 0.0]) + rng.normal(scale=0.01, size=(200, 3))
    tr = fit_pca(pts, dim=2)
    # first component aligned with (3,4,0)/5
    c0 = tr.components[:, 0]
    assert abs(abs(c0 @ np.array([0.6, 0.8, 0.0])) - 1.0) < 1e-3
    assert tr.explained_variance[0] > 10 * tr.explained_variance[1]


def test_components_orthonormal():
    rng = np.random.default_rng(1)
    pts = rng.random((20, 6))
    tr = fit_pca(pts, dim=3)
    gram = tr.components.T @ tr.components
    np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)


def test_sign_deterministic():
    rng = np.random.default_rng(2)
    pts = rng.random((15, 4))
    t1 = fit_pca(pts, dim=2)
    t2 = fit_pca(pts.copy(), dim=2)
    np.testing.assert_array_equal(t1.components, t2.components)
    # largest-|entry| of each component is positive
    for j in range(2):
        col = t1.components[:, j]
        assert col[np.argmax(np.abs(col))] > 0


def test_projection_centers_data():
    rng = np.random.default_rng(3)
    pts = rng.random((50, 5)) + 10.0
    tr = fit_pca(pts, dim=2)
    coords = tr.project(pts)
    np.testing.assert_allclose(coords.mean(axis=0), 0.0, atol=1e-9)


def test_dim_exceeding_rank_pads_zero():
    pts = np.array([[0.0], [1.0], [2.0]])  # 1-D data
    tr = fit_pca(pts, dim=2)
    coords = tr.project(pts)
    assert coords.shape == (3, 2)
    np.testing.assert_allclose(coords[:, 1], 0.0)
    assert tr.explained_variance[1] == 0.0


def test_single_anchor():
    tr = fit_pca(np.array([[1.0, 2.0, 3.0]]), dim=2)
    coords = tr.project(np.array([[1.0, 2.0, 3.0]]))
    np.testing.assert_allclose(coords, 0.0)


def test_project_single_point_shape():
    rng = np.random.default_rng(4)
    tr = fit_pca(rng.random((5, 3)), dim=2)
    assert tr.project(np.ones(3)).shape == (1, 2)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        fit_pca(np.empty((0, 3)), dim=2)
    with pytest.raises(ValueError):
        fit_pca(np.ones((3, 3)), dim=0)


@settings(max_examples=60)
@given(
    n=st.integers(min_value=2, max_value=30),
    m=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_projection_preserves_total_variance_bound(n, m, seed):
    """Variance captured by the projection never exceeds the total."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, m))
    dim = min(2, m)
    tr = fit_pca(pts, dim=dim)
    coords = tr.project(pts)
    total_var = np.var(pts, axis=0, ddof=1).sum()
    proj_var = np.var(coords, axis=0, ddof=1).sum()
    assert proj_var <= total_var + 1e-9
