"""Generational store layer: manifests, publish protocol, corruption."""

import json
import shutil

import pytest

from repro.ingest.delta import append_generation, build_delta
from repro.serve.store import (
    CURRENT_FILE,
    ShardFormatError,
    current_generation,
    generation_dir,
    load_manifest,
    load_manifest_generation,
    verify_store,
)
from tests.ingest.conftest import ENGINE_CONFIG


def _publish(result, store, batches, n=1):
    manifest = None
    for corpus, _arrival in batches[:n]:
        delta = build_delta(
            result,
            corpus.documents,
            tokenizer_config=ENGINE_CONFIG.tokenizer,
        )
        manifest = append_generation(store, [delta])
    return manifest


def test_append_generation_manifest(result, make_store, feed_batches):
    store = make_store(2)
    base = load_manifest(store)
    assert base.generation == 0
    assert current_generation(store) == 0

    manifest = _publish(result, store, feed_batches, n=2)
    assert current_generation(store) == 2
    assert manifest.generation == 2
    assert len(manifest.deltas) == 2
    n_new = sum(len(c.documents) for c, _ in feed_batches[:2])
    assert manifest.n_docs == base.n_docs + n_new
    assert manifest.ingested_batches == 2
    # deltas continue the global row space and round-robin owners
    assert manifest.deltas[0].row_lo == base.n_docs
    assert manifest.deltas[1].row_lo == manifest.deltas[0].row_hi
    assert [d.owner for d in manifest.deltas] == [0, 1]
    # base shards untouched
    assert manifest.shards == base.shards


def test_shard_of_row_covers_deltas(result, make_store, feed_batches):
    store = make_store(2)
    manifest = _publish(result, store, feed_batches, n=2)
    base_docs = manifest.base_n_docs
    assert manifest.shard_of_row(0) == 0
    for d in manifest.deltas:
        assert manifest.shard_of_row(d.row_lo) == d.owner
    with pytest.raises(KeyError):
        manifest.shard_of_row(manifest.n_docs)
    assert base_docs < manifest.n_docs


def test_old_generations_stay_readable(result, make_store, feed_batches):
    store = make_store(2)
    _publish(result, store, feed_batches, n=2)
    # every published generation remains individually loadable
    for k in (0, 1, 2):
        m = load_manifest_generation(store, k)
        assert m.generation == k
        assert len(m.deltas) == k


def test_verify_store_ok(result, make_store, feed_batches):
    store = make_store(2)
    _publish(result, store, feed_batches, n=1)
    manifest = verify_store(store)
    assert manifest.generation == 1


def test_truncated_delta_container(result, make_store, feed_batches):
    store = make_store(2)
    manifest = _publish(result, store, feed_batches, n=1)
    victim = store / manifest.deltas[0].file
    data = victim.read_bytes()
    victim.write_bytes(data[: len(data) // 2])
    with pytest.raises(ShardFormatError) as err:
        verify_store(store)
    assert err.value.path == str(victim)


def test_missing_generation_dir(result, make_store, feed_batches):
    store = make_store(2)
    _publish(result, store, feed_batches, n=1)
    shutil.rmtree(store / generation_dir(1))
    with pytest.raises(ShardFormatError) as err:
        verify_store(store)
    assert generation_dir(1) in err.value.path


def test_stale_generation_pointer(result, make_store, feed_batches):
    store = make_store(2)
    _publish(result, store, feed_batches, n=1)
    current = json.loads((store / CURRENT_FILE).read_text())
    current["generation"] = 99
    current["manifest"] = "manifest-00099.json"
    (store / CURRENT_FILE).write_text(json.dumps(current))
    with pytest.raises(ShardFormatError, match="stale generation"):
        load_manifest(store)
    with pytest.raises(ShardFormatError):
        verify_store(store)
