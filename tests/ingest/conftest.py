"""Shared fixtures for the live-ingest tests.

One small serial engine run is shared session-wide; each test builds
its own store copy because ingest mutates the store directory.  The
feed continues the base corpus's seeded document stream (same seed +
``skip_docs``) so projected signatures are non-null.
"""

import pytest

from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.ingest.feed import FeedConfig, FeedSource
from repro.serve.store import build_shards

ENGINE_CONFIG = EngineConfig(n_major_terms=200, n_clusters=5, chunk_docs=8)


@pytest.fixture(scope="session")
def corpus():
    return generate_pubmed(60_000, seed=4, n_themes=4)


@pytest.fixture(scope="session")
def result(corpus):
    return SerialTextEngine(ENGINE_CONFIG).run(corpus)


@pytest.fixture(scope="session")
def postings(corpus, result):
    return build_term_postings(corpus, result, ENGINE_CONFIG.tokenizer)


@pytest.fixture(scope="session")
def feed_batches(corpus, result):
    """Three 6-doc batches continuing the corpus's seeded stream."""
    feed = FeedSource(
        FeedConfig(
            dataset="pubmed",
            batch_docs=6,
            n_batches=3,
            seed=4,
            themes=4,
            skip_docs=len(corpus.documents),
            start_doc_id=int(result.doc_ids[-1]) + 1,
            mean_interarrival_s=0.05,
        )
    )
    return feed.batches()


@pytest.fixture
def make_store(result, postings, tmp_path):
    """Build a fresh (mutable) store at a given shard count."""

    def _build(nshards, tag="store"):
        out = tmp_path / f"{tag}-{nshards}"
        build_shards(result, out, nshards, postings=postings)
        return out

    return _build
