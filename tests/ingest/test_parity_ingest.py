"""The subsystem's acceptance criterion: churn queries are bit-equal
to the equivalent static store at each generation.

For every response a live-ingest session produced, rebuilding a fresh
static store over the base corpus plus the batches that generation had
absorbed and asking the same query must return byte-identical
canonical JSON -- at every shard count.  Compaction must likewise be
invisible: a compacted store's shard containers hold exactly the
arrays a fresh ``build_shards`` over the grown collection writes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.termindex import build_batch_postings, concat_postings
from repro.ingest.compact import (
    CompactionPolicy,
    compact_store,
)
from repro.ingest.delta import (
    append_generation,
    build_delta,
    extend_result,
)
from repro.ingest.live import IngestConfig, IngestPlan, serve_live
from repro.serve.broker import BrokerConfig, query_store
from repro.serve.query import canonical_response
from repro.serve.store import (
    Container,
    build_shards,
    load_manifest,
    load_manifest_generation,
)
from repro.serve.workload import generate_workload, store_profile
from repro.text.documents import Corpus
from tests.ingest.conftest import ENGINE_CONFIG

LAYOUTS = (1, 2, 4)


def _static_equivalent(result, postings, batches, n_batches, out, p):
    """Fresh static store over base + the first ``n_batches`` batches."""
    corpora = [c for c, _ in batches[:n_batches]]
    grown = extend_result(
        result, corpora, tokenizer_config=ENGINE_CONFIG.tokenizer
    )
    grown_postings = concat_postings(
        [postings]
        + [
            build_batch_postings(
                c.documents, result, ENGINE_CONFIG.tokenizer
            )
            for c in corpora
        ]
    )
    build_shards(grown, out, p, postings=grown_postings)
    return out


@pytest.mark.parametrize("nshards", LAYOUTS)
def test_churn_parity_per_generation(
    nshards, result, postings, make_store, feed_batches, tmp_path
):
    store = make_store(nshards)
    scripts = generate_workload(
        store_profile(store), n_clients=2, queries_per_client=10, seed=7
    )
    plan = IngestPlan(
        result=result,
        batches=list(feed_batches),
        config=IngestConfig(
            compaction=CompactionPolicy(max_deltas=2)
        ),
        tokenizer_config=ENGINE_CONFIG.tokenizer,
    )
    report = serve_live(
        store, scripts, plan, config=BrokerConfig(max_inflight=64)
    )
    assert report.served == 20 and not report.rejected
    gens = {r["generation"] for r in report.responses}
    assert len(gens) > 1  # the session must straddle a swap

    statics = {}
    for g in sorted(gens):
        n_batches = load_manifest_generation(store, g).ingested_batches
        statics[g] = _static_equivalent(
            result,
            postings,
            feed_batches,
            n_batches,
            tmp_path / f"static-g{g}",
            nshards,
        )
    for r in report.responses:
        query = scripts[r["client"]].queries[r["seq"]]
        expect = query_store(statics[r["generation"]], query)
        assert canonical_response(r["response"]) == canonical_response(
            expect
        )


@pytest.mark.parametrize("nshards", (1, 2))
def test_compaction_is_bit_invisible(
    nshards, result, postings, make_store, feed_batches, tmp_path
):
    """Compacted shard containers == a fresh build's, array for array."""
    store = make_store(nshards)
    for corpus, _ in feed_batches:
        delta = build_delta(
            result,
            corpus.documents,
            tokenizer_config=ENGINE_CONFIG.tokenizer,
        )
        append_generation(store, [delta])
    manifest = compact_store(store)
    assert not manifest.deltas

    fresh = _static_equivalent(
        result,
        postings,
        feed_batches,
        len(feed_batches),
        tmp_path / "fresh",
        nshards,
    )
    fresh_manifest = load_manifest(fresh)
    assert fresh_manifest.n_docs == manifest.n_docs
    for mine, theirs in zip(manifest.shards, fresh_manifest.shards):
        assert (mine.row_lo, mine.row_hi) == (theirs.row_lo, theirs.row_hi)
        a = Container(store / mine.file)
        b = Container(fresh / theirs.file)
        assert a.section_names == b.section_names
        for name in a.section_names:
            assert np.array_equal(a.load(name), b.load(name)), name


@settings(max_examples=8, deadline=None)
@given(
    nshards=st.sampled_from((1, 2, 3)),
    cuts=st.lists(
        st.integers(min_value=1, max_value=17),
        max_size=3,
        unique=True,
    ),
)
def test_any_batching_compacts_to_fresh_build(
    nshards, cuts, result, postings, feed_batches, tmp_path_factory
):
    """However the same docs are batched, compaction lands on the
    identical store as one fresh build over the concatenation."""
    docs = [d for c, _ in feed_batches for d in c.documents]
    bounds = [0] + sorted(cuts) + [len(docs)]
    batches = [
        (Corpus(name=f"b{i}", documents=docs[lo:hi]), float(i))
        for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
        if hi > lo
    ]
    tmp = tmp_path_factory.mktemp("hyp")
    store = tmp / "store"
    build_shards(result, store, nshards, postings=postings)
    for corpus, _ in batches:
        delta = build_delta(
            result,
            corpus.documents,
            tokenizer_config=ENGINE_CONFIG.tokenizer,
        )
        append_generation(store, [delta])
    manifest = compact_store(store)

    fresh = _static_equivalent(
        result, postings, batches, len(batches), tmp / "fresh", nshards
    )
    fresh_manifest = load_manifest(fresh)
    assert fresh_manifest.n_docs == manifest.n_docs
    for mine, theirs in zip(manifest.shards, fresh_manifest.shards):
        a = Container(store / mine.file)
        b = Container(fresh / theirs.file)
        for name in a.section_names:
            assert np.array_equal(a.load(name), b.load(name)), name
