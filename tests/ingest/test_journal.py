"""Ingest journal: append-only, replayable, validated on open."""

import json

import pytest

from repro.ingest.journal import JOURNAL_META, IngestJournal
from repro.serve.store import ShardFormatError


def _corpus_slice(corpus, lo, hi, name="slice"):
    from repro.text.documents import Corpus

    return Corpus(name=name, documents=corpus.documents[lo:hi])


def test_round_trip(tmp_path, corpus):
    path = tmp_path / "journal"
    journal = IngestJournal.create(path, corpus_name="pubmed")
    journal.append(_corpus_slice(corpus, 0, 4, "b0"), 1.5)
    journal.append(_corpus_slice(corpus, 4, 7, "b1"), 3.25)

    reopened = IngestJournal.open(path)
    assert len(reopened) == 2
    assert reopened.n_docs == 7
    assert reopened.corpus_name == "pubmed"
    replayed = reopened.replay()
    assert [arrival for _, arrival in replayed] == [1.5, 3.25]
    first = replayed[0][0]
    assert [d.doc_id for d in first.documents] == [
        d.doc_id for d in corpus.documents[:4]
    ]
    assert first.documents[0].fields == corpus.documents[0].fields


def test_read_single_batch(tmp_path, corpus):
    journal = IngestJournal.create(tmp_path / "j")
    journal.append(_corpus_slice(corpus, 0, 3), 0.5)
    journal.append(_corpus_slice(corpus, 3, 5), 1.0)
    batch = journal.read_batch(1)
    assert [d.doc_id for d in batch.documents] == [
        d.doc_id for d in corpus.documents[3:5]
    ]


def test_arrivals_must_be_monotonic(tmp_path, corpus):
    journal = IngestJournal.create(tmp_path / "j")
    journal.append(_corpus_slice(corpus, 0, 2), 2.0)
    with pytest.raises(ValueError, match="non-decreasing"):
        journal.append(_corpus_slice(corpus, 2, 4), 1.0)


def test_open_missing_journal(tmp_path):
    with pytest.raises(ShardFormatError):
        IngestJournal.open(tmp_path / "nope")


def test_open_corrupt_meta(tmp_path, corpus):
    path = tmp_path / "j"
    journal = IngestJournal.create(path)
    journal.append(_corpus_slice(corpus, 0, 2), 1.0)
    (path / JOURNAL_META).write_text("{truncated")
    with pytest.raises(ShardFormatError) as err:
        IngestJournal.open(path)
    assert JOURNAL_META in str(err.value)


def test_open_unsupported_format(tmp_path):
    path = tmp_path / "j"
    IngestJournal.create(path)
    meta = json.loads((path / JOURNAL_META).read_text())
    meta["format"] = "repro-ingest-journal/99"
    (path / JOURNAL_META).write_text(json.dumps(meta))
    with pytest.raises(ShardFormatError):
        IngestJournal.open(path)
