"""Live serving: hot generation swap, epoch pinning, ingest metrics."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.ingest.compact import CompactionPolicy
from repro.ingest.live import IngestConfig, IngestPlan, serve_live
from repro.runtime.metrics import (
    counter_totals,
    ingest_summary,
    render_report,
)
from repro.serve.broker import BrokerConfig
from repro.serve.query import Query
from repro.serve.workload import ClientScript, generate_workload, store_profile
from tests.ingest.conftest import ENGINE_CONFIG


def _live_run(store, result, feed_batches, **kwargs):
    scripts = generate_workload(
        store_profile(store), n_clients=2, queries_per_client=10, seed=7
    )
    plan = IngestPlan(
        result=result,
        batches=list(feed_batches),
        config=IngestConfig(
            compaction=CompactionPolicy(max_deltas=2),
        ),
        tokenizer_config=ENGINE_CONFIG.tokenizer,
    )
    return serve_live(
        store,
        scripts,
        plan,
        config=kwargs.pop("config", BrokerConfig(max_inflight=64)),
        **kwargs,
    )


def test_hot_swap_and_epoch_pinning(result, make_store, feed_batches):
    store = make_store(2)
    report = _live_run(store, result, feed_batches)

    assert report.served == 20 and not report.rejected
    outcome = report.ingest
    assert outcome["docs_ingested"] == sum(
        len(c.documents) for c, _ in feed_batches
    )
    # 3 publishes + 1 compaction (max_deltas=2 trips after batch 2)
    publishes = [
        e for e in outcome["events"] if e["event"] == "publish"
    ]
    compacts = [
        e for e in outcome["events"] if e["event"] == "compact"
    ]
    assert len(publishes) == 3 and len(compacts) >= 1
    # publishes land after their batch's arrival, never before
    for e in publishes:
        assert e["published_s"] > e["arrival_s"]

    # every response is pinned to exactly one published epoch, and the
    # session straddles the swap: base generation AND the final one
    gens = [r["generation"] for r in report.responses]
    final = outcome["final_generation"]
    assert all(0 <= g <= final for g in gens)
    assert min(gens) == 0  # early queries hit the static base
    assert max(gens) == final
    # per-epoch cache keys: a client never sees a mixed-generation
    # fan-out, so per-generation stats cover all served queries
    assert sum(s["queries"] for s in report.generations.values()) == 20

    totals = counter_totals(report.metrics)
    assert totals["ingest.broker.reloads"] >= 1
    assert totals["ingest.generations"] == 3
    assert totals["ingest.compactions"] == len(compacts)
    assert totals["ingest.docs"] == outcome["docs_ingested"]


def test_ingested_doc_becomes_queryable(
    result, make_store, feed_batches
):
    store = make_store(2)
    new_doc = feed_batches[0][0].documents[0].doc_id
    # one patient client: long think time, then ask for the fresh doc
    scripts = [
        ClientScript(
            client=0,
            queries=(Query(kind="similar", doc_id=new_doc, k=3),),
            think_s=(5.0,),
        )
    ]
    plan = IngestPlan(
        result=result,
        batches=list(feed_batches),
        tokenizer_config=ENGINE_CONFIG.tokenizer,
    )
    report = serve_live(store, scripts, plan)
    assert report.served == 1
    resp = report.responses[0]
    assert resp["generation"] >= 1
    # the fresh doc's signature was found (no partial flag), and it
    # ranks neighbours without matching itself
    assert not resp["response"].get("partial")
    hits = resp["response"]["hits"]
    assert hits and all(h["doc"] != new_doc for h in hits)


def test_ingest_summary_and_report(result, make_store, feed_batches):
    store = make_store(1)
    report = _live_run(store, result, feed_batches)
    summary = ingest_summary(report.metrics)
    assert summary["docs_ingested"] == report.ingest["docs_ingested"]
    assert summary["generations_published"] == 3
    assert summary["broker_reloads"] >= 1
    text = render_report(report.metrics)
    assert "ingest layer (live generations):" in text
    assert "docs ingested" in text
    # a static serve leaves no ingest section
    assert ingest_summary({"counters": {}, "timers": {}}) == {}


_DETERMINISM_SCRIPT = """
import json, sys
from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.ingest.compact import CompactionPolicy
from repro.ingest.feed import FeedConfig, FeedSource
from repro.ingest.live import IngestConfig, IngestPlan, serve_live
from repro.serve.broker import BrokerConfig
from repro.serve.query import canonical_response
from repro.serve.store import build_shards
from repro.serve.workload import generate_workload, store_profile

cfg = EngineConfig(n_major_terms=200, n_clusters=5, chunk_docs=8)
corpus = generate_pubmed(60_000, seed=4, n_themes=4)
result = SerialTextEngine(cfg).run(corpus)
postings = build_term_postings(corpus, result, cfg.tokenizer)
store = sys.argv[1]
build_shards(result, store, 2, postings=postings)
feed = FeedSource(FeedConfig(
    batch_docs=6, n_batches=3, seed=4, themes=4,
    skip_docs=len(corpus.documents),
    start_doc_id=int(result.doc_ids[-1]) + 1,
    mean_interarrival_s=0.05,
))
plan = IngestPlan(result=result, batches=feed.batches(),
                  config=IngestConfig(compaction=CompactionPolicy(max_deltas=2)),
                  tokenizer_config=cfg.tokenizer)
scripts = generate_workload(store_profile(store), n_clients=2,
                            queries_per_client=8, seed=7)
report = serve_live(store, scripts, plan,
                    config=BrokerConfig(max_inflight=64))
print(json.dumps({
    "responses": [canonical_response(r["response"]).decode()
                  for r in report.responses],
    "generations": [r["generation"] for r in report.responses],
    "latencies": report.latencies,
    "makespan": report.makespan,
    "ingest": report.ingest,
    "counters": sorted(report.metrics["counters"].items()),
}, sort_keys=True))
"""


def test_fastpath_slowpath_identical(tmp_path):
    """The full live session is byte-identical under both schedulers."""
    outs = {}
    for label, extra_env in (
        ("fast", {}),
        ("slow", {"REPRO_SCHED_SLOWPATH": "1"}),
    ):
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path("src").resolve())]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT,
             str(tmp_path / f"store-{label}")],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outs[label] = json.loads(proc.stdout)
    assert outs["fast"] == outs["slow"]
