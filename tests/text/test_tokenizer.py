"""Tokenizer tests, including property-based invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import Tokenizer, TokenizerConfig


def tok(**kw):
    return Tokenizer(TokenizerConfig(**kw))


def test_basic_split_and_lowercase():
    t = tok()
    assert t.tokens("Hello World hello") == ["hello", "world", "hello"]


def test_delimiters_split_terms():
    t = tok()
    assert t.tokens("alpha,beta;gamma(delta)") == [
        "alpha",
        "beta",
        "gamma",
        "delta",
    ]


def test_stopwords_removed():
    t = tok()
    assert t.tokens("the cat and the hat") == ["cat", "hat"]


def test_length_band():
    t = tok(min_len=3, max_len=5)
    assert t.tokens("a ab abc abcd abcde abcdef") == ["abc", "abcd", "abcde"]


def test_numeric_dropped_by_default():
    t = tok()
    assert t.tokens("call 911 now-ish 24-7") == ["call", "now-ish"]


def test_numeric_kept_when_configured():
    t = tok(drop_numeric=False, min_len=1)
    assert "911" in t.tokens("call 911")


def test_no_lowercase():
    t = tok(lowercase=False, stopwords=frozenset())
    assert t.tokens("Hello World") == ["Hello", "World"]


def test_stemming_folds_variants():
    t = tok(stem=True)
    out = t.tokens("running runs walked walks")
    assert out == ["runn", "run", "walk", "walk"]


def test_empty_and_whitespace_only():
    t = tok()
    assert t.tokens("") == []
    assert t.tokens("   \t\n  ") == []
    assert t.tokens("... !!! ???") == []


def test_unique_terms():
    t = tok()
    assert t.unique_terms(["cat dog", "dog fish"]) == {"cat", "dog", "fish"}


@settings(max_examples=200)
@given(st.text(max_size=400))
def test_tokens_always_within_config(text):
    cfg = TokenizerConfig(min_len=2, max_len=10)
    t = Tokenizer(cfg)
    for term in t.tokens(text):
        assert 2 <= len(term) <= 10
        assert term == term.lower()
        assert term not in cfg.stopwords
        # no delimiter or whitespace survives inside a term
        for ch in cfg.delimiters:
            assert ch not in term
        assert not any(c.isspace() for c in term)


@settings(max_examples=100)
@given(st.text(max_size=200))
def test_tokenization_deterministic(text):
    t = tok()
    assert t.tokens(text) == t.tokens(text)


@settings(max_examples=100)
@given(
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=2,
            max_size=8,
        ),
        min_size=0,
        max_size=30,
    )
)
def test_joining_plain_words_roundtrips(words):
    """Whitespace-joined plain lowercase words tokenize back to
    themselves (minus stopwords)."""
    t = tok()
    expected = [w for w in words if w not in t.config.stopwords]
    assert t.tokens(" ".join(words)) == expected


# ---------------------------------------------------------------- memoization

_word_st = st.one_of(
    # arbitrary unicode tokens (may hit the length band / numeric filter)
    st.text(max_size=12),
    # plain words likely to reach the stemmer
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=2,
        max_size=10,
    ),
    # suffixed words exercising every _light_stem branch
    st.tuples(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=3,
            max_size=6,
        ),
        st.sampled_from(
            ["ingly", "edly", "ing", "ied", "ies", "ed", "es", "s"]
        ),
    ).map("".join),
    # stopwords take the early-drop path
    st.sampled_from(sorted(TokenizerConfig().stopwords)),
    # digit/dash runs take the numeric-drop path
    st.text(alphabet="0123456789-", min_size=1, max_size=8),
)


@settings(max_examples=150, deadline=None)
@given(
    words=st.lists(_word_st, min_size=0, max_size=40),
    stem=st.booleans(),
)
def test_memoized_normalization_matches_uncached(words, stem):
    """The per-token cache must be invisible: tokens() (memoized, and
    warmed by repetition) agrees with the _normalize_uncached reference
    for every raw token, including stemming and stopword paths."""
    t = tok(stem=stem)
    # duplicate the stream so the second half is all cache hits
    text = " ".join(words + words)
    out = t.tokens(text)

    ref = tok(stem=stem)
    expected = []
    for raw in ref._split_re.split(text.lower()):
        if not raw:
            continue
        term = ref._normalize_uncached(raw)
        if term is not None:
            expected.append(term)
    assert out == expected
    # a second pass (fully cached) is identical too
    assert t.tokens(text) == expected
