"""TREC-SGML and MEDLINE byte-format tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    Corpus,
    Document,
    parse_medline,
    parse_trec_sgml,
    read_source,
    write_corpus,
    write_medline,
    write_trec_sgml,
)


def _trec_corpus():
    return Corpus(
        "gov",
        [
            Document(
                0,
                {
                    "url": "http://a.gov/x.html",
                    "title": "first page",
                    "body": "hello gov world",
                },
            ),
            Document(
                1,
                {"title": "no url here", "body": "second record body"},
            ),
        ],
    )


def _med_corpus():
    return Corpus(
        "med",
        [
            Document(
                0,
                {
                    "title": "a study of things",
                    "abstract": "words " * 40,  # forces line wrapping
                    "journal": "journal of tests",
                },
            ),
            Document(
                1,
                {
                    "title": "second record",
                    "abstract": "short abstract",
                    "journal": "other journal",
                },
            ),
        ],
    )


def test_trec_roundtrip(tmp_path):
    c = _trec_corpus()
    path = tmp_path / "gov.trec"
    nbytes = write_trec_sgml(c, path)
    assert nbytes == path.stat().st_size
    back = read_source(path)
    assert len(back) == 2
    assert back[0].fields["url"] == "http://a.gov/x.html"
    assert back[0].fields["title"] == "first page"
    assert back[0].fields["body"] == "hello gov world"
    assert "url" not in back[1].fields
    assert back[1].fields["body"] == "second record body"


def test_trec_parse_ignores_unframed_bytes():
    data = (
        b"garbage before\n<DOC>\n<DOCNO>X-1</DOCNO>\n"
        b"<TEXT>\ncontent here\n</TEXT>\n</DOC>\ntrailing junk"
    )
    c = parse_trec_sgml(data)
    assert len(c) == 1
    assert c[0].fields["body"] == "content here"


def test_trec_parse_empty():
    assert len(parse_trec_sgml(b"")) == 0


def test_medline_roundtrip(tmp_path):
    c = _med_corpus()
    path = tmp_path / "pub.med"
    nbytes = write_medline(c, path)
    assert nbytes == path.stat().st_size
    back = read_source(path)
    assert len(back) == 2
    for orig, got in zip(c, back):
        for key, val in orig.fields.items():
            assert " ".join(got.fields[key].split()) == " ".join(
                val.split()
            ), key


def test_medline_line_wrapping(tmp_path):
    c = _med_corpus()
    path = tmp_path / "pub.med"
    write_medline(c, path)
    text = path.read_text()
    # the long abstract wrapped onto continuation lines
    assert any(line.startswith("      ") for line in text.splitlines())


def test_medline_unknown_field_roundtrips(tmp_path):
    c = Corpus(
        "m",
        [Document(0, {"title": "t", "custom": "custom value here"})],
    )
    path = tmp_path / "x.medline"
    write_medline(c, path)
    back = read_source(path)
    assert back[0].fields["custom"] == "custom value here"


def test_medline_parse_skips_unknown_tags():
    data = b"PMID- 1\nTI  - hello\nZZ  - ignored tag\nAB  - abs\n\n"
    c = parse_medline(data)
    assert len(c) == 1
    assert c[0].fields == {"title": "hello", "abstract": "abs"}


def test_read_source_jsonl(tmp_path):
    c = _trec_corpus()
    path = tmp_path / "c.jsonl"
    write_corpus(c, path)
    back = read_source(path)
    assert len(back) == 2


def test_read_source_unknown_extension(tmp_path):
    path = tmp_path / "c.xml"
    path.write_text("x")
    with pytest.raises(ValueError, match="unknown source format"):
        read_source(path)


def test_generated_corpora_roundtrip_through_formats(tmp_path):
    from repro.datasets import generate_pubmed, generate_trec

    med = generate_pubmed(40_000, seed=1)
    write_medline(med, tmp_path / "p.med")
    back = read_source(tmp_path / "p.med")
    assert len(back) == len(med)
    assert back[0].fields["title"] == med[0].fields["title"]

    gov = generate_trec(40_000, seed=1)
    write_trec_sgml(gov, tmp_path / "g.trec")
    back = read_source(tmp_path / "g.trec")
    assert len(back) == len(gov)
    assert back[0].fields["url"] == gov[0].fields["url"]


@settings(max_examples=40, deadline=None)
@given(
    texts=st.lists(
        st.text(
            alphabet=st.characters(
                min_codepoint=32, max_codepoint=126, exclude_characters="<>"
            ),
            max_size=60,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_property_trec_roundtrip_any_ascii_body(texts):
    docs = [
        Document(i, {"title": f"t{i}", "body": t})
        for i, t in enumerate(texts)
    ]
    c = Corpus("p", docs)
    import io as _io
    from pathlib import Path
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "x.trec"
        write_trec_sgml(c, path)
        back = read_source(path)
    assert len(back) == len(docs)
    for orig, got in zip(docs, back):
        assert got.fields.get("body", "") == orig.fields["body"].strip()
