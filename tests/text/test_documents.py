"""Document model and byte-balanced partitioning tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import Corpus, Document, partition_documents


def _doc(i, text="hello world"):
    return Document(doc_id=i, fields={"body": text})


def test_document_nbytes_counts_fields():
    d = Document(doc_id=0, fields={"title": "abc", "body": "defgh"})
    assert d.nbytes == len("title") + 3 + 4 + len("body") + 5 + 4


def test_document_text_joins_fields():
    d = Document(doc_id=0, fields={"a": "one", "b": "two"})
    assert d.text() == "one two"


def test_corpus_len_iter_getitem():
    c = Corpus("c", [_doc(0), _doc(1)])
    assert len(c) == 2
    assert [d.doc_id for d in c] == [0, 1]
    assert c[1].doc_id == 1


def test_corpus_field_names_first_seen_order():
    c = Corpus(
        "c",
        [
            Document(0, {"b": "x", "a": "y"}),
            Document(1, {"a": "y", "c": "z"}),
        ],
    )
    assert c.field_names == ["b", "a", "c"]


def test_workload_scale_default_and_declared():
    c = Corpus("c", [_doc(0)])
    assert c.workload_scale() == 1.0
    c2 = Corpus("c", [_doc(0)], represented_bytes=c.nbytes * 50)
    assert abs(c2.workload_scale() - 50) < 1e-9


def test_workload_scale_never_below_one():
    c = Corpus("c", [_doc(0)], represented_bytes=1.0)
    assert c.workload_scale() == 1.0


def test_partition_preserves_order_and_covers_all():
    docs = [_doc(i) for i in range(17)]
    parts = partition_documents(docs, 4)
    flat = [d.doc_id for p in parts for d in p]
    assert flat == list(range(17))


def test_partition_single_rank():
    docs = [_doc(i) for i in range(5)]
    parts = partition_documents(docs, 1)
    assert len(parts) == 1 and len(parts[0]) == 5


def test_partition_more_ranks_than_docs():
    docs = [_doc(i) for i in range(2)]
    parts = partition_documents(docs, 5)
    flat = [d.doc_id for p in parts for d in p]
    assert flat == [0, 1]


def test_partition_balances_bytes():
    # one huge doc among many small ones
    docs = [_doc(0, "x" * 1000)] + [_doc(i) for i in range(1, 41)]
    parts = partition_documents(docs, 4)
    sizes = [sum(d.nbytes for d in p) for p in parts]
    total = sum(sizes)
    # the huge doc's rank should not also hold many small ones
    assert max(sizes) < 0.65 * total


@settings(max_examples=100)
@given(
    nbytes_list=st.lists(
        st.integers(min_value=0, max_value=500), min_size=0, max_size=60
    ),
    nprocs=st.integers(min_value=1, max_value=8),
)
def test_partition_property_exact_cover_in_order(nbytes_list, nprocs):
    docs = [_doc(i, "x" * n) for i, n in enumerate(nbytes_list)]
    parts = partition_documents(docs, nprocs)
    assert len(parts) == nprocs
    flat = [d.doc_id for p in parts for d in p]
    assert flat == list(range(len(docs)))
    for p in parts:
        ids = [d.doc_id for d in p]
        assert ids == sorted(ids)  # contiguous runs
