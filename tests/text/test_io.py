"""Corpus serialization round-trip tests."""

from repro.text import (
    Corpus,
    Document,
    merge_corpora,
    read_corpus,
    write_corpus,
)


def _corpus():
    return Corpus(
        "demo",
        [
            Document(0, {"title": "alpha beta", "body": "gamma"}),
            Document(1, {"title": "delta", "body": "epsilon zeta"}),
        ],
        represented_bytes=12345.0,
        meta={"n_themes": 2},
    )


def test_roundtrip(tmp_path):
    c = _corpus()
    path = tmp_path / "demo.jsonl"
    nbytes = write_corpus(c, path)
    assert nbytes == path.stat().st_size
    back = read_corpus(path)
    assert back.name == "demo"
    assert back.represented_bytes == 12345.0
    assert back.meta == {"n_themes": 2}
    assert len(back) == 2
    assert back[0].fields == c[0].fields
    assert back[1].doc_id == 1


def test_read_skips_blank_lines(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text(
        '{"_header": {"corpus": "x"}}\n\n'
        '{"doc_id": 0, "fields": {"a": "b"}}\n'
    )
    c = read_corpus(path)
    assert len(c) == 1


def test_read_without_header_uses_stem(tmp_path):
    path = tmp_path / "plain.jsonl"
    path.write_text('{"doc_id": 3, "fields": {"a": "b c"}}\n')
    c = read_corpus(path)
    assert c.name == "plain"
    assert c.represented_bytes is None


def test_unicode_content_roundtrips(tmp_path):
    c = Corpus("u", [Document(0, {"body": "naïve café 中文"})])
    path = tmp_path / "u.jsonl"
    write_corpus(c, path)
    assert read_corpus(path)[0].fields["body"] == "naïve café 中文"


def test_merge_corpora_renumbers_and_sums_represented():
    a = Corpus("a", [Document(0, {"x": "one"})], represented_bytes=100.0)
    b = Corpus("b", [Document(0, {"x": "two"}), Document(1, {"x": "three"})])
    m = merge_corpora("ab", [a, b])
    assert [d.doc_id for d in m] == [0, 1, 2]
    assert m.represented_bytes == 100.0 + b.nbytes
