"""Cost model unit tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import MachineSpec, Scale


@pytest.fixture()
def m():
    return MachineSpec()


def test_scaled_factors():
    m = MachineSpec(workload_scale=10_000.0, vocab_scale_beta=0.65)
    assert m.scaled(2.0, Scale.STREAM) == 20_000.0
    assert m.scaled(2.0, Scale.VOCAB) == pytest.approx(
        2.0 * 10_000.0**0.65
    )
    assert m.scaled(2.0, Scale.FIXED) == 2.0


def test_with_scale_is_pure():
    m = MachineSpec()
    m2 = m.with_scale(50.0)
    assert m.workload_scale == 1.0
    assert m2.workload_scale == 50.0
    assert m2.scan_bytes_per_s == m.scan_bytes_per_s


def test_scan_seconds_additive(m):
    only_bytes = m.scan_seconds(1000, 0)
    only_tokens = m.scan_seconds(0, 100)
    assert m.scan_seconds(1000, 100) == pytest.approx(
        only_bytes + only_tokens
    )


def test_io_shared_fs_saturation(m):
    """Per-rank I/O time stops improving once the shared FS saturates."""
    t1 = m.io_seconds(1e8, concurrent_readers=1)
    t4 = m.io_seconds(1e8, concurrent_readers=4)
    t64 = m.io_seconds(1e8, concurrent_readers=64)
    assert t1 == t4  # rank link is the bottleneck at low P
    assert t64 > t1  # aggregate FS bandwidth bottleneck at high P


def test_p2p_transit_exceeds_sender_time(m):
    sender, transit = m.p2p_seconds(1_000_000)
    assert transit > sender > 0


def test_rpc_round_trip_cost(m):
    small = m.rpc_seconds(16)
    big = m.rpc_seconds(1_000_000)
    assert big > small > 2 * m.net_latency_s


def test_collective_unknown_kind(m):
    with pytest.raises(ValueError):
        m.collective_seconds("alltoallw", 4, 100)


def test_collective_single_rank_free(m):
    for kind in ("barrier", "bcast", "allreduce", "gather", "alltoallv"):
        assert m.collective_seconds(kind, 1, 1e6) == 0.0


@settings(max_examples=100)
@given(
    p1=st.integers(min_value=2, max_value=64),
    p2=st.integers(min_value=2, max_value=64),
    nbytes=st.floats(min_value=0, max_value=1e8),
)
def test_collective_cost_monotone_in_procs(p1, p2, nbytes):
    m = MachineSpec()
    lo, hi = min(p1, p2), max(p1, p2)
    for kind in ("barrier", "bcast", "allreduce", "gather", "allgather"):
        assert m.collective_seconds(kind, lo, nbytes) <= m.collective_seconds(
            kind, hi, nbytes
        )


def test_allreduce_costlier_than_reduce(m):
    assert m.collective_seconds(
        "allreduce", 16, 1e6
    ) > m.collective_seconds("reduce", 16, 1e6)


def test_barrier_cost_logarithmic(m):
    c8 = m.collective_seconds("barrier", 8, 0)
    c64 = m.collective_seconds("barrier", 64, 0)
    assert c64 == pytest.approx(c8 * (math.log2(64) / math.log2(8)))


def test_pressure_factor_knee():
    m = MachineSpec(
        node_mem_bytes=8e9,
        ranks_per_node=2,
        pressure_knee=0.85,
        pressure_slope=8.0,
        workload_scale=1.0,
    )
    share = 4e9
    assert m.pressure_factor(0.5 * share) == 1.0
    assert m.pressure_factor(0.85 * share) == 1.0
    over = m.pressure_factor(1.5 * share)
    assert over == pytest.approx(1.0 + 8.0 * (1.5 - 0.85))


def test_pressure_factor_respects_workload_scale():
    m = MachineSpec(workload_scale=1000.0)
    # 10 MB generated = 10 GB represented: thrashes
    assert m.pressure_factor(1e7) > 1.0
    assert m.with_scale(1.0).pressure_factor(1e7) == 1.0


def test_onesided_scales_with_bytes(m):
    assert m.onesided_seconds(1e6) > m.onesided_seconds(100)


def test_invert_and_unique_costs_positive(m):
    assert m.invert_seconds(1000) > 0
    assert m.unique_terms_seconds(1000) > 0
    assert m.memcpy_seconds(1000) > 0
    assert m.cpu_seconds(1000) > 0
    assert m.flops_seconds(1000) > 0
