"""Intra-node communication model tests (dual-CPU nodes)."""

import numpy as np
import pytest

from repro.ga import GlobalArray
from repro.runtime import Cluster, MachineSpec


def test_same_node_mapping():
    m = MachineSpec(ranks_per_node=2)
    assert m.same_node(0, 1)
    assert not m.same_node(1, 2)
    assert m.same_node(4, 5)
    m4 = MachineSpec(ranks_per_node=4)
    assert m4.same_node(0, 3)
    assert not m4.same_node(3, 4)


def test_intra_node_p2p_cheaper():
    m = MachineSpec()
    _, remote = m.p2p_seconds(1_000_000, intra_node=False)
    _, local = m.p2p_seconds(1_000_000, intra_node=True)
    assert local < remote / 1.5


def test_intra_node_onesided_cheaper():
    m = MachineSpec()
    assert m.onesided_seconds(1e6, intra_node=True) < m.onesided_seconds(
        1e6, intra_node=False
    )


def test_send_latency_depends_on_node():
    payload = np.zeros(500_000)

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, payload)  # same node (ranks_per_node=2)
            ctx.comm.send(2, payload)  # other node
            return None
        src_t0 = ctx.now
        ctx.comm.recv(0)
        return ctx.now - src_t0

    res = Cluster(3).run(program)
    t_same_node = res.rank_results[1]
    t_cross_node = res.rank_results[2]
    assert t_same_node < t_cross_node


def test_ga_get_cheaper_from_node_peer():
    def program(ctx):
        ga = GlobalArray.create(ctx, "g", (4, 50_000))
        ga.sync()
        lo, _ = ga.local_range()  # one row per rank
        peer_same = 1 if ctx.rank == 0 else 0
        peer_far = 2 if ctx.rank < 2 else 0
        t0 = ctx.now
        ga.get(peer_same, peer_same + 1)
        same = ctx.now - t0
        t0 = ctx.now
        ga.get(peer_far, peer_far + 1)
        far = ctx.now - t0
        ga.sync()
        return (same, far)

    res = Cluster(4).run(program)
    same, far = res.rank_results[0]
    assert same < far


def test_results_unaffected_by_locality_model():
    """Node locality changes time, never data."""
    payload = {"k": [1, 2, 3]}

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, payload)
            return None
        return ctx.comm.recv(0)

    fast = Cluster(2, MachineSpec(ranks_per_node=2)).run(program)
    slow = Cluster(2, MachineSpec(ranks_per_node=1)).run(program)
    assert fast.rank_results[1] == slow.rank_results[1] == payload
    assert fast.wall_time < slow.wall_time
