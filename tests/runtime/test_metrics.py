"""Unit tests for the deterministic metrics registry and snapshot ops."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Cluster
from repro.runtime.metrics import (
    SCHEMA,
    MetricsRegistry,
    MetricsSchemaError,
    comm_matrix,
    counter_totals,
    hashmap_locality,
    merge_snapshots,
    render_report,
    stage_imbalance,
    taskqueue_summary,
    to_prometheus,
    validate_snapshot,
)


def _empty_snapshot(nprocs=2):
    return MetricsRegistry(nprocs).snapshot()


class TestRegistry:
    def test_counter_accumulates_per_rank_and_key(self):
        reg = MetricsRegistry(2)
        fam = reg.counter("comm.p2p.bytes", ("peer", "dir"))
        fam.inc(0, 10.0, key=(1, "sent"))
        fam.inc(0, 5.0, key=(1, "sent"))
        fam.inc(1, 7.0, key=(0, "recv"))
        snap = reg.snapshot()
        vals = snap["counters"]["comm.p2p.bytes"]["values"]
        assert vals == [
            {"rank": 0, "key": [1, "sent"], "value": 15.0},
            {"rank": 1, "key": [0, "recv"], "value": 7.0},
        ]

    def test_gauge_set_overwrites(self):
        reg = MetricsRegistry(1)
        g = reg.gauge("mem.high_water")
        g.set(0, 10.0)
        g.set(0, 4.0)
        snap = reg.snapshot()
        assert snap["gauges"]["mem.high_water"]["values"][0]["value"] == 4.0

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry(1)
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 5.0, 100.0):
            h.observe(0, v)
        e = reg.snapshot()["histograms"]["lat"]["values"][0]
        assert e["counts"] == [1, 2, 1]  # <=1, <=10, overflow
        assert e["sum"] == pytest.approx(107.5)
        assert e["count"] == 4

    def test_family_reregistration_is_idempotent(self):
        reg = MetricsRegistry(1)
        a = reg.counter("x", ("l",))
        b = reg.counter("x", ("l",))
        assert a is b

    def test_family_shape_conflict_raises(self):
        reg = MetricsRegistry(1)
        reg.counter("x", ("l",))
        with pytest.raises(ValueError, match="re-registered"):
            reg.counter("x", ("other",))
        with pytest.raises(ValueError, match="re-registered"):
            reg.gauge("x", ("l",))

    def test_rank_totals_and_deltas(self):
        reg = MetricsRegistry(2)
        fam = reg.counter("c", ("k",))
        fam.inc(0, 3.0, key=("a",))
        before = reg.rank_totals(0)
        fam.inc(0, 2.0, key=("a",))
        fam.inc(0, 1.0, key=("b",))
        fam.inc(1, 9.0, key=("a",))  # other rank: not in rank-0 delta
        deltas = reg.rank_deltas(0, before)
        assert deltas == {("c", ("a",)): 2.0, ("c", ("b",)): 1.0}

    def test_record_stage_accumulates(self):
        reg = MetricsRegistry(2)
        reg.record_stage("scan", 0, 2.0, 0.5, {("c", ()): 3.0})
        reg.record_stage("scan", 0, 1.0, 0.25, {("c", ()): 1.0})
        reg.record_stage("scan", 1, 4.0, 0.0, {})
        st = reg.snapshot()["stages"]["scan"]
        assert st["seconds"] == [3.0, 4.0]
        assert st["blocked_seconds"] == [0.75, 0.0]
        assert st["counters"]["c"]["values"] == [
            {"rank": 0, "key": [], "value": 4.0}
        ]


class TestSnapshotSchema:
    def test_roundtrip_through_json(self):
        reg = MetricsRegistry(2)
        reg.counter("c", ("peer",)).inc(0, 2.0, key=(1,))
        reg.histogram("h", bounds=(1.0,)).observe(1, 0.5)
        reg.gauge("g").set(0, 3.0)
        reg.record_stage("s", 0, 1.0, 0.5, {("c", (1,)): 2.0})
        snap = reg.snapshot()
        back = json.loads(json.dumps(snap))
        assert back == snap
        validate_snapshot(back)

    def test_schema_version_bump_detected(self):
        snap = _empty_snapshot()
        snap["schema"] = "repro-metrics/2"
        with pytest.raises(MetricsSchemaError, match="repro-metrics/2"):
            validate_snapshot(snap)

    def test_missing_section_detected(self):
        snap = _empty_snapshot()
        del snap["counters"]
        with pytest.raises(MetricsSchemaError, match="counters"):
            validate_snapshot(snap)

    def test_non_dict_rejected(self):
        with pytest.raises(MetricsSchemaError):
            validate_snapshot([1, 2, 3])

    def test_current_schema_constant(self):
        assert _empty_snapshot()["schema"] == SCHEMA == "repro-metrics/1"


def _snap_from_events(events, nprocs=2):
    """Build a snapshot from (rank, key, value) counter events."""
    reg = MetricsRegistry(nprocs)
    fam = reg.counter("c", ("peer", "dir"))
    hist = reg.histogram("h", bounds=(1.0, 10.0))
    for rank, peer, value in events:
        fam.inc(rank, value, key=(peer, "sent"))
        hist.observe(rank, abs(value))
    return reg.snapshot()


# Values are dyadic (multiples of 0.5) so float64 addition is exact:
# the associativity/commutativity assertions compare canonical JSON
# byte-for-byte, which arbitrary floats would violate in the last ULP.
_event = st.tuples(
    st.integers(0, 1),
    st.integers(0, 1),
    st.integers(-200, 200).map(lambda n: n / 2.0),
)


class TestMerge:
    def test_counters_add_gauges_max(self):
        a = MetricsRegistry(2)
        a.counter("c").inc(0, 1.0)
        a.gauge("g").set(0, 5.0)
        b = MetricsRegistry(2)
        b.counter("c").inc(0, 2.0)
        b.gauge("g").set(0, 3.0)
        m = merge_snapshots(a.snapshot(), b.snapshot())
        assert m["counters"]["c"]["values"][0]["value"] == 3.0
        assert m["gauges"]["g"]["values"][0]["value"] == 5.0

    def test_disjoint_families_union(self):
        a = MetricsRegistry(2)
        a.counter("only_a").inc(0, 1.0)
        b = MetricsRegistry(2)
        b.counter("only_b").inc(1, 2.0)
        m = merge_snapshots(a.snapshot(), b.snapshot())
        assert set(m["counters"]) == {"only_a", "only_b"}

    def test_stage_sections_merge(self):
        a = MetricsRegistry(2)
        a.record_stage("s", 0, 1.0, 0.5, {("c", ()): 1.0})
        b = MetricsRegistry(2)
        b.record_stage("s", 0, 2.0, 0.0, {("c", ()): 4.0})
        b.record_stage("t", 1, 3.0, 0.0, {})
        m = merge_snapshots(a.snapshot(), b.snapshot())
        assert m["stages"]["s"]["seconds"] == [3.0, 0.0]
        assert m["stages"]["s"]["counters"]["c"]["values"][0]["value"] == 5.0
        assert m["stages"]["t"]["seconds"] == [0.0, 3.0]

    def test_nprocs_mismatch_rejected(self):
        with pytest.raises(MetricsSchemaError, match="nprocs"):
            merge_snapshots(_empty_snapshot(2), _empty_snapshot(4))

    def test_histogram_bounds_mismatch_rejected(self):
        a = MetricsRegistry(1)
        a.histogram("h", bounds=(1.0,)).observe(0, 0.5)
        b = MetricsRegistry(1)
        b.histogram("h", bounds=(2.0,)).observe(0, 0.5)
        with pytest.raises(MetricsSchemaError, match="bounds"):
            merge_snapshots(a.snapshot(), b.snapshot())

    @settings(max_examples=50, deadline=None)
    @given(
        xs=st.lists(_event, max_size=12),
        ys=st.lists(_event, max_size=12),
        zs=st.lists(_event, max_size=12),
    )
    def test_merge_associative_and_commutative(self, xs, ys, zs):
        """(a+b)+c == a+(b+c) and a+b == b+a, byte for byte.

        This is what makes partial snapshots aggregatable in any
        order (the hypothesis-property satellite of the issue).
        """
        a, b, c = (
            _snap_from_events(ev) for ev in (xs, ys, zs)
        )

        def digest(s):
            return json.dumps(s, sort_keys=True)

        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert digest(left) == digest(right)
        assert digest(merge_snapshots(a, b)) == digest(
            merge_snapshots(b, a)
        )

    @settings(max_examples=25, deadline=None)
    @given(xs=st.lists(_event, max_size=12))
    def test_merge_with_empty_is_identity(self, xs):
        a = _snap_from_events(xs)
        merged = merge_snapshots(a, _empty_snapshot())
        assert json.dumps(merged["counters"], sort_keys=True) == json.dumps(
            a["counters"], sort_keys=True
        )

    @settings(max_examples=25, deadline=None)
    @given(
        xs=st.lists(_event, max_size=10), ys=st.lists(_event, max_size=10)
    )
    def test_split_then_merge_equals_combined(self, xs, ys):
        """Recording events in one registry == merging two halves."""
        combined = _snap_from_events(xs + ys)
        merged = merge_snapshots(
            _snap_from_events(xs), _snap_from_events(ys)
        )
        ca = combined["counters"]["c"]["values"]
        cm = merged["counters"]["c"]["values"]
        assert [(e["rank"], e["key"]) for e in ca] == [
            (e["rank"], e["key"]) for e in cm
        ]
        for ea, em in zip(ca, cm):
            assert em["value"] == pytest.approx(ea["value"], abs=1e-9)


class TestDerivedReports:
    def _loaded_registry(self):
        reg = MetricsRegistry(2)
        p2p = reg.counter("comm.p2p.bytes", ("peer", "dir"))
        p2p.inc(0, 100.0, key=(1, "sent"))
        p2p.inc(1, 100.0, key=(0, "recv"))  # same transfer, recv side
        rpc = reg.counter("comm.rpc.bytes", ("peer", "dir"))
        rpc.inc(0, 10.0, key=(1, "out"))
        rpc.inc(0, 6.0, key=(1, "in"))  # response flows 1 -> 0
        one = reg.counter("comm.onesided.bytes", ("peer", "dir"))
        one.inc(0, 50.0, key=(1, "get"))  # data flows 1 -> 0
        one.inc(0, 25.0, key=(0, "put"))  # local window: diagonal
        return reg

    def test_comm_matrix_bytes_directionality(self):
        m = comm_matrix(self._loaded_registry().snapshot(), "bytes")
        assert m[0][1] == 110.0  # p2p sent + rpc out
        assert m[1][0] == 56.0  # rpc response + one-sided get
        assert m[0][0] == 25.0  # local one-sided on the diagonal

    def test_comm_matrix_messages(self):
        reg = MetricsRegistry(2)
        msgs = reg.counter("comm.p2p.messages", ("peer", "dir"))
        msgs.inc(0, 3.0, key=(1, "sent"))
        msgs.inc(1, 3.0, key=(0, "recv"))
        reg.counter("comm.rpc.calls", ("peer",)).inc(1, 2.0, key=(0,))
        m = comm_matrix(reg.snapshot(), "messages")
        assert m[0][1] == 3.0
        assert m[1][0] == 2.0

    def test_comm_matrix_unknown_metric(self):
        with pytest.raises(ValueError):
            comm_matrix(_empty_snapshot(), "frobs")

    def test_stage_imbalance(self):
        reg = MetricsRegistry(2)
        reg.record_stage("s", 0, 10.0, 2.0, {})  # busy 8
        reg.record_stage("s", 1, 10.0, 6.0, {})  # busy 4
        out = stage_imbalance(reg.snapshot())
        assert out["s"]["max_busy"] == 8.0
        assert out["s"]["mean_busy"] == 6.0
        assert out["s"]["imbalance"] == pytest.approx(8.0 / 6.0)

    def test_stage_imbalance_zero_busy_is_balanced(self):
        reg = MetricsRegistry(2)
        reg.record_stage("s", 0, 0.0, 0.0, {})
        assert stage_imbalance(reg.snapshot())["s"]["imbalance"] == 1.0

    def test_hashmap_locality(self):
        reg = MetricsRegistry(2)
        ops = reg.counter("hashmap.ops", ("map", "locality"))
        ops.inc(0, 3.0, key=("vocab", "local"))
        ops.inc(0, 9.0, key=("vocab", "remote"))
        reg.counter("hashmap.rpc_retries", ("map",)).inc(
            0, 2.0, key=("vocab",)
        )
        out = hashmap_locality(reg.snapshot())
        assert out["vocab"]["local_fraction"] == pytest.approx(0.25)
        assert out["vocab"]["retries"] == 2.0

    def test_taskqueue_summary(self):
        reg = MetricsRegistry(2)
        ch = reg.counter("taskq.chunks", ("queue", "kind"))
        ch.inc(0, 4.0, key=("ifi", "own"))
        ch.inc(1, 2.0, key=("ifi", "stolen"))
        reg.counter("taskq.tasks", ("queue", "kind")).inc(
            0, 12.0, key=("ifi", "own")
        )
        reg.counter("taskq.lease_reclaims", ("queue",)).inc(
            1, 1.0, key=("ifi",)
        )
        out = taskqueue_summary(reg.snapshot())
        assert out["ifi"] == {
            "own": 4.0, "stolen": 2.0, "tasks": 12.0, "reclaims": 1.0
        }

    def test_counter_totals(self):
        reg = self._loaded_registry()
        totals = counter_totals(reg.snapshot())
        assert totals["comm.p2p.bytes"] == 200.0
        assert totals["comm.onesided.bytes"] == 75.0

    def test_render_report_mentions_all_sections(self):
        reg = self._loaded_registry()
        reg.counter("hashmap.ops", ("map", "locality")).inc(
            0, 1.0, key=("vocab", "local")
        )
        reg.record_stage("scan", 0, 1.0, 0.2, {})
        reg.counter("comm.coll.calls", ("kind",)).inc(
            0, 1.0, key=("barrier",)
        )
        text = render_report(reg.snapshot())
        assert "communication matrix" in text
        assert "load balance" in text
        assert "vocab" in text
        assert "barrier" in text


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry(2)
        reg.counter("comm.p2p.bytes", ("peer", "dir")).inc(
            0, 42.0, key=(1, "sent")
        )
        reg.gauge("g").set(1, 7.0)
        reg.histogram("h", bounds=(1.0, 10.0)).observe(0, 2.0)
        text = to_prometheus(reg.snapshot())
        assert "# TYPE repro_comm_p2p_bytes counter" in text
        assert (
            'repro_comm_p2p_bytes{rank="0",peer="1",dir="sent"} 42.0'
            in text
        )
        assert 'repro_g{rank="1"} 7.0' in text
        # histogram buckets are cumulative and end with +Inf
        assert 'repro_h_bucket{rank="0",le="1.0"} 0' in text
        assert 'repro_h_bucket{rank="0",le="10.0"} 1' in text
        assert 'repro_h_bucket{rank="0",le="+Inf"} 1' in text
        assert 'repro_h_count{rank="0"} 1' in text


class TestRuntimeIntegration:
    def test_cluster_records_p2p_and_collectives(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, b"x" * 64)
            elif ctx.rank == 1:
                ctx.comm.recv(0)
            ctx.comm.allreduce(1)

        res = Cluster(2).run(program)
        snap = res.metrics.snapshot()
        sent = {
            (e["rank"], tuple(e["key"])): e["value"]
            for e in snap["counters"]["comm.p2p.messages"]["values"]
        }
        assert sent[(0, (1, "sent"))] == 1.0
        assert sent[(1, (0, "recv"))] == 1.0
        colls = {
            tuple(e["key"])
            for e in snap["counters"]["comm.coll.calls"]["values"]
        }
        assert ("allreduce",) in colls

    def test_blocked_time_metric_matches_scheduler(self):
        def program(ctx):
            ctx.comm.barrier()
            if ctx.rank == 0:
                ctx.charge(1.0)
            ctx.comm.barrier()

        res = Cluster(2).run(program)
        snap = res.metrics.snapshot()
        by_rank = {
            e["rank"]: e["value"]
            for e in snap["counters"]["sched.blocked_seconds"]["values"]
        }
        for rank, total in enumerate(res.blocked_times):
            assert by_rank.get(rank, 0.0) == pytest.approx(float(total))

    def test_rpc_and_region_capture(self):
        def program(ctx):
            with ctx.region("work"):
                ctx.rpc((ctx.rank + 1) % ctx.nprocs, lambda: None)
            return None

        res = Cluster(2).run(program)
        snap = res.metrics.snapshot()
        rpc = snap["counters"]["comm.rpc.calls"]["values"]
        assert sum(e["value"] for e in rpc) == 2.0
        stage = snap["stages"]["work"]
        assert "comm.rpc.calls" in stage["counters"]
        assert len(stage["seconds"]) == 2

    def test_repeated_runs_bit_identical(self):
        def program(ctx):
            with ctx.region("w"):
                other = (ctx.rank + 1) % ctx.nprocs
                ctx.comm.send(other, list(range(50)))
                ctx.comm.recv_any()
                ctx.comm.allgather(ctx.rank)

        digests = []
        for _ in range(2):
            res = Cluster(4).run(program)
            digests.append(
                json.dumps(res.metrics.snapshot(), sort_keys=True)
            )
        assert digests[0] == digests[1]
