"""Wire-size estimator tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import payload_nbytes


def test_numpy_arrays_exact():
    a = np.zeros(100, dtype=np.float64)
    assert payload_nbytes(a) == 16 + 800
    b = np.zeros((10, 10), dtype=np.int32)
    assert payload_nbytes(b) == 16 + 400


def test_strings_and_bytes():
    assert payload_nbytes("hello") == 16 + 5
    assert payload_nbytes(b"abc") == 16 + 3
    assert payload_nbytes("héllo") == 16 + 6  # utf-8


def test_scalars():
    assert payload_nbytes(None) == 17
    assert payload_nbytes(True) == 17
    assert payload_nbytes(7) == 24
    assert payload_nbytes(3.14) == 24
    assert payload_nbytes(np.float32(1.0)) == 20


def test_containers_scale_with_contents():
    small = payload_nbytes([1, 2])
    big = payload_nbytes(list(range(100)))
    assert big > small
    assert payload_nbytes({"k": [1, 2, 3]}) > payload_nbytes({"k": []})


def test_dataclass_payload():
    from repro.signature import RankedTerm

    t = RankedTerm("abcdef", 3, 1.5, 2, 4)
    n = payload_nbytes(t)
    assert 16 + 6 <= n <= 200
    # a list of many terms scales roughly linearly
    many = payload_nbytes([t] * 100)
    assert many > 50 * n / 2


def test_unknown_objects_fall_back_to_pickle():
    class Odd:
        def __init__(self):
            self.data = list(range(50))

    assert payload_nbytes(Odd()) > 50


@settings(max_examples=100)
@given(
    st.recursive(
        st.one_of(
            st.integers(),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.booleans(),
            st.none(),
        ),
        lambda children: st.lists(children, max_size=5),
        max_leaves=20,
    )
)
def test_property_always_positive_int(obj):
    n = payload_nbytes(obj)
    assert isinstance(n, int)
    assert n >= 16


@settings(max_examples=50)
@given(st.lists(st.integers(), max_size=30))
def test_property_superset_never_smaller(xs):
    assert payload_nbytes(xs + [0]) >= payload_nbytes(xs)
