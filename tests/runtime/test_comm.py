"""Tests for point-to-point and collective communication."""

import numpy as np
import pytest

from repro.runtime import Cluster, CollectiveMismatchError, RuntimeMisuseError


# ----------------------------------------------------------------------
# point to point
# ----------------------------------------------------------------------
def test_send_recv_value():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, {"hello": [1, 2, 3]})
            return None
        return ctx.comm.recv(0)

    res = Cluster(2).run(program)
    assert res.rank_results[1] == {"hello": [1, 2, 3]}


def test_recv_blocks_until_send():
    def program(ctx):
        if ctx.rank == 0:
            ctx.charge(5.0)  # send happens late
            ctx.comm.send(1, "late")
            return ctx.now
        t_before = ctx.now
        msg = ctx.comm.recv(0)
        assert msg == "late"
        return (t_before, ctx.now)

    res = Cluster(2).run(program)
    t_before, t_after = res.rank_results[1]
    assert t_before == 0.0
    assert t_after > 5.0  # receiver waited for the late sender


def test_messages_fifo_per_channel():
    def program(ctx):
        if ctx.rank == 0:
            for i in range(10):
                ctx.comm.send(1, i)
            return None
        return [ctx.comm.recv(0) for _ in range(10)]

    res = Cluster(2).run(program)
    assert res.rank_results[1] == list(range(10))


def test_tags_separate_channels():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, "a", tag=1)
            ctx.comm.send(1, "b", tag=2)
            return None
        b = ctx.comm.recv(0, tag=2)
        a = ctx.comm.recv(0, tag=1)
        return (a, b)

    res = Cluster(2).run(program)
    assert res.rank_results[1] == ("a", "b")


def test_send_to_invalid_rank():
    def program(ctx):
        ctx.comm.send(99, "x")

    with pytest.raises(RuntimeError, match="rank 0 failed"):
        Cluster(2).run(program)


def test_message_transfer_costs_time():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, np.zeros(1_000_000))
            return None
        ctx.comm.recv(0)
        return ctx.now

    res = Cluster(2).run(program)
    # 8 MB over the modelled link must take noticeable virtual time
    assert res.rank_results[1] > 1e-3


# ----------------------------------------------------------------------
# collectives
# ----------------------------------------------------------------------
def test_barrier_aligns_clocks():
    def program(ctx):
        ctx.charge(float(ctx.rank))
        ctx.comm.barrier()
        return ctx.now

    res = Cluster(4).run(program)
    assert len(set(res.rank_results)) == 1
    assert res.rank_results[0] >= 3.0  # at least the slowest arriver


def test_bcast():
    def program(ctx):
        val = [1, 2, 3] if ctx.rank == 1 else None
        return ctx.comm.bcast(val, root=1)

    res = Cluster(4).run(program)
    assert all(r == [1, 2, 3] for r in res.rank_results)


def test_reduce_sum_to_root():
    def program(ctx):
        return ctx.comm.reduce(ctx.rank + 1, root=2)

    res = Cluster(4).run(program)
    assert res.rank_results[2] == 10
    assert res.rank_results[0] is None


def test_allreduce_numpy_arrays():
    def program(ctx):
        return ctx.comm.allreduce(np.full(3, ctx.rank, dtype=np.int64))

    res = Cluster(4).run(program)
    for r in res.rank_results:
        np.testing.assert_array_equal(r, [6, 6, 6])


def test_allreduce_custom_op():
    def program(ctx):
        return ctx.comm.allreduce(ctx.rank, op=max)

    res = Cluster(5).run(program)
    assert res.rank_results == [4] * 5


def test_gather_and_allgather():
    def program(ctx):
        g = ctx.comm.gather(ctx.rank * 2, root=0)
        ag = ctx.comm.allgather(ctx.rank + 100)
        return (g, ag)

    res = Cluster(3).run(program)
    assert res.rank_results[0][0] == [0, 2, 4]
    assert res.rank_results[1][0] is None
    for g, ag in res.rank_results:
        assert ag == [100, 101, 102]


def test_scatter():
    def program(ctx):
        vals = [f"item{i}" for i in range(ctx.nprocs)] if ctx.rank == 0 else None
        return ctx.comm.scatter(vals, root=0)

    res = Cluster(4).run(program)
    assert res.rank_results == ["item0", "item1", "item2", "item3"]


def test_alltoallv():
    def program(ctx):
        per_dest = [f"{ctx.rank}->{d}" for d in range(ctx.nprocs)]
        return ctx.comm.alltoallv(per_dest)

    res = Cluster(3).run(program)
    for d in range(3):
        assert res.rank_results[d] == [f"{s}->{d}" for s in range(3)]


def test_exscan():
    def program(ctx):
        return ctx.comm.exscan(ctx.rank + 1)

    res = Cluster(4).run(program)
    assert res.rank_results == [None, 1, 3, 6]


def test_collective_mismatch_detected():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.barrier()
        else:
            ctx.comm.allreduce(1)

    with pytest.raises(RuntimeError, match="failed"):
        Cluster(2).run(program)


def test_collective_results_independent_copies():
    """Each rank's allreduce array result must be mutable independently."""

    def program(ctx):
        out = ctx.comm.allreduce(np.ones(4))
        out += ctx.rank  # must not affect other ranks
        ctx.comm.barrier()
        return float(out[0])

    res = Cluster(3).run(program)
    assert res.rank_results == [3.0, 4.0, 5.0]


def test_collectives_cost_grows_with_procs():
    def program(ctx):
        ctx.comm.allreduce(np.ones(1000))
        return ctx.now

    t2 = Cluster(2).run(program).wall_time
    t16 = Cluster(16).run(program).wall_time
    assert t16 > t2 > 0.0


def test_single_rank_collectives_are_free_and_correct():
    def program(ctx):
        a = ctx.comm.allreduce(5)
        b = ctx.comm.allgather("x")
        c = ctx.comm.bcast("y")
        ctx.comm.barrier()
        return (a, b, c, ctx.now)

    res = Cluster(1).run(program)
    assert res.rank_results[0] == (5, ["x"], "y", 0.0)


def test_gates_cleaned_up():
    def program(ctx):
        for _ in range(20):
            ctx.comm.barrier()
        return len(ctx.world.gates)

    res = Cluster(3).run(program)
    # The final gate is deleted by whichever rank reads it last, so at
    # most that one in-flight gate may still be visible to the others.
    assert min(res.rank_results) == 0
    assert max(res.rank_results) <= 1
