"""Sub-communicator (Communicator.split) tests."""

import pytest

from repro.runtime import Cluster


def test_split_even_odd_group_collectives():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        total = sub.allreduce(ctx.rank)
        return (sub.rank, sub.nprocs, total)

    res = Cluster(6).run(program)
    # evens: global {0,2,4}; odds: {1,3,5}
    assert res.rank_results[0] == (0, 3, 0 + 2 + 4)
    assert res.rank_results[2] == (1, 3, 0 + 2 + 4)
    assert res.rank_results[1] == (0, 3, 1 + 3 + 5)
    assert res.rank_results[5] == (2, 3, 1 + 3 + 5)


def test_split_local_ranks_ordered_by_key():
    def program(ctx):
        # reverse ordering within the single group
        sub = ctx.comm.split(color=0, key=-ctx.rank)
        return sub.rank

    res = Cluster(4).run(program)
    assert res.rank_results == [3, 2, 1, 0]


def test_split_color_none_excluded():
    def program(ctx):
        color = 0 if ctx.rank < 2 else None
        sub = ctx.comm.split(color)
        if sub is None:
            return None
        return sub.allreduce(1)

    res = Cluster(4).run(program)
    assert res.rank_results == [2, 2, None, None]


def test_subcomm_p2p_uses_local_ranks():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        # within each sub-comm, local 0 sends to local 1
        if sub.rank == 0:
            sub.send(1, f"hello-from-{ctx.rank}")
            return None
        if sub.rank == 1:
            return sub.recv(0)
        return None

    res = Cluster(4).run(program)
    assert res.rank_results[2] == "hello-from-0"
    assert res.rank_results[3] == "hello-from-1"


def test_contexts_isolated_between_parent_and_child():
    """Messages on the parent must not leak into the child comm."""

    def program(ctx):
        sub = ctx.comm.split(color=0)
        if ctx.rank == 0:
            ctx.comm.send(1, "parent")  # world context
            sub.send(1, "child")  # sub-comm context
            return None
        if ctx.rank == 1:
            child_msg = sub.recv(0)
            parent_msg = ctx.comm.recv(0)
            return (child_msg, parent_msg)
        return None

    res = Cluster(3).run(program)
    assert res.rank_results[1] == ("child", "parent")


def test_concurrent_collectives_in_sibling_comms():
    """Sibling sub-comms run independent collective sequences."""

    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        out = []
        for i in range(3):
            out.append(sub.allreduce(ctx.rank + i))
        ctx.comm.barrier()  # parent still usable afterwards
        return out

    res = Cluster(4).run(program)
    # evens {0, 2}: sums of (rank+i) are 2, 4, 6; odds {1, 3}: 4, 6, 8
    assert res.rank_results[0] == [2, 4, 6]
    assert res.rank_results[1] == [4, 6, 8]


def test_nested_split():
    def program(ctx):
        half = ctx.comm.split(color=ctx.rank // 4)  # two groups of 4
        quarter = half.split(color=half.rank // 2)  # pairs
        return (half.nprocs, quarter.nprocs, quarter.allreduce(ctx.rank))

    res = Cluster(8).run(program)
    assert res.rank_results[0] == (4, 2, 0 + 1)
    assert res.rank_results[6] == (4, 2, 6 + 7)


def test_singleton_subcomm():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank)  # every rank alone
        assert sub.nprocs == 1
        assert sub.rank == 0
        return sub.allreduce(42)

    res = Cluster(3).run(program)
    assert res.rank_results == [42, 42, 42]


def test_split_deterministic():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        sub.allreduce(ctx.rank)
        return ctx.now

    r1 = Cluster(6).run(program)
    r2 = Cluster(6).run(program)
    assert list(r1.rank_times) == list(r2.rank_times)
