"""Cross-backend oracle: the mp backend must be bit-identical to sim.

The multiprocessing backend runs the same SPMD programs as the
virtual-time simulator -- one OS process per rank instead of one
thread -- and the contract is *bit-exactness*: identical rank
results, identical virtual clocks, identical metrics, identical
failure reports.  These tests run the same program under both
backends and diff everything observable.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.array import GlobalArray
from repro.ga.hashmap import GlobalHashMap
from repro.runtime import (
    Cluster,
    CrashFault,
    FaultPlan,
    RankFailedError,
)


def _run_both(program, nprocs, faults=None, **kwargs):
    sim = Cluster(nprocs, faults=faults, backend="sim").run(
        program, **kwargs
    )
    mp = Cluster(nprocs, faults=faults, backend="mp").run(
        program, **kwargs
    )
    return sim, mp


def _assert_identical(sim, mp):
    enc = lambda r: json.dumps(  # noqa: E731
        r.rank_results, sort_keys=True, default=repr
    )
    assert enc(sim) == enc(mp)
    assert np.array_equal(sim.rank_times, mp.rank_times)
    assert np.array_equal(sim.blocked_times, mp.blocked_times)
    assert json.dumps(sim.metrics.snapshot(), sort_keys=True) == (
        json.dumps(mp.metrics.snapshot(), sort_keys=True)
    )


# ----------------------------------------------------------------------
# every primitive in one program, fixed processor counts
# ----------------------------------------------------------------------
def _kitchen_sink(ctx):
    r, n = ctx.rank, ctx.nprocs
    with ctx.region("scan"):
        ctx.charge(0.001 * (r + 1))
        total = ctx.comm.allreduce(r + 1)
        vec = ctx.comm.allreduce(np.arange(4.0) * r)
        vec[0] += 1.0  # results must arrive writable, as in sim
        root_msg = ctx.comm.bcast(
            {"v": 7} if r == 0 else None, root=0
        )
        rows = ctx.comm.gather(np.arange(3) * r, root=n - 1)
        part = ctx.comm.scatter(
            [i * 10 for i in range(n)] if r == 0 else None, root=0
        )
        pre = ctx.comm.exscan(float(r))
        shuffled = ctx.comm.alltoallv(
            [f"{r}->{d}" for d in range(n)]
        )
        squares = ctx.comm.allgather(r * r)
    with ctx.region("index"):
        ctx.comm.send((r + 1) % n, np.full(3, float(r)))
        left = ctx.comm.recv((r - 1) % n)
        sub = ctx.comm.split(color=r % 2)
        subsum = sub.allreduce(r)
        ga = GlobalArray.create(ctx, "mpb", (n * 2,), fill=0.0)
        ga.put(r * 2, np.full(2, float(r)))
        ctx.barrier()
        everything = ga.get(0, n * 2)
        hm = GlobalHashMap.create(ctx, "mpb_terms")
        gids = hm.get_or_insert_batch([f"t{j}" for j in range(6)])
        ctx.barrier()
        rep = ctx.replicated(("k", 0), lambda: list(range(5)))
        rpc_val = ctx.rpc((r + 1) % n, lambda x: x + 1, r)
    return {
        "total": total,
        "vec": vec.tolist(),
        "root_msg": root_msg,
        "rows": None if rows is None else [x.tolist() for x in rows],
        "part": part,
        "pre": pre,
        "shuffled": shuffled,
        "squares": squares,
        "left": left.tolist(),
        "subsum": subsum,
        "everything": everything.tolist(),
        "ngids": len(set(gids)),
        "rep": rep,
        "rpc": rpc_val,
    }


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_kitchen_sink_bitexact(nprocs):
    sim, mp = _run_both(_kitchen_sink, nprocs)
    _assert_identical(sim, mp)
    assert sim.wall_time == mp.wall_time


# ----------------------------------------------------------------------
# property: random collective sequences agree across backends
# ----------------------------------------------------------------------
_OPS = ("allreduce", "allgather", "exscan", "alltoallv", "bcast")


@settings(max_examples=10, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=4),
    ops=st.lists(
        st.sampled_from(_OPS), min_size=1, max_size=4
    ),
    values=st.lists(
        st.integers(min_value=-50, max_value=50),
        min_size=4,
        max_size=4,
    ),
    charge_ms=st.integers(min_value=0, max_value=5),
)
def test_random_collective_sequences_agree(
    nprocs, ops, values, charge_ms
):
    def program(ctx):
        r = ctx.rank
        out = []
        for i, op in enumerate(ops):
            ctx.charge(charge_ms * 1e-3 * ((r + i) % 3))
            base = values[r] + i
            if op == "allreduce":
                out.append(ctx.comm.allreduce(base))
            elif op == "allgather":
                out.append(ctx.comm.allgather(base))
            elif op == "exscan":
                out.append(ctx.comm.exscan(base))
            elif op == "alltoallv":
                out.append(
                    ctx.comm.alltoallv(
                        [base * 10 + d for d in range(ctx.nprocs)]
                    )
                )
            else:
                out.append(
                    ctx.comm.bcast(base if r == i % ctx.nprocs else None,
                                   root=i % ctx.nprocs)
                )
        return out

    sim, mp = _run_both(program, nprocs)
    _assert_identical(sim, mp)


# ----------------------------------------------------------------------
# failure parity: crashes surface identically
# ----------------------------------------------------------------------
def test_crash_at_barrier_reports_same_rank():
    plan = FaultPlan(
        faults=(CrashFault(rank=2, at_time=0.5),), comm_timeout_s=5.0
    )

    def program(ctx):
        ctx.charge(1.0)
        ctx.comm.barrier()

    errs = {}
    for backend in ("sim", "mp"):
        with pytest.raises(RankFailedError) as ei:
            Cluster(3, faults=plan, backend=backend).run(program)
        errs[backend] = ei.value
    assert errs["sim"].failed == errs["mp"].failed == [2]
    assert errs["sim"].detail == errs["mp"].detail
    assert np.array_equal(
        np.asarray(errs["sim"].rank_times),
        np.asarray(errs["mp"].rank_times),
    )


def test_crash_survivors_and_results_match():
    plan = FaultPlan(faults=(CrashFault(rank=1, at_call=1),))

    def program(ctx):
        ctx.charge(1.0)
        return ctx.rank * 10

    sim = Cluster(4, faults=plan, backend="sim").run(
        program, raise_on_failure=False
    )
    mp = Cluster(4, faults=plan, backend="mp").run(
        program, raise_on_failure=False
    )
    assert sim.failed_ranks == mp.failed_ranks == [1]
    assert sim.rank_results == mp.rank_results
    assert np.array_equal(sim.rank_times, mp.rank_times)
