"""Blocked-time accounting / utilization tests."""

import numpy as np
import pytest

from repro.runtime import Cluster


def test_barrier_wait_attributed_to_fast_ranks():
    def program(ctx):
        ctx.charge(float(ctx.rank))  # rank r busy for r seconds
        ctx.comm.barrier()
        return None

    res = Cluster(4).run(program)
    # rank 3 arrived last: essentially no waiting; rank 0 waited ~3s
    assert res.blocked_times[3] < 0.1
    assert res.blocked_times[0] == pytest.approx(3.0, abs=0.01)
    assert res.blocked_times[1] == pytest.approx(2.0, abs=0.01)


def test_no_communication_no_blocking():
    def program(ctx):
        ctx.charge(1.0)
        return None

    res = Cluster(3).run(program)
    np.testing.assert_allclose(res.blocked_times, 0.0)
    np.testing.assert_allclose(res.utilization, 1.0)


def test_recv_wait_counted():
    def program(ctx):
        if ctx.rank == 0:
            ctx.charge(5.0)
            ctx.comm.send(1, "late")
            return None
        ctx.comm.recv(0)
        return None

    res = Cluster(2).run(program)
    assert res.blocked_times[1] == pytest.approx(5.0, abs=0.01)
    assert res.blocked_times[0] == 0.0
    assert res.utilization[1] < 0.01


def test_utilization_reflects_imbalance():
    def program(ctx):
        # rank 0 does 4x the work of the others, then all synchronize
        ctx.charge(4.0 if ctx.rank == 0 else 1.0)
        ctx.comm.barrier()
        return None

    res = Cluster(4).run(program)
    u = res.utilization
    assert u[0] > 0.99
    for r in (1, 2, 3):
        assert u[r] == pytest.approx(0.25, abs=0.01)


def test_engine_utilization_accessible():
    """The engine's simulated runs expose meaningful utilization."""
    from repro.datasets import generate_pubmed
    from repro.engine import EngineConfig
    from repro.engine.parallel import _engine_rank_main
    from repro.runtime import MachineSpec
    from repro.text import partition_documents

    corpus = generate_pubmed(60_000, seed=3)
    cfg = EngineConfig(n_major_terms=80, n_clusters=3, kmeans_sample=24)
    parts = partition_documents(corpus.documents, 4)
    sim = Cluster(4, MachineSpec()).run(
        _engine_rank_main, parts, corpus.field_names, cfg
    )
    u = sim.utilization
    assert np.all(u > 0.0) and np.all(u <= 1.0)
    assert u.mean() > 0.4  # mostly-busy ranks on a balanced corpus
