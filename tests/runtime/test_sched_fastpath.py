"""Golden-trace determinism of the scheduler fast paths.

The optimized scheduler (turn retention, per-rank wakeups, candidate
heap) must be *invisible* to the simulation: a P=8 pipeline run with
fast paths enabled and one with ``REPRO_SCHED_SLOWPATH=1`` (the
reference shared-Condition implementation) must produce byte-identical
Chrome trace events and equal ``EngineResult`` contents.
"""

import json

import numpy as np

from repro.bench.harness import default_figure_config
from repro.datasets import generate_pubmed
from repro.engine.parallel import ParallelTextEngine
from repro.runtime.machine import MachineSpec
from repro.runtime.scheduler import SLOWPATH_ENV


def _run_pipeline(monkeypatch, slowpath: bool):
    if slowpath:
        monkeypatch.setenv(SLOWPATH_ENV, "1")
    else:
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
    corpus = generate_pubmed(
        60_000, seed=11, represented_bytes=60_000_000.0
    )
    cfg = default_figure_config()
    eng = ParallelTextEngine(8, machine=MachineSpec(), config=cfg)
    result = eng.run(corpus)
    trace = json.dumps(eng.last_tracer.to_chrome_trace(), sort_keys=True)
    return result, trace


def test_fast_and_slow_paths_bit_identical(monkeypatch):
    fast, fast_trace = _run_pipeline(monkeypatch, slowpath=False)
    slow, slow_trace = _run_pipeline(monkeypatch, slowpath=True)

    # the full virtual-time event log is byte-identical
    assert fast_trace.encode() == slow_trace.encode()

    # ... and so is everything the engine reports
    assert fast.timings.wall_time == slow.timings.wall_time
    assert fast.timings.component_seconds == slow.timings.component_seconds
    assert np.array_equal(fast.timings.rank_times, slow.timings.rank_times)
    assert fast.major_terms == slow.major_terms
    assert fast.topic_terms == slow.topic_terms
    assert fast.association.tobytes() == slow.association.tobytes()
    assert np.array_equal(fast.doc_ids, slow.doc_ids)
    assert fast.coords.tobytes() == slow.coords.tobytes()
    assert np.array_equal(fast.assignments, slow.assignments)
    assert fast.inertia == slow.inertia
    assert fast.kmeans_iters == slow.kmeans_iters


def test_slowpath_env_selects_reference_scheduler(monkeypatch):
    from repro.runtime.scheduler import Scheduler

    monkeypatch.delenv(SLOWPATH_ENV, raising=False)
    assert Scheduler(2).slowpath is False
    monkeypatch.setenv(SLOWPATH_ENV, "1")
    assert Scheduler(2).slowpath is True
    monkeypatch.setenv(SLOWPATH_ENV, "0")
    assert Scheduler(2).slowpath is False
