"""Property-based tests of the communication layer.

Random sequences of collectives with random per-rank contributions must
produce results identical to the plain NumPy reference computation,
for any processor count — and identically on repeated runs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Cluster


@settings(max_examples=30, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=6),
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=6,
        max_size=6,
    ),
)
def test_allreduce_matches_numpy_sum(nprocs, values):
    vals = values[:nprocs]

    def program(ctx):
        return ctx.comm.allreduce(vals[ctx.rank])

    res = Cluster(nprocs).run(program)
    assert res.rank_results == [sum(vals)] * nprocs


@settings(max_examples=30, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=5),
    shape=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_allreduce_arrays_match_numpy(nprocs, shape, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-5, 5, size=(nprocs, shape))

    def program(ctx):
        return ctx.comm.allreduce(data[ctx.rank].copy())

    res = Cluster(nprocs).run(program)
    expected = data.sum(axis=0)
    for r in res.rank_results:
        np.testing.assert_array_equal(r, expected)


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=5),
    ops=st.lists(
        st.sampled_from(
            ["allreduce", "allgather", "bcast", "exscan", "barrier"]
        ),
        min_size=1,
        max_size=8,
    ),
    seed=st.integers(min_value=0, max_value=50),
)
def test_random_collective_sequences_consistent(nprocs, ops, seed):
    """Any same-order collective sequence completes and agrees with
    the reference semantics at every step."""
    rng = np.random.default_rng(seed)
    inputs = rng.integers(0, 100, size=(len(ops), nprocs))

    def program(ctx):
        out = []
        for i, op in enumerate(ops):
            v = int(inputs[i][ctx.rank])
            if op == "allreduce":
                out.append(ctx.comm.allreduce(v))
            elif op == "allgather":
                out.append(tuple(ctx.comm.allgather(v)))
            elif op == "bcast":
                out.append(ctx.comm.bcast(v, root=i % ctx.nprocs))
            elif op == "exscan":
                out.append(ctx.comm.exscan(v))
            else:
                ctx.comm.barrier()
                out.append("b")
        return out

    res = Cluster(nprocs).run(program)
    for i, op in enumerate(ops):
        row = inputs[i]
        for rank in range(nprocs):
            got = res.rank_results[rank][i]
            if op == "allreduce":
                assert got == int(row.sum())
            elif op == "allgather":
                assert got == tuple(int(x) for x in row)
            elif op == "bcast":
                assert got == int(row[i % nprocs])
            elif op == "exscan":
                expected = (
                    None if rank == 0 else int(row[:rank].sum())
                )
                assert got == expected
            else:
                assert got == "b"


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=5),
    n_msgs=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=50),
)
def test_ring_exchange_preserves_payloads(nprocs, n_msgs, seed):
    """Each rank sends a list around the ring; FIFO per channel."""
    rng = np.random.default_rng(seed)
    payloads = rng.integers(0, 1000, size=(nprocs, n_msgs))

    def program(ctx):
        dest = (ctx.rank + 1) % ctx.nprocs
        src = (ctx.rank - 1) % ctx.nprocs
        for i in range(n_msgs):
            ctx.comm.send(dest, int(payloads[ctx.rank][i]))
        return [ctx.comm.recv(src) for _ in range(n_msgs)]

    res = Cluster(nprocs).run(program)
    for rank in range(nprocs):
        src = (rank - 1) % nprocs
        assert res.rank_results[rank] == [
            int(x) for x in payloads[src]
        ]


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=30),
)
def test_determinism_under_random_charge_patterns(nprocs, seed):
    """Random compute/communicate interleavings replay identically."""
    rng = np.random.default_rng(seed)
    charges = rng.uniform(0, 0.01, size=(nprocs, 5))

    def program(ctx):
        log = []
        for i in range(5):
            ctx.charge(float(charges[ctx.rank][i]))
            log.append(ctx.comm.allreduce(ctx.rank * 10 + i))
        return (tuple(log), ctx.now)

    r1 = Cluster(nprocs).run(program)
    r2 = Cluster(nprocs).run(program)
    assert r1.rank_results == r2.rank_results
