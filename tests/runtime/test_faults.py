"""Tests for deterministic fault injection and fault-tolerant runtime.

Covers the fault taxonomy (crash / straggler / delay / drop / rpc-flake
/ fs-stall), survivability semantics (FAILED state instead of world
abort, virtual-time timeouts, dead-peer detection), determinism of the
whole fault machinery, and the zero-overhead-when-idle guarantee.
"""

import math

import pytest

from repro.runtime import (
    Cluster,
    CommTimeoutError,
    CrashFault,
    DeadlockError,
    FaultInjector,
    FaultPlan,
    FsStallFault,
    MessageDelayFault,
    MessageDropFault,
    RankFailedError,
    RpcFlakeFault,
    StragglerFault,
    TransientRpcError,
)


# ----------------------------------------------------------------------
# crash faults: fail-stop, survivors keep running
# ----------------------------------------------------------------------
def test_crash_does_not_abort_independent_survivors():
    plan = FaultPlan(faults=(CrashFault(rank=2, at_call=1),))

    def program(ctx):
        ctx.charge(1.0)
        return ctx.rank * 10

    res = Cluster(4, faults=plan).run(program, raise_on_failure=False)
    assert res.failed_ranks == [2]
    assert res.rank_results[2] is None
    assert [res.rank_results[r] for r in (0, 1, 3)] == [0, 10, 30]


def test_crash_detected_at_barrier_raises_rank_failed():
    plan = FaultPlan(
        faults=(CrashFault(rank=3, at_time=0.5),), comm_timeout_s=5.0
    )

    def program(ctx):
        ctx.charge(1.0)
        ctx.comm.barrier()

    with pytest.raises(RankFailedError) as ei:
        Cluster(4, faults=plan).run(program)
    assert ei.value.failed == [3]
    assert ei.value.rank_times is not None
    assert ei.value.wall_time > 0.0


def test_crash_on_recv_names_dead_sender():
    plan = FaultPlan(
        faults=(CrashFault(rank=1, at_time=0.0),), comm_timeout_s=2.0
    )

    def program(ctx):
        if ctx.rank == 0:
            return ctx.comm.recv(source=1)
        ctx.charge(1.0)  # never reaches the send: crashes at next call
        ctx.comm.send(0, "payload")

    with pytest.raises(RankFailedError) as ei:
        Cluster(2, faults=plan).run(program)
    assert ei.value.failed == [1]


def test_crash_after_last_sync_still_reported():
    # The crash fires at the victim's first runtime call; the survivor
    # never needs it, finishes cleanly, and the driver reports the loss.
    plan = FaultPlan(faults=(CrashFault(rank=1, at_call=1),))

    def program(ctx):
        ctx.charge(0.25)
        return "ok"

    with pytest.raises(RankFailedError) as ei:
        Cluster(2, faults=plan).run(program)
    assert ei.value.failed == [1]
    assert ei.value.rank_times is not None


def test_crash_consumed_across_restart_attempts():
    plan = FaultPlan(faults=(CrashFault(rank=0, at_call=1),))
    injector = FaultInjector(plan)

    def program(ctx):
        ctx.charge(1.0)
        return ctx.rank

    with pytest.raises(RankFailedError):
        Cluster(2, faults=injector).run(program)
    # Same injector, restarted world: the crash stays consumed.
    res = Cluster(2, faults=injector).run(program)
    assert res.rank_results == [0, 1]
    assert res.failed_ranks == []


def test_crash_emits_trace_instant():
    plan = FaultPlan(faults=(CrashFault(rank=1, at_call=1),))
    res = Cluster(2, faults=plan).run(
        lambda ctx: ctx.rank, raise_on_failure=False
    )
    names = [i.name for i in res.tracer.instants]
    assert "fault:crash" in names
    events = res.tracer.to_chrome_trace()
    assert any(e.get("name") == "fault:crash" for e in events)


def test_crash_fault_requires_a_trigger():
    with pytest.raises(ValueError):
        CrashFault(rank=0)


# ----------------------------------------------------------------------
# virtual-time timeouts
# ----------------------------------------------------------------------
def test_recv_timeout_with_alive_peer_is_comm_timeout():
    # No fault plan at all: explicit per-call timeouts work standalone.
    def program(ctx):
        if ctx.rank == 0:
            return ctx.comm.recv(source=1, timeout=0.5)
        ctx.charge(10.0)  # alive but silent past the deadline
        ctx.comm.send(0, "late")

    with pytest.raises(CommTimeoutError) as ei:
        Cluster(2).run(program)
    assert ei.value.timeout == 0.5


def test_recv_timeout_not_fired_when_message_arrives():
    def program(ctx):
        if ctx.rank == 0:
            return ctx.comm.recv(source=1, timeout=50.0)
        ctx.charge(0.01)
        ctx.comm.send(0, "in time")
        return None

    def program_no_timeout(ctx):
        if ctx.rank == 0:
            return ctx.comm.recv(source=1)
        ctx.charge(0.01)
        ctx.comm.send(0, "in time")
        return None

    r1 = Cluster(2).run(program)
    r2 = Cluster(2).run(program_no_timeout)
    assert r1.rank_results[0] == "in time"
    assert list(r1.rank_times) == list(r2.rank_times)


def test_recv_any_timeout():
    def program(ctx):
        if ctx.rank == 0:
            return ctx.comm.recv_any(sources=[1, 2], timeout=0.25)
        ctx.charge(5.0)
        ctx.comm.send(0, ctx.rank)

    with pytest.raises(CommTimeoutError):
        Cluster(3).run(program)


# ----------------------------------------------------------------------
# stragglers, delays, drops, FS stalls
# ----------------------------------------------------------------------
def test_straggler_scales_local_charges():
    plan = FaultPlan(faults=(StragglerFault(rank=1, factor=3.0),))

    def program(ctx):
        ctx.charge(1.0)
        return ctx.now

    res = Cluster(2, faults=plan).run(program)
    assert res.rank_results[0] == pytest.approx(1.0)
    assert res.rank_results[1] == pytest.approx(3.0)


def test_straggler_window_bounds_the_slowdown():
    plan = FaultPlan(
        faults=(StragglerFault(rank=0, factor=2.0, t_start=0.0, t_end=1.5),)
    )

    def program(ctx):
        ctx.charge(1.0)  # inside the window: costs 2.0
        ctx.charge(1.0)  # now=2.0, outside: costs 1.0
        return ctx.now

    res = Cluster(1, faults=plan).run(program)
    assert res.rank_results[0] == pytest.approx(3.0)


def test_straggler_factor_validation():
    with pytest.raises(ValueError):
        StragglerFault(rank=0, factor=0.5)


def _ping(ctx):
    if ctx.rank == 1:
        ctx.comm.send(0, "x")
        return None
    ctx.comm.recv(source=1)
    return ctx.now


def test_message_delay_adds_transit_time():
    plan = FaultPlan(faults=(MessageDelayFault(extra_s=0.5, src=1, dst=0),))
    base = Cluster(2).run(_ping).rank_results[0]
    slow = Cluster(2, faults=plan).run(_ping).rank_results[0]
    assert slow - base == pytest.approx(0.5)


def test_message_drop_costs_a_retransmit():
    plan = FaultPlan(
        faults=(MessageDropFault(src=1, dst=0, nth=1, retransmit_s=0.25),)
    )
    base = Cluster(2).run(_ping).rank_results[0]
    dropped = Cluster(2, faults=plan).run(_ping).rank_results[0]
    assert dropped - base == pytest.approx(0.25)


def test_fs_stall_slows_io_charges():
    plan = FaultPlan(
        faults=(
            FsStallFault(t_start=0.0, t_end=math.inf, factor=2.0, extra_s=0.1),
        )
    )

    def program(ctx):
        ctx.charge_io(1_000_000.0, concurrent_readers=1)
        return ctx.now

    base = Cluster(1).run(program).rank_results[0]
    stalled = Cluster(1, faults=plan).run(program).rank_results[0]
    assert stalled == pytest.approx(2.0 * base + 0.1)


# ----------------------------------------------------------------------
# RPC faults
# ----------------------------------------------------------------------
def test_rpc_flake_raises_transient_error_then_recovers():
    plan = FaultPlan(faults=(RpcFlakeFault(rank=0, nth_calls=(1,)),))

    def program(ctx):
        if ctx.rank != 0:
            ctx.charge(1.0)
            return None
        flaked = 0
        while True:
            try:
                return (ctx.rpc(1, lambda: 42), flaked)
            except TransientRpcError:
                flaked += 1

    res = Cluster(2, faults=plan).run(program)
    assert res.rank_results[0] == (42, 1)


def test_rpc_to_dead_target_raises_rank_failed():
    plan = FaultPlan(faults=(CrashFault(rank=1, at_call=1),))

    def program(ctx):
        if ctx.rank != 0:
            return None
        ctx.charge(1.0)  # let the victim crash first
        try:
            ctx.rpc(1, lambda: 42)
        except RankFailedError as exc:
            return ("dead", exc.failed)
        return "unreachable"

    res = Cluster(2, faults=plan).run(program, raise_on_failure=False)
    assert res.rank_results[0] == ("dead", [1])
    assert res.failed_ranks == [1]


# ----------------------------------------------------------------------
# failure detector
# ----------------------------------------------------------------------
def test_failure_detector_latency():
    plan = FaultPlan(
        faults=(CrashFault(rank=3, at_call=1),), detection_latency_s=0.5
    )

    def program(ctx):
        if ctx.rank == 3:
            return None
        early = list(ctx.failed_ranks())  # t=0: crash not yet visible
        ctx.charge(1.0)
        late = list(ctx.failed_ranks())  # t=1.0 >= 0 + 0.5: visible
        return (early, late, ctx.is_alive(3), ctx.is_alive(0))

    res = Cluster(4, faults=plan).run(program, raise_on_failure=False)
    for r in (0, 1, 2):
        early, late, dead3_alive, rank0_alive = res.rank_results[r]
        assert early == []
        assert late == [3]
        assert dead3_alive is False
        assert rank0_alive is True


def test_failure_detector_empty_without_faults():
    res = Cluster(2).run(lambda ctx: ctx.failed_ranks())
    assert res.rank_results == [[], []]


# ----------------------------------------------------------------------
# deadlock diagnostics (satellite: enriched DeadlockError)
# ----------------------------------------------------------------------
def test_deadlock_error_carries_clocks_and_blocked_time():
    def program(ctx):
        ctx.charge(float(ctx.rank + 1))
        ctx.comm.recv(source=(ctx.rank + 1) % ctx.nprocs)

    with pytest.raises(DeadlockError) as ei:
        Cluster(3).run(program)
    err = ei.value
    assert set(err.clocks) == {0, 1, 2}
    assert err.clocks[2] == pytest.approx(3.0)
    assert set(err.blocked_time) == {0, 1, 2}
    msg = str(err)
    assert "t=" in msg and "blocked" in msg


# ----------------------------------------------------------------------
# determinism and zero overhead
# ----------------------------------------------------------------------
def _busy_program(ctx):
    log = []
    for i in range(4):
        ctx.charge(0.001 * ((ctx.rank * 5 + i) % 3 + 1))
        log.append(ctx.comm.allreduce(ctx.rank + i))
    ctx.comm.send((ctx.rank + 1) % ctx.nprocs, ctx.rank)
    ctx.comm.recv(source=(ctx.rank - 1) % ctx.nprocs)
    return tuple(log)


def test_fault_run_is_bit_reproducible():
    plan = FaultPlan(
        faults=(
            StragglerFault(rank=1, factor=2.5),
            MessageDelayFault(extra_s=0.01, src=2),
            MessageDropFault(src=0, dst=1, nth=2),
        ),
        comm_timeout_s=30.0,
    )
    r1 = Cluster(4, faults=plan).run(_busy_program)
    r2 = Cluster(4, faults=plan).run(_busy_program)
    assert r1.rank_results == r2.rank_results
    assert list(r1.rank_times) == list(r2.rank_times)
    assert r1.tracer.instants == r2.tracer.instants
    assert r1.tracer.to_chrome_trace() == r2.tracer.to_chrome_trace()


def test_empty_plan_has_zero_overhead():
    plain = Cluster(4).run(_busy_program)
    armed = Cluster(4, faults=FaultPlan()).run(_busy_program)
    assert plain.rank_results == armed.rank_results
    assert list(plain.rank_times) == list(armed.rank_times)
    assert list(plain.blocked_times) == list(armed.blocked_times)


# ----------------------------------------------------------------------
# plan serialization / generation
# ----------------------------------------------------------------------
def test_fault_plan_json_roundtrip():
    plan = FaultPlan(
        faults=(
            CrashFault(rank=2, at_time=1.5),
            CrashFault(rank=0, at_call=7),
            StragglerFault(rank=1, factor=3.0, net_factor=2.0, t_end=9.0),
            MessageDelayFault(extra_s=0.25, src=1, dst=0, t_start=1.0),
            MessageDropFault(src=3, dst=2, nth=4, retransmit_s=0.5),
            RpcFlakeFault(rank=1, nth_calls=(2, 5)),
            FsStallFault(t_start=0.5, t_end=2.5, factor=4.0, ranks=(0, 1)),
        ),
        seed=13,
        comm_timeout_s=17.0,
        detection_latency_s=0.02,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_fault_plan_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_dict({"faults": [{"kind": "gremlin"}]})


def test_fault_plan_random_is_deterministic():
    p1 = FaultPlan.random(8, seed=3, n_crashes=2, n_stragglers=1)
    p2 = FaultPlan.random(8, seed=3, n_crashes=2, n_stragglers=1)
    assert p1 == p2
    assert len(p1.crash_faults) == 2
    victims = {f.rank for f in p1.crash_faults}
    assert len(victims) == 2
    assert FaultPlan.random(8, seed=4, n_crashes=2) != p1


def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(comm_timeout_s=0.0)
    with pytest.raises(ValueError):
        FaultPlan(detection_latency_s=-1.0)


# ----------------------------------------------------------------------
# abort semantics preserved for ordinary failures
# ----------------------------------------------------------------------
def test_ordinary_exception_still_aborts_world_under_plan():
    plan = FaultPlan()

    def program(ctx):
        if ctx.rank == 1:
            raise ValueError("real bug, not a fault")
        ctx.comm.barrier()

    with pytest.raises(RuntimeError, match="rank 1 failed"):
        Cluster(3, faults=plan).run(program)


def test_failed_rank_times_are_final_clocks():
    plan = FaultPlan(faults=(CrashFault(rank=0, at_time=0.75),))

    def program(ctx):
        ctx.charge(1.0)
        # charges are not sync points; the next runtime call is, and
        # rank 0's clock (1.0) is past the 0.75 trigger there
        ctx.rpc(ctx.rank, lambda: None)
        ctx.charge(1.0)
        return ctx.now

    res = Cluster(2, faults=plan).run(program, raise_on_failure=False)
    assert res.failed_ranks == [0]
    # the victim's clock froze where it died
    assert res.rank_times[0] == pytest.approx(1.0)
    assert res.rank_times[1] >= 2.0
