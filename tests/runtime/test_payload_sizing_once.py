"""Zero-redundancy payload sizing.

Every comms operation must measure a payload's wire size exactly once:
the size is cached on the in-flight :class:`~repro.runtime.comm.Message`
(point-to-point) or in the collective gate's arrival record, and a
caller-supplied ``nbytes_hint`` suppresses measurement entirely.
"""

import numpy as np
import pytest

import repro.runtime.comm as comm_mod
from repro.runtime import Cluster


@pytest.fixture
def count_sizing(monkeypatch):
    """Count payload_nbytes calls per payload object identity."""
    counts: dict[int, int] = {}
    real = comm_mod.payload_nbytes

    def counting(obj):
        counts[id(obj)] = counts.get(id(obj), 0) + 1
        return real(obj)

    monkeypatch.setattr(comm_mod, "payload_nbytes", counting)
    return counts


def test_sent_numpy_payload_sized_exactly_once(count_sizing):
    payload = np.arange(1024, dtype=np.float64)

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, payload)
        elif ctx.rank == 1:
            got = ctx.comm.recv(0)
            assert np.array_equal(got, payload)

    Cluster(2).run(program)
    assert count_sizing[id(payload)] == 1


def test_probe_then_recv_does_not_resize(count_sizing):
    payload = np.ones(256, dtype=np.int64)

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, payload)
        elif ctx.rank == 1:
            while not ctx.comm.probe(0):
                ctx.charge(1e-3)  # advance virtual time until arrival
            ctx.comm.recv(0)

    Cluster(2).run(program)
    assert count_sizing[id(payload)] == 1


def test_allgather_sizes_each_contribution_once(count_sizing):
    nprocs = 4
    payloads = [np.full(64, r, dtype=np.float64) for r in range(nprocs)]

    def program(ctx):
        out = ctx.comm.allgather(payloads[ctx.rank])
        assert len(out) == nprocs

    Cluster(nprocs).run(program)
    # one sizing per contributing rank -- not one per fan-out leg
    for p in payloads:
        assert count_sizing[id(p)] == 1


def test_bcast_sizes_root_payload_once(count_sizing):
    payload = np.zeros((32, 32))

    def program(ctx):
        got = ctx.comm.bcast(payload if ctx.rank == 0 else None, root=0)
        assert got.shape == (32, 32)

    Cluster(4).run(program)
    assert count_sizing[id(payload)] == 1


def test_nbytes_hint_suppresses_sizing(count_sizing):
    payload = np.zeros(4096)

    def program(ctx):
        ctx.comm.allgather(payload, nbytes_hint=4096.0)

    Cluster(4).run(program)
    assert id(payload) not in count_sizing


def test_self_send_is_zero_copy():
    payload = np.arange(10)

    def program(ctx):
        ctx.comm.send(ctx.rank, payload, tag=3)
        got = ctx.comm.recv(ctx.rank, tag=3)
        # delivered by reference, not pickled/copied
        assert got is payload

    Cluster(2).run(program)
