"""Tracing and StageTimings tests."""

import numpy as np
import pytest

from repro.engine.timings import COMPONENTS, StageTimings
from repro.runtime import Cluster, Tracer


def test_region_records_virtual_extent():
    def program(ctx):
        with ctx.region("work"):
            ctx.charge(2.5)
        with ctx.region("more"):
            ctx.charge(0.5)
        return None

    res = Cluster(2).run(program)
    tr = res.tracer
    np.testing.assert_allclose(tr.per_rank_totals("work"), [2.5, 2.5])
    np.testing.assert_allclose(tr.per_rank_totals("more"), [0.5, 0.5])
    assert tr.component_names() == ["work", "more"]


def test_region_accumulates_across_reentry():
    def program(ctx):
        for _ in range(3):
            with ctx.region("loop"):
                ctx.charge(1.0)
        return None

    res = Cluster(1).run(program)
    assert res.tracer.per_rank_totals("loop")[0] == pytest.approx(3.0)


def test_region_includes_communication_wait():
    def program(ctx):
        with ctx.region("sync"):
            if ctx.rank == 0:
                ctx.charge(4.0)
            ctx.comm.barrier()
        return None

    res = Cluster(2).run(program)
    totals = res.tracer.per_rank_totals("sync")
    # the fast rank's region includes its barrier wait
    assert totals[1] >= 4.0


def test_component_times_take_max_over_ranks():
    tr = Tracer(3)
    tr.record(0, "x", 0.0, 1.0)
    tr.record(1, "x", 0.0, 5.0)
    tr.record(2, "x", 0.0, 2.0)
    assert tr.component_times() == {"x": 5.0}


def test_component_percentages_sum_100():
    tr = Tracer(1)
    tr.record(0, "a", 0.0, 3.0)
    tr.record(0, "b", 3.0, 4.0)
    pct = tr.component_percentages()
    assert pct["a"] == pytest.approx(75.0)
    assert pct["b"] == pytest.approx(25.0)


def test_invalid_span_rejected():
    tr = Tracer(1)
    with pytest.raises(ValueError):
        tr.record(0, "x", 2.0, 1.0)


def test_stage_timings_from_tracer_filters_components():
    tr = Tracer(2)
    tr.record(0, "scan", 0.0, 2.0)
    tr.record(1, "scan", 0.0, 3.0)
    tr.record(0, "index", 2.0, 4.0)
    tr.record(1, "index", 3.0, 4.0)
    tr.record(0, "index:invert", 2.0, 3.5)  # sub-region: excluded
    timings = StageTimings.from_tracer(tr, np.array([4.0, 4.0]))
    assert set(timings.component_seconds) <= set(COMPONENTS)
    assert timings.component_seconds["scan"] == 3.0
    assert timings.component_seconds["index"] == 2.0
    assert timings.wall_time == 4.0
    np.testing.assert_array_equal(timings.per_rank["scan"], [2.0, 3.0])


def test_stage_timings_percentages_empty():
    t = StageTimings(component_seconds={}, wall_time=0.0)
    assert t.component_percentages == {}
    t2 = StageTimings(component_seconds={"a": 0.0}, wall_time=0.0)
    assert t2.component_percentages == {"a": 0.0}
