"""Tests for the deterministic virtual-time scheduler."""

import pytest

from repro.runtime import Cluster, DeadlockError, MachineSpec


def test_single_rank_runs_and_returns():
    res = Cluster(1).run(lambda ctx: ctx.rank * 10 + 7)
    assert res.rank_results == [7]
    assert res.wall_time == 0.0


def test_all_ranks_run():
    res = Cluster(5).run(lambda ctx: ctx.rank)
    assert res.rank_results == [0, 1, 2, 3, 4]


def test_charge_advances_only_own_clock():
    def program(ctx):
        ctx.charge(float(ctx.rank))
        return ctx.now

    res = Cluster(4).run(program)
    assert res.rank_results == [0.0, 1.0, 2.0, 3.0]
    assert res.wall_time == 3.0


def test_min_clock_rank_runs_first():
    """Globally visible ops execute in virtual-time order."""
    order = []

    def program(ctx):
        # rank r charges (nprocs - r) seconds, so rank 3 has the
        # smallest clock and must win the next turn.
        ctx.charge(float(ctx.nprocs - ctx.rank))
        ctx.comm.barrier()  # sync point: yields the turn
        order.append((ctx.now, ctx.rank))

    Cluster(4).run(program)
    # After the barrier everyone has the same clock; arrival order into
    # the barrier must have been by increasing virtual time.
    assert len(order) == 4


def test_deterministic_interleaving():
    """The same program produces the identical event order every run."""

    def program(ctx):
        log = []
        for i in range(5):
            ctx.charge(0.001 * ((ctx.rank * 7 + i * 3) % 5 + 1))
            v = ctx.comm.allreduce(ctx.rank + i)
            log.append(v)
        return tuple(log)

    r1 = Cluster(6).run(program)
    r2 = Cluster(6).run(program)
    assert r1.rank_results == r2.rank_results
    assert list(r1.rank_times) == list(r2.rank_times)


def test_rank_exception_propagates():
    def program(ctx):
        if ctx.rank == 2:
            raise ValueError("boom on rank 2")
        ctx.comm.barrier()

    with pytest.raises(RuntimeError, match="rank 2 failed"):
        Cluster(4).run(program)


def test_deadlock_detected():
    def program(ctx):
        # Everyone receives, nobody sends.
        ctx.comm.recv(source=(ctx.rank + 1) % ctx.nprocs)

    with pytest.raises(DeadlockError):
        Cluster(3).run(program)


def test_partial_collective_deadlocks():
    def program(ctx):
        if ctx.rank == 0:
            return 0  # rank 0 skips the barrier
        ctx.comm.barrier()

    with pytest.raises(DeadlockError):
        Cluster(3).run(program)


def test_nprocs_validation():
    with pytest.raises(ValueError):
        Cluster(0)


def test_clock_negative_charge_rejected():
    def program(ctx):
        ctx.charge(-1.0)

    with pytest.raises(RuntimeError, match="rank 0 failed"):
        Cluster(1).run(program)


def test_machine_spec_attached():
    spec = MachineSpec(net_latency_s=1e-3)
    c = Cluster(2, machine=spec)

    def program(ctx):
        return ctx.machine.net_latency_s

    assert c.run(program).rank_results == [1e-3, 1e-3]
