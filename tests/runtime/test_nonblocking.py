"""Non-blocking point-to-point and wildcard-receive tests."""

import pytest

from repro.runtime import Cluster, DeadlockError


def test_isend_completes_immediately():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(1, "x")
            assert req.done
            req.wait()
            return None
        return ctx.comm.recv(0)

    res = Cluster(2).run(program)
    assert res.rank_results[1] == "x"


def test_irecv_wait():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, {"k": 1})
            return None
        req = ctx.comm.irecv(0)
        return req.wait()

    res = Cluster(2).run(program)
    assert res.rank_results[1] == {"k": 1}


def test_irecv_test_polls_without_blocking():
    def program(ctx):
        if ctx.rank == 0:
            ctx.charge(1.0)
            ctx.comm.send(1, "late")
            ctx.comm.barrier()
            return None
        req = ctx.comm.irecv(0)
        polls_before = 0
        while not req.test():
            polls_before += 1
            ctx.charge(0.3)  # advance virtual time between polls
            if polls_before > 100:
                raise AssertionError("never completed")
        ctx.comm.barrier()
        return (polls_before, req.wait())

    res = Cluster(2).run(program)
    polls, payload = res.rank_results[1]
    assert payload == "late"
    assert polls >= 1  # message genuinely not there at first poll


def test_irecv_wait_after_successful_test():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, 42)
            ctx.comm.barrier()
            return None
        ctx.comm.barrier()
        req = ctx.comm.irecv(0)
        assert req.test()
        return req.wait()

    res = Cluster(2).run(program)
    assert res.rank_results[1] == 42


def test_probe():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, "m")
            ctx.comm.barrier()
            return None
        assert not ctx.comm.probe(0, tag=9)  # wrong tag
        ctx.comm.barrier()
        assert ctx.comm.probe(0)
        assert ctx.comm.recv(0) == "m"
        assert not ctx.comm.probe(0)
        return True

    Cluster(2).run(program)


def test_recv_any_takes_earliest():
    def program(ctx):
        if ctx.rank == 1:
            ctx.charge(2.0)
            ctx.comm.send(0, "slow")
            return None
        if ctx.rank == 2:
            ctx.charge(0.5)
            ctx.comm.send(0, "fast")
            return None
        a = ctx.comm.recv_any([1, 2])
        b = ctx.comm.recv_any([1, 2])
        return [a, b]

    res = Cluster(3).run(program)
    assert res.rank_results[0] == [(2, "fast"), (1, "slow")]


def test_recv_any_blocks_until_any_sender():
    def program(ctx):
        if ctx.rank == 0:
            src, msg = ctx.comm.recv_any([1, 2])
            return (src, msg, ctx.now)
        if ctx.rank == 2:
            ctx.charge(3.0)
            ctx.comm.send(0, "from2")
        return None
        # rank 1 never sends

    res = Cluster(3).run(program)
    src, msg, t = res.rank_results[0]
    assert (src, msg) == (2, "from2")
    assert t > 3.0


def test_recv_any_many_messages_one_wake():
    """Multiple senders racing the same waiter must not corrupt it."""

    def program(ctx):
        if ctx.rank == 0:
            got = [ctx.comm.recv_any([1, 2, 3]) for _ in range(6)]
            return sorted(m for _, m in got)
        for i in range(2):
            ctx.charge(0.1 * ctx.rank + 0.01 * i)
            ctx.comm.send(0, f"m{ctx.rank}.{i}")
        return None

    res = Cluster(4).run(program)
    assert res.rank_results[0] == sorted(
        f"m{r}.{i}" for r in (1, 2, 3) for i in range(2)
    )


def test_recv_any_deadlocks_when_nobody_sends():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.recv_any([1])
        # rank 1 exits immediately

    with pytest.raises(DeadlockError):
        Cluster(2).run(program)


def test_recv_any_cleanup_allows_following_recv():
    def program(ctx):
        if ctx.rank == 0:
            src, m = ctx.comm.recv_any([1, 2])
            m2 = ctx.comm.recv(1)  # plain recv on a previously-watched box
            return (m, m2)
        if ctx.rank == 1:
            ctx.comm.send(0, "a")
            ctx.charge(1.0)
            ctx.comm.send(0, "b")
        return None

    res = Cluster(3).run(program)
    assert res.rank_results[0] == ("a", "b")
