"""mpi4py-compatible facade tests: idiomatic mpi4py programs run
unchanged on the simulator."""

import numpy as np
import pytest

from repro.runtime import (
    ANY_SOURCE,
    MAX,
    MIN,
    MPIComm,
    PROD,
    SUM,
    Cluster,
)


def _run(program, nprocs=4):
    return Cluster(nprocs).run(lambda ctx: program(MPIComm(ctx)))


def test_get_rank_size():
    def program(comm):
        return (comm.Get_rank(), comm.Get_size(), comm.rank, comm.size)

    res = _run(program, 3)
    assert res.rank_results == [(r, 3, r, 3) for r in range(3)]


def test_mpi4py_tutorial_bcast():
    """The mpi4py tutorial's broadcast example, verbatim shape."""

    def program(comm):
        if comm.Get_rank() == 0:
            data = {"key1": [7, 2.72, 2 + 3j], "key2": ("abc", "xyz")}
        else:
            data = None
        data = comm.bcast(data, root=0)
        return data["key2"]

    res = _run(program)
    assert all(r == ("abc", "xyz") for r in res.rank_results)


def test_mpi4py_tutorial_scatter_gather():
    def program(comm):
        size = comm.Get_size()
        rank = comm.Get_rank()
        if rank == 0:
            data = [(i + 1) ** 2 for i in range(size)]
        else:
            data = None
        data = comm.scatter(data, root=0)
        assert data == (rank + 1) ** 2
        gathered = comm.gather(data, root=0)
        return gathered

    res = _run(program)
    assert res.rank_results[0] == [1, 4, 9, 16]
    assert res.rank_results[1] is None


def test_mpi4py_tutorial_send_recv():
    def program(comm):
        rank = comm.Get_rank()
        if rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        if rank == 1:
            return comm.recv(source=0, tag=11)
        return None

    res = _run(program, 2)
    assert res.rank_results[1] == {"a": 7, "b": 3.14}


def test_named_reduction_ops():
    def program(comm):
        r = comm.Get_rank() + 1
        return (
            comm.allreduce(r, op=SUM),
            comm.allreduce(r, op=PROD),
            comm.allreduce(r, op=MAX),
            comm.allreduce(r, op=MIN),
        )

    res = _run(program, 4)
    assert res.rank_results[0] == (10, 24, 4, 1)


def test_numpy_allreduce():
    def program(comm):
        return comm.allreduce(np.full(3, comm.Get_rank()), op=MAX)

    res = _run(program, 3)
    np.testing.assert_array_equal(res.rank_results[0], [2, 2, 2])


def test_any_source_recv():
    def program(comm):
        if comm.Get_rank() == 0:
            out = [comm.recv(source=ANY_SOURCE) for _ in range(3)]
            return sorted(out)
        comm.send(f"m{comm.Get_rank()}", dest=0)
        return None

    res = _run(program, 4)
    assert res.rank_results[0] == ["m1", "m2", "m3"]


def test_nonblocking_and_probe():
    def program(comm):
        if comm.Get_rank() == 0:
            req = comm.isend("x", dest=1)
            req.wait()
            comm.Barrier()
            return None
        comm.Barrier()
        assert comm.iprobe(source=0)
        return comm.irecv(source=0).wait()

    res = _run(program, 2)
    assert res.rank_results[1] == "x"


def test_split_facade():
    def program(comm):
        sub = comm.Split(color=comm.Get_rank() % 2)
        return sub.allreduce(comm.Get_rank())

    res = _run(program, 4)
    assert res.rank_results == [2, 4, 2, 4]


def test_exscan_and_alltoall():
    def program(comm):
        ex = comm.exscan(1)
        a2a = comm.alltoall(
            [f"{comm.Get_rank()}->{d}" for d in range(comm.Get_size())]
        )
        return (ex, a2a[0])

    res = _run(program, 3)
    assert [r[0] for r in res.rank_results] == [None, 1, 2]
    assert res.rank_results[2][1] == "0->2"


def test_wrap_type_checked():
    with pytest.raises(TypeError):
        MPIComm(object())
