"""Wall-clock benchmark harness tests (small downscale)."""

import json

from repro.bench.wallclock import (
    SCHEMA,
    BenchPoint,
    backend_compare,
    build_report,
    compare,
    measure,
    reap_children,
    run_bench,
)


def test_measure_produces_stage_breakdown():
    points = measure(
        procs=(1, 2), repeats=1, downscale=50_000.0, progress=None
    )
    assert set(points) == {1, 2}
    for p, pt in points.items():
        assert pt.wall_seconds > 0
        assert pt.virtual_seconds > 0
        # stage windows captured via REPRO_TRACE_WALL
        assert "scan" in pt.stages_wall_seconds
        assert "clusproj" in pt.stages_wall_seconds
        assert all(v >= 0 for v in pt.stages_wall_seconds.values())
    # parallelism reduces virtual time
    assert points[2].virtual_seconds < points[1].virtual_seconds


def _point(p, wall, virtual):
    return BenchPoint(
        nprocs=p,
        wall_seconds=wall,
        wall_seconds_all=[wall],
        virtual_seconds=virtual,
        stages_wall_seconds={},
        stages_virtual_seconds={},
    )


def _baseline(wall, virtual):
    return {
        "schema": SCHEMA,
        "commit": "feedc0de",
        "results": {
            "2": {"wall_seconds": wall, "virtual_seconds": virtual}
        },
    }


def test_compare_flags_wall_regression():
    points = {2: _point(2, wall=2.0, virtual=10.0)}
    speedups, regs = compare(points, _baseline(1.0, 10.0), threshold=0.15)
    assert speedups == {"2": 0.5}
    assert [r.kind for r in regs] == ["wall"]


def test_compare_accepts_within_threshold():
    points = {2: _point(2, wall=1.1, virtual=10.0)}
    _, regs = compare(points, _baseline(1.0, 10.0), threshold=0.15)
    assert regs == []


def test_compare_flags_virtual_drift():
    points = {2: _point(2, wall=1.0, virtual=10.000001)}
    _, regs = compare(points, _baseline(1.0, 10.0), threshold=0.15)
    assert [r.kind for r in regs] == ["virtual"]


def test_run_bench_roundtrip(tmp_path, capsys):
    out = tmp_path / "BENCH_runtime.json"
    # first run: no baseline yet, just writes the report
    rc = run_bench(
        out_path=out,
        procs=(2,),
        repeats=1,
        downscale=50_000.0,
        progress=lambda *_: None,
    )
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert "2" in report["results"]
    assert "baseline" not in report

    # second run compares against the first and must not regress
    # (same machine, same workload, generous threshold)
    rc = run_bench(
        out_path=out,
        procs=(2,),
        repeats=1,
        downscale=50_000.0,
        threshold=5.0,
        progress=lambda *_: None,
    )
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["baseline"]["regressions"] == []
    assert "2" in report["baseline"]["speedup_vs_baseline"]


def test_build_report_schema_fields():
    points = {4: _point(4, wall=0.5, virtual=20.0)}
    report, regs, advisories = build_report(
        {"sim": points}, {"dataset": "pubmed"}
    )
    assert regs == []
    assert advisories == []
    assert report["schema"] == SCHEMA
    assert report["config"] == {"dataset": "pubmed"}
    assert set(report["env"]) == {"python", "numpy", "machine", "cpus"}
    assert report["results"]["4"]["wall_seconds"] == 0.5
    # single backend: no cross-backend table
    assert "backend_compare" not in report
    mvm = report["backends"]["sim"]["4"]["modeled_vs_measured"]
    assert mvm["end_to_end"] == {
        "modeled_seconds": 20.0,
        "measured_seconds": 0.5,
    }


def test_backend_compare_flags_virtual_drift():
    sim = {8: _point(8, wall=1.0, virtual=10.0)}
    mp = {8: _point(8, wall=0.5, virtual=10.000001)}
    table, regs, advisories = backend_compare({"sim": sim, "mp": mp})
    assert table["8"]["virtual_match"] is False
    assert [r.kind for r in regs] == ["virtual-backend"]
    assert advisories == []


def test_backend_compare_slow_mp_is_advisory_only():
    sim = {8: _point(8, wall=1.0, virtual=10.0)}
    mp = {8: _point(8, wall=2.0, virtual=10.0)}
    table, regs, advisories = backend_compare({"sim": sim, "mp": mp})
    assert regs == []
    assert len(advisories) == 1
    assert table["8"]["mp_speedup"] == 0.5
    # below P=8 the wall comparison is not even advisory
    sim = {2: _point(2, wall=1.0, virtual=10.0)}
    mp = {2: _point(2, wall=2.0, virtual=10.0)}
    _, regs, advisories = backend_compare({"sim": sim, "mp": mp})
    assert regs == [] and advisories == []


def test_build_report_cross_backend_and_baseline_mp_virtual():
    sim = {8: _point(8, wall=1.0, virtual=10.0)}
    mp = {8: _point(8, wall=0.9, virtual=10.0)}
    baseline = {
        "schema": SCHEMA,
        "commit": "feedc0de",
        "results": {
            "8": {"wall_seconds": 1.0, "virtual_seconds": 10.0}
        },
    }
    report, regs, _ = build_report(
        {"sim": sim, "mp": mp}, {}, baseline
    )
    assert regs == []
    assert report["backend_compare"]["8"]["mp_speedup"] > 1.0
    # mp virtual drift against the committed baseline is a hard fail
    mp_drift = {8: _point(8, wall=0.9, virtual=11.0)}
    _, regs, _ = build_report({"sim": sim, "mp": mp_drift}, {}, baseline)
    assert "virtual-backend" in {r.kind for r in regs}
    assert "virtual" in {r.kind for r in regs}


def test_measure_mp_backend_agrees_with_sim():
    kwargs = dict(procs=(2,), repeats=1, downscale=50_000.0)
    sim = measure(backend="sim", **kwargs)
    mp = measure(backend="mp", **kwargs)
    assert mp[2].backend == "mp"
    assert mp[2].virtual_seconds == sim[2].virtual_seconds
    assert mp[2].stages_virtual_seconds == sim[2].stages_virtual_seconds
    assert mp[2].counters == sim[2].counters
    # teardown left no orphaned children behind
    assert reap_children() == []
