"""Benchmark harness tests (small-scale figure reproductions)."""

import pytest

from repro.bench import (
    FigureReport,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    format_series,
    format_table,
    make_workload,
    run_all_sweeps,
    run_sweep,
)
from repro.engine import EngineConfig

_FAST_CFG = EngineConfig(
    n_major_terms=150, n_clusters=6, kmeans_sample=48, chunk_docs=4
)


@pytest.fixture(scope="module")
def mini_sweeps():
    """A cheap full grid: large downscale, two proc counts."""
    return run_all_sweeps(
        downscale=40_000.0, procs=(2, 4), config=_FAST_CFG, seed=5
    )


def test_make_workload_datasets():
    wl = make_workload("pubmed", "x", 2.75e9, downscale=40_000.0)
    assert wl.corpus.represented_bytes == 2.75e9
    wl2 = make_workload("trec", "y", 1e9, downscale=40_000.0)
    assert wl2.dataset == "trec"
    with pytest.raises(ValueError):
        make_workload("nope", "z", 1e9)


def test_run_sweep_speedup_monotone():
    wl = make_workload("pubmed", "2.75 GB", 2.75e9, downscale=40_000.0)
    sw = run_sweep(wl, procs=(2, 4), config=_FAST_CFG)
    assert sw.speedup(4) > sw.speedup(2) > 1.0
    assert sw.wall(4) < sw.wall(2)
    assert set(sw.component_seconds(2)) == {
        "scan",
        "index",
        "topic",
        "am",
        "docvec",
        "clusproj",
    }


def test_figure5_structure(mini_sweeps):
    rep = figure5(mini_sweeps)
    assert isinstance(rep, FigureReport)
    assert "Pubmed - Overall Timings" in rep.text
    assert "TREC - Overall Timings" in rep.text
    assert set(rep.data["pubmed"]["minutes"]) == {
        "2.75 GB",
        "6.67 GB",
        "16.44 GB",
    }
    # bigger problems take longer at fixed P
    m = rep.data["pubmed"]["minutes"]
    assert m["16.44 GB"][0] > m["6.67 GB"][0] > m["2.75 GB"][0]


def test_figure6_and_7_speedups_reasonable(mini_sweeps):
    for fig, ds in ((figure6, "pubmed"), (figure7, "trec")):
        rep = fig(mini_sweeps)
        for label, vals in rep.data["speedup"].items():
            # speedup at P=4 in (1, 4*1.6) (superlinear only via the
            # memory-pressure anomaly)
            assert 0.5 < vals[-1] < 6.5, (ds, label, vals)
        pct = rep.data["percentages"]
        for j in range(2):
            total = sum(v[j] for v in pct.values())
            assert total == pytest.approx(100.0, abs=0.5)


def test_figure6_pressure_anomaly(mini_sweeps):
    rep = figure6(mini_sweeps)
    s = rep.data["speedup"]
    # the 16.44 GB run is depressed at low processor counts relative
    # to the small size (memory pressure)
    assert s["16.44 GB"][0] < s["2.75 GB"][0]


def test_figure8_components_scale(mini_sweeps):
    rep = figure8(mini_sweeps)
    for ds in ("pubmed", "trec"):
        for group in (
            "Scanning",
            "Indexing",
            "Signature Generation",
            "Clustering & Projection",
        ):
            assert group in rep.data[ds]
    # scanning speedup grows with P for the small PubMed size
    scan = rep.data["pubmed"]["Scanning"]["2.75 GB"]
    assert scan[1] > scan[0]


def test_figure9_balancing():
    rep = figure9(nprocs=4, gen_bytes=800_000, config=_FAST_CFG)
    stats = rep.data["stats"]
    assert stats["dynamic"]["imbalance"] <= stats["static"]["imbalance"]
    assert stats["dynamic"]["wall"] <= stats["static"]["wall"] * 1.02
    assert "Figure 9" in rep.text


def test_format_table_alignment():
    out = format_table(
        "T", "rows", ["a", "bb"], [("r1", [1.0, 2.0]), ("row2", [3.5, 4.25])]
    )
    lines = out.split("\n")
    assert lines[0] == "T"
    assert "r1" in lines[3] and "row2" in lines[4]


def test_format_series():
    out = format_series("S", "x", [1, 2], {"y": [0.1, 0.2]})
    assert "S" in out and "y" in out
