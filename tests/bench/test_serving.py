"""Serving benchmark harness tests (small downscale)."""

import json

import pytest

from repro.bench.serving import (
    SCHEMA,
    ReplicaPoint,
    ReplicaSpec,
    ServePoint,
    build_report,
    compare,
    measure,
    run_bench,
)

# one tiny replica row: 2 shards x 3 workers x 2 brokers + router = 6
# ranks, 4 clients x 3 queries
_SPEC = ReplicaSpec(
    nshards=2,
    workers=3,
    brokers=2,
    replicas=2,
    n_clients=4,
    queries_per_client=3,
)

SMALL = dict(
    shards=(1, 2),
    corpus_bytes=40_000,
    n_clients=2,
    queries_per_client=6,
    replica_matrix=(_SPEC,),
    # the pruning study gets its own dedicated test below -- keeping
    # it out of SMALL keeps the (noisy, wall-clock-gated) study from
    # slowing or flaking every harness test
    pruning_corpus_bytes=0,
)


@pytest.fixture(scope="module")
def measured():
    return measure(progress=None, **SMALL)


def test_replica_spec_parse():
    assert ReplicaSpec.parse("2:3:2:2:4:3") == _SPEC
    assert _SPEC.nprocs == 6
    assert _SPEC.label == "2s-3w-2b-r2-c4"
    with pytest.raises(ValueError):
        ReplicaSpec.parse("2:3:2")


def test_measure_matrix(measured):
    (
        points,
        fault_point,
        fault_meta,
        replica_points,
        failover,
        pruning,
        workbench,
        dashboard,
    ) = measured
    assert pruning is None  # SMALL disables the study
    assert set(points) == {1, 2}
    total = SMALL["n_clients"] * SMALL["queries_per_client"]
    for p, pt in points.items():
        assert pt.nshards == p
        assert pt.served + pt.rejected == total
        assert pt.degraded == 0
        assert pt.throughput_qps > 0
        assert 0 < pt.p50_latency_s <= pt.p99_latency_s
        assert pt.counters["serve.queries"] == total
        assert pt.counters["serve.shard.bytes_scanned"] > 0
    # identical workload replays at every P: same query totals
    assert points[1].served == points[2].served


def test_fault_run_degrades_but_completes(measured):
    _, fault_point, fault_meta, _, _, _, _, _ = measured
    assert fault_meta["completed"]
    assert fault_meta["nshards"] == 2
    assert fault_meta["failed_ranks"] == [fault_meta["crashed_rank"]]
    assert fault_point.degraded > 0
    assert fault_point.degraded_rate > 0


def test_replica_matrix_point(measured):
    _, _, _, replica_points, _, _, _, _ = measured
    assert set(replica_points) == {_SPEC.label}
    pt = replica_points[_SPEC.label]
    assert isinstance(pt, ReplicaPoint)
    assert pt.ranks == _SPEC.nprocs == 6
    assert pt.replicas == 2
    total = _SPEC.n_clients * _SPEC.queries_per_client
    assert pt.served + pt.shed == total
    assert pt.degraded == 0
    assert pt.throughput_qps > 0
    assert pt.counters["serve.queries"] >= pt.served


def test_failover_study(measured):
    _, _, _, _, failover, _, _, _ = measured
    # the crash-masked run answers everything exactly like the
    # fault-free run; the single-replica control reproduces the
    # degradation the tier exists to prevent
    assert failover["fault_r2"]["degraded"] == 0
    assert failover["fault_r2"]["failovers"] >= 1
    assert failover["exact_match_r2"] is True
    assert failover["fault_r1"]["degraded"] > 0
    assert failover["baseline"]["degraded"] == 0
    assert failover["crashed_rank"] == 1 + 2 + failover["crashed_worker"]


def test_workbench_study(measured):
    *_rest, workbench, _dashboard = measured
    assert workbench["exact_match_shards"] is True
    assert workbench["exact_match_slowpath"] is True
    assert set(workbench["points"]) == {"1", "2"}
    for pt in workbench["points"].values():
        assert pt["served"] > 0
        assert pt["sessions_opened"] > 0
        assert pt["throughput_ops_s"] > 0
        # the tight study quotas shed at least one open, and the
        # paused sessions idle past the TTL
        assert pt["quota_shed"] > 0
        assert pt["sessions_evicted"] > 0
        assert pt["counters"]["workbench.sessions.opened"] == (
            pt["sessions_opened"]
        )
    # the same workload replays at every count
    served = {pt["served"] for pt in workbench["points"].values()}
    assert len(served) == 1


def test_dashboard_study(measured):
    *_rest, dashboard = measured
    assert dashboard["exact_match_shards"] is True
    assert dashboard["exact_match_slowpath"] is True
    assert dashboard["exact_match_mp"] is True
    assert dashboard["exact_match_churn"] is True
    assert dashboard["churn"]["live_compactions"] > 0
    points = dashboard["points"]
    assert set(points) == {"1", "2", "4"}
    for pt in points.values():
        assert pt["served"] > 0
        assert pt["facet_windows"] > 0
        assert pt["facet_bytes_scanned"] > 0
        assert pt["counters"]["facets.windows"] == pt["facet_windows"]
    # the same poll transcript replays at every count
    assert len({pt["served"] for pt in points.values()}) == 1
    assert len({pt["facet_windows"] for pt in points.values()}) == 1


def test_measure_is_deterministic(measured):
    (
        points,
        fault_point,
        _,
        replica_points,
        failover,
        _,
        workbench,
        dashboard,
    ) = measured
    (
        again,
        fault_again,
        _,
        replica_again,
        failover_again,
        _,
        wb_again,
        dash_again,
    ) = measure(progress=None, **SMALL)
    for p in points:
        assert points[p] == again[p]
    assert fault_point == fault_again
    assert replica_points == replica_again
    assert failover == failover_again
    assert workbench == wb_again
    assert dashboard == dash_again


def _point(p, **over):
    base = dict(
        nshards=p,
        served=12,
        rejected=0,
        degraded=0,
        degraded_rate=0.0,
        cache_hit_rate=0.25,
        throughput_qps=50.0,
        p50_latency_s=0.001,
        p99_latency_s=0.002,
        makespan_s=0.24,
        counters={},
    )
    base.update(over)
    return ServePoint(**base)


def _replica_point(**over):
    base = dict(
        label=_SPEC.label,
        nshards=2,
        workers=3,
        brokers=2,
        replicas=2,
        ranks=6,
        n_clients=4,
        served=12,
        shed=0,
        shed_rate=0.0,
        degraded=0,
        failovers=0,
        hedges=0,
        suspicions=0,
        cache_hit_rate=0.25,
        throughput_qps=50.0,
        p50_latency_s=0.001,
        p99_latency_s=0.002,
        makespan_s=0.24,
        counters={},
    )
    base.update(over)
    return ReplicaPoint(**base)


def _baseline(points, fault_point, replica_points=None, failover=None):
    from dataclasses import asdict

    doc = {
        "schema": SCHEMA,
        "commit": "feedc0de",
        "results": {str(p): asdict(pt) for p, pt in points.items()},
        "fault": {"point": asdict(fault_point)},
    }
    if replica_points is not None or failover is not None:
        doc["replica"] = {
            "matrix": {
                label: asdict(pt)
                for label, pt in (replica_points or {}).items()
            },
            "failover": failover,
        }
    return doc


def test_compare_exact_match_passes():
    points = {2: _point(2)}
    fault = _point(2, degraded=5, degraded_rate=5 / 12)
    assert compare(points, fault, _baseline(points, fault)) == []


def test_compare_flags_any_drift():
    points = {2: _point(2)}
    fault = _point(2)
    base = _baseline(points, fault)
    drifted = {2: _point(2, throughput_qps=49.0)}
    regs = compare(drifted, fault, base)
    assert [r.field for r in regs] == ["throughput_qps"]
    assert regs[0].nshards == 2

    fault_drift = _point(2, degraded=1, degraded_rate=1 / 12)
    regs = compare(points, fault_drift, base)
    assert {r.field for r in regs} == {"fault.degraded"}


def test_compare_flags_replica_drift():
    from dataclasses import asdict

    points = {2: _point(2)}
    fault = _point(2)
    replica = {_SPEC.label: _replica_point()}
    failover = {
        run: asdict(_replica_point())
        for run in ("baseline", "fault_r2", "fault_r1")
    }
    base = _baseline(points, fault, replica, failover)
    assert compare(points, fault, base, replica, failover) == []

    drifted = {_SPEC.label: _replica_point(failovers=2, shed=1)}
    regs = compare(points, fault, base, drifted, failover)
    assert {r.field for r in regs} == {
        f"replica[{_SPEC.label}].shed",
        f"replica[{_SPEC.label}].failovers",
    }

    fo_drift = dict(failover, fault_r2=asdict(_replica_point(hedges=3)))
    regs = compare(points, fault, base, replica, fo_drift)
    assert {r.field for r in regs} == {"failover.fault_r2.hedges"}


def _workbench_point(**over):
    base = dict(
        nshards=2,
        served=40,
        rejected=6,
        quota_shed=4,
        quota_shed_rate=4 / 46,
        sessions_opened=4,
        sessions_closed=3,
        sessions_evicted=1,
        sets_saved=12,
        artifact_hit_rate=0.5,
        throughput_ops_s=30.0,
        p50_latency_s=0.001,
        p99_latency_s=0.002,
        makespan_s=1.5,
        counters={},
    )
    base.update(over)
    return base


def test_compare_flags_workbench_drift():
    points = {2: _point(2)}
    fault = _point(2)
    base = _baseline(points, fault)
    base["workbench"] = {"points": {"2": _workbench_point()}}
    wb = {"points": {"2": _workbench_point()}}
    assert compare(points, fault, base, workbench=wb) == []

    drifted = {
        "points": {"2": _workbench_point(sessions_evicted=2)}
    }
    regs = compare(points, fault, base, workbench=drifted)
    assert {r.field for r in regs} == {"workbench.sessions_evicted"}


def _dashboard_point(**over):
    base = dict(
        nshards=2,
        served=48,
        rejected=0,
        degraded=0,
        facet_windows=24.0,
        facet_bytes_scanned=4096.0,
        emerging_hits=9.0,
        cache_hit_rate=0.1,
        throughput_qps=80.0,
        p50_latency_s=0.001,
        p99_latency_s=0.002,
        makespan_s=0.6,
        counters={},
    )
    base.update(over)
    return base


def test_compare_flags_dashboard_drift():
    points = {2: _point(2)}
    fault = _point(2)
    base = _baseline(points, fault)
    base["dashboard"] = {"points": {"2": _dashboard_point()}}
    dash = {"points": {"2": _dashboard_point()}}
    assert compare(points, fault, base, dashboard=dash) == []

    drifted = {
        "points": {"2": _dashboard_point(emerging_hits=10.0)}
    }
    regs = compare(points, fault, base, dashboard=drifted)
    assert {r.field for r in regs} == {"dashboard.emerging_hits"}


def _pruning_run(**over):
    base = dict(
        label="blockmax-b1",
        pruned=True,
        batch_max_queries=1,
        served=12,
        cache_hit_rate=0.0,
        bytes_scanned=1024.0,
        blocks_skipped=3.0,
        makespan_s=0.2,
        p50_latency_s=0.001,
        p99_latency_s=0.002,
        wall_s=0.1,
        wall_throughput_qps=120.0,
        exact_match=True,
    )
    base.update(over)
    return base


def test_compare_flags_pruning_drift():
    points = {2: _point(2)}
    fault = _point(2)
    base = _baseline(points, fault)
    base["pruning"] = {
        "nshards": 1,
        "runs": {"blockmax-b1": _pruning_run()},
    }
    pruning = {"nshards": 1, "runs": {"blockmax-b1": _pruning_run()}}
    assert compare(points, fault, base, None, None, pruning) == []

    drifted = {
        "nshards": 1,
        "runs": {"blockmax-b1": _pruning_run(blocks_skipped=4.0)},
    }
    regs = compare(points, fault, base, None, None, drifted)
    assert {r.field for r in regs} == {
        "pruning[blockmax-b1].blocks_skipped"
    }

    # wall-clock is machine-local: never compared against the baseline
    walled = {
        "nshards": 1,
        "runs": {
            "blockmax-b1": _pruning_run(
                wall_s=9.9, wall_throughput_qps=1.2
            )
        },
    }
    assert compare(points, fault, base, None, None, walled) == []


def test_pruning_study_small(tmp_path):
    from repro.bench.serving import _measure_pruning

    study = _measure_pruning(
        tmp_path,
        corpus_seed=4,
        workload_seed=7,
        pruning_corpus_bytes=300_000,
        batch_sizes=(1, 4),
        progress=None,
    )
    assert set(study["runs"]) == {
        "exhaustive",
        "blockmax-b1",
        "blockmax-b4",
    }
    assert study["runs"]["exhaustive"]["exact_match"] is None
    for label in ("blockmax-b1", "blockmax-b4"):
        run = study["runs"][label]
        assert run["exact_match"] is True  # the oracle
        assert run["served"] == study["runs"]["exhaustive"]["served"]
        assert run["wall_s"] > 0
    assert study["exact_match_all"] is True
    assert study["best_config"].startswith("blockmax-")
    json.dumps(study)


def test_pruning_study_disabled(tmp_path):
    from repro.bench.serving import _measure_pruning

    assert (
        _measure_pruning(tmp_path, 4, 7, 0, (1, 4), None) is None
    )


def test_compare_ignores_unknown_shard_counts():
    points = {4: _point(4)}
    fault = _point(4)
    base = _baseline({2: _point(2)}, fault)
    assert compare(points, fault, base) == []
    # unknown replica labels are likewise skipped
    replica = {"9s-9w-9b-r9-c9": _replica_point(label="9s-9w-9b-r9-c9")}
    assert compare(points, fault, base, replica, None) == []


def test_build_report_schema(measured):
    (
        points,
        fault_point,
        fault_meta,
        replica_points,
        failover,
        pruning,
        workbench,
        dashboard,
    ) = measured
    report, regs = build_report(
        points,
        fault_point,
        fault_meta,
        {"shards": [1, 2]},
        replica_points=replica_points,
        failover=failover,
        pruning=pruning,
        workbench=workbench,
        dashboard=dashboard,
    )
    assert regs == []
    assert report["schema"] == SCHEMA
    assert set(report["results"]) == {"1", "2"}
    assert report["fault"]["completed"]
    assert set(report["replica"]["matrix"]) == {_SPEC.label}
    assert report["replica"]["failover"]["exact_match_r2"] is True
    assert report["pruning"] is None  # disabled in SMALL
    assert report["workbench"]["exact_match_shards"] is True
    assert report["dashboard"]["exact_match_shards"] is True
    assert report["dashboard"]["exact_match_churn"] is True
    assert "baseline" not in report
    json.dumps(report)  # must be serializable


def test_run_bench_baseline_cycle(tmp_path, capsys):
    out = tmp_path / "BENCH_serving.json"
    rc = run_bench(
        out_path=out, update_baseline=True, progress=None, **SMALL
    )
    assert rc == 0
    assert out.exists()

    # identical rerun against its own baseline: no drift
    rc = run_bench(out_path=out, progress=None, **SMALL)
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["baseline"]["regressions"] == []


def test_run_bench_detects_drift(tmp_path):
    out = tmp_path / "BENCH_serving.json"
    assert run_bench(
        out_path=out, update_baseline=True, progress=None, **SMALL
    ) == 0
    doc = json.loads(out.read_text())
    doc["results"]["2"]["throughput_qps"] += 1.0
    out.write_text(json.dumps(doc))
    messages = []
    rc = run_bench(out_path=out, progress=messages.append, **SMALL)
    assert rc == 1
    assert any("DRIFT" in m for m in messages)


def test_run_bench_detects_replica_drift(tmp_path):
    out = tmp_path / "BENCH_serving.json"
    assert run_bench(
        out_path=out, update_baseline=True, progress=None, **SMALL
    ) == 0
    doc = json.loads(out.read_text())
    doc["replica"]["matrix"][_SPEC.label]["p99_latency_s"] += 1.0
    out.write_text(json.dumps(doc))
    messages = []
    rc = run_bench(out_path=out, progress=messages.append, **SMALL)
    assert rc == 1
    assert any("DRIFT" in m for m in messages)


def test_run_bench_ignores_foreign_schema(tmp_path):
    out = tmp_path / "BENCH_serving.json"
    out.write_text(json.dumps({"schema": "something-else/9"}))
    messages = []
    rc = run_bench(out_path=out, progress=messages.append, **SMALL)
    assert rc == 0
    assert any("unknown schema" in m for m in messages)
