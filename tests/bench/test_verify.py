"""Shape-verification module tests."""

import pytest

from repro.bench import (
    figure9,
    render_checks,
    run_all_sweeps,
    verify_shapes,
)
from repro.engine import EngineConfig

_FAST_CFG = EngineConfig(
    n_major_terms=150, n_clusters=6, kmeans_sample=48, chunk_docs=4
)


@pytest.fixture(scope="module")
def checks():
    sweeps = run_all_sweeps(
        downscale=40_000.0, procs=(2, 8), config=_FAST_CFG, seed=5
    )
    fig9 = figure9(nprocs=4, gen_bytes=800_000, config=_FAST_CFG)
    return verify_shapes(sweeps, fig9)


def test_all_paper_claims_verified(checks):
    failing = [str(c) for c in checks if not c.passed]
    assert not failing, "\n".join(failing)


def test_covers_every_figure(checks):
    figures = {c.figure for c in checks}
    assert any("5" in f for f in figures)
    assert any("6" in f for f in figures)
    assert any("8" in f for f in figures)
    assert any("9" in f for f in figures)
    # one check per workload scaling claim + component claims + fig9
    assert len(checks) >= 12


def test_render_checks(checks):
    text = render_checks(checks)
    assert "PASS" in text
    assert f"{len(checks)}/{len(checks)} claims verified" in text


def test_fig9_optional():
    sweeps = run_all_sweeps(
        downscale=40_000.0, procs=(2, 8), config=_FAST_CFG, seed=5
    )
    checks = verify_shapes(sweeps, None)
    assert all("Fig 9" not in c.figure for c in checks)


def test_failing_check_renders_fail():
    from repro.bench import ShapeCheck

    c = ShapeCheck("Fig X", "some claim", False, "detail")
    assert "FAIL" in str(c)
    assert "0/1 claims verified" in render_checks([c])
