"""Global term statistics tests."""

import numpy as np
import pytest

from repro.index import Postings, stats_from_doc_postings


def _postings(rows):
    g, k, c = zip(*rows) if rows else ((), (), ())
    return Postings(
        np.array(g, dtype=np.int64),
        np.array(k, dtype=np.int64),
        np.array(c, dtype=np.int64),
    )


def test_df_cf_basic():
    # term 0 in docs {0, 1}; term 2 in doc 1 with tf 5
    p = _postings([(0, 0, 1), (0, 1, 2), (2, 1, 5)])
    s = stats_from_doc_postings(p, 0, 3)
    np.testing.assert_array_equal(s.df, [2, 0, 1])
    np.testing.assert_array_equal(s.cf, [3, 0, 5])
    assert s.nterms == 3


def test_range_restriction():
    p = _postings([(0, 0, 1), (5, 0, 4), (9, 2, 2)])
    s = stats_from_doc_postings(p, 5, 10)
    assert s.gid_lo == 5 and s.gid_hi == 10
    np.testing.assert_array_equal(s.df, [1, 0, 0, 0, 1])
    np.testing.assert_array_equal(s.cf, [4, 0, 0, 0, 2])


def test_empty_postings():
    s = stats_from_doc_postings(_postings([]), 0, 4)
    assert s.df.sum() == 0 and s.cf.sum() == 0


def test_empty_range():
    s = stats_from_doc_postings(_postings([(0, 0, 1)]), 3, 3)
    assert s.nterms == 0


def test_bad_range_rejected():
    with pytest.raises(ValueError):
        stats_from_doc_postings(_postings([]), 5, 2)


def test_cf_at_least_df():
    rng = np.random.default_rng(0)
    rows = []
    seen = set()
    for _ in range(200):
        g, d = int(rng.integers(20)), int(rng.integers(30))
        if (g, d) in seen:
            continue
        seen.add((g, d))
        rows.append((g, d, int(rng.integers(1, 6))))
    s = stats_from_doc_postings(_postings(rows), 0, 20)
    assert np.all(s.cf >= s.df)
