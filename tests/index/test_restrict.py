"""Parity of the searchsorted ``TermPostings.restrict`` fast path.

The shard partitioner used to mask every posting and ``np.repeat`` a
term-id column to regroup survivors; the current implementation finds
each term's contiguous sub-run with one ``searchsorted`` pair.  The
two must agree array-for-array on any input, and a blocked input must
come back blocked (the block table is a pure function of the restricted
run layout, so re-deriving it is the identity the shard format needs).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.termindex import TermPostings


def _random_postings(
    rng: np.random.Generator, n_docs: int, n_terms: int
) -> TermPostings:
    offsets = [0]
    rows_parts: list[np.ndarray] = []
    tf_parts: list[np.ndarray] = []
    for _ in range(n_terms):
        df = int(rng.integers(0, n_docs + 1))
        rows_parts.append(
            np.sort(
                rng.choice(n_docs, size=df, replace=False)
            ).astype(np.int64)
        )
        tf_parts.append(rng.integers(1, 9, size=df).astype(np.int64))
        offsets.append(offsets[-1] + df)
    return TermPostings(
        n_docs=n_docs,
        offsets=np.asarray(offsets, dtype=np.int64),
        rows=np.concatenate(rows_parts)
        if rows_parts
        else np.empty(0, np.int64),
        tf=np.concatenate(tf_parts)
        if tf_parts
        else np.empty(0, np.int64),
    )


def _restrict_reference(
    p: TermPostings, row_lo: int, row_hi: int
) -> TermPostings:
    """The old implementation: boolean mask + repeated term column."""
    lengths = np.diff(p.offsets)
    term_of = np.repeat(np.arange(p.n_terms, dtype=np.int64), lengths)
    keep = (p.rows >= row_lo) & (p.rows < row_hi)
    counts = np.bincount(term_of[keep], minlength=p.n_terms)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
    ).astype(np.int64)
    return TermPostings(
        n_docs=row_hi - row_lo,
        offsets=offsets,
        rows=(p.rows[keep] - row_lo).astype(np.int64),
        tf=p.tf[keep].astype(np.int64),
    )


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_restrict_matches_mask_reference(data):
    seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
    n_docs = data.draw(st.integers(1, 80), label="n_docs")
    n_terms = data.draw(st.integers(0, 10), label="n_terms")
    row_lo = data.draw(st.integers(0, n_docs), label="row_lo")
    row_hi = data.draw(st.integers(row_lo, n_docs), label="row_hi")
    rng = np.random.default_rng(seed)
    p = _random_postings(rng, n_docs, n_terms)
    got = p.restrict(row_lo, row_hi)
    want = _restrict_reference(p, row_lo, row_hi)
    np.testing.assert_array_equal(got.offsets, want.offsets)
    np.testing.assert_array_equal(got.rows, want.rows)
    np.testing.assert_array_equal(got.tf, want.tf)
    assert got.n_docs == row_hi - row_lo


def test_restrict_preserves_blocking():
    rng = np.random.default_rng(5)
    p = _random_postings(rng, 64, 6).with_blocks(8)
    sub = p.restrict(10, 50)
    assert sub.block_size == 8
    # the carried table must equal a from-scratch re-blocking
    fresh = TermPostings(
        n_docs=sub.n_docs,
        offsets=sub.offsets,
        rows=sub.rows,
        tf=sub.tf,
    ).with_blocks(8)
    np.testing.assert_array_equal(
        sub.block_offsets, fresh.block_offsets
    )
    np.testing.assert_array_equal(sub.block_maxtf, fresh.block_maxtf)


def test_restrict_unblocked_stays_unblocked():
    rng = np.random.default_rng(9)
    p = _random_postings(rng, 32, 4)
    assert p.restrict(4, 20).block_size is None
