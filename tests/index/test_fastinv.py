"""FAST-INV inversion tests: reference loop, vectorized path, oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    Postings,
    fields_to_docs,
    invert_bruteforce,
    invert_chunk,
    merge_doc_postings,
)
from repro.index.fastinv import _fastinv_order, _fastinv_order_vectorized


def _postings_to_dict(p: Postings) -> dict:
    return {
        (int(g), int(k)): int(c)
        for g, k, c in zip(p.gids, p.keys, p.counts)
    }


def _stream(tokens_by_doc_field):
    """Build (gids, docs, fields) streams from nested lists.

    ``tokens_by_doc_field[doc][field]`` is a list of gids; global field
    ids are ``doc * nfields + field``.
    """
    g, d, f = [], [], []
    nfields = max(len(fields) for fields in tokens_by_doc_field)
    for doc, fields in enumerate(tokens_by_doc_field):
        for fi, toks in enumerate(fields):
            for t in toks:
                g.append(t)
                d.append(doc)
                f.append(doc * nfields + fi)
    return (
        np.array(g, dtype=np.int64),
        np.array(d, dtype=np.int64),
        np.array(f, dtype=np.int64),
        nfields,
    )


def test_small_example():
    # doc0: f0=[2, 0], f1=[2]; doc1: f0=[0, 0]
    g, d, f, nf = _stream([[[2, 0], [2]], [[0, 0]]])
    t2f, t2d = invert_chunk(g, d, f)
    assert _postings_to_dict(t2f) == {
        (2, 0): 1,
        (0, 0): 1,
        (2, 1): 1,
        (0, 2): 2,
    }
    assert _postings_to_dict(t2d) == {
        (2, 0): 2,
        (0, 0): 1,
        (0, 1): 2,
    }


def test_matches_bruteforce_oracle():
    rng = np.random.default_rng(0)
    g = rng.integers(0, 30, size=500).astype(np.int64)
    d = np.sort(rng.integers(0, 20, size=500)).astype(np.int64)
    f = d * 3 + rng.integers(0, 3, size=500)
    f = np.sort(f)
    t2f, t2d = invert_chunk(g, d, f)
    o2f, o2d = invert_bruteforce(g, d, f)
    assert _postings_to_dict(t2f) == o2f
    assert _postings_to_dict(t2d) == o2d


def test_reference_loop_equals_vectorized():
    rng = np.random.default_rng(1)
    g = rng.integers(0, 50, size=400).astype(np.int64)
    np.testing.assert_array_equal(
        _fastinv_order(g), _fastinv_order_vectorized(g)
    )


def test_empty_input():
    z = np.empty(0, dtype=np.int64)
    t2f, t2d = invert_chunk(z, z.copy(), z.copy())
    assert len(t2f) == 0 and len(t2d) == 0


def test_fields_to_docs_collapses():
    g, d, f, nf = _stream([[[5], [5, 5]], [[5, 1]]])
    t2f, t2d_direct = invert_chunk(g, d, f)
    t2d = fields_to_docs(t2f, nf)
    assert _postings_to_dict(t2d) == _postings_to_dict(t2d_direct)


def test_merge_doc_postings_across_chunks():
    a = Postings(
        np.array([1, 2], dtype=np.int64),
        np.array([0, 0], dtype=np.int64),
        np.array([3, 1], dtype=np.int64),
    )
    b = Postings(
        np.array([1, 1], dtype=np.int64),
        np.array([1, 2], dtype=np.int64),
        np.array([2, 5], dtype=np.int64),
    )
    merged = merge_doc_postings([a, b])
    assert _postings_to_dict(merged) == {
        (1, 0): 3,
        (1, 1): 2,
        (1, 2): 5,
        (2, 0): 1,
    }
    # sorted by (gid, doc)
    assert list(merged.gids) == sorted(merged.gids)


def test_merge_handles_duplicate_pairs():
    a = Postings(
        np.array([7], dtype=np.int64),
        np.array([3], dtype=np.int64),
        np.array([2], dtype=np.int64),
    )
    b = Postings(
        np.array([7], dtype=np.int64),
        np.array([3], dtype=np.int64),
        np.array([4], dtype=np.int64),
    )
    merged = merge_doc_postings([a, b])
    assert _postings_to_dict(merged) == {(7, 3): 6}


def test_merge_empty_list():
    assert len(merge_doc_postings([])) == 0


@settings(max_examples=80, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),  # gid
            st.integers(min_value=0, max_value=8),  # doc
            st.integers(min_value=0, max_value=2),  # field in doc
        ),
        min_size=0,
        max_size=150,
    )
)
def test_property_inversion_matches_oracle(data):
    """Any token stream (docs/fields grouped) inverts to oracle counts."""
    # group by (doc, field) to satisfy the contiguity precondition
    data = sorted(data, key=lambda t: (t[1], t[2]))
    if data:
        g = np.array([t[0] for t in data], dtype=np.int64)
        d = np.array([t[1] for t in data], dtype=np.int64)
        f = np.array([t[1] * 3 + t[2] for t in data], dtype=np.int64)
    else:
        g = d = f = np.empty(0, dtype=np.int64)
    t2f, t2d = invert_chunk(g, d, f)
    o2f, o2d = invert_bruteforce(g, d, f)
    assert _postings_to_dict(t2f) == o2f
    assert _postings_to_dict(t2d) == o2d
    # df/cf consistency: sum of counts equals token count
    assert t2d.counts.sum() == g.size
    t2d_via_fields = fields_to_docs(t2f, 3)
    assert _postings_to_dict(t2d_via_fields) == o2d
