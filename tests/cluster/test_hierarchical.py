"""Agglomerative clustering extension tests."""

import numpy as np
import pytest

from repro.cluster import agglomerative


def _three_groups():
    return np.array(
        [
            [0.0, 0.0],
            [0.1, 0.0],
            [10.0, 10.0],
            [10.1, 10.0],
            [-10.0, 5.0],
        ]
    )


@pytest.mark.parametrize("linkage", ["single", "complete", "average"])
def test_cut_k_recovers_groups(linkage):
    pts = _three_groups()
    dend = agglomerative(pts, linkage=linkage)
    labels = dend.cut_k(3)
    assert labels[0] == labels[1]
    assert labels[2] == labels[3]
    assert len({labels[0], labels[2], labels[4]}) == 3


def test_cut_k_extremes():
    pts = _three_groups()
    dend = agglomerative(pts)
    assert len(set(dend.cut_k(1).tolist())) == 1
    assert len(set(dend.cut_k(5).tolist())) == 5


def test_cut_k_out_of_range():
    dend = agglomerative(_three_groups())
    with pytest.raises(ValueError):
        dend.cut_k(0)
    with pytest.raises(ValueError):
        dend.cut_k(6)


def test_cut_height():
    pts = _three_groups()
    dend = agglomerative(pts, linkage="single")
    # cutting below the smallest merge keeps all singletons
    labels = dend.cut_height(0.05)
    assert len(set(labels.tolist())) == 5
    # cutting above everything yields one cluster
    labels = dend.cut_height(1e9)
    assert len(set(labels.tolist())) == 1


def test_heights_nondecreasing_single_linkage():
    rng = np.random.default_rng(0)
    pts = rng.random((12, 3))
    dend = agglomerative(pts, linkage="single")
    assert np.all(np.diff(dend.heights) >= -1e-12)


def test_single_vs_complete_differ_on_chains():
    """A chain of points: single-link merges it, complete-link splits."""
    pts = np.array([[float(i), 0.0] for i in range(6)])
    single = agglomerative(pts, linkage="single").cut_k(2)
    complete = agglomerative(pts, linkage="complete").cut_k(2)
    # single link chains everything and peels one point off last;
    # complete link produces a more balanced split
    assert sorted(np.bincount(single).tolist()) == [1, 5]
    assert sorted(np.bincount(complete).tolist()) == [2, 4]
    assert not np.array_equal(single, complete)


def test_bad_linkage_rejected():
    with pytest.raises(ValueError):
        agglomerative(_three_groups(), linkage="ward")


def test_single_point():
    dend = agglomerative(np.array([[1.0, 2.0]]))
    assert dend.cut_k(1).tolist() == [0]
