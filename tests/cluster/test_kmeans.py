"""Distributed k-means numerics tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    assign_points,
    centroids_from_partials,
    kmeanspp_seeds,
    lloyd,
    partial_update,
)


def _blobs(n_per=30, centers=((0, 0), (10, 10), (-10, 5)), seed=0):
    rng = np.random.default_rng(seed)
    pts = np.vstack(
        [rng.normal(c, 0.5, size=(n_per, 2)) for c in centers]
    )
    return pts


def test_assign_points_nearest():
    pts = np.array([[0.0, 0.0], [9.0, 9.0]])
    cents = np.array([[0.0, 0.0], [10.0, 10.0]])
    labels, sq = assign_points(pts, cents)
    np.testing.assert_array_equal(labels, [0, 1])
    assert sq[0] == 0.0
    assert sq[1] == pytest.approx(2.0)


def test_assign_ties_to_lowest_index():
    pts = np.array([[0.5, 0.0]])
    cents = np.array([[0.0, 0.0], [1.0, 0.0]])
    labels, _ = assign_points(pts, cents)
    assert labels[0] == 0


def test_assign_empty():
    labels, sq = assign_points(
        np.empty((0, 2)), np.array([[0.0, 0.0]])
    )
    assert labels.size == 0 and sq.size == 0


def test_partial_update_sums_counts():
    pts = np.array([[1.0, 0.0], [3.0, 0.0], [0.0, 5.0]])
    labels = np.array([0, 0, 2])
    sums, counts = partial_update(pts, labels, 3)
    np.testing.assert_array_equal(counts, [2, 0, 1])
    np.testing.assert_allclose(sums[0], [4.0, 0.0])
    np.testing.assert_allclose(sums[2], [0.0, 5.0])


def test_centroids_from_partials_keeps_empty():
    prev = np.array([[1.0, 1.0], [5.0, 5.0]])
    sums = np.array([[4.0, 0.0], [0.0, 0.0]])
    counts = np.array([2, 0])
    out = centroids_from_partials(sums, counts, prev)
    np.testing.assert_allclose(out[0], [2.0, 0.0])
    np.testing.assert_allclose(out[1], [5.0, 5.0])  # unchanged


def test_kmeanspp_deterministic_given_rng():
    pts = _blobs()
    s1 = kmeanspp_seeds(pts, 3, np.random.default_rng(4))
    s2 = kmeanspp_seeds(pts, 3, np.random.default_rng(4))
    np.testing.assert_array_equal(s1, s2)


def test_kmeanspp_k_clamped_to_sample():
    pts = np.array([[0.0, 0.0], [1.0, 1.0]])
    seeds = kmeanspp_seeds(pts, 5, np.random.default_rng(0))
    assert seeds.shape == (2, 2)


def test_kmeanspp_identical_points():
    pts = np.zeros((5, 2))
    seeds = kmeanspp_seeds(pts, 3, np.random.default_rng(0))
    assert np.all(seeds == 0)


def test_kmeanspp_rejects_empty():
    with pytest.raises(ValueError):
        kmeanspp_seeds(np.empty((0, 2)), 2, np.random.default_rng(0))


def test_lloyd_recovers_blobs():
    pts = _blobs()
    seeds = kmeanspp_seeds(pts, 3, np.random.default_rng(1))
    res = lloyd(pts, seeds, max_iter=50, tol=1e-8)
    assert res.converged
    # each blob maps to exactly one cluster
    labels = res.labels.reshape(3, 30)
    for row in labels:
        assert len(set(row.tolist())) == 1
    assert len({row[0] for row in labels}) == 3
    assert res.inertia < 100.0


def test_lloyd_objective_nonincreasing_between_runs():
    """More iterations never hurt the objective."""
    pts = _blobs(seed=3)
    seeds = kmeanspp_seeds(pts, 3, np.random.default_rng(2))
    r1 = lloyd(pts, seeds, max_iter=1)
    r5 = lloyd(pts, seeds, max_iter=5)
    assert r5.inertia <= r1.inertia + 1e-9


def test_lloyd_assignment_is_nearest_centroid():
    pts = _blobs(seed=5)
    seeds = kmeanspp_seeds(pts, 3, np.random.default_rng(0))
    res = lloyd(pts, seeds)
    labels, _ = assign_points(pts, res.centroids)
    np.testing.assert_array_equal(labels, res.labels)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    k=st.integers(min_value=1, max_value=6),
    dim=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_lloyd_invariants(n, k, dim, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, dim))
    seeds = kmeanspp_seeds(pts, k, np.random.default_rng(seed + 1))
    res = lloyd(pts, seeds, max_iter=20)
    k_eff = seeds.shape[0]
    assert res.centroids.shape == (k_eff, dim)
    assert res.labels.shape == (n,)
    assert res.labels.min() >= 0 and res.labels.max() < k_eff
    assert res.inertia >= 0
    # every centroid with members is the mean of its members
    for c in range(k_eff):
        members = pts[res.labels == c]
        if len(members):
            # final centroids come from the last update; the final
            # assignment may move points, so only check boundedness
            assert np.isfinite(res.centroids[c]).all()
