"""Newswire generator tests: burst structure and stream behaviour."""

import numpy as np

from repro.datasets import generate_newswire


def test_deterministic_and_sized():
    c1 = generate_newswire(80_000, seed=5)
    c2 = generate_newswire(80_000, seed=5)
    assert len(c1) == len(c2)
    assert c1[0].fields == c2[0].fields
    assert 80_000 <= c1.nbytes <= 80_000 * 1.3


def test_fields_and_dateline_shape():
    c = generate_newswire(40_000, seed=1)
    assert c.field_names == ["headline", "dateline", "body"]
    for d in c:
        assert "(Wire)" in d.fields["dateline"]
        assert "," in d.fields["dateline"]


def test_metadata_aligned():
    c = generate_newswire(60_000, seed=2)
    assert len(c.meta["story_ids"]) == len(c)
    assert len(c.meta["theme_labels"]) == len(c)


def test_stories_are_contiguous_runs():
    c = generate_newswire(120_000, seed=3)
    stories = c.meta["story_ids"]
    # story ids are non-decreasing and consecutive docs of a story
    # share the theme
    assert stories == sorted(stories)
    labels = c.meta["theme_labels"]
    for i in range(1, len(c)):
        if stories[i] == stories[i - 1]:
            assert labels[i] == labels[i - 1]


def test_burstiness_above_chance():
    """Adjacent dispatches share a theme far more often than random."""
    c = generate_newswire(200_000, seed=4, n_themes=10)
    labels = np.array(c.meta["theme_labels"])
    adjacent_same = np.mean(labels[1:] == labels[:-1])
    assert adjacent_same > 0.4  # chance would be ~0.1


def test_engine_recovers_wire_themes():
    from repro.engine import EngineConfig, SerialTextEngine

    c = generate_newswire(150_000, seed=6, n_themes=4)
    cfg = EngineConfig(n_major_terms=120, n_clusters=4, kmeans_sample=48)
    res = SerialTextEngine(cfg).run(c)
    labels = np.array(c.meta["theme_labels"])
    purity = 0
    for k in np.unique(res.assignments):
        members = labels[res.assignments == k]
        purity += np.bincount(members).max()
    assert purity / len(c) > 0.6


def test_mean_story_length_knob():
    short = generate_newswire(150_000, seed=7, mean_story_length=1.5)
    long = generate_newswire(150_000, seed=7, mean_story_length=12.0)
    n_stories_short = len(set(short.meta["story_ids"]))
    n_stories_long = len(set(long.meta["story_ids"]))
    assert n_stories_long < n_stories_short
