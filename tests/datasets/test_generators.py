"""Synthetic corpus generator tests: determinism and statistics."""

import numpy as np
import pytest

from repro.datasets import (
    ThemeModel,
    ThemeModelConfig,
    ZipfSampler,
    generate_pubmed,
    generate_trec,
    make_vocabulary,
)
from repro.text import Tokenizer


def test_vocabulary_distinct_and_deterministic():
    v1 = make_vocabulary(500, seed=9)
    v2 = make_vocabulary(500, seed=9)
    assert v1 == v2
    assert len(set(v1)) == 500
    v3 = make_vocabulary(500, seed=10)
    assert v1 != v3


def test_zipf_sampler_is_skewed():
    z = ZipfSampler(1000)
    rng = np.random.default_rng(0)
    draws = z.sample(20_000, rng)
    assert draws.min() >= 0 and draws.max() < 1000
    counts = np.bincount(draws, minlength=1000)
    # rank-0 terms must dominate deep-tail terms heavily
    assert counts[:10].sum() > 20 * counts[500:510].sum()


def test_zipf_probs_normalized():
    z = ZipfSampler(100)
    assert abs(z.probs.sum() - 1.0) < 1e-12


def test_zipf_rejects_empty():
    with pytest.raises(ValueError):
        ZipfSampler(0)


def test_theme_model_theme_terms_disjoint():
    m = ThemeModel(ThemeModelConfig(vocab_size=3000, n_themes=5), seed=1)
    seen = set()
    for t in m.theme_terms:
        s = set(t.tolist())
        assert not (s & seen)
        seen |= s


def test_theme_model_vocab_too_small():
    with pytest.raises(ValueError):
        ThemeModel(
            ThemeModelConfig(vocab_size=100, n_themes=10, theme_vocab=50),
            seed=0,
        )


def test_pubmed_deterministic_and_sized():
    c1 = generate_pubmed(60_000, seed=5)
    c2 = generate_pubmed(60_000, seed=5)
    assert len(c1) == len(c2)
    assert c1[0].fields == c2[0].fields
    assert 60_000 <= c1.nbytes <= 60_000 * 1.2


def test_pubmed_consistent_sizes():
    """Paper: PubMed abstracts are 'consistent in both size'."""
    c = generate_pubmed(150_000, seed=2)
    sizes = np.array([d.nbytes for d in c])
    assert sizes.std() / sizes.mean() < 0.5


def test_pubmed_fields():
    c = generate_pubmed(30_000, seed=0)
    assert c.field_names == ["title", "abstract", "journal"]
    assert c.meta["n_themes"] == 12


def test_trec_heavy_tailed_sizes():
    c = generate_trec(400_000, seed=2)
    sizes = np.array([d.nbytes for d in c])
    # heavy tail: the largest page dwarfs the median page
    assert sizes.max() > 8 * np.median(sizes)


def test_trec_fields_and_urls():
    c = generate_trec(30_000, seed=0)
    assert c.field_names == ["url", "title", "body"]
    assert all(d.fields["url"].endswith(".html") for d in c)
    assert all(".gov/" in d.fields["url"] for d in c)


def test_trec_token_density_varies():
    """Markup-heavy pages yield far fewer postings per byte, the load
    imbalance Fig. 9 exercises."""
    c = generate_trec(300_000, seed=4)
    t = Tokenizer()
    density = []
    for d in c:
        toks = len(t.tokens(d.fields["body"]))
        density.append(toks / max(1, d.nbytes))
    density = np.array(density)
    assert density.max() > 2.5 * max(1e-9, density.min())


def test_represented_bytes_passthrough():
    c = generate_pubmed(30_000, seed=0, represented_bytes=2.75e9)
    assert c.represented_bytes == 2.75e9
    assert c.workload_scale() > 1000


def test_generators_reject_nonpositive_target():
    with pytest.raises(ValueError):
        generate_pubmed(0, seed=0)
