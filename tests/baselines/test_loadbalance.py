"""Load-balancing strategy comparison tests (§3.3 claims)."""

import numpy as np

from repro.baselines import run_ga_queue, run_master_worker, run_static
from repro.runtime import Cluster


def _skewed_costs(nprocs, per_rank=40, seed=0):
    """Task costs where one rank owns much heavier tasks."""
    rng = np.random.default_rng(seed)
    costs = []
    for r in range(nprocs):
        scale = 4.0 if r == nprocs - 1 else 1.0
        costs.append(list(rng.uniform(0.5, 1.5, size=per_rank) * 1e-3 * scale))
    return costs


def _run(strategy, nprocs, costs, **kw):
    def program(ctx):
        executed = strategy(ctx, costs, **kw)
        return executed

    res = Cluster(nprocs).run(program)
    all_tasks = sorted(t for ex in res.rank_results for t, _ in ex)
    total = sum(len(c) for c in costs)
    assert all_tasks == list(range(total)), "each task exactly once"
    return res


def test_static_executes_own_tasks_only():
    costs = _skewed_costs(4)
    res = _run(run_static, 4, costs)
    for rank, executed in enumerate(res.rank_results):
        assert all(r == rank for _, r in executed)


def test_ga_queue_beats_static_on_skew():
    costs = _skewed_costs(4)
    t_static = _run(run_static, 4, costs).wall_time
    t_dyn = _run(run_ga_queue, 4, costs).wall_time
    assert t_dyn < t_static * 0.75


def test_ga_queue_chunking_still_exact():
    costs = _skewed_costs(3, per_rank=17)
    res = _run(run_ga_queue, 3, costs, chunk=5)
    assert res.wall_time > 0


def test_master_worker_executes_all():
    costs = _skewed_costs(4, per_rank=20)
    res = _run(run_master_worker, 4, costs)
    assert res.wall_time > 0


def test_master_worker_also_balances():
    costs = _skewed_costs(4)
    t_static = _run(run_static, 4, costs).wall_time
    t_mw = _run(run_master_worker, 4, costs).wall_time
    assert t_mw < t_static


def test_ga_queue_scales_better_than_master_worker():
    """The §3.3 argument: the master serializes dispatch, so with many
    processors and fine-grained tasks the GA-atomic queue wins."""
    nprocs = 16
    costs = [[50e-6] * 60 for _ in range(nprocs)]  # fine-grained tasks
    t_ga = _run(run_ga_queue, nprocs, costs).wall_time
    t_mw = _run(
        run_master_worker, nprocs, costs, handle_cost=20e-6
    ).wall_time
    assert t_ga < t_mw


def test_master_worker_bottleneck_grows_with_procs():
    """Master-worker efficiency degrades as P grows (fixed work/rank)."""

    def efficiency(nprocs):
        costs = [[50e-6] * 40 for _ in range(nprocs)]
        ideal = sum(sum(c) for c in costs) / nprocs
        t = _run(run_master_worker, nprocs, costs).wall_time
        return ideal / t

    assert efficiency(16) < efficiency(2)
