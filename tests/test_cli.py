"""Command-line interface tests."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    rc = main(
        [
            "generate",
            "--dataset",
            "pubmed",
            "--bytes",
            "80000",
            "--seed",
            "4",
            "--themes",
            "4",
            "--out",
            str(path),
        ]
    )
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def results_dir(corpus_file, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-results")
    rc = main(
        [
            "run",
            "--corpus",
            str(corpus_file),
            "--nprocs",
            "4",
            "--clusters",
            "4",
            "--major-terms",
            "120",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    return out


def test_generate_writes_jsonl(corpus_file):
    from repro.text import read_corpus

    corpus = read_corpus(corpus_file)
    assert len(corpus) > 10
    assert corpus.field_names == ["title", "abstract", "journal"]


def test_generate_trec(tmp_path):
    path = tmp_path / "t.jsonl"
    rc = main(
        [
            "generate",
            "--dataset",
            "trec",
            "--bytes",
            "50000",
            "--out",
            str(path),
        ]
    )
    assert rc == 0
    assert path.exists()


def test_run_exports_everything(results_dir):
    for name in (
        "result.npz",
        "themeview.pgm",
        "themeview.json",
        "themeview.txt",
        "coordinates.csv",
    ):
        assert (results_dir / name).exists(), name
    csv = (results_dir / "coordinates.csv").read_text().splitlines()
    assert csv[0] == "doc_id,x,y,cluster"
    assert len(csv) > 10


def test_run_mp_backend_matches_sim(corpus_file, results_dir, tmp_path):
    """`run -P 4 --backend mp` writes a byte-identical result.npz."""
    out = tmp_path / "mp"
    rc = main(
        [
            "run",
            "--corpus",
            str(corpus_file),
            "-P",
            "4",
            "--backend",
            "mp",
            "--clusters",
            "4",
            "--major-terms",
            "120",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    assert (out / "result.npz").read_bytes() == (
        (results_dir / "result.npz").read_bytes()
    )


def test_run_serial_engine(corpus_file, tmp_path):
    out = tmp_path / "serial"
    rc = main(
        [
            "run",
            "--corpus",
            str(corpus_file),
            "--nprocs",
            "0",
            "--clusters",
            "3",
            "--major-terms",
            "100",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    assert (out / "result.npz").exists()


def test_analyze_summary(results_dir, capsys):
    rc = main(["analyze", "--results", str(results_dir / "result.npz")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "topics:" in out


def test_analyze_similar(results_dir, capsys):
    rc = main(
        [
            "analyze",
            "--results",
            str(results_dir / "result.npz"),
            "--similar",
            "0",
            "--top",
            "3",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "documents similar to 0" in out


def test_analyze_cluster(results_dir, capsys):
    rc = main(
        [
            "analyze",
            "--results",
            str(results_dir / "result.npz"),
            "--cluster",
            "0",
        ]
    )
    assert rc == 0
    assert "cluster 0" in capsys.readouterr().out


def test_analyze_query(results_dir, capsys):
    from repro.engine import load_result

    result = load_result(results_dir / "result.npz")
    term = result.topic_term_strings[0]
    rc = main(
        [
            "analyze",
            "--results",
            str(results_dir / "result.npz"),
            "--query",
            term,
        ]
    )
    assert rc == 0
    assert "doc" in capsys.readouterr().out


def test_generate_newswire(tmp_path):
    path = tmp_path / "wire.jsonl"
    rc = main(
        [
            "generate",
            "--dataset",
            "newswire",
            "--bytes",
            "40000",
            "--out",
            str(path),
        ]
    )
    assert rc == 0
    from repro.text import read_corpus

    assert read_corpus(path).field_names == [
        "headline",
        "dateline",
        "body",
    ]


def test_figures_command_small(tmp_path, capsys):
    rc = main(
        [
            "figures",
            "--downscale",
            "60000",
            # the memory-pressure claims hold on the paper's processor
            # range (>= 4): at P=2 even mid-size problems thrash
            "--procs",
            "4,8",
            "--out",
            str(tmp_path / "figs"),
            "--verify",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out[-2000:]
    for name in (
        "figure5.txt",
        "figure6.txt",
        "figure7.txt",
        "figure8.txt",
        "figure9.txt",
        "figure5.json",
        "verification.txt",
    ):
        assert (tmp_path / "figs" / name).exists(), name
    assert "claims verified" in out


def test_metrics_report_from_saved_result(results_dir, capsys, tmp_path):
    json_out = tmp_path / "snap.json"
    rc = main(
        [
            "metrics-report",
            "--results",
            str(results_dir / "result.npz"),
            "--json",
            str(json_out),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "communication matrix" in out
    assert "load balance" in out
    assert "hashmap RPC locality" in out
    import json

    snap = json.loads(json_out.read_text())
    assert snap["schema"] == "repro-metrics/1"
    assert snap["nprocs"] == 4


def test_metrics_report_prometheus_format(results_dir, capsys):
    rc = main(
        [
            "metrics-report",
            "--results",
            str(results_dir / "result.npz"),
            "--format",
            "prometheus",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_comm_coll_calls counter" in out
    assert 'rank="0"' in out


def test_metrics_report_rejects_non_result_file(tmp_path, capsys):
    bogus = tmp_path / "notaresult.npz"
    bogus.write_bytes(b"this is not a result archive")
    rc = main(["metrics-report", "--results", str(bogus)])
    assert rc == 1
    err = capsys.readouterr().err
    assert "not a saved engine result" in err
    assert str(bogus) in err


@pytest.fixture(scope="module")
def store_dir(corpus_file, results_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-store") / "store"
    rc = main(
        [
            "serve-build",
            "--results",
            str(results_dir / "result.npz"),
            "--corpus",
            str(corpus_file),
            "--shards",
            "3",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    return out


def test_serve_build_writes_store(store_dir, capsys):
    assert (store_dir / "manifest.json").exists()
    assert (store_dir / "model.repro").exists()
    from repro.serve import load_manifest

    manifest = load_manifest(store_dir)
    assert manifest.nshards == 3
    for info in manifest.shards:
        assert (store_dir / info.file).exists()


def test_serve_query_cluster(store_dir, capsys):
    import json

    rc = main(
        ["serve-query", "--store", str(store_dir), "--cluster", "0"]
    )
    assert rc == 0
    resp = json.loads(capsys.readouterr().out)
    assert resp["kind"] == "cluster"
    assert resp["size"] > 0
    assert resp["top_terms"]
    assert not resp["partial"]


def test_serve_query_search(store_dir, results_dir, capsys):
    import json

    from repro.engine import load_result

    result = load_result(results_dir / "result.npz")
    term = result.major_terms[0].term
    rc = main(
        [
            "serve-query",
            "--store",
            str(store_dir),
            "--search",
            term,
            "--top",
            "5",
        ]
    )
    assert rc == 0
    resp = json.loads(capsys.readouterr().out)
    assert resp["kind"] == "search"
    assert len(resp["hits"]) <= 5
    assert resp["hits"], "search over a model term found nothing"


def test_serve_query_requires_exactly_one_query(store_dir, capsys):
    rc = main(["serve-query", "--store", str(store_dir)])
    assert rc == 1
    assert "pass one of" in capsys.readouterr().err


def test_serve_query_bad_region_spec(store_dir, capsys):
    rc = main(
        ["serve-query", "--store", str(store_dir), "--region", "1,2"]
    )
    assert rc == 1
    assert "X,Y,RADIUS" in capsys.readouterr().err


def test_serve_query_missing_store(tmp_path, capsys):
    rc = main(
        [
            "serve-query",
            "--store",
            str(tmp_path / "absent"),
            "--cluster",
            "0",
        ]
    )
    assert rc == 1
    assert "error:" in capsys.readouterr().err


def test_workbench_session_refine_is_exact(
    store_dir, results_dir, capsys
):
    """Refining the anchor by its own query reproduces its digest."""
    import json

    from repro.engine import load_result

    result = load_result(results_dir / "result.npz")
    term = result.major_terms[0].term
    rc = main(
        [
            "workbench-session",
            "--store",
            str(store_dir),
            "--search",
            term,
            "--refine",
            term,
            "--derive",
            "keyphrases",
            "--n",
            "4",
        ]
    )
    assert rc == 0
    decoder = json.JSONDecoder()
    out = capsys.readouterr().out.strip()
    docs, pos = [], 0
    while pos < len(out):
        doc, end = decoder.raw_decode(out, pos)
        docs.append(doc)
        pos = end + 1
    by_set = {
        d["response"]["set"]: d["response"]
        for d in docs
        if d["response"].get("set")
    }
    assert by_set["refined"]["digest"] == by_set["anchor"]["digest"]
    kp = [d for d in docs if d["verb"] == "keyphrases"][0]
    assert len(kp["response"]["terms"]) <= 4


def test_workbench_session_prints_all_verbs(
    store_dir, results_dir, capsys
):
    from repro.engine import load_result

    result = load_result(results_dir / "result.npz")
    term = result.major_terms[0].term
    rc = main(
        [
            "workbench-session",
            "--store",
            str(store_dir),
            "--search",
            term,
            "--derive",
            "relations",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    for verb in ("open", "search", "relations", "close"):
        assert f'"verb": "{verb}"' in out


def test_workbench_serve_transcript_identity(store_dir, tmp_path):
    args = [
        "workbench-serve",
        "--store",
        str(store_dir),
        "--seed",
        "7",
    ]
    a = tmp_path / "a.bin"
    b = tmp_path / "b.bin"
    assert main(args + ["--transcript", str(a)]) == 0
    assert main(args + ["--transcript", str(b)]) == 0
    assert a.read_bytes() == b.read_bytes()


def test_workbench_missing_store(tmp_path, capsys):
    rc = main(
        [
            "workbench-session",
            "--store",
            str(tmp_path / "absent"),
            "--search",
            "x",
        ]
    )
    assert rc == 1
    assert "error:" in capsys.readouterr().err
    rc = main(
        ["workbench-serve", "--store", str(tmp_path / "absent")]
    )
    assert rc == 1
    assert "error:" in capsys.readouterr().err


def test_metrics_report_snapshot_roundtrip(
    store_dir, tmp_path, capsys
):
    snap = tmp_path / "wb.json"
    rc = main(
        [
            "workbench-serve",
            "--store",
            str(store_dir),
            "--seed",
            "3",
            "--metrics-out",
            str(snap),
        ]
    )
    assert rc == 0
    capsys.readouterr()
    rc = main(["metrics-report", "--snapshot", str(snap)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "workbench tier (analyst sessions):" in out


def test_serve_bench_smoke(tmp_path, capsys):
    out = tmp_path / "BENCH_serving.json"
    rc = main(
        [
            "serve-bench",
            "--shards",
            "1,2",
            "--corpus-bytes",
            "40000",
            "--clients",
            "2",
            "--queries-per-client",
            "5",
            "--replica-matrix",
            "2:3:2:2:4:3",
            "--pruning-corpus-bytes",
            "0",
            "--out",
            str(out),
            "--update-baseline",
        ]
    )
    assert rc == 0
    import json

    report = json.loads(out.read_text())
    assert report["schema"] == "repro-bench-serving/5"
    assert report["workbench"]["exact_match_shards"] is True
    assert report["dashboard"]["exact_match_shards"] is True
    assert report["dashboard"]["exact_match_churn"] is True
    assert set(report["results"]) == {"1", "2"}
    assert report["pruning"] is None  # 0 bytes skips the study
    assert report["fault"]["completed"]
    assert set(report["replica"]["matrix"]) == {"2s-3w-2b-r2-c4"}
    assert report["replica"]["failover"]["exact_match_r2"] is True


def test_serve_bench_rejects_bad_replica_matrix(tmp_path, capsys):
    rc = main(
        [
            "serve-bench",
            "--replica-matrix",
            "2:3:2",
            "--out",
            str(tmp_path / "out.json"),
        ]
    )
    assert rc == 1
    assert "replica spec" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


@pytest.fixture(scope="module")
def journal_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-journal") / "journal"
    rc = main(
        [
            "ingest-feed",
            "--journal",
            str(path),
            "--dataset",
            "pubmed",
            "--batches",
            "2",
            "--batch-docs",
            "4",
            "--seed",
            "4",
            "--themes",
            "4",
            "--skip-docs",
            "30",
            "--start-doc-id",
            "30",
        ]
    )
    assert rc == 0
    return path


def test_ingest_feed_creates_journal(journal_dir, capsys):
    assert (journal_dir / "JOURNAL.json").exists()
    from repro.ingest import IngestJournal

    journal = IngestJournal.open(journal_dir)
    assert len(journal) == 2
    assert journal.n_docs == 8


def test_ingest_feed_appends_after_last_arrival(journal_dir, capsys):
    rc = main(
        [
            "ingest-feed",
            "--journal",
            str(journal_dir),
            "--batches",
            "1",
            "--batch-docs",
            "4",
            "--seed",
            "4",
            "--themes",
            "4",
            "--skip-docs",
            "38",
            "--start-doc-id",
            "38",
        ]
    )
    assert rc == 0
    from repro.ingest import IngestJournal

    journal = IngestJournal.open(journal_dir)
    assert len(journal) == 3
    arrivals = [b.arrival_s for b in journal.batches]
    assert arrivals == sorted(arrivals)


@pytest.fixture()
def mutable_store(corpus_file, results_dir, tmp_path):
    out = tmp_path / "store"
    rc = main(
        [
            "serve-build",
            "--results",
            str(results_dir / "result.npz"),
            "--corpus",
            str(corpus_file),
            "--shards",
            "2",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    return out


def test_ingest_publish_status_compact(
    mutable_store, results_dir, journal_dir, capsys
):
    results = str(results_dir / "result.npz")
    rc = main(
        [
            "ingest-publish",
            "--store",
            str(mutable_store),
            "--results",
            results,
            "--journal",
            str(journal_dir),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "generation 1" in out

    # replay is idempotent: already-published batches are skipped
    rc = main(
        [
            "ingest-publish",
            "--store",
            str(mutable_store),
            "--results",
            results,
            "--journal",
            str(journal_dir),
        ]
    )
    assert rc == 0
    assert "nothing to publish" in capsys.readouterr().out

    from repro.ingest import IngestJournal

    n_batches = len(IngestJournal.open(journal_dir))
    rc = main(["ingest-status", "--store", str(mutable_store)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert f"ingested batches: {n_batches}" in out

    from repro.serve import load_manifest

    has_deltas = bool(load_manifest(mutable_store).deltas)
    rc = main(["ingest-compact", "--store", str(mutable_store)])
    assert rc == 0
    expect = "compacted" if has_deltas else "nothing to do"
    assert expect in capsys.readouterr().out
    # a second pass always finds a fully-compacted store
    rc = main(["ingest-compact", "--store", str(mutable_store)])
    assert rc == 0
    assert "nothing to do" in capsys.readouterr().out


def test_ingest_status_rejects_corrupt_store(tmp_path, capsys):
    rc = main(["ingest-status", "--store", str(tmp_path / "nope")])
    assert rc == 1
    assert "error:" in capsys.readouterr().err


def test_bench_ingest_smoke(tmp_path, capsys):
    out = tmp_path / "BENCH_ingest.json"
    rc = main(
        [
            "bench-ingest",
            "--shards",
            "1",
            "--corpus-bytes",
            "40000",
            "--clients",
            "2",
            "--queries-per-client",
            "4",
            "--batches",
            "2",
            "--batch-docs",
            "4",
            "--out",
            str(out),
            "--update-baseline",
        ]
    )
    assert rc == 0
    import json

    report = json.loads(out.read_text())
    assert report["schema"] == "repro-bench-ingest/1"
    assert report["results"]["1"]["docs_ingested"] == 8
    assert report["fault"]["completed"]


@pytest.fixture(scope="module")
def stamped_cli_store(tmp_path_factory):
    """generate --facet-sources -> run -> serve-build, end to end."""
    base = tmp_path_factory.mktemp("cli-facets")
    corpus = base / "corpus.jsonl"
    rc = main(
        [
            "generate",
            "--dataset",
            "pubmed",
            "--bytes",
            "60000",
            "--seed",
            "5",
            "--themes",
            "4",
            "--facet-sources",
            "3",
            "--out",
            str(corpus),
        ]
    )
    assert rc == 0
    results = base / "results"
    rc = main(
        [
            "run",
            "--corpus",
            str(corpus),
            "--nprocs",
            "2",
            "--clusters",
            "4",
            "--major-terms",
            "120",
            "--out",
            str(results),
        ]
    )
    assert rc == 0
    store = base / "store"
    rc = main(
        [
            "serve-build",
            "--results",
            str(results / "result.npz"),
            "--corpus",
            str(corpus),
            "--shards",
            "2",
            "--out",
            str(store),
        ]
    )
    assert rc == 0
    return store


def test_serve_build_reports_stamped_store(stamped_cli_store):
    from repro.serve import load_manifest

    manifest = load_manifest(stamped_cli_store)
    assert manifest.facets is not None
    assert manifest.facets.n_sources == 3


def test_facet_query_counts(stamped_cli_store, capsys):
    import json

    rc = main(
        [
            "facet-query",
            "--store",
            str(stamped_cli_store),
            "--kind",
            "counts",
        ]
    )
    assert rc == 0
    resp = json.loads(capsys.readouterr().out)
    assert resp["kind"] == "facet_counts"
    assert len(resp["counts"]) == 3
    assert resp["total"] == sum(resp["counts"]) > 0


def test_facet_query_terms_window(stamped_cli_store, capsys):
    import json

    rc = main(
        [
            "facet-query",
            "--store",
            str(stamped_cli_store),
            "--kind",
            "terms",
            "--t0",
            "0",
            "--t1",
            "300",
            "--top",
            "5",
        ]
    )
    assert rc == 0
    resp = json.loads(capsys.readouterr().out)
    assert resp["kind"] == "window_terms"
    assert len(resp["terms"]) <= 5


def test_facet_query_rejects_unstamped_store(store_dir, capsys):
    rc = main(
        [
            "facet-query",
            "--store",
            str(store_dir),
            "--kind",
            "counts",
        ]
    )
    assert rc == 1
    assert "not stamped" in capsys.readouterr().err


def test_themeview_slices_writes_payload(
    stamped_cli_store, tmp_path, capsys
):
    import json

    out = tmp_path / "slices.json"
    rc = main(
        [
            "themeview-slices",
            "--store",
            str(stamped_cli_store),
            "--slices",
            "3",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert len(payload) == 3
    assert any(s["n_docs"] > 0 for s in payload)


def test_themeview_slices_rejects_unstamped_store(store_dir, capsys):
    rc = main(
        ["themeview-slices", "--store", str(store_dir)]
    )
    assert rc == 1
    assert "not stamped" in capsys.readouterr().err
