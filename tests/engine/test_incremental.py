"""Incremental document projection tests."""

import numpy as np
import pytest

from repro.datasets import generate_pubmed
from repro.engine import (
    EngineConfig,
    SerialTextEngine,
    project_new_documents,
    refresh_recommended,
)
from repro.text import Document


@pytest.fixture(scope="module")
def model():
    """Model built on the first half of a corpus; second half streams."""
    corpus = generate_pubmed(160_000, seed=41, n_themes=4)
    half = len(corpus) // 2
    from repro.text import Corpus

    base = Corpus("base", corpus.documents[:half], meta=corpus.meta)
    stream = corpus.documents[half:]
    cfg = EngineConfig(n_major_terms=150, n_clusters=4, kmeans_sample=48)
    result = SerialTextEngine(cfg).run(base)
    return result, stream, corpus


def test_projection_shapes(model):
    result, stream, _ = model
    batch = project_new_documents(result, stream)
    n = len(stream)
    assert batch.signatures.shape == (n, result.n_topics)
    assert batch.coords.shape == (n, result.coords.shape[1])
    assert batch.assignments.shape == (n,)
    assert batch.null_fraction < 0.2  # same-domain stream projects well


def test_projected_signatures_l1(model):
    result, stream, _ = model
    batch = project_new_documents(result, stream)
    sums = batch.signatures.sum(axis=1)
    for s, null in zip(sums, batch.null_mask):
        assert (abs(s - 1.0) < 1e-9) or (s == 0.0 and null)


def test_same_documents_project_to_same_place(model):
    """Re-projecting the model's own documents reproduces its coords."""
    result, _, corpus = model
    half = result.n_docs
    batch = project_new_documents(result, corpus.documents[:half])
    np.testing.assert_allclose(batch.signatures, result.signatures)
    np.testing.assert_allclose(batch.coords, result.coords, atol=1e-12)
    mismatch = np.mean(batch.assignments != result.assignments)
    assert mismatch < 0.05  # final-iteration reassignment tolerance


def test_new_docs_land_near_their_theme(model):
    result, stream, corpus = model
    batch = project_new_documents(result, stream)
    labels = corpus.meta["theme_labels"]
    half = result.n_docs
    # projected docs of a theme should co-cluster with the model docs
    # of the same theme more often than chance
    agree = 0
    total = 0
    for j, doc in enumerate(stream):
        if batch.null_mask[j]:
            continue
        same_theme = [
            i
            for i in range(half)
            if labels[i] == labels[doc.doc_id]
        ]
        if not same_theme:
            continue
        from collections import Counter

        model_cluster = Counter(
            result.assignments[i] for i in same_theme
        ).most_common(1)[0][0]
        total += 1
        agree += batch.assignments[j] == model_cluster
    assert total > 0
    assert agree / total > 0.6


def test_out_of_vocabulary_stream_is_null(model):
    result, _, _ = model
    alien = [
        Document(0, {"body": "zzzalpha zzzbeta zzzgamma zzzdelta"}),
        Document(1, {"body": "qqqone qqqtwo qqqthree"}),
    ]
    batch = project_new_documents(result, alien)
    assert batch.null_fraction == 1.0
    assert refresh_recommended(batch)


def test_refresh_policy(model):
    result, stream, _ = model
    batch = project_new_documents(result, stream)
    assert not refresh_recommended(batch)


def test_requires_projection(model):
    import dataclasses

    result, stream, _ = model
    bare = dataclasses.replace(result, projection=None)
    with pytest.raises(ValueError, match="projection"):
        project_new_documents(bare, stream)


def test_persisted_model_supports_incremental(model, tmp_path):
    from repro.engine import load_result, save_result

    result, stream, _ = model
    save_result(result, tmp_path / "m.npz")
    loaded = load_result(tmp_path / "m.npz")
    batch_orig = project_new_documents(result, stream)
    batch_loaded = project_new_documents(loaded, stream)
    np.testing.assert_array_equal(
        batch_orig.signatures, batch_loaded.signatures
    )
    np.testing.assert_array_equal(batch_orig.coords, batch_loaded.coords)


def test_refresh_threshold_resolution(model):
    """Explicit args beat config values beat the built-in defaults."""
    result, _, _ = model
    alien = [
        Document(0, {"body": "zzzalpha zzzbeta"}),
        Document(1, {"body": "qqqone qqqtwo"}),
    ]
    batch = project_new_documents(result, alien)  # 100% null
    assert refresh_recommended(batch)  # default threshold 0.25
    assert not refresh_recommended(batch, max_null_fraction=1.0)
    strict = EngineConfig(refresh_null_fraction=0.0)
    lax = EngineConfig(refresh_null_fraction=1.0)
    assert refresh_recommended(batch, config=strict)
    assert not refresh_recommended(batch, config=lax)
    # the explicit argument wins over the config
    assert refresh_recommended(batch, max_null_fraction=0.5, config=lax)


def test_refresh_min_docs_gate(model):
    """Tiny batches never trip the refresh flag."""
    result, _, _ = model
    alien = [Document(0, {"body": "zzzalpha zzzbeta"})]
    batch = project_new_documents(result, alien)
    assert refresh_recommended(batch)  # default min_docs = 1
    assert not refresh_recommended(batch, min_docs=2)
    gated = EngineConfig(refresh_min_docs=5)
    assert not refresh_recommended(batch, config=gated)


def test_refresh_knob_validation():
    with pytest.raises(ValueError, match="refresh_null_fraction"):
        EngineConfig(refresh_null_fraction=1.5)
    with pytest.raises(ValueError, match="refresh_min_docs"):
        EngineConfig(refresh_min_docs=0)
