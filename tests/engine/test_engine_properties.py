"""Property-based engine tests: serial/parallel equivalence on random
corpora, plus structural edge cases."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)
from repro.text import Corpus, Document

_WORDS = [f"w{i:02d}" for i in range(30)]


def _random_corpus(draw):
    n_docs = draw(st.integers(min_value=3, max_value=18))
    docs = []
    for i in range(n_docs):
        n_tokens = draw(st.integers(min_value=1, max_value=25))
        idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(_WORDS) - 1),
                min_size=n_tokens,
                max_size=n_tokens,
            )
        )
        body = " ".join(_WORDS[j] for j in idx)
        title = _WORDS[draw(st.integers(0, len(_WORDS) - 1))]
        docs.append(Document(i, {"title": title, "body": body}))
    return Corpus("hyp", docs)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_parallel_model_equals_serial_on_random_corpora(data):
    corpus = _random_corpus(data.draw)
    nprocs = data.draw(st.integers(min_value=1, max_value=5))
    cfg = EngineConfig(
        n_major_terms=10,
        min_df=1,
        n_clusters=2,
        kmeans_sample=8,
        adapt_dimensionality=False,
    )
    try:
        s = SerialTextEngine(cfg).run(corpus)
    except ValueError:
        # degenerate corpus (no candidate terms): parallel must agree
        with pytest.raises(RuntimeError):
            ParallelTextEngine(nprocs, config=cfg).run(corpus)
        return
    p = ParallelTextEngine(nprocs, config=cfg).run(corpus)
    assert p.major_term_strings == s.major_term_strings
    np.testing.assert_array_equal(p.association, s.association)
    np.testing.assert_array_equal(p.signatures, s.signatures)
    # coords agree up to per-column sign: the PCA sign convention can
    # flip when float reduction-order noise moves the pivot entry of a
    # nearly-symmetric component
    for j in range(p.coords.shape[1]):
        col_p, col_s = p.coords[:, j], s.coords[:, j]
        assert np.allclose(col_p, col_s, atol=1e-8) or np.allclose(
            col_p, -col_s, atol=1e-8
        )


def test_single_document_corpus():
    corpus = Corpus(
        "one", [Document(0, {"body": "apple apple banana cherry"})]
    )
    cfg = EngineConfig(
        n_major_terms=4, min_df=1, n_clusters=1, kmeans_sample=2
    )
    s = SerialTextEngine(cfg).run(corpus)
    assert s.n_docs == 1
    assert s.coords.shape == (1, 2)
    p = ParallelTextEngine(3, config=cfg).run(corpus)
    assert p.n_docs == 1


def test_documents_with_empty_fields():
    docs = [
        Document(0, {"title": "", "body": "apple banana apple"}),
        Document(1, {"title": "cherry cherry", "body": ""}),
        Document(2, {"title": "", "body": ""}),  # fully empty
        Document(3, {"title": "apple", "body": "banana cherry"}),
    ]
    cfg = EngineConfig(
        n_major_terms=3, min_df=1, n_clusters=2, kmeans_sample=4
    )
    corpus = Corpus("sparse", docs)
    s = SerialTextEngine(cfg).run(corpus)
    assert s.n_docs == 4
    # the empty doc has a null signature
    assert s.null_fraction >= 0.25
    p = ParallelTextEngine(2, config=cfg).run(corpus)
    np.testing.assert_array_equal(p.signatures, s.signatures)


def test_unicode_documents():
    docs = [
        Document(0, {"body": "naïve café naïve zürich"}),
        Document(1, {"body": "café münchen café zürich"}),
        Document(2, {"body": "naïve münchen zürich zürich"}),
    ]
    cfg = EngineConfig(
        n_major_terms=4, min_df=1, n_clusters=2, kmeans_sample=3
    )
    s = SerialTextEngine(cfg).run(Corpus("uni", docs))
    assert any("ï" in t or "ü" in t for t in s.major_term_strings)
    p = ParallelTextEngine(2, config=cfg).run(Corpus("uni", docs))
    assert p.major_term_strings == s.major_term_strings


def test_identical_documents():
    docs = [
        Document(i, {"body": "same words every time here"})
        for i in range(6)
    ]
    cfg = EngineConfig(
        n_major_terms=4, min_df=1, n_clusters=2, kmeans_sample=4
    )
    s = SerialTextEngine(cfg).run(Corpus("dup", docs))
    # identical docs -> identical signatures -> coincident coords
    assert np.allclose(s.coords, s.coords[0])


def test_very_long_single_field():
    body = " ".join(f"tok{i % 50:02d}" for i in range(5000))
    docs = [Document(i, {"body": body}) for i in range(3)]
    cfg = EngineConfig(
        n_major_terms=10, min_df=1, n_clusters=2, kmeans_sample=3
    )
    s = SerialTextEngine(cfg).run(Corpus("long", docs))
    assert s.term_stats["tok00"][1] == 300  # 100 occurrences x 3 docs
