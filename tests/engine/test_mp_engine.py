"""Engine-level cross-backend oracle: sim and mp runs byte-match.

The CI gate for the multiprocessing backend: the full pipeline run
on a small corpus must produce a byte-identical ``result.npz`` and a
bit-identical metrics snapshot under both execution backends, and an
injected crash must surface the same ``RankFailedError`` (same dead
rank, same stage detail) either way.
"""

import dataclasses
import hashlib
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import generate_pubmed
from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    save_result,
)
from repro.runtime import CrashFault, FaultPlan, RankFailedError

NPROCS = 4


def _digests(result, tmp_path, tag):
    path = tmp_path / f"result_{tag}.npz"
    save_result(result, path)
    npz = hashlib.sha256(path.read_bytes()).hexdigest()
    metrics = hashlib.sha256(
        json.dumps(result.metrics, sort_keys=True).encode()
    ).hexdigest()
    return npz, metrics


def test_engine_digests_match_across_backends(
    pubmed_small, small_config, tmp_path
):
    digests = {}
    for backend in ("sim", "mp"):
        cfg = dataclasses.replace(small_config, backend=backend)
        result = ParallelTextEngine(NPROCS, config=cfg).run(
            pubmed_small
        )
        digests[backend] = _digests(result, tmp_path, backend)
    assert digests["sim"] == digests["mp"]


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    nbytes=st.integers(min_value=20_000, max_value=60_000),
    seed=st.integers(min_value=0, max_value=50),
    nprocs=st.integers(min_value=2, max_value=4),
)
def test_small_corpora_agree_on_digests(
    tmp_path_factory, nbytes, seed, nprocs
):
    """Any small corpus, any seed, any P: identical artifacts."""
    tmp_path = tmp_path_factory.mktemp("xbackend")
    corpus = generate_pubmed(nbytes, seed=seed)
    config = EngineConfig(
        n_major_terms=80,
        n_clusters=4,
        kmeans_sample=32,
        kmeans_max_iter=10,
        chunk_docs=4,
    )
    digests = {}
    for backend in ("sim", "mp"):
        cfg = dataclasses.replace(config, backend=backend)
        result = ParallelTextEngine(nprocs, config=cfg).run(corpus)
        digests[backend] = _digests(result, tmp_path, backend)
    assert digests["sim"] == digests["mp"]


@pytest.fixture(scope="module")
def scan_mid_time(pubmed_small, small_config):
    """A virtual time landing mid-way through the scan stage."""
    result = ParallelTextEngine(NPROCS, config=small_config).run(
        pubmed_small
    )
    return 0.5 * result.timings.component_seconds["scan"]


def test_crash_fault_plan_surfaces_same_error(
    pubmed_small, small_config, scan_mid_time
):
    """A scan-stage crash reports the same rank and stage either way."""
    plan = FaultPlan(faults=(CrashFault(rank=2, at_time=scan_mid_time),))
    errs = {}
    for backend in ("sim", "mp"):
        cfg = dataclasses.replace(
            small_config,
            fault_plan=plan,
            max_restarts=0,
            backend=backend,
        )
        with pytest.raises(RankFailedError) as ei:
            ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
        errs[backend] = ei.value
    assert errs["sim"].failed == errs["mp"].failed == [2]
    assert errs["sim"].detail == errs["mp"].detail


def test_crash_recovery_matches_sim(
    pubmed_small, small_config, scan_mid_time
):
    """With restarts allowed, recovery under mp reproduces sim's
    recovered model and recovery metadata."""
    plan = FaultPlan(faults=(CrashFault(rank=1, at_time=scan_mid_time),))
    runs = {}
    for backend in ("sim", "mp"):
        cfg = dataclasses.replace(
            small_config, fault_plan=plan, backend=backend
        )
        runs[backend] = ParallelTextEngine(NPROCS, config=cfg).run(
            pubmed_small
        )
    sim, mp = runs["sim"], runs["mp"]
    assert sim.meta["recovery"]["restarts"] == (
        mp.meta["recovery"]["restarts"]
    )
    assert json.dumps(sim.metrics, sort_keys=True) == (
        json.dumps(mp.metrics, sort_keys=True)
    )
