"""Hierarchical cluster_method engine option tests (§3.5 extension)."""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)


def _cfg(method, **kw):
    return EngineConfig(
        n_major_terms=120,
        n_clusters=4,
        kmeans_sample=48,
        cluster_method=method,
        **kw,
    )


@pytest.mark.parametrize("method", ["single", "complete", "average"])
def test_serial_hierarchical_end_to_end(pubmed_small, method):
    res = SerialTextEngine(_cfg(method)).run(pubmed_small)
    k = res.centroids.shape[0]
    assert k <= 4
    assert res.assignments.max() < k
    assert res.coords.shape == (len(pubmed_small), 2)
    assert res.inertia >= 0


@pytest.mark.parametrize("method", ["complete", "average"])
def test_parallel_matches_serial(pubmed_small, method):
    cfg = _cfg(method)
    s = SerialTextEngine(cfg).run(pubmed_small)
    p = ParallelTextEngine(3, config=cfg).run(pubmed_small)
    np.testing.assert_allclose(p.centroids, s.centroids, atol=1e-8)
    assert (p.assignments == s.assignments).mean() > 0.98
    assert p.inertia == pytest.approx(s.inertia, rel=1e-6)


def test_hierarchical_uses_micro_clusters(pubmed_small):
    """The two-level path must actually produce coarser groupings than
    the micro-cluster count."""
    res = SerialTextEngine(
        _cfg("complete", micro_cluster_factor=4)
    ).run(pubmed_small)
    assert res.centroids.shape[0] <= 4


def test_kmeans_vs_hierarchical_differ(pubmed_small):
    km = SerialTextEngine(_cfg("kmeans")).run(pubmed_small)
    hi = SerialTextEngine(_cfg("single")).run(pubmed_small)
    # both are valid clusterings but generally not identical
    assert km.centroids.shape[1] == hi.centroids.shape[1]


def test_unknown_method_rejected(pubmed_small):
    with pytest.raises(ValueError, match="cluster_method"):
        SerialTextEngine(_cfg("ward")).run(pubmed_small)
    with pytest.raises(RuntimeError, match="failed"):
        ParallelTextEngine(2, config=_cfg("ward")).run(pubmed_small)


def test_merge_micro_clusters_unit():
    from repro.cluster import merge_micro_clusters

    fine = np.array(
        [[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0], [9.9, 9.9]]
    )
    counts = np.array([10, 5, 8, 2, 0])  # last cluster empty
    mapping, coarse = merge_micro_clusters(fine, counts, 2, "single")
    assert mapping[0] == mapping[1]
    assert mapping[2] == mapping[3]
    assert mapping[0] != mapping[2]
    assert coarse.shape == (2, 2)
    # count-weighted means
    g0 = mapping[0]
    np.testing.assert_allclose(
        coarse[g0], (10 * fine[0] + 5 * fine[1]) / 15
    )


def test_merge_micro_clusters_errors():
    from repro.cluster import merge_micro_clusters

    with pytest.raises(ValueError):
        merge_micro_clusters(
            np.ones((2, 2)), np.array([0, 0]), 2, "single"
        )
    with pytest.raises(ValueError):
        merge_micro_clusters(
            np.ones((2, 2)), np.array([1]), 2, "single"
        )
