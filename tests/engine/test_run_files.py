"""Parallel file-scanning path (run_files) tests."""

import numpy as np
import pytest

from repro.datasets import generate_pubmed, generate_trec
from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)
from repro.text import (
    Corpus,
    merge_corpora,
    write_corpus,
    write_medline,
    write_trec_sgml,
)

_CFG = EngineConfig(n_major_terms=120, n_clusters=4, kmeans_sample=48)


@pytest.fixture(scope="module")
def source_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("sources")
    corpora = [
        generate_pubmed(30_000, seed=51, n_themes=3),
        generate_pubmed(30_000, seed=52, n_themes=3),
        generate_pubmed(30_000, seed=53, n_themes=3),
        generate_pubmed(30_000, seed=54, n_themes=3),
    ]
    paths = []
    for i, c in enumerate(corpora):
        p = root / f"part{i}.jsonl"
        write_corpus(c, p)
        paths.append(p)
    merged = merge_corpora("sources", corpora)
    return paths, merged


def test_run_files_matches_in_memory(source_files):
    paths, merged = source_files
    from_files = ParallelTextEngine(3, config=_CFG).run_files(paths)
    in_memory = ParallelTextEngine(3, config=_CFG).run(merged)
    assert from_files.n_docs == len(merged)
    assert from_files.major_term_strings == in_memory.major_term_strings
    np.testing.assert_array_equal(
        from_files.association, in_memory.association
    )
    np.testing.assert_array_equal(
        from_files.signatures, in_memory.signatures
    )


def test_run_files_matches_serial(source_files):
    paths, merged = source_files
    from_files = ParallelTextEngine(4, config=_CFG).run_files(paths)
    serial = SerialTextEngine(_CFG).run(merged)
    assert from_files.major_term_strings == serial.major_term_strings
    np.testing.assert_array_equal(
        from_files.signatures, serial.signatures
    )


def test_run_files_doc_ids_contiguous(source_files):
    paths, _ = source_files
    res = ParallelTextEngine(3, config=_CFG).run_files(paths)
    np.testing.assert_array_equal(res.doc_ids, np.arange(res.n_docs))


def test_run_files_more_ranks_than_files(source_files):
    paths, merged = source_files
    res = ParallelTextEngine(8, config=_CFG).run_files(paths)
    assert res.n_docs == len(merged)


def test_run_files_mixed_formats(tmp_path):
    med = generate_pubmed(25_000, seed=61, n_themes=3)
    gov = generate_trec(25_000, seed=61, n_themes=3)
    p1 = tmp_path / "a.med"
    p2 = tmp_path / "b.trec"
    write_medline(med, p1)
    write_trec_sgml(gov, p2)
    res = ParallelTextEngine(2, config=_CFG).run_files(
        [p1, p2], corpus_name="mixed"
    )
    assert res.corpus_name == "mixed"
    assert res.n_docs == len(med) + len(gov)


def test_run_files_represented_scale(source_files):
    paths, _ = source_files
    small = ParallelTextEngine(4, config=_CFG).run_files(paths)
    big = ParallelTextEngine(4, config=_CFG).run_files(
        paths, represented_bytes=4.0e9
    )
    assert big.timings.wall_time > 100 * small.timings.wall_time
    # identical model regardless of declared scale
    assert big.major_term_strings == small.major_term_strings


def test_run_files_empty_list_rejected():
    with pytest.raises(ValueError, match="at least one source"):
        ParallelTextEngine(2, config=_CFG).run_files([])
