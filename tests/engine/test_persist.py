"""EngineResult persistence round-trip tests."""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    SerialTextEngine,
    load_result,
    save_result,
)


@pytest.fixture(scope="module")
def result():
    from repro.datasets import generate_pubmed

    corpus = generate_pubmed(60_000, seed=17)
    cfg = EngineConfig(n_major_terms=80, n_clusters=3, kmeans_sample=24)
    return SerialTextEngine(cfg).run(corpus)


def test_roundtrip_arrays(result, tmp_path):
    path = tmp_path / "r.npz"
    save_result(result, path)
    back = load_result(path)
    np.testing.assert_array_equal(back.doc_ids, result.doc_ids)
    np.testing.assert_array_equal(back.coords, result.coords)
    np.testing.assert_array_equal(back.assignments, result.assignments)
    np.testing.assert_array_equal(back.centroids, result.centroids)
    np.testing.assert_array_equal(back.association, result.association)
    np.testing.assert_array_equal(back.signatures, result.signatures)


def test_roundtrip_model(result, tmp_path):
    path = tmp_path / "r.npz"
    save_result(result, path)
    back = load_result(path)
    assert back.major_terms == result.major_terms
    assert back.topic_terms == result.topic_terms
    assert back.term_stats == result.term_stats
    assert back.corpus_name == result.corpus_name
    assert back.n_docs == result.n_docs
    assert back.vocab_size == result.vocab_size
    assert back.inertia == result.inertia
    assert back.null_fraction == result.null_fraction


def test_roundtrip_timings(result, tmp_path):
    path = tmp_path / "r.npz"
    save_result(result, path)
    back = load_result(path)
    assert back.timings is not None
    assert back.timings.virtual == result.timings.virtual
    assert back.timings.component_seconds == pytest.approx(
        result.timings.component_seconds
    )


def test_roundtrip_without_optionals(tmp_path):
    from repro.datasets import generate_pubmed

    corpus = generate_pubmed(40_000, seed=2)
    cfg = EngineConfig(
        n_major_terms=60,
        n_clusters=3,
        keep_signatures=False,
        keep_term_stats=False,
    )
    res = SerialTextEngine(cfg).run(corpus)
    path = tmp_path / "r.npz"
    save_result(res, path)
    back = load_result(path)
    assert back.signatures is None
    assert back.term_stats is None


def test_loaded_result_supports_analysis(result, tmp_path):
    from repro.analysis import AnalysisSession

    path = tmp_path / "r.npz"
    save_result(result, path)
    sess = AnalysisSession(load_result(path))
    hits = sess.similar_documents(0, k=3)
    assert len(hits) == 3


def test_bad_format_rejected(tmp_path):
    import json

    import numpy as np

    path = tmp_path / "bad.npz"
    np.savez(path, _meta_json=np.array(json.dumps({"format_version": 99}), dtype=object))
    with pytest.raises(ValueError, match="unsupported"):
        load_result(path)
