"""Shared fixtures for engine tests."""

import pytest

from repro.datasets import generate_pubmed, generate_trec
from repro.engine import EngineConfig


@pytest.fixture(scope="session")
def small_config():
    """Engine config sized for tiny test corpora."""
    return EngineConfig(
        n_major_terms=120,
        n_clusters=5,
        kmeans_sample=48,
        kmeans_max_iter=25,
        chunk_docs=4,
    )


@pytest.fixture(scope="session")
def pubmed_small():
    return generate_pubmed(90_000, seed=11)


@pytest.fixture(scope="session")
def trec_small():
    return generate_trec(90_000, seed=11)
