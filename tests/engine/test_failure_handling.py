"""Failure-injection tests: the engine must fail fast, never hang."""

import pytest

from repro.engine import EngineConfig, ParallelTextEngine, SerialTextEngine
from repro.text import Corpus, Document

_CFG = EngineConfig(n_major_terms=8, min_df=1, n_clusters=2, kmeans_sample=4)


def test_non_string_field_fails_cleanly_serial():
    corpus = Corpus(
        "bad", [Document(0, {"body": 12345})]  # type: ignore[dict-item]
    )
    with pytest.raises(Exception):
        SerialTextEngine(_CFG).run(corpus)


class _Bomb(str):
    """A string that detonates inside the scan stage's tokenizer."""

    def lower(self):  # noqa: A003 - deliberate sabotage
        raise RuntimeError("boom in tokenization")


def test_rank_side_failure_propagates_without_hanging():
    docs = [
        Document(0, {"body": "fine words here"}),
        Document(1, {"body": _Bomb("ticking")}),
        Document(2, {"body": "more fine words"}),
    ]
    corpus = Corpus("bad", docs)
    # the failing rank's exception propagates; no deadlock/hang
    with pytest.raises(RuntimeError, match="failed"):
        ParallelTextEngine(3, config=_CFG).run(corpus)


def test_empty_corpus_fails_cleanly():
    corpus = Corpus("empty", [])
    with pytest.raises(Exception):
        SerialTextEngine(_CFG).run(corpus)
    with pytest.raises(Exception):
        ParallelTextEngine(2, config=_CFG).run(corpus)


def test_all_stopword_corpus_fails_with_message():
    docs = [Document(i, {"body": "the and of to a"}) for i in range(4)]
    corpus = Corpus("stop", docs)
    with pytest.raises(ValueError, match="no candidate major terms"):
        SerialTextEngine(_CFG).run(corpus)


def test_failure_leaves_no_stuck_threads():
    import threading

    before = threading.active_count()
    docs = [Document(0, {"body": None})] * 2  # type: ignore[list-item]
    corpus = Corpus("bad", [Document(i, d.fields) for i, d in enumerate(docs)])
    for _ in range(3):
        with pytest.raises(Exception):
            ParallelTextEngine(4, config=_CFG).run(corpus)
    # rank threads unwind promptly after each failed run
    import time

    deadline = time.time() + 10
    while threading.active_count() > before + 2 and time.time() < deadline:
        time.sleep(0.05)
    assert threading.active_count() <= before + 2


def test_engine_failure_then_success_in_same_process():
    bad = Corpus("bad", [Document(0, {"body": None})])  # type: ignore[dict-item]
    with pytest.raises(Exception):
        ParallelTextEngine(2, config=_CFG).run(bad)
    good = Corpus(
        "good",
        [
            Document(0, {"body": "apple banana apple"}),
            Document(1, {"body": "banana cherry banana"}),
        ],
    )
    res = ParallelTextEngine(2, config=_CFG).run(good)
    assert res.n_docs == 2
