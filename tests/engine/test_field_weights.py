"""Field-emphasis (field_weights) tests."""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)
from repro.text import Corpus, Document


def _corpus():
    # three themes; each doc's title usually (75%) names the body's
    # theme but sometimes the next one, so title terms are positively
    # but imperfectly associated with the topic dimensions -- the
    # situation where field emphasis genuinely shifts signatures
    title_words = ["cardiotitle", "neurotitle", "hepatotitle"]
    body_words = ["cardiobody", "neurobody", "hepatobody"]
    docs = []
    for i in range(24):
        j = i % 3
        tj = j if i % 4 != 0 else (j + 1) % 3
        t = title_words[tj]
        b = body_words[j]
        docs.append(
            Document(
                i,
                {
                    "title": f"{t} {t}",
                    "body": (
                        f"{b} " * 4
                        + "common filler words appear here "
                        + f"doc{i:02d}unique"
                    ),
                },
            )
        )
    return Corpus("weights", docs)


def _cfg(**kw):
    return EngineConfig(
        n_major_terms=20, min_df=2, n_clusters=2, kmeans_sample=12, **kw
    )


def test_title_weight_shifts_signatures():
    corpus = _corpus()
    plain = SerialTextEngine(_cfg()).run(corpus)
    boosted = SerialTextEngine(
        _cfg(field_weights={"title": 10.0})
    ).run(corpus)
    # signatures must change when the title dominates
    assert not np.allclose(plain.signatures, boosted.signatures)


def test_weighted_signatures_still_l1():
    corpus = _corpus()
    res = SerialTextEngine(
        _cfg(field_weights={"title": 3.0, "body": 0.5})
    ).run(corpus)
    sums = res.signatures.sum(axis=1)
    for s in sums:
        assert s == pytest.approx(1.0) or s == 0.0


def test_parallel_matches_serial_with_weights():
    corpus = _corpus()
    cfg = _cfg(field_weights={"title": 4.0})
    s = SerialTextEngine(cfg).run(corpus)
    p = ParallelTextEngine(3, config=cfg).run(corpus)
    np.testing.assert_array_equal(p.signatures, s.signatures)
    assert p.major_term_strings == s.major_term_strings


def test_unlisted_fields_default_to_one():
    corpus = _corpus()
    explicit = SerialTextEngine(
        _cfg(field_weights={"title": 1.0, "body": 1.0})
    ).run(corpus)
    implicit = SerialTextEngine(_cfg(field_weights={})).run(corpus)
    none_cfg = SerialTextEngine(_cfg()).run(corpus)
    np.testing.assert_array_equal(
        explicit.signatures, none_cfg.signatures
    )
    np.testing.assert_array_equal(
        implicit.signatures, none_cfg.signatures
    )


def test_token_weights_helper():
    from repro.scan import encode_forward, scan_documents
    from repro.scan.vocabulary import finalize_vocabulary_serial
    from repro.scan.scanner import unique_terms
    from repro.text import Tokenizer

    docs = [Document(0, {"a": "xx yy", "b": "zz"})]
    scanned, _ = scan_documents(docs, Tokenizer())
    vocab = finalize_vocabulary_serial(unique_terms(scanned))
    fwd = encode_forward(scanned, vocab.term_to_gid, {"a": 0, "b": 1})
    weights = fwd.token_weights(2, np.array([2.0, 5.0]))
    np.testing.assert_array_equal(weights[0], [2.0, 2.0, 5.0])
