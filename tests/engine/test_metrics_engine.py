"""Engine-level metrics: the determinism oracle and report contents.

The issue's acceptance criterion: the full metrics dict of a P=8
pipeline run must be bit-identical between the fastpath scheduler and
``REPRO_SCHED_SLOWPATH=1``, and across repeated runs at the same seed.
The snapshot is also checked for the reportable content (comm matrix,
per-stage imbalance, hashmap locality) and for persistence round-trip
through ``save_result``/``load_result``.
"""

import json

import numpy as np
import pytest

from repro.bench.harness import default_figure_config
from repro.datasets import generate_pubmed
from repro.engine import load_result, save_result
from repro.engine.parallel import ParallelTextEngine
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import (
    comm_matrix,
    counter_totals,
    hashmap_locality,
    render_report,
    stage_imbalance,
    validate_snapshot,
)
from repro.runtime.scheduler import SLOWPATH_ENV

NPROCS = 8


def _run_pipeline(monkeypatch, slowpath: bool):
    if slowpath:
        monkeypatch.setenv(SLOWPATH_ENV, "1")
    else:
        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
    corpus = generate_pubmed(
        60_000, seed=11, represented_bytes=60_000_000.0
    )
    eng = ParallelTextEngine(
        NPROCS, machine=MachineSpec(), config=default_figure_config()
    )
    return eng.run(corpus)


@pytest.fixture(scope="module")
def fast_result():
    corpus = generate_pubmed(
        60_000, seed=11, represented_bytes=60_000_000.0
    )
    eng = ParallelTextEngine(
        NPROCS, machine=MachineSpec(), config=default_figure_config()
    )
    return eng.run(corpus)


def _digest(snap) -> bytes:
    return json.dumps(snap, sort_keys=True).encode()


def test_metrics_bit_identical_fast_vs_slowpath_and_repeated(
    monkeypatch, fast_result
):
    """The acceptance-criterion test: one digest, three mechanisms."""
    fast_again = _run_pipeline(monkeypatch, slowpath=False)
    slow = _run_pipeline(monkeypatch, slowpath=True)
    d0 = _digest(fast_result.metrics)
    assert d0 == _digest(fast_again.metrics), (
        "metrics drifted between two fastpath runs at the same seed"
    )
    assert d0 == _digest(slow.metrics), (
        "metrics differ between fastpath and REPRO_SCHED_SLOWPATH=1"
    )


def test_snapshot_schema_and_shape(fast_result):
    snap = validate_snapshot(fast_result.metrics)
    assert snap["nprocs"] == NPROCS
    # every subsystem the pipeline exercises reported something (the
    # engine is all-collective/RPC/one-sided; raw p2p stays empty)
    for family in (
        "comm.coll.calls",
        "comm.coll.bytes",
        "comm.rpc.calls",
        "comm.rpc.bytes",
        "hashmap.ops",
        "taskq.chunks",
        "sched.blocked_seconds",
    ):
        assert snap["counters"][family]["values"], family
    assert snap["histograms"]["sched.block_seconds"]["values"]


def test_comm_matrix_is_p_by_p(fast_result):
    m = comm_matrix(fast_result.metrics, "bytes")
    assert m.shape == (NPROCS, NPROCS)
    assert m.sum() > 0
    msgs = comm_matrix(fast_result.metrics, "messages")
    assert msgs.shape == (NPROCS, NPROCS)


def test_stage_imbalance_covers_pipeline_stages(fast_result):
    out = stage_imbalance(fast_result.metrics)
    for stage in ("scan", "index", "topic", "am", "docvec", "clusproj"):
        assert stage in out, stage
        assert out[stage]["imbalance"] >= 1.0 - 1e-12
        assert out[stage]["max_busy"] >= out[stage]["mean_busy"] - 1e-12


def test_hashmap_locality_reported(fast_result):
    out = hashmap_locality(fast_result.metrics)
    assert "vocab" in out
    vocab = out["vocab"]
    assert vocab["local"] + vocab["remote"] > 0
    assert 0.0 <= vocab["local_fraction"] <= 1.0


def test_stage_sections_match_tracer_totals(fast_result):
    """Stage seconds in the snapshot come from the same clocks as the
    StageTimings components."""
    snap = fast_result.metrics
    comp = fast_result.timings.component_seconds
    for stage in ("scan", "topic", "am", "docvec", "clusproj"):
        recorded = max(snap["stages"][stage]["seconds"])
        assert recorded == pytest.approx(comp[stage], rel=1e-9), stage


def test_blocked_never_exceeds_stage_seconds(fast_result):
    for stage, st in fast_result.metrics["stages"].items():
        for sec, blocked in zip(st["seconds"], st["blocked_seconds"]):
            assert blocked <= sec + 1e-9, stage


def test_render_report_prints_required_sections(fast_result):
    text = render_report(fast_result.metrics)
    assert f"P={NPROCS}" in text
    assert "communication matrix" in text
    assert "load balance" in text
    assert "hashmap RPC locality" in text
    assert "task queues" in text


def test_metrics_persist_roundtrip(fast_result, tmp_path):
    path = tmp_path / "result.npz"
    save_result(fast_result, path)
    back = load_result(path)
    assert back.metrics is not None
    assert _digest(back.metrics) == _digest(fast_result.metrics)
    # and untouched legacy behaviour: coords survive too
    assert np.array_equal(back.coords, fast_result.coords)


def test_counter_totals_are_positive(fast_result):
    totals = counter_totals(fast_result.metrics)
    assert totals["comm.rpc.bytes"] > 0
    assert totals["comm.coll.calls"] > 0
