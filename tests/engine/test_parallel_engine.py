"""Parallel engine tests: serial equivalence and scaling behaviour."""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)
from repro.runtime import MachineSpec


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
def test_model_identical_to_serial(pubmed_small, small_config, nprocs):
    """The parallel engine must produce the *same model* as the serial
    engine for every processor count: same major terms, same topics,
    bit-identical association matrix and signatures."""
    s = SerialTextEngine(small_config).run(pubmed_small)
    p = ParallelTextEngine(nprocs, config=small_config).run(pubmed_small)
    assert p.nprocs == nprocs
    assert p.n_docs == s.n_docs
    assert p.vocab_size == s.vocab_size
    assert p.major_term_strings == s.major_term_strings
    assert p.topic_term_strings == s.topic_term_strings
    np.testing.assert_array_equal(p.association, s.association)
    np.testing.assert_array_equal(p.signatures, s.signatures)
    assert p.null_fraction == s.null_fraction


@pytest.mark.parametrize("nprocs", [2, 4])
def test_clustering_close_to_serial(pubmed_small, small_config, nprocs):
    """Clustering/projection agree up to float reduction order."""
    s = SerialTextEngine(small_config).run(pubmed_small)
    p = ParallelTextEngine(nprocs, config=small_config).run(pubmed_small)
    np.testing.assert_allclose(p.centroids, s.centroids, atol=1e-8)
    np.testing.assert_allclose(p.coords, s.coords, atol=1e-7)
    assert p.inertia == pytest.approx(s.inertia, rel=1e-9)
    mismatch = np.mean(p.assignments != s.assignments)
    assert mismatch < 0.02  # only float-tie flips allowed


def test_term_stats_identical_to_serial(trec_small, small_config):
    s = SerialTextEngine(small_config).run(trec_small)
    p = ParallelTextEngine(3, config=small_config).run(trec_small)
    assert p.term_stats == s.term_stats


def test_parallel_deterministic(pubmed_small, small_config):
    p1 = ParallelTextEngine(4, config=small_config).run(pubmed_small)
    p2 = ParallelTextEngine(4, config=small_config).run(pubmed_small)
    np.testing.assert_array_equal(p1.coords, p2.coords)
    np.testing.assert_array_equal(p1.assignments, p2.assignments)
    assert p1.timings.wall_time == p2.timings.wall_time
    assert p1.timings.component_seconds == p2.timings.component_seconds


def test_trec_end_to_end(trec_small, small_config):
    p = ParallelTextEngine(4, config=small_config).run(trec_small)
    assert p.coords.shape == (len(trec_small), 2)
    assert p.timings.virtual


def test_wall_time_decreases_with_procs(pubmed_small, small_config):
    walls = {}
    for nprocs in (1, 2, 4, 8):
        r = ParallelTextEngine(nprocs, config=small_config).run(
            pubmed_small
        )
        walls[nprocs] = r.timings.wall_time
    assert walls[2] < walls[1]
    assert walls[4] < walls[2]
    assert walls[8] < walls[4]
    # roughly linear: 8 procs at least 3.5x faster than 1
    assert walls[1] / walls[8] > 3.5


def test_component_timings_present(pubmed_small, small_config):
    r = ParallelTextEngine(4, config=small_config).run(pubmed_small)
    t = r.timings
    assert set(t.component_seconds) == {
        "scan",
        "index",
        "topic",
        "am",
        "docvec",
        "clusproj",
    }
    for name, per_rank in t.per_rank.items():
        assert per_rank.shape == (4,)
        assert np.all(per_rank >= 0)
    # components are barrier-separated: their walls sum to <= run wall
    assert sum(t.component_seconds.values()) <= t.wall_time * 1.001


def test_static_vs_dynamic_load_balancing(trec_small):
    """Dynamic LB must reduce the indexing-stage imbalance on the
    skewed TREC corpus (the Fig. 9 phenomenon)."""
    base = dict(
        n_major_terms=120, n_clusters=5, kmeans_sample=48, chunk_docs=2
    )
    dyn = ParallelTextEngine(
        4, config=EngineConfig(**base, dynamic_load_balancing=True)
    ).run(trec_small)
    stat = ParallelTextEngine(
        4, config=EngineConfig(**base, dynamic_load_balancing=False)
    ).run(trec_small)
    # identical results either way
    assert dyn.major_term_strings == stat.major_term_strings
    np.testing.assert_array_equal(dyn.association, stat.association)
    # but the balanced run's inversion wall is no worse, and the
    # per-rank busy-time spread is tighter (the Fig. 9 claim)
    pr_dyn = dyn.timings.extras["index_invert_per_rank"]
    pr_stat = stat.timings.extras["index_invert_per_rank"]
    assert pr_dyn.max() <= pr_stat.max() * 1.05
    imb_dyn = pr_dyn.max() / max(1e-12, pr_dyn.mean())
    imb_stat = pr_stat.max() / max(1e-12, pr_stat.mean())
    assert imb_dyn <= imb_stat + 1e-9


def test_memory_pressure_slows_low_proc_counts(pubmed_small):
    """The 16.44 GB @ 4 procs anomaly: declaring a huge represented
    size triggers the thrashing model at low processor counts only."""
    import dataclasses

    big = dataclasses.replace(pubmed_small, represented_bytes=16.44e9)
    cfg = EngineConfig(n_major_terms=120, n_clusters=5, kmeans_sample=48)
    r4 = ParallelTextEngine(4, config=cfg).run(big)
    r8 = ParallelTextEngine(8, config=cfg).run(big)
    # thrashing at 4 procs makes the 4->8 step superlinear
    assert r4.timings.wall_time / r8.timings.wall_time > 3.0


def test_more_procs_than_docs():
    from repro.text import Corpus, Document

    docs = [
        Document(i, {"body": f"apple banana w{i} apple cherry"})
        for i in range(3)
    ]
    corpus = Corpus("tiny", docs)
    cfg = EngineConfig(
        n_major_terms=4, min_df=1, n_clusters=2, kmeans_sample=4
    )
    r = ParallelTextEngine(6, config=cfg).run(corpus)
    assert r.n_docs == 3
    assert r.coords.shape == (3, 2)


def test_custom_machine_spec(pubmed_small, small_config):
    slow_net = MachineSpec(net_bytes_per_s=1e6, net_latency_s=1e-3)
    fast = ParallelTextEngine(4, config=small_config).run(pubmed_small)
    slow = ParallelTextEngine(
        4, machine=slow_net, config=small_config
    ).run(pubmed_small)
    assert slow.timings.wall_time > fast.timings.wall_time
    # results unaffected by network speed
    assert slow.major_term_strings == fast.major_term_strings
