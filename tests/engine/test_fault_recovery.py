"""Fault-tolerant engine tests: checkpoint-restart, determinism,
zero overhead, and transparent retry of transient faults.

The acceptance bar: an injected fail-stop crash in any pipeline stage
must still complete via stage checkpoint-restart with one rank fewer,
and the recovered model must equal the fault-free serial oracle.
"""

import dataclasses

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)
from repro.runtime import (
    CrashFault,
    FaultPlan,
    RankFailedError,
    RpcFlakeFault,
    StragglerFault,
)

NPROCS = 4


@pytest.fixture(scope="module")
def serial_oracle(pubmed_small, small_config):
    return SerialTextEngine(small_config).run(pubmed_small)


@pytest.fixture(scope="module")
def fault_free(pubmed_small, small_config):
    return ParallelTextEngine(NPROCS, config=small_config).run(pubmed_small)


@pytest.fixture(scope="module")
def stage_mid_times(fault_free):
    """Virtual times landing mid-way through each pipeline stage,
    derived from a fault-free run's component timings."""
    cs = fault_free.timings.component_seconds
    scan = cs.get("scan", 0.0)
    index = cs.get("index", 0.0)
    topic = cs.get("topic", 0.0)
    sig = cs.get("am", 0.0) + cs.get("docvec", 0.0)
    clusproj = cs.get("clusproj", 0.0)
    return {
        "scan": 0.5 * scan,
        "index": scan + 0.5 * index,
        "topic": scan + index + 0.5 * topic,
        "sig": scan + index + topic + 0.5 * sig,
        # not checkpointed itself: recovery replays it from "sig"
        "clusproj": scan + index + topic + sig + 0.5 * clusproj,
    }


def _assert_model_equals_oracle(result, oracle):
    assert result.n_docs == oracle.n_docs
    assert result.vocab_size == oracle.vocab_size
    assert result.major_term_strings == oracle.major_term_strings
    assert result.topic_term_strings == oracle.topic_term_strings
    np.testing.assert_array_equal(result.association, oracle.association)
    np.testing.assert_array_equal(result.signatures, oracle.signatures)
    assert result.null_fraction == oracle.null_fraction
    np.testing.assert_allclose(result.centroids, oracle.centroids, atol=1e-8)
    np.testing.assert_allclose(result.coords, oracle.coords, atol=1e-7)


@pytest.mark.parametrize(
    "stage", ["scan", "index", "topic", "sig", "clusproj"]
)
def test_crash_in_each_stage_recovers_to_oracle(
    pubmed_small, small_config, serial_oracle, stage_mid_times, stage
):
    """A rank dies mid-stage; the run restarts on the survivors from
    the last completed checkpoint and still matches the serial model."""
    plan = FaultPlan(
        faults=(CrashFault(rank=2, at_time=stage_mid_times[stage]),)
    )
    cfg = dataclasses.replace(small_config, fault_plan=plan)
    result = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)

    _assert_model_equals_oracle(result, serial_oracle)
    rec = result.meta["recovery"]
    assert rec["restarts"] == 1
    assert rec["final_nprocs"] == NPROCS - 1
    (attempt,) = rec["failed_attempts"]
    assert attempt["nprocs"] == NPROCS
    assert attempt["failed_ranks"] == [2]
    assert attempt["wall_time"] > 0.0


def test_two_successive_crashes_recover(
    pubmed_small, small_config, serial_oracle, stage_mid_times, tmp_path
):
    """Crashes in two different attempts: P -> P-1 -> P-2."""
    plan = FaultPlan(
        faults=(
            CrashFault(rank=1, at_time=stage_mid_times["index"]),
            CrashFault(rank=2, at_call=40),
        )
    )
    cfg = dataclasses.replace(
        small_config, fault_plan=plan, checkpoint_dir=str(tmp_path / "ck")
    )
    result = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
    _assert_model_equals_oracle(result, serial_oracle)
    rec = result.meta["recovery"]
    assert rec["restarts"] == 2
    assert rec["final_nprocs"] == NPROCS - 2
    assert len(rec["failed_attempts"]) == 2


def test_recovered_run_is_deterministic(
    pubmed_small, small_config, stage_mid_times
):
    """Same seed + same plan => bit-identical results and timings."""
    plan = FaultPlan(
        faults=(CrashFault(rank=3, at_time=stage_mid_times["index"]),)
    )
    cfg = dataclasses.replace(small_config, fault_plan=plan)
    r1 = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
    r2 = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
    np.testing.assert_array_equal(r1.signatures, r2.signatures)
    np.testing.assert_array_equal(r1.coords, r2.coords)
    np.testing.assert_array_equal(r1.assignments, r2.assignments)
    assert r1.timings.wall_time == r2.timings.wall_time
    assert r1.timings.component_seconds == r2.timings.component_seconds
    assert r1.meta["recovery"] == r2.meta["recovery"]


def test_empty_plan_is_zero_overhead(
    pubmed_small, small_config, fault_free
):
    """Arming the fault subsystem with no faults changes nothing:
    identical virtual times and identical results."""
    cfg = dataclasses.replace(small_config, fault_plan=FaultPlan())
    armed = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
    np.testing.assert_array_equal(armed.signatures, fault_free.signatures)
    np.testing.assert_array_equal(armed.coords, fault_free.coords)
    assert armed.timings.wall_time == fault_free.timings.wall_time
    assert (
        armed.timings.component_seconds
        == fault_free.timings.component_seconds
    )
    assert "recovery" in armed.meta  # armed runs do report recovery
    assert armed.meta["recovery"]["restarts"] == 0


def test_rpc_flakes_are_transparently_retried(
    pubmed_small, small_config, serial_oracle
):
    """Transient hashmap-insert RPC failures are absorbed by the
    retry-with-backoff policy: same model, slightly later clock."""
    plan = FaultPlan(
        faults=(RpcFlakeFault(rank=1, nth_calls=(1, 2, 5)),)
    )
    cfg = dataclasses.replace(small_config, fault_plan=plan)
    result = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
    _assert_model_equals_oracle(result, serial_oracle)
    assert result.meta["recovery"]["restarts"] == 0


def test_straggler_changes_time_not_model(
    pubmed_small, small_config, serial_oracle, fault_free
):
    plan = FaultPlan(faults=(StragglerFault(rank=1, factor=3.0),))
    cfg = dataclasses.replace(small_config, fault_plan=plan)
    result = ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
    _assert_model_equals_oracle(result, serial_oracle)
    assert result.timings.wall_time > fault_free.timings.wall_time


def test_restart_budget_exhaustion_raises(
    pubmed_small, small_config, stage_mid_times
):
    plan = FaultPlan(
        faults=(CrashFault(rank=2, at_time=stage_mid_times["scan"]),)
    )
    cfg = dataclasses.replace(
        small_config, fault_plan=plan, max_restarts=0
    )
    with pytest.raises(RankFailedError):
        ParallelTextEngine(NPROCS, config=cfg).run(pubmed_small)
