"""max_df_fraction boilerplate-filter tests."""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ParallelTextEngine,
    SerialTextEngine,
)
from repro.text import Corpus, Document


def _corpus():
    """Every doc carries the boilerplate term plus a theme term."""
    docs = []
    for i in range(20):
        theme = f"theme{i % 4}"
        docs.append(
            Document(
                i,
                {
                    "body": (
                        f"boilerplate {theme} {theme} filler{i % 7} "
                        "boilerplate"
                    )
                },
            )
        )
    return Corpus("maxdf", docs)


def _cfg(**kw):
    return EngineConfig(
        n_major_terms=12, min_df=1, n_clusters=2, kmeans_sample=8, **kw
    )


def test_boilerplate_excluded_when_filtered():
    res = SerialTextEngine(_cfg(max_df_fraction=0.9)).run(_corpus())
    assert "boilerplate" not in res.major_term_strings


def test_boilerplate_kept_by_default():
    res = SerialTextEngine(_cfg()).run(_corpus())
    assert "boilerplate" in res.major_term_strings


def test_parallel_applies_same_filter():
    cfg = _cfg(max_df_fraction=0.9)
    s = SerialTextEngine(cfg).run(_corpus())
    p = ParallelTextEngine(3, config=cfg).run(_corpus())
    assert p.major_term_strings == s.major_term_strings
    np.testing.assert_array_equal(p.signatures, s.signatures)


def test_local_candidates_max_df_unit():
    from repro.signature import local_candidates

    terms = ["everywhere", "clumped"]
    df = np.array([100, 5])
    cf = np.array([150, 20])
    out = local_candidates(
        terms, 0, df, cf, n_docs=100, min_df=1, limit=10,
        max_df_fraction=0.5,
    )
    assert [t.term for t in out] == ["clumped"]


def test_invalid_fraction_rejected():
    with pytest.raises(ValueError):
        EngineConfig(max_df_fraction=0.0)
    with pytest.raises(ValueError):
        EngineConfig(max_df_fraction=1.2)
