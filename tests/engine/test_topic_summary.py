"""EngineResult.topic_summary tests."""

import pytest

from repro.datasets import generate_pubmed
from repro.engine import EngineConfig, SerialTextEngine


@pytest.fixture(scope="module")
def result():
    corpus = generate_pubmed(90_000, seed=71, n_themes=4)
    cfg = EngineConfig(n_major_terms=120, n_clusters=4, kmeans_sample=48)
    return SerialTextEngine(cfg).run(corpus)


def test_one_entry_per_topic(result):
    summary = result.topic_summary()
    assert len(summary) == result.n_topics
    assert [s["term"] for s in summary] == result.topic_term_strings


def test_related_terms_are_majors_and_exclude_self(result):
    majors = set(result.major_term_strings)
    for s in result.topic_summary(n_related=4):
        assert len(s["related"]) <= 4
        assert s["term"] not in s["related"]
        for t in s["related"]:
            assert t in majors


def test_related_ordered_by_association(result):
    summary = result.topic_summary(n_related=6)
    term_row = {t.term: i for i, t in enumerate(result.major_terms)}
    for j, s in enumerate(summary):
        col = result.association[:, j]
        strengths = [col[term_row[t]] for t in s["related"]]
        assert strengths == sorted(strengths, reverse=True)
        assert all(v > 0 for v in strengths)


def test_scores_and_df_carried(result):
    for s, t in zip(result.topic_summary(), result.topic_terms):
        assert s["score"] == t.score
        assert s["df"] == t.df
