"""Serial engine tests: end-to-end behaviour and edge cases."""

import numpy as np
import pytest

from repro.engine import EngineConfig, SerialTextEngine
from repro.text import Corpus, Document


def test_end_to_end_pubmed(pubmed_small, small_config):
    res = SerialTextEngine(small_config).run(pubmed_small)
    n = len(pubmed_small)
    assert res.n_docs == n
    assert res.coords.shape == (n, 2)
    assert res.assignments.shape == (n,)
    assert res.signatures.shape == (n, res.n_topics)
    assert res.association.shape == (res.n_major, res.n_topics)
    assert res.n_major <= small_config.n_major_terms
    assert 0.0 <= res.null_fraction <= 1.0
    assert res.vocab_size > 100
    np.testing.assert_array_equal(res.doc_ids, np.arange(n))


def test_topics_are_theme_terms(pubmed_small, small_config):
    """Topicality must surface theme vocabulary, not background words."""
    res = SerialTextEngine(small_config).run(pubmed_small)
    from repro.datasets import ThemeModel, ThemeModelConfig
    from repro.datasets.vocabulary import BIOMEDICAL_AFFIXES

    model = ThemeModel(
        ThemeModelConfig(vocab_size=12_000, n_themes=12),
        seed=11,
        affixes=BIOMEDICAL_AFFIXES,
    )
    theme_words = {
        model.vocab[i] for terms in model.theme_terms for i in terms
    }
    top = res.topic_term_strings
    hits = sum(1 for t in top if t in theme_words)
    assert hits >= 0.7 * len(top)


def test_clusters_recover_themes():
    """Documents of the same generated theme should mostly co-cluster."""
    from repro.datasets import generate_pubmed

    corpus = generate_pubmed(120_000, seed=21, n_themes=4)
    cfg = EngineConfig(n_major_terms=120, n_clusters=4, kmeans_sample=48)
    res = SerialTextEngine(cfg).run(corpus)
    labels = np.array(corpus.meta["theme_labels"])
    # purity of the clustering against generated theme labels
    purity = 0
    for c in np.unique(res.assignments):
        members = labels[res.assignments == c]
        purity += np.bincount(members).max()
    purity /= len(labels)
    assert purity > 0.6


def test_timings_recorded(pubmed_small, small_config):
    res = SerialTextEngine(small_config).run(pubmed_small)
    t = res.timings
    assert not t.virtual
    assert set(t.component_seconds) == {
        "scan",
        "index",
        "topic",
        "am",
        "docvec",
        "clusproj",
    }
    assert abs(sum(t.component_percentages.values()) - 100.0) < 1e-6


def test_term_stats_match_corpus(small_config):
    docs = [
        Document(0, {"body": "apple apple banana"}),
        Document(1, {"body": "banana cherry"}),
        Document(2, {"body": "apple cherry cherry cherry"}),
    ]
    corpus = Corpus("tiny", docs)
    cfg = EngineConfig(
        n_major_terms=3, n_clusters=2, min_df=1, kmeans_sample=3
    )
    res = SerialTextEngine(cfg).run(corpus)
    assert res.term_stats["apple"] == (2, 3)
    assert res.term_stats["banana"] == (2, 2)
    assert res.term_stats["cherry"] == (2, 4)


def test_deterministic_across_runs(pubmed_small, small_config):
    r1 = SerialTextEngine(small_config).run(pubmed_small)
    r2 = SerialTextEngine(small_config).run(pubmed_small)
    assert r1.major_term_strings == r2.major_term_strings
    np.testing.assert_array_equal(r1.association, r2.association)
    np.testing.assert_array_equal(r1.signatures, r2.signatures)
    np.testing.assert_array_equal(r1.coords, r2.coords)
    np.testing.assert_array_equal(r1.assignments, r2.assignments)


def test_adaptive_dimensionality_reduces_nulls():
    """With a tiny initial N, many docs have null signatures; the
    adaptive loop (§4.2) must double N until the nulls subside."""
    rng_docs = []
    # 30 docs, each about a distinct topic word (plus filler), so a
    # 2-term model cannot cover them all
    for i in range(30):
        word = f"topicword{i:02d}"
        body = (f"{word} " * 3) + "filler common words everywhere"
        rng_docs.append(Document(i, {"body": body}))
    corpus = Corpus("adapt", rng_docs)
    base = EngineConfig(
        n_major_terms=2,
        min_df=1,
        n_clusters=3,
        kmeans_sample=16,
        max_null_fraction=0.1,
        max_major_terms=64,
    )
    res = SerialTextEngine(base).run(corpus)
    assert res.adapt_rounds > 0
    assert res.n_major > 2
    no_adapt = EngineConfig(
        n_major_terms=2,
        min_df=1,
        n_clusters=3,
        kmeans_sample=16,
        adapt_dimensionality=False,
    )
    res2 = SerialTextEngine(no_adapt).run(corpus)
    assert res2.adapt_rounds == 0
    assert res2.null_fraction > res.null_fraction


def test_empty_vocab_raises():
    corpus = Corpus("empty", [Document(0, {"body": "... 123 !!"})])
    with pytest.raises(ValueError, match="no candidate major terms"):
        SerialTextEngine(EngineConfig(min_df=1)).run(corpus)


def test_keep_flags(pubmed_small):
    cfg = EngineConfig(
        n_major_terms=50,
        n_clusters=3,
        keep_signatures=False,
        keep_term_stats=False,
    )
    res = SerialTextEngine(cfg).run(pubmed_small)
    assert res.signatures is None
    assert res.term_stats is None


def test_projection_dim_3(pubmed_small):
    cfg = EngineConfig(n_major_terms=50, n_clusters=4, projection_dim=3)
    res = SerialTextEngine(cfg).run(pubmed_small)
    assert res.coords.shape == (len(pubmed_small), 3)


def test_summary_is_readable(pubmed_small, small_config):
    res = SerialTextEngine(small_config).run(pubmed_small)
    s = res.summary()
    assert "pubmed" in s
    assert "major terms" in s
