"""EngineConfig validation tests."""

import pytest

from repro.engine import EngineConfig


def test_defaults_valid():
    EngineConfig()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_major_terms": 0},
        {"topic_fraction": 0.0},
        {"topic_fraction": 1.5},
        {"min_df": 0},
        {"n_major_terms": 100, "max_major_terms": 50},
        {"max_null_fraction": -0.1},
        {"max_null_fraction": 1.5},
        {"n_clusters": 0},
        {"kmeans_max_iter": 0},
        {"kmeans_tol": -1e-9},
        {"kmeans_sample": 0},
        {"projection_dim": 0},
        {"chunk_docs": 0},
        {"micro_cluster_factor": 0},
        {"mem_expansion": 0.0},
        {"field_weights": {"title": -1.0}},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        EngineConfig(**kwargs)


def test_valid_edge_values():
    EngineConfig(
        n_major_terms=1,
        max_major_terms=1,
        topic_fraction=1.0,
        min_df=1,
        n_clusters=1,
        kmeans_tol=0.0,
        projection_dim=1,
        field_weights={"title": 0.0},
    )


def test_frozen():
    cfg = EngineConfig()
    with pytest.raises(Exception):
        cfg.n_clusters = 5  # type: ignore[misc]
