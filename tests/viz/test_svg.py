"""SVG export tests."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz import PALETTE, build_themeview, render_svg, write_svg

_NS = "{http://www.w3.org/2000/svg}"


def _coords(n=40, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.vstack(
        [
            rng.normal((-3, 0), 0.3, size=(n, 2)),
            rng.normal((3, 0), 0.3, size=(n, 2)),
        ]
    )
    assignments = np.array([0] * n + [1] * n)
    return coords, assignments


def test_svg_is_valid_xml_with_one_circle_per_doc():
    coords, assignments = _coords()
    svg = render_svg(coords, assignments)
    root = ET.fromstring(svg)
    circles = root.findall(f"{_NS}circle")
    assert len(circles) == len(coords)


def test_svg_colors_by_cluster():
    coords, assignments = _coords()
    svg = render_svg(coords, assignments)
    assert PALETTE[0] in svg
    assert PALETTE[1] in svg


def test_svg_without_assignments_single_color():
    coords, _ = _coords()
    svg = render_svg(coords)
    assert PALETTE[1] not in svg


def test_svg_with_terrain_and_labels():
    coords, assignments = _coords()
    view = build_themeview(
        coords,
        assignments,
        cluster_labels={0: ["alpha"], 1: ["beta"]},
        grid=24,
    )
    svg = render_svg(coords, assignments, view=view)
    root = ET.fromstring(svg)
    rects = root.findall(f"{_NS}rect")
    assert len(rects) > 1  # background + terrain cells
    texts = [t.text for t in root.findall(f"{_NS}text")]
    assert any("alpha" in (t or "") for t in texts)


def test_svg_labels_escaped():
    coords, assignments = _coords(n=5)
    view = build_themeview(
        coords,
        assignments,
        cluster_labels={0: ["a<b&c"], 1: ["x"]},
        grid=16,
    )
    svg = render_svg(coords, assignments, view=view)
    ET.fromstring(svg)  # escaping keeps it well-formed
    assert "a<b&c" not in svg


def test_svg_degenerate_coords():
    # all coincident points still render
    coords = np.zeros((5, 2))
    svg = render_svg(coords)
    assert ET.fromstring(svg) is not None


def test_svg_invalid_inputs():
    with pytest.raises(ValueError):
        render_svg(np.empty((0, 2)))
    with pytest.raises(ValueError):
        render_svg(np.ones((3, 1)))


def test_write_svg(tmp_path):
    coords, assignments = _coords(n=10)
    path = tmp_path / "out" / "view.svg"
    write_svg(coords, path, assignments)
    assert path.exists()
    ET.parse(path)
