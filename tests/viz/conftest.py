"""Fixtures for visualization tests."""

import pytest

from repro.datasets import generate_pubmed
from repro.engine import EngineConfig, SerialTextEngine


@pytest.fixture(scope="session")
def pubmed_result():
    corpus = generate_pubmed(80_000, seed=13)
    cfg = EngineConfig(n_major_terms=100, n_clusters=4, kmeans_sample=32)
    return SerialTextEngine(cfg).run(corpus)
