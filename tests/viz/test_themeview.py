"""ThemeView terrain tests."""

import numpy as np
import pytest

from repro.viz import (
    build_themeview,
    cluster_top_terms,
    export_json,
    render_ascii,
    write_pgm,
)


def _two_blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((-5, 0), 0.4, size=(n, 2))
    b = rng.normal((5, 0), 0.4, size=(n, 2))
    coords = np.vstack([a, b])
    assignments = np.array([0] * n + [1] * n)
    return coords, assignments


def test_terrain_has_mountains_at_blobs():
    coords, assignments = _two_blobs()
    view = build_themeview(coords, assignments, grid=40)
    assert view.heights.shape == (40, 40)
    assert len(view.peaks) >= 2
    xs = sorted(p.x for p in view.peaks[:2])
    assert xs[0] < 0 < xs[1]  # one peak per blob


def test_peaks_non_max_suppressed():
    """One peak per mountain: no two peaks within the suppression
    radius of each other."""
    coords, assignments = _two_blobs(n=120, seed=3)
    view = build_themeview(coords, assignments, grid=48)
    suppress = max(2, 48 // 8)
    cell_w = view.x_edges[1] - view.x_edges[0]
    cell_h = view.y_edges[1] - view.y_edges[0]
    for i, p in enumerate(view.peaks):
        for q in view.peaks[i + 1 :]:
            dx_cells = abs(p.x - q.x) / cell_w
            dy_cells = abs(p.y - q.y) / cell_h
            assert max(dx_cells, dy_cells) > suppress


def test_peaks_carry_cluster_identity():
    coords, assignments = _two_blobs()
    view = build_themeview(coords, assignments, grid=40)
    top2 = {p.cluster for p in view.peaks[:2]}
    assert top2 == {0, 1}


def test_peak_labels_attached():
    coords, assignments = _two_blobs()
    view = build_themeview(
        coords,
        assignments,
        cluster_labels={0: ["alpha", "beta"], 1: ["gamma"]},
        grid=32,
    )
    labelled = {p.cluster: p.labels for p in view.peaks[:2]}
    assert labelled[0] == ["alpha", "beta"]
    assert labelled[1] == ["gamma"]


def test_heights_nonnegative_and_mass_near_docs():
    coords, _ = _two_blobs()
    view = build_themeview(coords, grid=32)
    assert np.all(view.heights >= 0)
    # the valley between the blobs is lower than the blob centers
    mid = view.heights[:, 14:18].max()
    assert mid < view.heights.max() * 0.5


def test_single_document():
    view = build_themeview(np.array([[1.0, 2.0]]), grid=16)
    assert len(view.peaks) >= 1


def test_invalid_inputs():
    with pytest.raises(ValueError):
        build_themeview(np.empty((0, 2)))
    with pytest.raises(ValueError):
        build_themeview(np.ones((3,)))


def test_render_ascii_shape_and_legend():
    coords, assignments = _two_blobs()
    view = build_themeview(
        coords, assignments, cluster_labels={0: ["x"], 1: ["y"]}, grid=24
    )
    text = render_ascii(view)
    lines = text.split("\n")
    assert len(lines[0]) == 24
    assert "peaks:" in text
    assert "[0]" in text


def test_write_pgm(tmp_path):
    coords, _ = _two_blobs()
    view = build_themeview(coords, grid=16)
    path = tmp_path / "t.pgm"
    write_pgm(view, path)
    data = path.read_bytes()
    assert data.startswith(b"P5\n16 16\n255\n")
    assert len(data) == len(b"P5\n16 16\n255\n") + 16 * 16


def test_export_json(tmp_path):
    import json

    coords, assignments = _two_blobs()
    view = build_themeview(coords, assignments, grid=16)
    path = tmp_path / "t.json"
    export_json(view, path)
    obj = json.loads(path.read_text())
    assert obj["grid"] == 16
    assert len(obj["heights"]) == 16
    assert obj["peaks"]


def test_cluster_top_terms():
    centroids = np.array([[0.1, 0.9, 0.0], [0.5, 0.0, 0.2]])
    labels = cluster_top_terms(centroids, ["a", "b", "c"], n_terms=2)
    assert labels[0] == ["b", "a"]
    assert labels[1] == ["a", "c"]


def test_cluster_top_terms_skips_zero_weight():
    centroids = np.array([[0.0, 0.0]])
    labels = cluster_top_terms(centroids, ["a", "b"], n_terms=2)
    assert labels[0] == []


def test_cluster_top_terms_shape_check():
    with pytest.raises(ValueError):
        cluster_top_terms(np.ones((2, 3)), ["a", "b"])


def test_labels_from_result(pubmed_result):
    from repro.viz import labels_from_result

    labels = labels_from_result(pubmed_result)
    assert set(labels) == set(range(pubmed_result.centroids.shape[0]))
    for terms in labels.values():
        for t in terms:
            assert t in pubmed_result.topic_term_strings
