"""Shared fixtures for the serving-layer tests.

One small engine run (serial reference engine, deterministic) is
shared module-wide; stores at several shard counts are built from it
on demand.
"""

import pytest

from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.serve.store import build_shards

ENGINE_CONFIG = EngineConfig(n_major_terms=200, n_clusters=5, chunk_docs=8)


@pytest.fixture(scope="session")
def corpus():
    return generate_pubmed(60_000, seed=4, n_themes=4)


@pytest.fixture(scope="session")
def result(corpus):
    return SerialTextEngine(ENGINE_CONFIG).run(corpus)


@pytest.fixture(scope="session")
def postings(corpus, result):
    return build_term_postings(corpus, result, ENGINE_CONFIG.tokenizer)


@pytest.fixture(scope="session")
def stores(result, postings, tmp_path_factory):
    """Store directories keyed by shard count."""
    base = tmp_path_factory.mktemp("stores")
    built = {}
    for p in (1, 2, 4, 8):
        out = base / f"store-{p}"
        build_shards(result, out, p, postings=postings)
        built[p] = out
    return built


@pytest.fixture(scope="session")
def replicated_store(result, postings, tmp_path_factory):
    """A 4-shard store built with ``replication=2`` in its manifest."""
    out = tmp_path_factory.mktemp("rstore") / "store"
    build_shards(result, out, 4, postings=postings, replication=2)
    return out
