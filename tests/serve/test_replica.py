"""Replica placement (consistent hashing) and health state machine."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.replica import (
    DOWN,
    SUSPECT,
    UP,
    ReplicaHealth,
    ReplicaMap,
    stable_hash,
)


class TestStableHash:
    def test_process_stable(self):
        # blake2b, not the salted builtin hash: pinned values survive
        # interpreter restarts and PYTHONHASHSEED changes
        assert stable_hash("0/shard-0") == stable_hash("0/shard-0")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") < 2**64

    def test_pinned_value(self):
        import hashlib

        expect = int.from_bytes(
            hashlib.blake2b(b"0/worker-3/vnode-7", digest_size=8).digest(),
            "big",
        )
        assert stable_hash("0/worker-3/vnode-7") == expect


class TestPlacement:
    def test_replica_count_and_distinct(self):
        m = ReplicaMap.place(8, 3, 6)
        assert m.nshards == 8
        for s in range(8):
            owners = m.workers_for(s)
            assert len(owners) == 3
            assert len(set(owners)) == 3
            assert all(w in m.workers for w in owners)

    def test_deterministic(self):
        a = ReplicaMap.place(16, 2, 8, vnodes=16, seed=3)
        b = ReplicaMap.place(16, 2, 8, vnodes=16, seed=3)
        assert a == b

    def test_seed_changes_placement(self):
        a = ReplicaMap.place(16, 2, 8, seed=0)
        b = ReplicaMap.place(16, 2, 8, seed=1)
        assert a.assignments != b.assignments

    def test_count_equals_explicit_ids(self):
        assert ReplicaMap.place(8, 2, 4) == ReplicaMap.place(
            8, 2, (0, 1, 2, 3)
        )

    def test_shards_of_inverts_workers_for(self):
        m = ReplicaMap.place(12, 2, 5)
        for w in m.workers:
            for s in m.shards_of(w):
                assert w in m.workers_for(s)
        for s in range(12):
            for w in m.workers_for(s):
                assert s in m.shards_of(w)

    def test_to_dict_json_clean(self):
        m = ReplicaMap.place(4, 2, 3)
        d = json.loads(json.dumps(m.to_dict()))
        assert d["nshards"] == 4
        assert d["replicas"] == 2
        assert len(d["assignments"]) == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nshards=4, replicas=0, workers=2),
            dict(nshards=4, replicas=3, workers=2),
            dict(nshards=4, replicas=1, workers=()),
            dict(nshards=4, replicas=1, workers=(1, 1)),
            dict(nshards=4, replicas=1, workers=2, vnodes=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaMap.place(**kwargs)


# worker-id universes for the membership-change properties
_WORKER_IDS = st.lists(
    st.integers(min_value=0, max_value=63),
    min_size=2,
    max_size=10,
    unique=True,
).map(tuple)


@settings(max_examples=60, deadline=None)
@given(
    workers=_WORKER_IDS,
    nshards=st.integers(min_value=1, max_value=24),
    replicas=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_remove_one_worker_minimal_remap(workers, nshards, replicas, data):
    """Dropping a worker only reassigns the slots that worker held."""
    replicas = min(replicas, len(workers) - 1)
    removed = data.draw(st.sampled_from(workers))
    kept = tuple(w for w in workers if w != removed)
    before = ReplicaMap.place(nshards, replicas, workers)
    after = ReplicaMap.place(nshards, replicas, kept)
    for s in range(nshards):
        old, new = before.workers_for(s), after.workers_for(s)
        # only the removed worker's slots may change hands
        assert set(old) - set(new) <= {removed}
        if removed not in old:
            assert old == new  # untouched shards are byte-identical
        else:
            # survivors keep their slots, in ring order
            survivors = tuple(w for w in old if w != removed)
            assert tuple(w for w in new if w in set(survivors)) == survivors


@settings(max_examples=60, deadline=None)
@given(
    workers=_WORKER_IDS,
    nshards=st.integers(min_value=1, max_value=24),
    replicas=st.integers(min_value=1, max_value=3),
    added=st.integers(min_value=64, max_value=80),
)
def test_add_one_worker_minimal_remap(workers, nshards, replicas, added):
    """Adding a worker only steals slots it now reaches first."""
    replicas = min(replicas, len(workers))
    before = ReplicaMap.place(nshards, replicas, workers)
    after = ReplicaMap.place(nshards, replicas, workers + (added,))
    for s in range(nshards):
        old, new = before.workers_for(s), after.workers_for(s)
        assert set(new) - set(old) <= {added}
        if added not in new:
            assert old == new


def test_placement_identical_across_schedulers(tmp_path):
    """Placement is scheduler- and hash-seed-independent.

    The map must be a pure function of its arguments: the same
    assignments under the fast-path and slow-path schedulers and under
    different ``PYTHONHASHSEED`` values (a salted-``hash`` leak would
    break here).
    """
    script = (
        "import json\n"
        "from repro.serve.replica import ReplicaMap\n"
        "m = ReplicaMap.place(16, 2, 8, vnodes=16, seed=5)\n"
        "print(json.dumps(m.to_dict(), sort_keys=True))\n"
    )
    outs = []
    for hashseed, slowpath in (("0", ""), ("12345", ""), ("0", "1")):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        if slowpath:
            env["REPRO_SCHED_SLOWPATH"] = slowpath
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path("src").resolve())]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outs.append(proc.stdout)
    assert outs[0] == outs[1] == outs[2]


class TestReplicaHealth:
    def test_default_up(self):
        h = ReplicaHealth()
        assert h.state(0, now=0.0) == UP
        assert not h.is_down(0)

    def test_suspicion_expires(self):
        h = ReplicaHealth(probation_s=5.0)
        h.mark_suspect(1, now=10.0)
        assert h.state(1, now=10.0) == SUSPECT
        assert h.state(1, now=14.9) == SUSPECT
        assert h.state(1, now=15.0) == UP
        assert h.suspicions == 1

    def test_down_is_permanent(self):
        h = ReplicaHealth()
        h.mark_down(2)
        assert h.state(2, now=0.0) == DOWN
        assert h.state(2, now=1e9) == DOWN
        h.mark_suspect(2, now=0.0)  # no-op on a downed worker
        assert h.state(2, now=0.0) == DOWN
        assert h.suspicions == 0
        h.mark_down(2)  # idempotent
        assert h.downs == 1

    def test_preference_orders_states(self):
        h = ReplicaHealth(probation_s=10.0)
        h.mark_suspect(1, now=0.0)
        h.mark_down(2)
        # ring order (3, 1, 2, 0): UP workers first in ring order,
        # then SUSPECT, DOWN dropped
        assert h.preference((3, 1, 2, 0), now=0.0) == [3, 0, 1]
        # after probation the suspect rejoins UP in ring position
        assert h.preference((3, 1, 2, 0), now=20.0) == [3, 1, 0]

    def test_snapshot_lists_touched_workers_only(self):
        h = ReplicaHealth(probation_s=10.0)
        h.mark_suspect(1, now=0.0)
        h.mark_down(4)
        assert h.snapshot(now=0.0) == {
            "up": [],
            "suspect": [1],
            "down": [4],
        }
        assert h.snapshot(now=50.0) == {
            "up": [1],
            "suspect": [],
            "down": [4],
        }
