"""Replicated tier: routing, failover, hedging, shedding, epochs."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.faults import (
    CrashFault,
    FaultPlan,
    StragglerFault,
)
from repro.runtime.metrics import counter_totals, render_report
from repro.serve.broker import BrokerConfig, serve
from repro.serve.query import canonical_response
from repro.serve.replica import ReplicaMap
from repro.serve.router import (
    RouterConfig,
    ShedResponse,
    _ReplicaWorker,
    broker_of_client,
    serve_replicated,
)
from repro.serve.store import ShardFormatError, load_manifest
from repro.serve.workload import (
    generate_workload,
    generate_zipf_workload,
    store_profile,
)

#: roomy admission so failover tests never interact with shedding
_TIER = dict(
    brokers=2,
    workers=4,
    replicas=2,
    max_inflight=64,
    hedge_delay_s=0.5,
    shard_timeout_s=2.0,
)


def _answers(report):
    return {
        (r["client"], r["seq"]): canonical_response(r["response"])
        for r in report.responses
    }


@pytest.fixture(scope="module")
def workload(replicated_store):
    return generate_workload(
        store_profile(replicated_store),
        n_clients=6,
        queries_per_client=8,
        seed=11,
    )


@pytest.fixture(scope="module")
def tier_report(replicated_store, workload):
    return serve_replicated(
        replicated_store, workload, config=RouterConfig(**_TIER)
    )


class TestRouting:
    def test_broker_of_client_deterministic_and_in_range(self):
        for c in range(200):
            b = broker_of_client(c, 4)
            assert 0 <= b < 4
            assert b == broker_of_client(c, 4)
        # the hash actually spreads clients over brokers
        assert len({broker_of_client(c, 4) for c in range(200)}) == 4

    def test_parity_with_single_broker_serve(
        self, replicated_store, workload, tier_report
    ):
        """The replicated tier answers byte-identically to PR-4 serve."""
        legacy = serve(
            replicated_store,
            workload,
            config=BrokerConfig(max_inflight=64),
        )
        assert tier_report.served == legacy.served
        assert _answers(tier_report) == _answers(legacy)
        assert tier_report.degraded == 0 and not tier_report.shed

    def test_report_carries_topology(self, tier_report):
        assert tier_report.brokers == 2 and tier_report.workers == 4
        rmap = tier_report.replica_map
        assert rmap["replicas"] == 2 and rmap["nshards"] == 4
        assert len(tier_report.per_broker) == 2
        served = sum(b["served"] for b in tier_report.per_broker)
        assert served == tier_report.served

    def test_sticky_broker_assignment(self, tier_report, workload):
        for r in tier_report.responses:
            assert r["broker"] == broker_of_client(r["client"], 2)


class TestFailover:
    """Satellite 4: a mid-session crash under R=2 is invisible."""

    # worker 1 lives on rank 1 + brokers + 1 = 4; the early at_call
    # lands the crash inside the first fan-out wave so requests are in
    # flight to the victim (a pure health-based reroute counts no
    # failover and would weaken the test)
    PLAN = FaultPlan(faults=(CrashFault(rank=4, at_call=5),))

    def test_crash_with_replicas_masks_fault(
        self, replicated_store, workload, tier_report
    ):
        report = serve_replicated(
            replicated_store,
            workload,
            config=RouterConfig(**_TIER),
            faults=self.PLAN,
        )
        assert report.served == sum(len(s.queries) for s in workload)
        assert report.degraded == 0  # zero degraded responses
        assert report.failovers >= 1
        assert 4 in report.failed_ranks
        assert report.health["down"] == [1]
        # byte-identical to the fault-free run at the same epochs
        assert _answers(report) == _answers(tier_report)
        totals = counter_totals(report.metrics)
        assert totals["serve.failover"] == report.failovers
        assert totals["serve.degraded"] == 0

    def test_crash_without_replicas_degrades(
        self, replicated_store, workload
    ):
        """R=1 reproduces the PR-4 flagged-degradation behavior."""
        cfg = RouterConfig(**{**_TIER, "replicas": 1})
        report = serve_replicated(
            replicated_store, workload, config=cfg, faults=self.PLAN
        )
        assert report.failovers == 0
        assert report.degraded > 0
        for r in report.responses:
            if r["response"].get("partial"):
                assert r["response"]["failed_shards"]

    def test_fault_run_metrics_render(self, replicated_store, workload):
        report = serve_replicated(
            replicated_store,
            workload,
            config=RouterConfig(**_TIER),
            faults=self.PLAN,
        )
        text = render_report(report.metrics)
        assert "replica tier:" in text
        assert "failovers" in text


class TestHedging:
    def test_silent_replica_is_hedged_and_suspected(
        self, replicated_store, workload, tier_report
    ):
        """A straggling worker triggers hedged duplicates, not latency."""
        # worker 0 (rank 3) charges 1000x slow, so its virtual clock
        # sails past hedge_delay_s before it can send a response
        plan = FaultPlan(
            faults=(StragglerFault(rank=3, factor=1000.0),)
        )
        report = serve_replicated(
            replicated_store,
            workload,
            config=RouterConfig(**_TIER),
            faults=plan,
        )
        assert report.served == sum(len(s.queries) for s in workload)
        assert report.degraded == 0
        assert report.hedges >= 1
        assert report.suspicions >= 1
        # hedged answers come from the twin replica: still identical
        assert _answers(report) == _answers(tier_report)
        totals = counter_totals(report.metrics)
        assert totals["serve.hedge"] == report.hedges
        assert totals["serve.replica.suspect"] == report.suspicions


class TestShedding:
    @pytest.fixture(scope="class")
    def overloaded(self, replicated_store):
        scripts = generate_zipf_workload(
            store_profile(replicated_store),
            n_clients=40,
            queries_per_client=3,
            seed=5,
            mean_think_s=0.0,
        )
        cfg = RouterConfig(**{**_TIER, "max_inflight": 4})
        return scripts, serve_replicated(
            replicated_store, scripts, config=cfg
        )

    def test_everything_is_answered_or_typed_shed(self, overloaded):
        scripts, report = overloaded
        total = sum(len(s.queries) for s in scripts)
        assert report.served + len(report.shed) == total
        assert report.shed  # the tier actually saturated
        for s in report.shed:
            assert isinstance(s, ShedResponse)
            assert s.priority >= 0 and s.depth >= 0
            assert s.broker == broker_of_client(s.client, 2)

    def test_lowest_classes_shed_first(self, overloaded):
        """Shed fraction is monotone in priority class."""
        scripts, report = overloaded
        issued = {p: 0 for p in (0, 1, 2)}
        for s in scripts:
            issued[s.priority] += len(s.queries)
        shed = {p: 0 for p in (0, 1, 2)}
        for s in report.shed:
            shed[s.priority] += 1
        rates = [
            shed[p] / issued[p] for p in (0, 1, 2) if issued[p]
        ]
        assert rates == sorted(rates)
        assert rates[-1] > 0

    def test_shed_counters_by_class(self, overloaded):
        _, report = overloaded
        counters = report.metrics["counters"]["serve.shed"]
        assert counters["labels"] == ["priority"]
        by_class = {}
        for entry in counters["values"]:
            key = tuple(entry["key"])
            by_class[key] = by_class.get(key, 0) + entry["value"]
        total = sum(by_class.values())
        assert total == len(report.shed)
        text = render_report(report.metrics)
        assert "shed" in text


class TestWorkerIdentityErrors:
    """Satellite 1: reload errors name the path and the replica."""

    def test_format_error_carries_context(self):
        err = ShardFormatError(
            "/x/shard-0000.bin",
            "bad magic",
            context="shard 0 copy 1 on worker 2 (rank 5)",
        )
        assert err.path == "/x/shard-0000.bin"
        assert err.context == "shard 0 copy 1 on worker 2 (rank 5)"
        msg = str(err)
        assert "/x/shard-0000.bin" in msg
        assert "worker 2 (rank 5)" in msg

    def test_worker_names_itself_on_corrupt_shard(
        self, replicated_store, tmp_path
    ):
        store = tmp_path / "corrupt"
        shutil.copytree(replicated_store, store)
        manifest = load_manifest(store)
        victim_file = store / manifest.shards[0].file
        victim_file.write_bytes(b"not a shard container")

        class _Ctx:
            rank = 4  # worker id 4 - 1 - brokers(1) = 2

        rmap = ReplicaMap.place(manifest.nshards, 2, 4)
        worker = _ReplicaWorker(_Ctx(), str(store), rmap, n_brokers=1)
        with pytest.raises(ShardFormatError) as exc:
            worker.segments(0, 0)
        msg = str(exc.value)
        assert manifest.shards[0].file in msg
        assert "on worker 2 (rank 4)" in msg
        assert "shard 0" in msg


class TestGenerationalTier:
    def test_epoch_pinning_with_replicas(
        self, corpus, result, postings, tmp_path
    ):
        """Live ingest under the tier: every response pins one epoch."""
        from repro.ingest.feed import FeedConfig, FeedSource
        from repro.ingest.live import IngestConfig, IngestPlan
        from repro.serve.store import build_shards
        from tests.serve.conftest import ENGINE_CONFIG

        store = tmp_path / "genstore"
        build_shards(result, store, 2, postings=postings, replication=2)
        feed = FeedSource(
            FeedConfig(
                dataset="pubmed",
                batch_docs=6,
                n_batches=3,
                seed=4,
                themes=4,
                skip_docs=len(corpus.documents),
                start_doc_id=int(result.doc_ids[-1]) + 1,
                mean_interarrival_s=0.05,
            )
        )
        plan = IngestPlan(
            result=result,
            batches=list(feed.batches()),
            config=IngestConfig(),
            tokenizer_config=ENGINE_CONFIG.tokenizer,
        )
        scripts = generate_workload(
            store_profile(store),
            n_clients=2,
            queries_per_client=10,
            seed=7,
        )
        report = serve_replicated(
            store,
            scripts,
            config=RouterConfig(
                brokers=2, workers=3, replicas=2, max_inflight=64
            ),
            ingest=plan,
        )
        assert report.served == 20 and report.degraded == 0
        outcome = report.ingest
        assert outcome["docs_ingested"] == 18
        final = outcome["final_generation"]
        assert final >= 1
        # every response is pinned to exactly one published epoch --
        # a fan-out never mixes generations, so per-generation stats
        # account for every served query
        gens = [r["generation"] for r in report.responses]
        assert all(0 <= g <= final for g in gens)
        assert max(gens) >= 1  # the session actually saw a swap
        assert (
            sum(s["queries"] for s in report.generations.values()) == 20
        )


_DETERMINISM_SCRIPT = """
import json, sys
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.datasets.pubmed import generate_pubmed
from repro.index.termindex import build_term_postings
from repro.runtime.faults import CrashFault, FaultPlan
from repro.serve.query import canonical_response
from repro.serve.router import RouterConfig, serve_replicated
from repro.serve.store import build_shards
from repro.serve.workload import generate_zipf_workload, store_profile

cfg = EngineConfig(n_major_terms=120, n_clusters=4, chunk_docs=8)
corpus = generate_pubmed(30_000, seed=4, n_themes=4)
result = SerialTextEngine(cfg).run(corpus)
postings = build_term_postings(corpus, result, cfg.tokenizer)
store = sys.argv[1]
build_shards(result, store, 4, postings=postings, replication=2)
scripts = generate_zipf_workload(
    store_profile(store), n_clients=20, queries_per_client=3, seed=9,
    mean_think_s=0.0,
)
plan = FaultPlan(faults=(CrashFault(rank=4, at_call=10),))
report = serve_replicated(
    store, scripts,
    config=RouterConfig(brokers=2, workers=4, replicas=2,
                        max_inflight=8, hedge_delay_s=0.5,
                        shard_timeout_s=2.0),
    faults=plan,
)
print(json.dumps({
    "answers": sorted(
        (r["client"], r["seq"],
         canonical_response(r["response"]).decode())
        for r in report.responses
    ),
    "shed": [(s.client, s.seq, s.priority) for s in report.shed],
    "latencies": report.latencies,
    "failovers": report.failovers,
    "hedges": report.hedges,
    "makespan": report.makespan,
    "replica_map": report.replica_map,
    "counters": sorted(report.metrics["counters"].items()),
}, sort_keys=True))
"""


def test_fastpath_slowpath_identical(tmp_path):
    """A crash-fault tier session is byte-identical on both schedulers."""
    outs = {}
    for label, extra_env in (
        ("fast", {}),
        ("slow", {"REPRO_SCHED_SLOWPATH": "1"}),
    ):
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path("src").resolve())]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT,
             str(tmp_path / f"store-{label}")],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outs[label] = json.loads(proc.stdout)
    assert outs["fast"] == outs["slow"]
