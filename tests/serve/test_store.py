"""Shard store format: round-trips, delta coding, typed errors."""

import json

import numpy as np
import pytest

from repro.serve.query import ShardStore
from repro.serve.store import (
    FORMAT_VERSION,
    MAGIC,
    SUPPORTED_VERSIONS,
    Container,
    ShardFormatError,
    build_shards,
    decode_postings,
    delta_encode_postings,
    load_manifest,
    load_model,
    write_container,
)


def _write(tmp_path, arrays=None, meta=None):
    path = tmp_path / "test.repro"
    write_container(
        path,
        arrays if arrays is not None else {"a": np.arange(5)},
        meta if meta is not None else {"kind": "test"},
    )
    return path


class TestContainer:
    def test_round_trip(self, tmp_path):
        arrays = {
            "ints": np.arange(7, dtype=np.int64),
            "floats": np.linspace(0, 1, 12).reshape(3, 4),
            "empty": np.empty((0, 3), dtype=np.float64),
        }
        path = _write(tmp_path, arrays, {"kind": "test", "n": 7})
        cont = Container(path)
        assert cont.meta == {"kind": "test", "n": 7}
        assert cont.section_names == ["ints", "floats", "empty"]
        for name, arr in arrays.items():
            np.testing.assert_array_equal(cont.load(name), arr)
            assert cont.load(name).dtype == arr.dtype

    def test_sections_are_64_aligned(self, tmp_path):
        path = _write(
            tmp_path,
            {"a": np.arange(3, dtype=np.int8), "b": np.arange(5)},
        )
        cont = Container(path)
        for name in cont.section_names:
            assert cont._layout[name][0] % 64 == 0

    def test_load_is_lazy_memmap(self, tmp_path):
        path = _write(tmp_path)
        cont = Container(path)
        assert isinstance(cont.load("a"), np.memmap)
        assert cont.load("a") is cont.load("a")

    def test_unknown_section_raises_keyerror(self, tmp_path):
        cont = Container(_write(tmp_path))
        with pytest.raises(KeyError):
            cont.load("nope")

    def test_nbytes_accounting(self, tmp_path):
        cont = Container(_write(tmp_path, {"a": np.arange(5)}))
        assert cont.nbytes("a") == 40


class TestShardFormatError:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.repro"
        path.write_bytes(b"NOTASHRD" + b"\x00" * 64)
        with pytest.raises(ShardFormatError) as err:
            Container(path)
        assert err.value.path == str(path)
        assert "magic" in str(err.value)

    def test_version_mismatch(self, tmp_path):
        unsupported = max(SUPPORTED_VERSIONS) + 1
        path = _write(tmp_path)
        data = bytearray(path.read_bytes())
        data[8:12] = unsupported.to_bytes(4, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ShardFormatError) as err:
            Container(path)
        assert f"version {unsupported}" in str(err.value)
        assert err.value.path == str(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.repro"
        path.write_bytes(MAGIC + b"\x00" * 4)
        with pytest.raises(ShardFormatError):
            Container(path)

    def test_corrupt_header_json(self, tmp_path):
        path = _write(tmp_path)
        data = bytearray(path.read_bytes())
        hdr_len = int.from_bytes(data[16:24], "little")
        data[24 : 24 + hdr_len] = b"{" * hdr_len
        path.write_bytes(bytes(data))
        with pytest.raises(ShardFormatError) as err:
            Container(path)
        assert "corrupt header" in str(err.value)

    def test_header_overruns_file(self, tmp_path):
        path = _write(tmp_path)
        data = bytearray(path.read_bytes())
        data[16:24] = (10**9).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ShardFormatError) as err:
            Container(path)
        assert "header length" in str(err.value)

    def test_section_overruns_file(self, tmp_path):
        path = _write(tmp_path, {"a": np.arange(100)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 128])
        with pytest.raises(ShardFormatError) as err:
            Container(path)
        assert "overruns" in str(err.value)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ShardFormatError):
            Container(tmp_path / "absent.repro")


class TestManifest:
    def test_load_round_trip(self, stores):
        manifest = load_manifest(stores[4])
        assert manifest.nshards == 4
        assert len(manifest.shards) == 4
        assert manifest.shards[0].row_lo == 0
        assert manifest.shards[-1].row_hi == manifest.n_docs
        for a, b in zip(manifest.shards, manifest.shards[1:]):
            assert a.row_hi == b.row_lo

    def test_shard_of_row(self, stores):
        manifest = load_manifest(stores[4])
        for row in (0, manifest.n_docs - 1):
            i = manifest.shard_of_row(row)
            assert (
                manifest.shards[i].row_lo
                <= row
                < manifest.shards[i].row_hi
            )
        with pytest.raises(KeyError):
            manifest.shard_of_row(manifest.n_docs)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardFormatError):
            load_manifest(tmp_path)

    def test_corrupt_manifest_json(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(ShardFormatError) as err:
            load_manifest(tmp_path)
        assert "corrupt manifest" in str(err.value)

    def test_unsupported_store_format(self, stores, tmp_path):
        data = json.loads(
            (stores[1] / "manifest.json").read_text()
        )
        data["format"] = "repro-serve/999"
        (tmp_path / "manifest.json").write_text(json.dumps(data))
        with pytest.raises(ShardFormatError) as err:
            load_manifest(tmp_path)
        assert "repro-serve/999" in str(err.value)


class TestDeltaCoding:
    def test_encode_decode_round_trip(self, postings):
        delta = delta_encode_postings(postings)
        decoded = decode_postings(
            postings.n_docs, postings.offsets, delta, postings.tf
        )
        np.testing.assert_array_equal(decoded.rows, postings.rows)
        np.testing.assert_array_equal(decoded.tf, postings.tf)
        np.testing.assert_array_equal(
            decoded.offsets, postings.offsets
        )

    def test_deltas_are_small(self, postings):
        # the point of the coding: gaps are smaller than absolute rows
        delta = delta_encode_postings(postings)
        if len(postings):
            assert delta.max() <= postings.rows.max()
            assert (delta >= 0).all()


class TestBuildShards:
    def test_shards_partition_rows(self, result, stores):
        manifest = load_manifest(stores[4])
        doc_ids = []
        for info in manifest.shards:
            cont = Container(stores[4] / info.file)
            ids = np.asarray(cont.load("doc_ids"))
            assert len(ids) == info.n_docs
            doc_ids.append(ids)
        np.testing.assert_array_equal(
            np.concatenate(doc_ids), result.doc_ids
        )

    def test_model_round_trip(self, result, stores):
        model = load_model(stores[2])
        np.testing.assert_array_equal(
            model.association, result.association
        )
        np.testing.assert_array_equal(
            model.centroids, result.centroids
        )
        assert model.terms == [t.term for t in result.major_terms]
        assert model.major_terms() == result.major_terms
        proj = model.projection()
        assert proj is not None
        np.testing.assert_array_equal(
            proj.components, result.projection.components
        )

    def test_shard_postings_round_trip(self, postings, stores):
        manifest = load_manifest(stores[4])
        model = load_model(stores[4])
        for i, info in enumerate(manifest.shards):
            shard = ShardStore(
                Container(stores[4] / info.file), model
            )
            expect = postings.restrict(info.row_lo, info.row_hi)
            np.testing.assert_array_equal(
                shard.postings.rows, expect.rows
            )
            np.testing.assert_array_equal(
                shard.postings.tf, expect.tf
            )

    def test_requires_signatures(self, result, tmp_path):
        from dataclasses import replace

        stripped = replace(result, signatures=None)
        with pytest.raises(ValueError, match="signatures"):
            build_shards(stripped, tmp_path / "s", 2)

    def test_rejects_bad_shard_count(self, result, tmp_path):
        with pytest.raises(ValueError, match="nshards"):
            build_shards(result, tmp_path / "s", 0)

    def test_store_without_postings(self, result, tmp_path):
        out = tmp_path / "nopost"
        build_shards(result, out, 2)
        model = load_model(out)
        assert not model.has_postings
        manifest = load_manifest(out)
        shard = ShardStore(
            Container(out / manifest.shards[0].file), model
        )
        with pytest.raises(KeyError, match="postings"):
            _ = shard.postings


class TestReplication:
    def test_manifest_round_trip(self, replicated_store):
        manifest = load_manifest(replicated_store)
        assert manifest.replication == 2
        data = json.loads(
            (replicated_store / "manifest.json").read_text()
        )
        assert data["replication"] == 2

    def test_default_is_one(self, stores):
        assert load_manifest(stores[4]).replication == 1
        # pre-replication manifests (no field at all) parse as 1
        data = json.loads((stores[1] / "manifest.json").read_text())
        data.pop("replication", None)
        (stores[1] / "manifest.json").write_text(json.dumps(data))
        try:
            assert load_manifest(stores[1]).replication == 1
        finally:
            data["replication"] = 1
            (stores[1] / "manifest.json").write_text(json.dumps(data))

    def test_rejects_bad_replication(self, result, tmp_path):
        with pytest.raises(ValueError, match="replication"):
            build_shards(result, tmp_path / "s", 2, replication=0)

    def test_error_context_is_optional(self):
        plain = ShardFormatError("/x/f", "bad magic")
        assert plain.context == ""
        assert str(plain) == "/x/f: bad magic"
        rich = ShardFormatError(
            "/x/f", "bad magic", context="shard 1 copy 0 on worker 3"
        )
        assert "shard 1 copy 0 on worker 3" in str(rich)
        assert rich.path == "/x/f" and rich.reason == "bad magic"
