"""Result-set algebra: hypothesis properties vs a brute-force model.

The workbench's set combinators promise bit-exact algebraic laws
(union/intersect commutativity and associativity, ``diff(a, a)`` empty,
refine restricted to its base) because every merged score is the
``max`` of operand scores and every output is re-ordered through the
shared ``(-score, row)`` helper.  This suite checks those laws against
a dict-based brute-force reference on arbitrary candidate sets, and the
derive kernels against O(n^2) python loops on tiny corpora.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.termindex import (
    set_term_cooccurrence,
    set_term_tf,
    topk_score_row,
)
from repro.serve.query import Candidate
from repro.workbench.state import (
    diff_sets,
    intersect_sets,
    order_set,
    set_digest,
    set_rows,
    union_sets,
)

# candidate rows from a small universe so operands overlap often;
# scores from a coarse float grid so ties are exercised
_scores = st.integers(0, 40).map(lambda v: v / 8.0)


@st.composite
def cand_sets(draw, max_size=12):
    rows = draw(
        st.lists(
            st.integers(0, 19),
            max_size=max_size,
            unique=True,
        )
    )
    return order_set(
        Candidate(
            score=draw(_scores),
            row=r,
            doc_id=1000 + r,
            cluster=r % 3,
        )
        for r in rows
    )


def _brute_union(a, b):
    by_row = {}
    for c in list(a) + list(b):
        prev = by_row.get(c.row)
        if prev is None or c.score > prev.score:
            by_row[c.row] = c
    return order_set(by_row.values())


def _brute_intersect(a, b):
    rows = {c.row for c in a} & {c.row for c in b}
    by_row = {}
    for c in list(a) + list(b):
        if c.row in rows:
            prev = by_row.get(c.row)
            if prev is None or c.score > prev.score:
                by_row[c.row] = c
    return order_set(by_row.values())


def _brute_diff(a, b):
    rows = {c.row for c in b}
    return order_set(c for c in a if c.row not in rows)


class TestAlgebraProperties:
    @settings(max_examples=200, deadline=None)
    @given(a=cand_sets(), b=cand_sets())
    def test_matches_brute_force(self, a, b):
        assert union_sets(a, b) == _brute_union(a, b)
        assert intersect_sets(a, b) == _brute_intersect(a, b)
        assert diff_sets(a, b) == _brute_diff(a, b)

    @settings(max_examples=200, deadline=None)
    @given(a=cand_sets(), b=cand_sets())
    def test_commutativity_bit_exact(self, a, b):
        assert set_digest(union_sets(a, b)) == set_digest(
            union_sets(b, a)
        )
        assert set_digest(intersect_sets(a, b)) == set_digest(
            intersect_sets(b, a)
        )

    @settings(max_examples=100, deadline=None)
    @given(a=cand_sets(), b=cand_sets(), c=cand_sets())
    def test_associativity_bit_exact(self, a, b, c):
        assert union_sets(union_sets(a, b), c) == union_sets(
            a, union_sets(b, c)
        )
        assert intersect_sets(
            intersect_sets(a, b), c
        ) == intersect_sets(a, intersect_sets(b, c))

    @settings(max_examples=100, deadline=None)
    @given(a=cand_sets())
    def test_identities(self, a):
        assert diff_sets(a, a) == ()
        assert union_sets(a, ()) == a
        assert intersect_sets(a, ()) == ()
        assert union_sets(a, a) == a
        assert intersect_sets(a, a) == a
        assert diff_sets(a, ()) == a

    @settings(max_examples=100, deadline=None)
    @given(a=cand_sets(), b=cand_sets())
    def test_membership_laws(self, a, b):
        rows_a = set(set_rows(a).tolist())
        rows_b = set(set_rows(b).tolist())
        assert (
            set(set_rows(union_sets(a, b)).tolist())
            == rows_a | rows_b
        )
        assert (
            set(set_rows(intersect_sets(a, b)).tolist())
            == rows_a & rows_b
        )
        assert (
            set(set_rows(diff_sets(a, b)).tolist()) == rows_a - rows_b
        )

    @settings(max_examples=100, deadline=None)
    @given(a=cand_sets())
    def test_canonical_order(self, a):
        """Every combinator output is in (-score, row) order."""
        keyed = [(-c.score, c.row) for c in a]
        assert keyed == sorted(keyed)

    @settings(max_examples=100, deadline=None)
    @given(a=cand_sets(), b=cand_sets())
    def test_digest_is_content_identity(self, a, b):
        assert (set_digest(a) == set_digest(b)) == (a == b)


class TestTopkScoreRow:
    def test_orders_by_score_then_row(self):
        scores = np.array([1.0, 3.0, 3.0, 2.0])
        rows = np.array([7, 9, 2, 5], dtype=np.int64)
        sel = topk_score_row(scores, rows, 3)
        assert rows[sel].tolist() == [2, 9, 5]

    def test_k_negative_returns_all(self):
        scores = np.array([1.0, 2.0])
        rows = np.array([1, 0], dtype=np.int64)
        assert topk_score_row(scores, rows, -1).size == 2

    def test_k_clamped(self):
        scores = np.array([1.0])
        rows = np.array([0], dtype=np.int64)
        assert topk_score_row(scores, rows, 10).size == 1


@pytest.fixture(scope="module")
def small_postings(postings):
    return postings


class TestDeriveKernels:
    """set_term_tf / set_term_cooccurrence vs brute-force loops."""

    def _member_rows(self, postings, n):
        rng = np.random.default_rng(11)
        n = min(n, postings.n_docs)
        return np.sort(
            rng.choice(postings.n_docs, size=n, replace=False)
        ).astype(np.int64)

    def test_set_term_tf_matches_brute_force(self, small_postings):
        p = small_postings
        member = self._member_rows(p, 40)
        totals, scanned = set_term_tf(p, member)
        member_set = set(member.tolist())
        expect = np.zeros(p.n_terms, dtype=np.int64)
        for t in range(p.n_terms):
            lo, hi = p.offsets[t], p.offsets[t + 1]
            for r, tf in zip(p.rows[lo:hi], p.tf[lo:hi]):
                if int(r) in member_set:
                    expect[t] += int(tf)
        assert totals.dtype == np.int64
        assert np.array_equal(totals, expect)
        assert scanned > 0

    def test_set_term_tf_empty_set(self, small_postings):
        totals, _ = set_term_tf(
            small_postings, np.zeros(0, dtype=np.int64)
        )
        assert not totals.any()

    def test_cooccurrence_matches_brute_force(self, small_postings):
        p = small_postings
        member = self._member_rows(p, 30)
        term_rows = [0, 1, 2, 5]
        counts, _ = set_term_cooccurrence(p, member, term_rows)
        member_list = member.tolist()
        docs_of = []
        for t in term_rows:
            lo, hi = p.offsets[t], p.offsets[t + 1]
            docs_of.append(
                {int(r) for r in p.rows[lo:hi]} & set(member_list)
            )
        m = len(term_rows)
        expect = np.zeros((m, m), dtype=np.int64)
        for i in range(m):
            for j in range(m):
                expect[i, j] = len(docs_of[i] & docs_of[j])
        assert counts.dtype == np.int64
        assert np.array_equal(counts, expect)
        assert np.array_equal(counts, counts.T)

    def test_cooccurrence_split_is_additive(self, small_postings):
        """Shard-layout independence: summing per-row-range kernel
        outputs equals the whole-set kernel output exactly."""
        p = small_postings
        member = self._member_rows(p, 50)
        term_rows = [0, 3, 4]
        whole, _ = set_term_cooccurrence(p, member, term_rows)
        mid = int(member[len(member) // 2])
        lo = member[member < mid]
        hi = member[member >= mid]
        a, _ = set_term_cooccurrence(p, lo, term_rows)
        b, _ = set_term_cooccurrence(p, hi, term_rows)
        assert np.array_equal(whole, a + b)

    def test_set_tf_split_is_additive(self, small_postings):
        p = small_postings
        member = self._member_rows(p, 50)
        whole, _ = set_term_tf(p, member)
        mid = int(member[len(member) // 2])
        a, _ = set_term_tf(p, member[member < mid])
        b, _ = set_term_tf(p, member[member >= mid])
        assert np.array_equal(whole, a + b)
