"""Property tests: session <-> serve score parity, exact float equality.

For random tiny corpora, random shard counts, and random queries of
every kind, the sharded serving path must return *exactly* the floats
the in-memory :class:`AnalysisSession` computes -- no tolerance.
"""

import functools
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.session import AnalysisSession
from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.serve.broker import query_store
from repro.serve.query import Query
from repro.serve.store import build_shards

ENGINE = EngineConfig(n_major_terms=120, n_clusters=4, chunk_docs=8)
CORPUS_SEEDS = (11, 29)
SHARD_COUNTS = (1, 2, 3, 5)

_base = Path(tempfile.mkdtemp(prefix="repro-serve-hyp-"))


@functools.lru_cache(maxsize=None)
def _fixture(corpus_seed):
    corpus = generate_pubmed(40_000, seed=corpus_seed, n_themes=3)
    result = SerialTextEngine(ENGINE).run(corpus)
    postings = build_term_postings(corpus, result, ENGINE.tokenizer)
    session = AnalysisSession(result, postings=postings)
    return result, postings, session


@functools.lru_cache(maxsize=None)
def _store(corpus_seed, nshards):
    result, postings, _ = _fixture(corpus_seed)
    out = _base / f"s{corpus_seed}-p{nshards}"
    build_shards(result, out, nshards, postings=postings)
    return out


def _hits(resp):
    return [(h["doc"], h["score"], h["cluster"]) for h in resp["hits"]]


def _ref_hits(hits):
    return [(h.doc_id, h.score, h.cluster) for h in hits]


@settings(max_examples=15, deadline=None)
@given(
    corpus_seed=st.sampled_from(CORPUS_SEEDS),
    nshards=st.sampled_from(SHARD_COUNTS),
    data=st.data(),
)
def test_search_and_query_parity(corpus_seed, nshards, data):
    _, _, session = _fixture(corpus_seed)
    store = _store(corpus_seed, nshards)
    terms = [t.term for t in session.result.major_terms]
    picked = tuple(
        data.draw(
            st.lists(
                st.sampled_from(terms), min_size=1, max_size=4
            ),
            label="terms",
        )
    )
    k = data.draw(st.integers(min_value=1, max_value=20), label="k")
    resp = query_store(store, Query(kind="search", terms=picked, k=k))
    assert _hits(resp) == _ref_hits(session.term_search(list(picked), k=k))
    resp = query_store(store, Query(kind="query", terms=picked, k=k))
    assert _hits(resp) == _ref_hits(session.query(list(picked), k=k))


@settings(max_examples=15, deadline=None)
@given(
    corpus_seed=st.sampled_from(CORPUS_SEEDS),
    nshards=st.sampled_from(SHARD_COUNTS),
    data=st.data(),
)
def test_similar_parity(corpus_seed, nshards, data):
    _, _, session = _fixture(corpus_seed)
    store = _store(corpus_seed, nshards)
    doc_ids = [int(d) for d in session.result.doc_ids]
    doc = data.draw(st.sampled_from(doc_ids), label="doc_id")
    k = data.draw(st.integers(min_value=1, max_value=15), label="k")
    resp = query_store(store, Query(kind="similar", doc_id=doc, k=k))
    assert _hits(resp) == _ref_hits(session.similar_documents(doc, k=k))


@settings(max_examples=15, deadline=None)
@given(
    corpus_seed=st.sampled_from(CORPUS_SEEDS),
    nshards=st.sampled_from(SHARD_COUNTS),
    data=st.data(),
)
def test_cluster_and_region_parity(corpus_seed, nshards, data):
    _, _, session = _fixture(corpus_seed)
    store = _store(corpus_seed, nshards)
    n_clusters = session.result.centroids.shape[0]
    c = data.draw(
        st.integers(min_value=0, max_value=n_clusters - 1),
        label="cluster",
    )
    resp = query_store(store, Query(kind="cluster", cluster=c))
    ref = session.cluster_summary(c)
    assert resp["size"] == ref.size
    assert resp["top_terms"] == ref.top_terms
    assert resp["representative_docs"] == ref.representative_docs
    assert resp["centroid_norm"] == ref.centroid_norm

    coords = session.result.coords
    span = float(np.abs(coords[:, :2]).max()) or 1.0
    x = data.draw(
        st.floats(min_value=-span, max_value=span, allow_nan=False),
        label="x",
    )
    y = data.draw(
        st.floats(min_value=-span, max_value=span, allow_nan=False),
        label="y",
    )
    radius = data.draw(
        st.floats(min_value=1e-6, max_value=2 * span, allow_nan=False),
        label="radius",
    )
    resp = query_store(
        store, Query(kind="region", x=x, y=y, radius=radius)
    )
    assert resp["terms"] == session.region_terms(x, y, radius)
