"""Workload generator: seeded determinism, mix, profile validity."""

import dataclasses

import pytest

from repro.serve.query import FACET_QUERY_KINDS, QUERY_KINDS
from repro.serve.workload import (
    DEFAULT_MIX,
    generate_workload,
    store_profile,
)


@pytest.fixture(scope="module")
def profile(stores):
    return store_profile(stores[4])


class TestStoreProfile:
    def test_profile_contents(self, profile, result):
        assert profile.n_clusters == result.centroids.shape[0]
        assert profile.terms
        assert set(profile.terms) <= {
            t.term for t in result.major_terms
        }
        assert profile.doc_ids
        known = set(int(d) for d in result.doc_ids)
        assert set(profile.doc_ids) <= known
        xmin, ymin, xmax, ymax = profile.bbox
        assert xmin <= xmax and ymin <= ymax


class TestGenerateWorkload:
    def test_seeded_determinism(self, profile):
        a = generate_workload(profile, n_clients=4, seed=3)
        b = generate_workload(profile, n_clients=4, seed=3)
        assert a == b

    def test_seed_changes_workload(self, profile):
        a = generate_workload(profile, seed=3)
        b = generate_workload(profile, seed=4)
        assert a != b

    def test_shape(self, profile):
        scripts = generate_workload(
            profile, n_clients=5, queries_per_client=12, seed=0
        )
        assert len(scripts) == 5
        assert [s.client for s in scripts] == list(range(5))
        for s in scripts:
            assert len(s.queries) == 12
            assert len(s.think_s) == 12
            assert all(t >= 0 for t in s.think_s)
            assert isinstance(s, tuple) or dataclasses.is_dataclass(s)

    def test_queries_are_valid_for_profile(self, profile):
        scripts = generate_workload(
            profile, n_clients=4, queries_per_client=40, seed=1
        )
        for s in scripts:
            for q in s.queries:
                assert q.kind in QUERY_KINDS
                if q.kind in ("search", "query"):
                    assert q.terms
                    assert set(q.terms) <= set(profile.terms)
                elif q.kind == "similar":
                    assert q.doc_id in profile.doc_ids
                elif q.kind == "cluster":
                    assert 0 <= q.cluster < profile.n_clusters
                else:
                    assert q.radius > 0

    def test_mix_respected(self, profile):
        scripts = generate_workload(
            profile,
            n_clients=2,
            queries_per_client=50,
            seed=5,
            mix={"cluster": 1.0},
        )
        kinds = {
            q.kind for s in scripts for q in s.queries
        }
        assert kinds == {"cluster"}

    def test_default_mix_covers_all_kinds(self, profile):
        # the classic workload covers every non-window kind; the
        # window kinds belong to the dashboard workload class
        classic = set(QUERY_KINDS) - set(FACET_QUERY_KINDS)
        assert set(DEFAULT_MIX) == classic
        scripts = generate_workload(
            profile, n_clients=4, queries_per_client=50, seed=2
        )
        kinds = {q.kind for s in scripts for q in s.queries}
        assert kinds == classic

    def test_hot_queries_repeat(self, profile):
        scripts = generate_workload(
            profile,
            n_clients=4,
            queries_per_client=30,
            seed=9,
            hot_fraction=0.5,
            hot_pool=4,
        )
        keys = [q.key() for s in scripts for q in s.queries]
        assert len(set(keys)) < len(keys)

    def test_zero_mass_mix_rejected(self, profile):
        with pytest.raises(ValueError, match="mix"):
            generate_workload(profile, mix={"cluster": 0.0})

    def test_unknown_kind_in_mix_rejected(self, profile):
        with pytest.raises(ValueError, match="unknown"):
            generate_workload(profile, mix={"bogus": 1.0})


class TestPriorities:
    def test_default_single_class_is_zero(self, profile):
        scripts = generate_workload(profile, n_clients=6, seed=3)
        assert all(s.priority == 0 for s in scripts)

    def test_tagging_never_perturbs_queries(self, profile):
        """Priorities draw from a separate rng stream.

        The query/think streams of a tagged workload must stay
        byte-identical to the untagged one -- the serving baselines
        depend on exactly this.
        """
        plain = generate_workload(profile, n_clients=8, seed=3)
        tagged = generate_workload(
            profile,
            n_clients=8,
            seed=3,
            priority_classes=(0, 1, 2),
            priority_weights=(0.2, 0.5, 0.3),
        )
        for a, b in zip(plain, tagged):
            assert a.queries == b.queries
            assert a.think_s == b.think_s
        assert {s.priority for s in tagged} <= {0, 1, 2}

    def test_default_single_tenant_is_zero(self, profile):
        scripts = generate_workload(profile, n_clients=6, seed=3)
        assert all(s.tenant == 0 for s in scripts)

    def test_tenant_tagging_never_perturbs_queries(self, profile):
        """Tenants draw from a separate rng stream.

        Like priority tagging, turning on multi-tenancy must leave
        the query/think/priority streams byte-identical -- the
        untagged serving baselines depend on exactly this.
        """
        plain = generate_workload(profile, n_clients=8, seed=3)
        tagged = generate_workload(
            profile, n_clients=8, seed=3, n_tenants=3
        )
        for a, b in zip(plain, tagged):
            assert a.queries == b.queries
            assert a.think_s == b.think_s
            assert a.priority == b.priority
        assert {s.tenant for s in tagged} <= {0, 1, 2}

    def test_tenants_seeded_and_distinct_from_priorities(self, profile):
        kw = dict(
            n_clients=30,
            seed=5,
            n_tenants=3,
            priority_classes=(0, 1, 2),
        )
        a = generate_workload(profile, **kw)
        b = generate_workload(profile, **kw)
        assert [s.tenant for s in a] == [s.tenant for s in b]
        # both streams are seeded from the same workload seed but must
        # not mirror each other (distinct hash-salted streams)
        assert [s.tenant for s in a] != [s.priority for s in a]

    def test_priorities_seeded(self, profile):
        kw = dict(
            n_clients=30, seed=5, priority_classes=(0, 1, 2)
        )
        a = generate_workload(profile, **kw)
        b = generate_workload(profile, **kw)
        assert [s.priority for s in a] == [s.priority for s in b]

    def test_weight_validation(self, profile):
        with pytest.raises(ValueError, match="match"):
            generate_workload(
                profile,
                priority_classes=(0, 1),
                priority_weights=(1.0,),
            )
        with pytest.raises(ValueError, match="mass"):
            generate_workload(
                profile,
                priority_classes=(0, 1),
                priority_weights=(0.0, 0.0),
            )
        with pytest.raises(ValueError, match=">= 0"):
            generate_workload(profile, priority_classes=(-1, 0))


class TestZipfWorkload:
    def test_seeded_determinism(self, profile):
        from repro.serve.workload import generate_zipf_workload

        a = generate_zipf_workload(profile, n_clients=20, seed=3)
        b = generate_zipf_workload(profile, n_clients=20, seed=3)
        assert a == b

    def test_head_queries_dominate(self, profile):
        from collections import Counter

        from repro.serve.workload import generate_zipf_workload

        scripts = generate_zipf_workload(
            profile,
            n_clients=50,
            queries_per_client=10,
            seed=1,
            pool_size=32,
        )
        counts = Counter(
            q.key() for s in scripts for q in s.queries
        )
        # queries come from a bounded pool and the head is hot
        assert len(counts) <= 32
        top = counts.most_common(1)[0][1]
        assert top > (50 * 10) // 32  # far above a uniform share

    def test_priority_classes_assigned(self, profile):
        from repro.serve.workload import generate_zipf_workload

        scripts = generate_zipf_workload(profile, n_clients=60, seed=2)
        assert {s.priority for s in scripts} == {0, 1, 2}

    def test_validation(self, profile):
        from repro.serve.workload import generate_zipf_workload

        with pytest.raises(ValueError, match="zipf_s"):
            generate_zipf_workload(profile, zipf_s=1.0)
        with pytest.raises(ValueError, match="pool_size"):
            generate_zipf_workload(profile, pool_size=0)
