"""Workload generator: seeded determinism, mix, profile validity."""

import dataclasses

import pytest

from repro.serve.query import QUERY_KINDS
from repro.serve.workload import (
    DEFAULT_MIX,
    generate_workload,
    store_profile,
)


@pytest.fixture(scope="module")
def profile(stores):
    return store_profile(stores[4])


class TestStoreProfile:
    def test_profile_contents(self, profile, result):
        assert profile.n_clusters == result.centroids.shape[0]
        assert profile.terms
        assert set(profile.terms) <= {
            t.term for t in result.major_terms
        }
        assert profile.doc_ids
        known = set(int(d) for d in result.doc_ids)
        assert set(profile.doc_ids) <= known
        xmin, ymin, xmax, ymax = profile.bbox
        assert xmin <= xmax and ymin <= ymax


class TestGenerateWorkload:
    def test_seeded_determinism(self, profile):
        a = generate_workload(profile, n_clients=4, seed=3)
        b = generate_workload(profile, n_clients=4, seed=3)
        assert a == b

    def test_seed_changes_workload(self, profile):
        a = generate_workload(profile, seed=3)
        b = generate_workload(profile, seed=4)
        assert a != b

    def test_shape(self, profile):
        scripts = generate_workload(
            profile, n_clients=5, queries_per_client=12, seed=0
        )
        assert len(scripts) == 5
        assert [s.client for s in scripts] == list(range(5))
        for s in scripts:
            assert len(s.queries) == 12
            assert len(s.think_s) == 12
            assert all(t >= 0 for t in s.think_s)
            assert isinstance(s, tuple) or dataclasses.is_dataclass(s)

    def test_queries_are_valid_for_profile(self, profile):
        scripts = generate_workload(
            profile, n_clients=4, queries_per_client=40, seed=1
        )
        for s in scripts:
            for q in s.queries:
                assert q.kind in QUERY_KINDS
                if q.kind in ("search", "query"):
                    assert q.terms
                    assert set(q.terms) <= set(profile.terms)
                elif q.kind == "similar":
                    assert q.doc_id in profile.doc_ids
                elif q.kind == "cluster":
                    assert 0 <= q.cluster < profile.n_clusters
                else:
                    assert q.radius > 0

    def test_mix_respected(self, profile):
        scripts = generate_workload(
            profile,
            n_clients=2,
            queries_per_client=50,
            seed=5,
            mix={"cluster": 1.0},
        )
        kinds = {
            q.kind for s in scripts for q in s.queries
        }
        assert kinds == {"cluster"}

    def test_default_mix_covers_all_kinds(self, profile):
        assert set(DEFAULT_MIX) == set(QUERY_KINDS)
        scripts = generate_workload(
            profile, n_clients=4, queries_per_client=50, seed=2
        )
        kinds = {q.kind for s in scripts for q in s.queries}
        assert kinds == set(QUERY_KINDS)

    def test_hot_queries_repeat(self, profile):
        scripts = generate_workload(
            profile,
            n_clients=4,
            queries_per_client=30,
            seed=9,
            hot_fraction=0.5,
            hot_pool=4,
        )
        keys = [q.key() for s in scripts for q in s.queries]
        assert len(set(keys)) < len(keys)

    def test_zero_mass_mix_rejected(self, profile):
        with pytest.raises(ValueError, match="mix"):
            generate_workload(profile, mix={"cluster": 0.0})

    def test_unknown_kind_in_mix_rejected(self, profile):
        with pytest.raises(ValueError, match="unknown"):
            generate_workload(profile, mix={"bogus": 1.0})
