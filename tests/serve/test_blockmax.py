"""Block-max pruning: exactness oracle, corruption, batching identity.

The pruned search kernel's one contract is byte-identity: for any
postings, any query, any k, :func:`blockmax_search` must return
*exactly* what the exhaustive ``accumulate_tficf`` + stable
``topk_desc`` + positive-filter path returns -- same rows, same score
bits, same tie order.  The Hypothesis suite here hammers that contract
over adversarial shapes (tiny blocks, skewed tf, duplicate query
terms, zero weights, k past n_docs); the corruption tests pin the
``ShardFormatError`` surface of the block sections; the broker tests
pin the cross-query batching identity at every batch size.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.session import topk_desc
from repro.index.termindex import (
    TermPostings,
    accumulate_tficf,
    icf_weights,
)
from repro.serve.broker import BrokerConfig, serve
from repro.serve.query import ShardStore, blockmax_search, canonical_response
from repro.serve.store import (
    BlockPostings,
    Container,
    ShardFormatError,
    delta_encode_postings,
    encode_postings_sections,
    load_model,
    write_container,
)
from repro.serve.workload import generate_workload, store_profile


def _random_postings(
    rng: np.random.Generator,
    n_docs: int,
    n_terms: int,
    block_size: int,
) -> TermPostings:
    """Random postings with Pareto-skewed tf, blocked at ``block_size``."""
    offsets = [0]
    rows_parts: list[np.ndarray] = []
    tf_parts: list[np.ndarray] = []
    for _ in range(n_terms):
        df = int(rng.integers(0, n_docs + 1))
        rows_parts.append(
            np.sort(
                rng.choice(n_docs, size=df, replace=False)
            ).astype(np.int64)
        )
        tf_parts.append(
            (rng.pareto(1.2, size=df) + 1.0).astype(np.int64)
        )
        offsets.append(offsets[-1] + df)
    return TermPostings(
        n_docs=n_docs,
        offsets=np.asarray(offsets, dtype=np.int64),
        rows=np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64),
        tf=np.concatenate(tf_parts) if tf_parts else np.empty(0, np.int64),
    ).with_blocks(block_size)


def _write_block_container(path: Path, postings: TermPostings) -> Container:
    # keep the postings' own (small, adversarial) block size -- the
    # encoder would otherwise re-block at the 128-entry default
    arrays = dict(
        encode_postings_sections(
            postings, block_size=postings.block_size
        )
    )
    write_container(
        str(path),
        arrays,
        {"kind": "shard", "row_lo": 0, "row_hi": postings.n_docs},
    )
    return Container(str(path))


def _exhaustive(
    postings: TermPostings,
    term_rows: list[int],
    icf: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The reference path: dense accumulate + stable top-k + positive filter."""
    scores = np.zeros(postings.n_docs, dtype=np.float64)
    accumulate_tficf(postings, term_rows, icf, scores)
    take = min(k, scores.shape[0])
    idx = topk_desc(scores, take)
    idx = idx[scores[idx] > 0]
    return idx, scores[idx]


class TestBlockmaxExactness:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_pruned_equals_exhaustive(self, data):
        """Property: pruned == exhaustive, bit for bit, any input."""
        seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
        n_docs = data.draw(st.integers(1, 60), label="n_docs")
        n_terms = data.draw(st.integers(1, 8), label="n_terms")
        block_size = data.draw(
            st.sampled_from([4, 8, 16]), label="block_size"
        )
        k = data.draw(st.integers(1, n_docs + 2), label="k")
        rng = np.random.default_rng(seed)
        postings = _random_postings(rng, n_docs, n_terms, block_size)
        # duplicate terms and zero weights are both legal queries
        term_rows = data.draw(
            st.lists(
                st.integers(0, n_terms - 1), min_size=1, max_size=4
            ),
            label="term_rows",
        )
        icf = rng.uniform(0.0, 3.0, size=n_terms)
        zero_out = data.draw(
            st.lists(st.integers(0, n_terms - 1), max_size=2),
            label="zero_weight_terms",
        )
        icf[zero_out] = 0.0
        with tempfile.TemporaryDirectory() as tmp:
            container = _write_block_container(
                Path(tmp) / "shard.repro", postings
            )
            blocks = BlockPostings(container, n_docs)
            got_idx, got_sc, scanned, skipped = blockmax_search(
                blocks, term_rows, icf, k
            )
        want_idx, want_sc = _exhaustive(postings, term_rows, icf, k)
        np.testing.assert_array_equal(got_idx, want_idx)
        # bit-identity, not closeness: the scores must be the same floats
        assert np.array_equal(
            np.asarray(got_sc, dtype=np.float64),
            np.asarray(want_sc, dtype=np.float64),
        )
        assert 0 <= skipped <= blocks.n_blocks
        # duplicate query terms legitimately rescan a run, so the
        # bound is per processed term, not per stored posting
        assert 0 <= scanned <= len(term_rows) * len(postings.rows)

    def test_skips_fire_on_skewed_single_term(self):
        """One heavy-tailed term: most blocks fall under the threshold."""
        rng = np.random.default_rng(11)
        n_docs = 512
        tf = np.ones(n_docs, dtype=np.int64)
        hot = rng.choice(n_docs, size=8, replace=False)
        tf[hot] = 50
        postings = TermPostings(
            n_docs=n_docs,
            offsets=np.array([0, n_docs], dtype=np.int64),
            rows=np.arange(n_docs, dtype=np.int64),
            tf=tf,
        ).with_blocks(16)
        icf = np.array([1.7], dtype=np.float64)
        with tempfile.TemporaryDirectory() as tmp:
            container = _write_block_container(
                Path(tmp) / "shard.repro", postings
            )
            blocks = BlockPostings(container, n_docs)
            got_idx, got_sc, scanned, skipped = blockmax_search(
                blocks, [0], icf, 8
            )
        want_idx, want_sc = _exhaustive(postings, [0], icf, 8)
        np.testing.assert_array_equal(got_idx, want_idx)
        assert np.array_equal(got_sc, want_sc)
        assert skipped > 0
        assert scanned < n_docs


class TestBlockSectionCorruption:
    def _postings(self) -> TermPostings:
        rng = np.random.default_rng(3)
        return _random_postings(rng, 40, 5, 8)

    def _write_corrupt(self, tmp_path: Path, mutate) -> Path:
        postings = self._postings()
        arrays = dict(encode_postings_sections(postings))
        mutate(arrays)
        path = tmp_path / "bad.repro"
        write_container(
            str(path),
            arrays,
            {"kind": "shard", "row_lo": 0, "row_hi": postings.n_docs},
        )
        return path

    def test_truncated_block_maxtf(self, tmp_path):
        path = self._write_corrupt(
            tmp_path,
            lambda a: a.update(
                post_block_maxtf=a["post_block_maxtf"][:-1]
            ),
        )
        with pytest.raises(ShardFormatError) as err:
            BlockPostings(Container(str(path)), 40)
        assert str(path) in str(err.value)
        assert "post_block_maxtf" in str(err.value)

    def test_misaligned_block_offsets(self, tmp_path):
        def _shift(a):
            bo = np.asarray(a["post_block_offsets"]).copy()
            # nudge an interior boundary that coincides with a term
            # offset so a term run no longer starts on a block edge
            offsets = np.asarray(a["post_offsets"])
            interior = np.intersect1d(bo[1:-1], offsets[1:-1])
            assert interior.size > 0, "fixture needs an aligned boundary"
            j = int(np.flatnonzero(bo == interior[0])[0])
            bo[j] += 1
            a["post_block_offsets"] = bo

        path = self._write_corrupt(tmp_path, _shift)
        with pytest.raises(ShardFormatError) as err:
            BlockPostings(Container(str(path)), 40)
        assert str(path) in str(err.value)
        assert "misaligned" in str(err.value)

    def test_offsets_do_not_tile(self, tmp_path):
        def _chop(a):
            bo = np.asarray(a["post_block_offsets"]).copy()
            bo[-1] -= 1
            a["post_block_offsets"] = bo

        path = self._write_corrupt(tmp_path, _chop)
        with pytest.raises(ShardFormatError) as err:
            BlockPostings(Container(str(path)), 40)
        assert "tile" in str(err.value)


class TestLegacyFallback:
    def test_v1_container_serves_exhaustively(self, stores, tmp_path):
        """A v1 container (no block sections) answers identically via
        the exhaustive path, with the blocks property reporting None."""
        store_dir = stores[1]
        model = load_model(store_dir)
        manifest_shard = Path(store_dir) / "shard-000.repro"
        v2 = Container(str(manifest_shard))
        postings = ShardStore(v2, model).postings
        legacy = {
            "doc_ids": np.asarray(v2.load("doc_ids")),
            "signatures": np.asarray(v2.load("signatures")),
            "coords": np.asarray(v2.load("coords")),
            "assignments": np.asarray(v2.load("assignments")),
            "post_offsets": postings.offsets,
            "post_rows_delta": delta_encode_postings(postings),
            "post_tf": postings.tf,
        }
        v1_path = tmp_path / "legacy.repro"
        write_container(str(v1_path), legacy, dict(v2.meta), version=1)
        old = ShardStore(Container(str(v1_path)), model)
        new = ShardStore(v2, model)
        assert old.blocks is None
        assert new.blocks is not None
        icf = icf_weights(model.term_df, model.n_docs)
        term_rows = [0, min(3, len(model.terms) - 1)]
        got_old = old.op_search(term_rows, icf, 10, pruned=True)
        got_new = new.op_search(term_rows, icf, 10, pruned=True)
        assert got_old[0] == got_new[0]  # identical candidates
        assert got_old[2] == 0  # v1 can never skip a block


class TestBatchedBrokerIdentity:
    @pytest.fixture(scope="class")
    def scripts(self, stores):
        return generate_workload(
            store_profile(stores[4]),
            n_clients=4,
            queries_per_client=10,
            seed=13,
            mix={"search": 1.0},
            mean_think_s=0.0,
        )

    @staticmethod
    def _answers(report):
        return {
            (r["client"], r["seq"]): canonical_response(r["response"])
            for r in report.responses
        }

    def test_batch_sizes_and_pruning_answer_identically(
        self, stores, scripts
    ):
        reference = None
        configs = [BrokerConfig(pruned_search=False, max_inflight=64)]
        configs += [
            BrokerConfig(batch_max_queries=b, max_inflight=64)
            for b in (1, 4, 16)
        ]
        for config in configs:
            report = serve(stores[4], scripts, config=config)
            assert not report.rejected
            answers = self._answers(report)
            if reference is None:
                reference = answers
            else:
                assert answers == reference

    def test_batching_reduces_virtual_makespan(self, stores, scripts):
        solo = serve(
            stores[4],
            scripts,
            config=BrokerConfig(batch_max_queries=1, max_inflight=64),
        )
        batched = serve(
            stores[4],
            scripts,
            config=BrokerConfig(batch_max_queries=16, max_inflight=64),
        )
        assert batched.makespan < solo.makespan
