"""Workbench integration: analyst sessions over the serving tier.

Covers the subsystem's contracts end to end: byte-identical
transcripts across shard counts, schedulers, and execution backends;
typed quota rejections that never leave partial state; TTL eviction
tombstones; the epoch-pinned artifact cache under live ingest churn;
and mid-session crash masking on the replicated tier at R=2.
"""

import pytest

from repro.ingest.feed import FeedConfig, FeedSource
from repro.ingest.live import IngestPlan
from repro.runtime.faults import CrashFault, FaultPlan
from repro.runtime.metrics import (
    counter_totals,
    render_report,
    workbench_summary,
)
from repro.serve.query import Query, canonical_response
from repro.serve.workload import store_profile
from repro.workbench import (
    WorkbenchConfig,
    WorkbenchOp,
    WorkbenchScript,
    generate_analyst_workload,
    serve_workbench,
    serve_workbench_replicated,
)
from tests.serve.conftest import ENGINE_CONFIG


def _transcript(report):
    return b"\n".join(
        canonical_response(r) for r in report.responses
    )


def _script(tenant, client, ops, think=None):
    if think is None:
        think = (0.0,) * len(ops)
    return WorkbenchScript(
        tenant=tenant,
        client=client,
        ops=tuple(ops),
        think_s=tuple(think),
    )


def _by(report, client, verb=None):
    return [
        r
        for r in report.responses
        if r["client"] == client
        and (verb is None or r["verb"] == verb)
    ]


@pytest.fixture(scope="module")
def profile(stores):
    return store_profile(stores[1])


@pytest.fixture(scope="module")
def queries(profile):
    t = profile.terms
    return (
        Query(kind="search", terms=(t[0], t[1]), k=12),
        Query(kind="search", terms=(t[2],), k=8),
    )


@pytest.fixture(scope="module")
def wb_scripts(profile):
    return generate_analyst_workload(
        profile,
        n_tenants=2,
        sessions_per_tenant=2,
        ops_per_session=6,
        seed=3,
    )


@pytest.fixture(scope="module")
def reports(stores, wb_scripts):
    return {
        p: serve_workbench(stores[p], wb_scripts) for p in (1, 2, 4)
    }


@pytest.fixture(scope="module")
def tier_report(replicated_store, wb_scripts):
    return serve_workbench_replicated(replicated_store, wb_scripts)


class TestByteIdentity:
    def test_shard_count_invariance(self, reports):
        ref = reports[1]
        assert ref.served > 0 and ref.sets_saved > 0
        for p in (2, 4):
            rep = reports[p]
            assert _transcript(rep) == _transcript(ref)
            assert rep.rejected == ref.rejected
            assert rep.sessions_opened == ref.sessions_opened
            assert rep.sessions_closed == ref.sessions_closed
            assert rep.sets_saved == ref.sets_saved
            assert rep.artifact_hits == ref.artifact_hits

    def test_mp_backend_identical(self, stores, wb_scripts, reports):
        mp = serve_workbench(stores[2], wb_scripts, backend="mp")
        assert _transcript(mp) == _transcript(reports[2])
        assert mp.rejected == reports[2].rejected

    def test_slowpath_identical(
        self, stores, wb_scripts, reports, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SCHED_SLOWPATH", "1")
        slow = serve_workbench(stores[2], wb_scripts)
        assert _transcript(slow) == _transcript(reports[2])
        # under sim both schedulers replay identical virtual time
        assert slow.makespan == reports[2].makespan

    def test_tier_payloads_match_single(self, tier_report, reports):
        """The replicated tier answers with the same bytes as the
        single broker; only the ``broker`` tag and the merge order
        differ."""

        def keyed(resps):
            out = {}
            for r in resps:
                r = dict(r)
                r.pop("broker", None)
                key = (r["tenant"], r["client"], r["seq"])
                out[key] = canonical_response(r)
            return out

        assert keyed(tier_report.responses) == keyed(
            reports[4].responses
        )

    def test_worker_crash_masked_at_r2(
        self, replicated_store, wb_scripts, tier_report
    ):
        """A worker crash mid-session is masked byte-for-byte by the
        surviving replica -- no partial responses, no rejects."""
        faulty = serve_workbench_replicated(
            replicated_store,
            wb_scripts,
            faults=FaultPlan(
                faults=(CrashFault(rank=4, at_call=10),)
            ),
        )
        assert 4 in faulty.failed_ranks
        assert _transcript(faulty) == _transcript(tier_report)
        assert all(
            not r["response"].get("partial")
            for r in faulty.responses
        )


class TestQuotas:
    def test_session_quota_typed_reject(self, stores, queries):
        q1, _ = queries
        holder = _script(
            0,
            0,
            (
                WorkbenchOp(verb="open"),
                WorkbenchOp(verb="search", name="a", query=q1),
                WorkbenchOp(verb="close"),
            ),
            think=(0.0, 0.0, 50.0),
        )
        crowded = _script(
            0, 1, (WorkbenchOp(verb="open"),), think=(1.0,)
        )
        other = _script(
            1, 2, (WorkbenchOp(verb="open"),), think=(1.0,)
        )
        rep = serve_workbench(
            stores[1],
            [holder, crowded, other],
            config=WorkbenchConfig(max_sessions=1),
        )
        assert [
            (r.tenant, r.client, r.verb, r.reason)
            for r in rep.rejected
        ] == [(0, 1, "open", "session_quota")]
        reject = _by(rep, 1)[0]["response"]
        assert reject == {
            "kind": "reject",
            "verb": "open",
            "reason": "session_quota",
        }
        # the other tenant's open is unaffected
        assert _by(rep, 2)[0]["response"] == {"kind": "open"}

    def test_set_quota_never_partial(self, stores, queries):
        q1, q2 = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="search", name="b", query=q2),
            WorkbenchOp(verb="search", name="a", query=q2),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(
            stores[1],
            [_script(0, 0, ops)],
            config=WorkbenchConfig(max_sets=1),
        )
        assert [r.reason for r in rep.rejected] == ["set_quota"]
        # overwriting the existing name stays within quota
        saved = [
            r for r in _by(rep, 0, "search")
            if r["response"].get("saved")
        ]
        assert len(saved) == 2
        close = _by(rep, 0, "close")[0]["response"]
        assert close["sets"] == ["a"]

    def test_derived_bytes_quota(self, stores, queries):
        q1, _ = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="keyphrases", base="a", n=8),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(
            stores[1],
            [_script(0, 0, ops)],
            config=WorkbenchConfig(max_derived_bytes=1),
        )
        assert [r.reason for r in rep.rejected] == [
            "derived_bytes_quota"
        ]
        # the rejection left the session and its sets intact
        assert _by(rep, 0, "close")[0]["response"]["sets"] == ["a"]
        assert rep.artifact_hits == 0

    def test_contract_rejects(self, stores, queries):
        q1, _ = queries
        bad = Query(kind="similar", doc_id=1, k=3)
        scripts = [
            # ops without an open session
            _script(
                0,
                0,
                (WorkbenchOp(verb="search", name="a", query=q1),),
            ),
            # double open, unknown operand, non-ranked set query
            _script(
                1,
                1,
                (
                    WorkbenchOp(verb="open"),
                    WorkbenchOp(verb="open"),
                    WorkbenchOp(verb="refine", name="r", base="nope",
                                query=q1),
                    WorkbenchOp(verb="search", name="s", query=bad),
                    WorkbenchOp(verb="close"),
                ),
            ),
        ]
        rep = serve_workbench(stores[1], scripts)
        assert [r.reason for r in rep.rejected] == [
            "no_session",
            "already_open",
            "unknown_set",
            "bad_query",
        ]
        for r in rep.responses:
            if r["response"]["kind"] == "reject":
                assert set(r["response"]) == {
                    "kind",
                    "verb",
                    "reason",
                }


class TestEviction:
    def test_ttl_eviction_tombstones(self, stores, queries):
        q1, _ = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="keyphrases", base="a", n=6),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(
            stores[1],
            [_script(0, 0, ops, think=(0.0, 0.0, 60.0, 0.0))],
            config=WorkbenchConfig(session_ttl_s=5.0),
        )
        # the idle sweep fires before the late derive; every op after
        # eviction gets the typed tombstone, never stale data
        assert rep.sessions_evicted == 1
        assert [r.reason for r in rep.rejected] == [
            "session_evicted",
            "session_evicted",
        ]
        assert rep.sessions_closed == 0

    def test_reopen_after_eviction(self, stores, queries):
        q1, _ = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(
            stores[1],
            [_script(0, 0, ops, think=(0.0, 60.0, 0.0, 0.0))],
            config=WorkbenchConfig(session_ttl_s=5.0),
        )
        # a fresh open clears the tombstone; the session starts empty
        assert rep.sessions_evicted == 1
        assert not rep.rejected
        assert _by(rep, 0, "close")[0]["response"]["sets"] == ["a"]


class TestArtifactCache:
    def test_repeat_derive_hits_cache(self, stores, queries):
        q1, _ = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="keyphrases", base="a", n=6),
            WorkbenchOp(verb="keyphrases", base="a", n=6),
            WorkbenchOp(verb="cooccur", base="a", n=4),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(stores[1], [_script(0, 0, ops)])
        first, second = _by(rep, 0, "keyphrases")
        assert not first["cached"] and second["cached"]
        assert first["response"] == second["response"]
        assert rep.artifact_hits == 1
        assert rep.artifact_misses == 2  # keyphrases + cooccur

    def test_cache_is_tenant_scoped(self, stores, queries):
        q1, _ = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="keyphrases", base="a", n=6),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(
            stores[1],
            [_script(0, 0, ops), _script(1, 1, ops)],
        )
        # identical set + op, different tenants: no cross-tenant hit
        assert rep.artifact_hits == 0
        assert rep.artifact_misses == 2
        a, b = (
            _by(rep, 0, "keyphrases")[0],
            _by(rep, 1, "keyphrases")[0],
        )
        assert a["response"] == b["response"]


class TestRefine:
    def test_refine_same_query_is_bit_exact(self, stores, queries):
        """Refining a set by its own query reproduces it exactly:
        the restricted fan-out recomputes identical per-row floats."""
        q1, q2 = queries
        ops = (
            WorkbenchOp(verb="open"),
            WorkbenchOp(verb="search", name="a", query=q1),
            WorkbenchOp(verb="refine", name="b", base="a", query=q1),
            WorkbenchOp(verb="refine", name="c", base="a", query=q2),
            WorkbenchOp(verb="close"),
        )
        rep = serve_workbench(stores[2], [_script(0, 0, ops)])
        by_name = {
            r["response"]["set"]: r["response"]
            for r in rep.responses
            if r["response"].get("set")
        }
        assert by_name["b"]["digest"] == by_name["a"]["digest"]
        assert by_name["b"]["size"] == by_name["a"]["size"]
        # refine restricts to the base: never grows the set
        assert by_name["c"]["size"] <= by_name["a"]["size"]


class TestEpochPinning:
    @pytest.fixture(scope="module")
    def feed_batches(self, corpus, result):
        feed = FeedSource(
            FeedConfig(
                dataset="pubmed",
                batch_docs=6,
                n_batches=2,
                seed=4,
                themes=4,
                skip_docs=len(corpus.documents),
                start_doc_id=int(result.doc_ids[-1]) + 1,
                mean_interarrival_s=0.05,
            )
        )
        return feed.batches()

    def test_session_pinned_under_ingest(
        self, stores, result, queries, feed_batches, tmp_path
    ):
        q1, _ = queries
        pinned = _script(
            0,
            0,
            (
                WorkbenchOp(verb="open"),
                WorkbenchOp(verb="search", name="a", query=q1),
                WorkbenchOp(verb="keyphrases", base="a", n=6),
                WorkbenchOp(verb="keyphrases", base="a", n=6),
                WorkbenchOp(verb="close"),
            ),
            think=(0.0, 0.5, 10.0, 10.0, 0.0),
        )
        late = _script(
            1,
            1,
            (
                WorkbenchOp(verb="open"),
                WorkbenchOp(verb="search", name="a", query=q1),
                WorkbenchOp(verb="close"),
            ),
            think=(25.0, 0.0, 0.0),
        )
        scripts = [pinned, late]
        plan = IngestPlan(
            result=result,
            batches=list(feed_batches),
            tokenizer_config=ENGINE_CONFIG.tokenizer,
        )
        # the mutable copy: ingest publishes new generations into it
        rep = serve_workbench(
            _mutable_store(stores, tmp_path), scripts, ingest=plan
        )
        base = serve_workbench(stores[2], scripts)

        assert rep.ingest["final_generation"] >= 1
        totals = counter_totals(rep.metrics)
        assert totals["ingest.broker.reloads"] >= 1
        # the early session answers every op from generation 0 even
        # though the broker reloaded newer generations mid-session
        assert all(r["generation"] == 0 for r in _by(rep, 0))
        # ... and its bytes are identical to a churn-free run
        a = [canonical_response(r) for r in _by(rep, 0)]
        b = [canonical_response(r) for r in _by(base, 0)]
        assert a == b
        # the artifact cache key carries the pinned epoch: the late
        # repeat still hits even after the broker moved on
        assert _by(rep, 0, "keyphrases")[1]["cached"]
        # a session opened after the publish sees the new generation
        assert all(r["generation"] >= 1 for r in _by(rep, 1))


def _mutable_store(stores, tmp_path):
    """Copy the immutable session store: ingest mutates its target."""
    import shutil

    dst = tmp_path / "live-store"
    shutil.copytree(stores[2], dst)
    return dst


class TestMetricsIntegration:
    def test_workbench_summary_and_report(self, reports):
        rep = reports[2]
        summary = workbench_summary(rep.metrics)
        assert summary["sessions"]["opened"] == rep.sessions_opened
        assert summary["sets_saved"] == rep.sets_saved
        assert summary["artifact_cache"]["hit"] == rep.artifact_hits
        assert sum(summary["ops_by_verb"].values()) >= rep.served
        text = render_report(rep.metrics)
        assert "workbench tier (analyst sessions):" in text
