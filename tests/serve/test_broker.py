"""Broker policies: cache, admission control, fault degradation."""

import json

import pytest

from repro.runtime.faults import CrashFault, FaultPlan
from repro.runtime.metrics import counter_totals, render_report
from repro.serve.broker import BrokerConfig, query_store, serve
from repro.serve.query import Query
from repro.serve.workload import ClientScript, generate_workload, store_profile


def _script(queries, think=0.0, client=0):
    return ClientScript(
        client=client,
        queries=tuple(queries),
        think_s=tuple(think for _ in queries),
    )


@pytest.fixture(scope="module")
def workload(stores):
    return generate_workload(
        store_profile(stores[4]),
        n_clients=3,
        queries_per_client=15,
        seed=11,
    )


class TestCache:
    def test_repeat_query_hits(self, stores, result):
        q = Query(kind="cluster", cluster=1)
        report = serve(stores[2], [_script([q, q, q])])
        totals = counter_totals(report.metrics)
        assert totals["serve.cache.miss"] == 1
        assert totals["serve.cache.hit"] == 2
        assert report.cache_hit_rate == pytest.approx(2 / 3)
        blobs = [
            json.dumps(r["response"], sort_keys=True)
            for r in report.responses
        ]
        assert blobs[0] == blobs[1] == blobs[2]
        assert [r["cached"] for r in report.responses] == [
            False,
            True,
            True,
        ]

    def test_hits_are_faster(self, stores):
        q = Query(kind="cluster", cluster=1)
        report = serve(stores[2], [_script([q, q])])
        assert report.latencies[1] < report.latencies[0]

    def test_eviction_counted(self, stores, result):
        queries = [
            Query(kind="cluster", cluster=c % 5, n_docs=2 + c // 5)
            for c in range(8)
        ]
        report = serve(
            stores[2],
            [_script(queries)],
            config=BrokerConfig(cache_capacity=3),
        )
        totals = counter_totals(report.metrics)
        assert totals["serve.cache.evict"] == 8 - 3
        assert totals["serve.cache.miss"] == 8

    def test_cache_disabled(self, stores):
        q = Query(kind="cluster", cluster=1)
        report = serve(
            stores[2],
            [_script([q, q])],
            config=BrokerConfig(cache_capacity=0),
        )
        totals = counter_totals(report.metrics)
        assert totals["serve.cache.hit"] == 0
        assert totals["serve.cache.miss"] == 2


class TestAdmission:
    def test_overload_rejects(self, stores):
        # 30 clients fire simultaneously at t=0: depth outruns the cap
        queries = [
            Query(kind="cluster", cluster=c % 5, n_docs=1 + c % 7)
            for c in range(30)
        ]
        scripts = [
            _script([queries[c]], client=c) for c in range(30)
        ]
        report = serve(
            stores[2],
            scripts,
            config=BrokerConfig(max_inflight=2, cache_capacity=0),
        )
        totals = counter_totals(report.metrics)
        assert totals["serve.rejected"] > 0
        assert len(report.rejected) == totals["serve.rejected"]
        assert report.served + len(report.rejected) == 30
        assert totals["serve.queries"] == 30

    def test_no_rejects_when_spread_out(self, stores):
        queries = [Query(kind="cluster", cluster=c % 5) for c in range(6)]
        report = serve(
            stores[2], [_script(queries, think=10.0)]
        )
        assert not report.rejected


class TestFaultDegradation:
    def test_crash_degrades_not_fails(self, stores, workload):
        total = sum(len(s.queries) for s in workload)
        plan = FaultPlan(
            faults=(CrashFault(rank=2, at_call=30),)
        )
        report = serve(
            stores[4],
            workload,
            config=BrokerConfig(shard_timeout_s=2.0),
            faults=plan,
        )
        # every query still answers
        assert report.served + len(report.rejected) == total
        assert report.failed_ranks == [2]
        assert report.degraded > 0
        totals = counter_totals(report.metrics)
        assert totals["serve.degraded"] > 0
        partials = [
            r["response"]
            for r in report.responses
            if r["response"].get("partial")
        ]
        assert partials, "no partial responses flagged"
        # the dead rank serves shard index 1
        assert all(
            1 in p["failed_shards"] for p in partials
        )

    def test_fault_metrics_render(self, stores, workload):
        plan = FaultPlan(faults=(CrashFault(rank=2, at_call=30),))
        report = serve(
            stores[4],
            workload,
            config=BrokerConfig(shard_timeout_s=2.0),
            faults=plan,
        )
        text = render_report(report.metrics)
        assert "serving layer" in text
        assert "degraded responses" in text

    def test_crash_all_but_one_shard_still_answers(self, stores):
        queries = [
            Query(kind="query", terms=("t",), k=3),
            Query(kind="cluster", cluster=0),
            Query(kind="cluster", cluster=1),
            Query(kind="region", x=0.0, y=0.0, radius=10.0),
        ]
        plan = FaultPlan(
            faults=(
                CrashFault(rank=1, at_call=2),
                CrashFault(rank=2, at_call=2),
            )
        )
        report = serve(
            stores[2],
            [_script(queries)],
            config=BrokerConfig(shard_timeout_s=1.0),
            faults=plan,
        )
        assert report.served == len(queries)
        assert report.failed_ranks == [1, 2]
        late = report.responses[-1]["response"]
        assert late["partial"]
        assert late["failed_shards"] == [0, 1]


class TestDeterminism:
    def test_repeat_runs_identical(self, stores, workload):
        a = serve(stores[4], workload)
        b = serve(stores[4], workload)
        assert a.latencies == b.latencies
        assert a.makespan == b.makespan
        assert json.dumps(a.metrics, sort_keys=True) == json.dumps(
            b.metrics, sort_keys=True
        )

    def test_metrics_snapshot_has_serve_families(self, stores, workload):
        report = serve(stores[4], workload)
        totals = counter_totals(report.metrics)
        for family in (
            "serve.queries",
            "serve.cache.hit",
            "serve.cache.miss",
            "serve.cache.evict",
            "serve.rejected",
            "serve.degraded",
            "serve.shard.bytes_scanned",
        ):
            assert family in totals
        assert totals["serve.queries"] == sum(
            len(s.queries) for s in workload
        )
        assert totals["serve.shard.bytes_scanned"] > 0
        assert "serve.latency" in report.metrics["histograms"]


class TestReport:
    def test_percentiles_and_throughput(self, stores, workload):
        report = serve(stores[4], workload)
        p50 = report.latency_percentile(50)
        p99 = report.latency_percentile(99)
        assert 0 < p50 <= p99
        assert report.throughput > 0
        assert report.makespan > 0

    def test_query_store_single(self, stores, result):
        resp = query_store(
            stores[2], Query(kind="cluster", cluster=0)
        )
        assert resp["kind"] == "cluster"
        assert resp["size"] > 0
        assert not resp["partial"]

    def test_unknown_doc_id_is_error_not_crash(self, stores):
        resp = query_store(
            stores[2], Query(kind="similar", doc_id=10**9)
        )
        assert resp["hits"] == []
        assert "unknown doc_id" in resp["error"]

    def test_out_of_range_cluster(self, stores):
        resp = query_store(
            stores[2], Query(kind="cluster", cluster=999)
        )
        assert "out of range" in resp["error"]

    def test_bad_query_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            Query(kind="bogus")
