"""Acceptance: serve answers are bit-identical to the live session.

The broker must return byte-identical serialized responses (a) to the
single-result :class:`AnalysisSession` reference path, (b) across
every tested shard layout, and (c) under both scheduler mechanisms
(fastpath vs ``REPRO_SCHED_SLOWPATH=1``).
"""

import numpy as np
import pytest

from repro.analysis.session import AnalysisSession
from repro.serve.broker import serve
from repro.serve.query import Query, canonical_response
from repro.serve.workload import ClientScript

LAYOUTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def session(result, postings):
    return AnalysisSession(result, postings=postings)


@pytest.fixture(scope="module")
def queries(result):
    terms = tuple(result.major_terms[i].term for i in (0, 3, 9))
    docs = [int(result.doc_ids[i]) for i in (0, len(result.doc_ids) // 2)]
    x, y = (float(v) for v in result.coords[1, :2])
    radius = 0.6 * float(np.abs(result.coords[:, :2]).max())
    qs = [
        Query(kind="search", terms=terms, k=10),
        Query(kind="search", terms=(terms[0],), k=5),
        Query(kind="query", terms=terms, k=10),
        Query(kind="query", terms=("zzz-not-a-term",), k=10),
        Query(kind="cluster", cluster=0),
        Query(kind="cluster", cluster=2, n_terms=4, n_docs=3),
        Query(kind="region", x=x, y=y, radius=radius),
        Query(kind="region", x=1e9, y=1e9, radius=1e-3),
    ]
    qs += [Query(kind="similar", doc_id=d, k=8) for d in docs]
    return qs


def _serve_all(store, queries):
    script = ClientScript(
        client=0,
        queries=tuple(queries),
        think_s=tuple(0.0 for _ in queries),
    )
    report = serve(store, [script])
    assert report.served == len(queries)
    in_order = sorted(report.responses, key=lambda r: r["seq"])
    return [r["response"] for r in in_order]


@pytest.fixture(scope="module")
def responses_by_layout(stores, queries):
    return {
        p: _serve_all(stores[p], queries) for p in LAYOUTS
    }


def _hits(resp):
    return [(h["doc"], h["score"], h["cluster"]) for h in resp["hits"]]


class TestSessionParity:
    """Serve-from-disk == live in-memory session, exactly."""

    def test_search_parity(self, session, queries, responses_by_layout):
        for p in LAYOUTS:
            for q, resp in zip(queries, responses_by_layout[p]):
                if q.kind != "search":
                    continue
                ref = session.term_search(list(q.terms), k=q.k)
                assert _hits(resp) == [
                    (h.doc_id, h.score, h.cluster) for h in ref
                ]

    def test_query_parity(self, session, queries, responses_by_layout):
        for p in LAYOUTS:
            for q, resp in zip(queries, responses_by_layout[p]):
                if q.kind != "query":
                    continue
                ref = session.query(list(q.terms), k=q.k)
                assert _hits(resp) == [
                    (h.doc_id, h.score, h.cluster) for h in ref
                ]

    def test_similar_parity(self, session, queries, responses_by_layout):
        for p in LAYOUTS:
            for q, resp in zip(queries, responses_by_layout[p]):
                if q.kind != "similar":
                    continue
                ref = session.similar_documents(q.doc_id, k=q.k)
                assert _hits(resp) == [
                    (h.doc_id, h.score, h.cluster) for h in ref
                ]

    def test_cluster_parity(self, session, queries, responses_by_layout):
        for p in LAYOUTS:
            for q, resp in zip(queries, responses_by_layout[p]):
                if q.kind != "cluster":
                    continue
                ref = session.cluster_summary(
                    q.cluster, n_terms=q.n_terms, n_docs=q.n_docs
                )
                assert resp["size"] == ref.size
                assert resp["top_terms"] == ref.top_terms
                assert (
                    resp["representative_docs"]
                    == ref.representative_docs
                )
                assert resp["centroid_norm"] == ref.centroid_norm

    def test_region_parity(self, session, queries, responses_by_layout):
        for p in LAYOUTS:
            for q, resp in zip(queries, responses_by_layout[p]):
                if q.kind != "region":
                    continue
                ref = session.region_terms(
                    q.x, q.y, q.radius, n_terms=q.n_terms
                )
                assert resp["terms"] == ref


class TestLayoutDeterminism:
    """Byte-identical responses at P in {1, 2, 4, 8}."""

    def test_byte_identical_across_layouts(self, responses_by_layout):
        blobs = {
            p: [canonical_response(r) for r in responses_by_layout[p]]
            for p in LAYOUTS
        }
        for p in LAYOUTS[1:]:
            assert blobs[p] == blobs[1], f"layout P={p} diverged"

    def test_no_partial_without_faults(self, responses_by_layout):
        for resps in responses_by_layout.values():
            assert all(not r["partial"] for r in resps)


class TestSchedulerDeterminism:
    """Byte-identical responses under fastpath and slowpath."""

    @pytest.mark.parametrize("nshards", (2, 4))
    def test_fast_vs_slowpath(
        self, monkeypatch, stores, queries, nshards
    ):
        from repro.runtime.scheduler import SLOWPATH_ENV

        monkeypatch.delenv(SLOWPATH_ENV, raising=False)
        fast = _serve_all(stores[nshards], queries)
        monkeypatch.setenv(SLOWPATH_ENV, "1")
        slow = _serve_all(stores[nshards], queries)
        assert [canonical_response(r) for r in fast] == [
            canonical_response(r) for r in slow
        ]
