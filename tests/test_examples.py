"""Every example script must run clean end-to-end.

Examples are user-facing documentation; this keeps them from rotting.
Each runs as a subprocess with the repo's interpreter.
"""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", _EXAMPLES, ids=[p.stem for p in _EXAMPLES]
)
def test_example_runs_clean(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.stem == "themeview_export":
        args.append(str(tmp_path / "out"))
    proc = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=600,
        cwd=script.parent.parent,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_examples_exist():
    names = {p.stem for p in _EXAMPLES}
    assert {
        "quickstart",
        "pubmed_scaling",
        "trec_loadbalance",
        "themeview_export",
        "interactive_analysis",
        "streaming_updates",
        "mpi_style",
    } <= names
