"""Parallel vocabulary finalization tests."""

from repro.ga import GlobalHashMap
from repro.runtime import Cluster
from repro.scan import finalize_vocabulary


def _run(nprocs, rank_terms):
    def program(ctx):
        hm = GlobalHashMap.create(ctx, "v")
        hm.get_or_insert_batch(rank_terms[ctx.rank])
        ctx.comm.barrier()
        return finalize_vocabulary(ctx, hm)

    return Cluster(nprocs).run(program).rank_results


def test_dense_ids_cover_all_terms():
    vocabs = _run(3, [["apple", "pear"], ["pear", "plum"], ["fig"]])
    v0 = vocabs[0]
    assert sorted(v0.gid_to_term) == ["apple", "fig", "pear", "plum"]
    assert sorted(v0.term_to_gid.values()) == [0, 1, 2, 3]


def test_all_ranks_agree():
    vocabs = _run(4, [[f"t{i}{r}" for i in range(5)] for r in range(4)])
    base = vocabs[0]
    for v in vocabs[1:]:
        assert v.term_to_gid == base.term_to_gid
        assert v.gid_to_term == base.gid_to_term


def test_owner_blocks_contiguous_and_sorted():
    terms = [f"word{i}" for i in range(40)]
    vocabs = _run(4, [terms, terms, terms, terms])
    v = vocabs[0]
    assert v.size == 40
    for r in range(4):
        lo, hi = v.dist.local_range(r)
        block = v.gid_to_term[lo:hi]
        assert block == sorted(block)  # sorted within owner


def test_assignment_independent_of_discovery_order():
    """Different ranks discovering terms in different orders must not
    change the final dense assignment."""
    terms = [f"w{i}" for i in range(20)]
    v_fwd = _run(2, [terms, terms])[0]
    v_rev = _run(2, [terms[::-1], terms[::-1]])[0]
    assert v_fwd.term_to_gid == v_rev.term_to_gid


def test_owner_of_gid_matches_distribution():
    vocabs = _run(3, [[f"q{i}" for i in range(30)]] * 3)
    v = vocabs[0]
    for gid in range(v.size):
        owner = v.owner_of_gid(gid)
        lo, hi = v.dist.local_range(owner)
        assert lo <= gid < hi
