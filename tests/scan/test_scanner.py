"""Scan & Map stage tests."""

import numpy as np

from repro.scan import (
    encode_forward,
    finalize_vocabulary_serial,
    scan_documents,
    unique_terms,
)
from repro.text import Document, Tokenizer


def _docs():
    return [
        Document(0, {"title": "alpha beta", "body": "beta gamma gamma"}),
        Document(1, {"title": "delta", "body": "alpha delta"}),
    ]


def test_scan_tokenizes_per_field():
    scanned, stats = scan_documents(_docs(), Tokenizer())
    assert len(scanned) == 2
    assert scanned[0].field_names == ["title", "body"]
    assert scanned[0].field_tokens == [
        ["alpha", "beta"],
        ["beta", "gamma", "gamma"],
    ]
    assert stats.ndocs == 2
    assert stats.ntokens == 5 + 3
    assert stats.nfields == 4
    assert stats.nbytes == sum(d.nbytes for d in _docs())


def test_unique_terms_sorted():
    scanned, _ = scan_documents(_docs(), Tokenizer())
    assert unique_terms(scanned) == ["alpha", "beta", "delta", "gamma"]


def test_finalize_vocabulary_serial_dense_sorted():
    vocab = finalize_vocabulary_serial(["b", "a", "c", "a"])
    assert vocab.gid_to_term == ["a", "b", "c"]
    assert vocab.term_to_gid == {"a": 0, "b": 1, "c": 2}
    assert vocab.size == 3
    assert vocab.dist.local_range(0) == (0, 3)


def test_encode_forward_gids_and_fields():
    scanned, _ = scan_documents(_docs(), Tokenizer())
    vocab = finalize_vocabulary_serial(unique_terms(scanned))
    fwd = encode_forward(
        scanned, vocab.term_to_gid, {"title": 0, "body": 1}
    )
    d0 = fwd.docs[0]
    # alpha beta | beta gamma gamma -> 0 1 | 1 3 3
    np.testing.assert_array_equal(d0.gids, [0, 1, 1, 3, 3])
    np.testing.assert_array_equal(d0.field_offsets, [0, 2, 5])
    # global field ids: doc 0 * 2 fields + {0, 1}
    np.testing.assert_array_equal(d0.field_ids, [0, 1])
    d1 = fwd.docs[1]
    np.testing.assert_array_equal(d1.field_ids, [2, 3])
    assert fwd.total_postings == 8


def test_chunk_streams_expand_per_token():
    scanned, _ = scan_documents(_docs(), Tokenizer())
    vocab = finalize_vocabulary_serial(unique_terms(scanned))
    fwd = encode_forward(scanned, vocab.term_to_gid, {"title": 0, "body": 1})
    g, d, f = fwd.chunk_streams(0, 2)
    assert g.shape == d.shape == f.shape == (8,)
    np.testing.assert_array_equal(d, [0] * 5 + [1] * 3)
    # doc 1: title has 1 token (field id 2), body has 2 (field id 3)
    np.testing.assert_array_equal(f, [0, 0, 1, 1, 1, 2, 3, 3])


def test_chunk_streams_empty_range():
    scanned, _ = scan_documents(_docs(), Tokenizer())
    vocab = finalize_vocabulary_serial(unique_terms(scanned))
    fwd = encode_forward(scanned, vocab.term_to_gid, {"title": 0, "body": 1})
    g, d, f = fwd.chunk_streams(1, 1)
    assert g.size == d.size == f.size == 0


def test_empty_document_encodes():
    scanned, _ = scan_documents(
        [Document(0, {"body": "..."})], Tokenizer()
    )
    fwd = encode_forward(scanned, {}, {"body": 0})
    assert fwd.docs[0].ntokens == 0
    g, d, f = fwd.chunk_streams(0, 1)
    assert g.size == 0


def test_nbytes_of_chunk_positive():
    scanned, _ = scan_documents(_docs(), Tokenizer())
    vocab = finalize_vocabulary_serial(unique_terms(scanned))
    fwd = encode_forward(scanned, vocab.term_to_gid, {"title": 0, "body": 1})
    assert fwd.nbytes_of_chunk(0, 2) > fwd.nbytes_of_chunk(0, 1) > 0
