"""The IN-SPIRE-style text processing engine (serial and parallel)."""

from .config import EngineConfig
from .incremental import (
    ProjectedBatch,
    project_new_documents,
    refresh_recommended,
)
from .parallel import ParallelTextEngine
from .persist import load_result, save_result
from .results import EngineResult
from .serial import SerialTextEngine, sample_indices, signature_model
from .timings import COMPONENTS, PAPER_LABELS, StageTimings

__all__ = [
    "COMPONENTS",
    "EngineConfig",
    "EngineResult",
    "load_result",
    "save_result",
    "PAPER_LABELS",
    "ProjectedBatch",
    "project_new_documents",
    "refresh_recommended",
    "ParallelTextEngine",
    "SerialTextEngine",
    "StageTimings",
    "sample_indices",
    "signature_model",
]
