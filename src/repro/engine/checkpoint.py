"""Stage-level checkpointing for fault-tolerant engine runs.

The parallel engine's pipeline has natural barriers between stages
(scan -> inverted-file indexing -> topicality -> signature model ->
cluster/project).  When fault injection is active, rank 0 persists a
compact, **processor-count-independent** snapshot at the end of each
stage; after a fail-stop crash the driver restarts the run on the
surviving ranks, which fast-forward through every completed stage by
reloading its snapshot instead of recomputing.

Processor-independence is the load-bearing property: snapshots are
keyed by *term strings* and *document IDs*, never by dense global term
IDs (gids), because the gid assignment depends on the rank count and a
restarted run typically has one rank fewer.  Each restart re-derives
gids from its own vocabulary finalization.

Stage snapshot contents:

``scan``
    the full vocabulary as one sorted term array;
``index``
    per-term document/collection frequencies, sorted by term;
``topic``
    the ranked topicality candidates (term, score, df, cf);
``sig``
    the complete signature matrix sorted by document ID, the
    association matrix, the major/topic terms, and the null-fraction
    statistics.

Files are ``.npz`` archives written atomically (temp file +
``os.replace``) so a crash mid-write never leaves a torn snapshot.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

#: pipeline stages with snapshots, in execution order
STAGES = ("scan", "index", "topic", "sig")

PathLike = Union[str, Path]


class StageCheckpointer:
    """Reads and writes per-stage snapshots under one directory."""

    def __init__(self, directory: PathLike):
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)

    def path(self, stage: str) -> Path:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r} (not in {STAGES})")
        return self.dir / f"{stage}.npz"

    def has(self, stage: str) -> bool:
        return self.path(stage).exists()

    def completed(self) -> tuple[str, ...]:
        """The completed stage *prefix* (stops at the first gap).

        Later snapshots depend on earlier ones (e.g. restoring term
        statistics requires the restored vocabulary), so an out-of-
        order remnant after a gap is unusable and ignored.
        """
        done = []
        for stage in STAGES:
            if not self.has(stage):
                break
            done.append(stage)
        return tuple(done)

    def reset(self) -> None:
        """Delete every stage snapshot (start-of-run cleanup)."""
        for stage in STAGES:
            try:
                self.path(stage).unlink()
            except FileNotFoundError:
                pass

    def save(
        self,
        stage: str,
        arrays: dict[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> int:
        """Atomically persist ``arrays`` (+ JSON ``meta``); returns the
        snapshot size in bytes for virtual I/O accounting."""
        target = self.path(stage)
        tmp = target.with_name(target.name + ".tmp.npz")
        payload = dict(arrays)
        payload["_meta_json"] = np.array(
            json.dumps(meta or {}), dtype=object
        )
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, target)
        return target.stat().st_size

    def load(self, stage: str) -> tuple[dict[str, np.ndarray], dict]:
        """Read a snapshot back as ``(arrays, meta)``."""
        with np.load(self.path(stage), allow_pickle=True) as z:
            arrays = {k: z[k] for k in z.files if k != "_meta_json"}
            meta = json.loads(str(z["_meta_json"][()]))
        return arrays, meta

    def nbytes(self, stage: str) -> int:
        return self.path(stage).stat().st_size
