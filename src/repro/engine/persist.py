"""Persist engine results to disk.

Paper §2.1, step 7: "Persist the knowledge signatures computed in
step 7.  These signatures comprise a valuable intermediate product of
the text engine."  We persist the full result -- signatures, model,
coordinates, timings -- as one ``.npz`` archive with a JSON-encoded
metadata entry, so an analysis session can be reopened without
re-running the engine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.project.pca import PCATransform
from repro.signature.topicality import RankedTerm

from .results import EngineResult
from .timings import StageTimings

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def terms_to_arrays(terms: list[RankedTerm]) -> dict[str, np.ndarray]:
    """Columnar encoding of ranked-term lists (shared with the
    stage checkpointer)."""
    return {
        "term": np.array([t.term for t in terms], dtype=object),
        "gid": np.array([t.gid for t in terms], dtype=np.int64),
        "score": np.array([t.score for t in terms], dtype=np.float64),
        "df": np.array([t.df for t in terms], dtype=np.int64),
        "cf": np.array([t.cf for t in terms], dtype=np.int64),
    }


def terms_from_arrays(d: dict) -> list[RankedTerm]:
    """Inverse of :func:`terms_to_arrays`."""
    return [
        RankedTerm(
            term=str(t),
            gid=int(g),
            score=float(s),
            df=int(df),
            cf=int(cf),
        )
        for t, g, s, df, cf in zip(
            d["term"], d["gid"], d["score"], d["df"], d["cf"]
        )
    ]


def save_result(result: EngineResult, path: PathLike) -> None:
    """Write an :class:`EngineResult` to a ``.npz`` archive."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "corpus_name": result.corpus_name,
        "nprocs": result.nprocs,
        "n_docs": result.n_docs,
        "vocab_size": result.vocab_size,
        "inertia": result.inertia,
        "kmeans_iters": result.kmeans_iters,
        "null_fraction": result.null_fraction,
        "adapt_rounds": result.adapt_rounds,
        "meta": result.meta,
        "has_signatures": result.signatures is not None,
        "has_term_stats": result.term_stats is not None,
    }
    if result.timings is not None:
        meta["timings"] = {
            "component_seconds": result.timings.component_seconds,
            "wall_time": result.timings.wall_time,
            "virtual": result.timings.virtual,
        }
    arrays: dict[str, np.ndarray] = {
        "doc_ids": result.doc_ids,
        "coords": result.coords,
        "assignments": result.assignments,
        "centroids": result.centroids,
        "association": result.association,
    }
    for k, v in terms_to_arrays(result.major_terms).items():
        arrays[f"major_{k}"] = v
    if result.signatures is not None:
        arrays["signatures"] = result.signatures
    if result.projection is not None:
        arrays["pca_mean"] = result.projection.mean
        arrays["pca_components"] = result.projection.components
        arrays["pca_variance"] = result.projection.explained_variance
    if result.term_stats is not None:
        terms = sorted(result.term_stats)
        arrays["stats_terms"] = np.array(terms, dtype=object)
        arrays["stats_df"] = np.array(
            [result.term_stats[t][0] for t in terms], dtype=np.int64
        )
        arrays["stats_cf"] = np.array(
            [result.term_stats[t][1] for t in terms], dtype=np.int64
        )
    if result.metrics is not None:
        # stored as its own entry (not in _meta_json): the snapshot is
        # large and carries its own schema version ("repro-metrics/1")
        arrays["_metrics_json"] = np.array(
            json.dumps(result.metrics, sort_keys=True), dtype=object
        )
    meta["n_topics"] = result.n_topics
    arrays["_meta_json"] = np.array(json.dumps(meta), dtype=object)
    np.savez_compressed(p, **arrays)


def load_result(path: PathLike) -> EngineResult:
    """Read an :class:`EngineResult` back from :func:`save_result`."""
    with np.load(Path(path), allow_pickle=True) as z:
        meta = json.loads(str(z["_meta_json"][()]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format {meta.get('format_version')!r}"
            )
        majors = terms_from_arrays(
            {
                k: z[f"major_{k}"]
                for k in ("term", "gid", "score", "df", "cf")
            }
        )
        topics = majors[: meta["n_topics"]]
        signatures = (
            z["signatures"] if meta.get("has_signatures") else None
        )
        projection = None
        if "pca_mean" in z:
            projection = PCATransform(
                mean=z["pca_mean"],
                components=z["pca_components"],
                explained_variance=z["pca_variance"],
            )
        term_stats = None
        if meta.get("has_term_stats"):
            term_stats = {
                str(t): (int(df), int(cf))
                for t, df, cf in zip(
                    z["stats_terms"], z["stats_df"], z["stats_cf"]
                )
            }
        metrics = None
        if "_metrics_json" in z:
            metrics = json.loads(str(z["_metrics_json"][()]))
        timings = None
        if "timings" in meta:
            timings = StageTimings(
                component_seconds=dict(
                    meta["timings"]["component_seconds"]
                ),
                wall_time=float(meta["timings"]["wall_time"]),
                virtual=bool(meta["timings"]["virtual"]),
            )
        return EngineResult(
            corpus_name=meta["corpus_name"],
            nprocs=int(meta["nprocs"]),
            n_docs=int(meta["n_docs"]),
            vocab_size=int(meta["vocab_size"]),
            major_terms=majors,
            topic_terms=topics,
            association=z["association"],
            doc_ids=z["doc_ids"],
            coords=z["coords"],
            assignments=z["assignments"],
            centroids=z["centroids"],
            inertia=float(meta["inertia"]),
            kmeans_iters=int(meta["kmeans_iters"]),
            null_fraction=float(meta["null_fraction"]),
            adapt_rounds=int(meta["adapt_rounds"]),
            projection=projection,
            signatures=signatures,
            term_stats=term_stats,
            timings=timings,
            metrics=metrics,
            meta=dict(meta.get("meta", {})),
        )
