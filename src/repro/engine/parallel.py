"""Parallel text processing engine (the paper's contribution).

Implements Figure 4's architecture on the simulated cluster: static
byte-balanced source distribution, Scan & Map with a distributed
vocabulary hashmap, FAST-INV inverted-file indexing with GA-atomic
dynamic load balancing, global term statistics in global arrays,
parallel topicality with a global merge of per-owner top candidates,
``MPI_Allreduce``-combined association matrices, per-rank knowledge
signatures, distributed k-means, and centroid-PCA projection with the
master collecting the final 2-D coordinates.

Every numerical kernel is shared with
:class:`~repro.engine.serial.SerialTextEngine`, and integer reductions
are exact, so the parallel engine produces the same model (same major
terms, same association matrix, same signatures) for any processor
count -- floating-point clustering results agree to reduction
round-off.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.kmeans import (
    assign_points,
    centroids_from_partials,
    kmeanspp_seeds,
    partial_update,
)
from repro.ga.array import GlobalArray
from repro.ga.hashmap import GlobalHashMap
from repro.ga.taskqueue import SharedTaskQueue
from repro.index.fastinv import (
    Postings,
    fields_to_docs,
    invert_chunk,
    merge_doc_postings,
)
from repro.index.stats import TermStats, stats_from_doc_postings
from repro.project.pca import fit_pca
from repro.runtime.cluster import Cluster
from repro.runtime.context import RankContext
from repro.runtime.errors import RankFailedError
from repro.runtime.faults import FaultInjector
from repro.runtime.machine import MachineSpec, Scale
from repro.runtime.payload import payload_nbytes
from repro.scan.forward import encode_forward
from repro.scan.scanner import scan_documents, unique_terms
from repro.scan.vocabulary import finalize_vocabulary
from repro.signature.topicality import (
    RankedTerm,
    local_candidates,
    rank_candidates,
)
from repro.text.documents import Corpus, Document, partition_documents
from repro.text.tokenizer import Tokenizer

from repro.cluster.twolevel import merge_micro_clusters

from .checkpoint import StageCheckpointer
from .config import EngineConfig
from .persist import terms_from_arrays, terms_to_arrays
from .results import EngineResult
from .serial import (
    _field_weight_arrays as _sig_weight_arrays,
    cluster_sizes,
    sample_indices,
    signature_model,
)
from .timings import StageTimings

_FWD_STORE_KEY = "engine:fwd-store"


class ParallelTextEngine:
    """Run the engine on a simulated cluster of ``nprocs`` ranks."""

    def __init__(
        self,
        nprocs: int,
        machine: MachineSpec | None = None,
        config: EngineConfig | None = None,
    ):
        self.nprocs = nprocs
        self.machine = machine if machine is not None else MachineSpec()
        self.config = config if config is not None else EngineConfig()
        self.last_tracer = None

    def run(self, corpus: Corpus) -> EngineResult:
        """Process ``corpus``; returns the assembled result.

        The machine's ``workload_scale`` is set from the corpus's
        declared represented size, so virtual times are reported at the
        scale the corpus stands for.

        When the config carries a ``fault_plan``, injected rank crashes
        are survived by checkpoint-restart: the run resumes from the
        last completed pipeline stage with the surviving ranks.
        """
        machine = replace(
            self.machine, workload_scale=corpus.workload_scale()
        )
        field_names = corpus.field_names

        def make_args(nlive: int) -> tuple:
            parts = partition_documents(corpus.documents, nlive)
            return (parts, field_names, self.config)

        sim, recovery = self._run_with_recovery(
            machine, _engine_rank_main, make_args
        )
        #: tracer of the (final) attempt, for trace export and the
        #: wall-clock benchmark harness
        self.last_tracer = sim.tracer
        return self._assemble(sim, corpus.name, recovery)

    def run_files(
        self,
        paths,
        corpus_name: str = "sources",
        represented_bytes: float | None = None,
    ) -> EngineResult:
        """Process on-disk source files (``.jsonl``/``.trec``/``.med``).

        Files are statically distributed across ranks by byte size
        (paper §3.2) and each rank scans its own list -- the
        parallel-I/O code path.  ``represented_bytes`` declares the
        real-world scale as for in-memory corpora.
        """
        import os
        from pathlib import Path

        paths = [Path(p) for p in paths]
        if not paths:
            raise ValueError("run_files needs at least one source file")
        sizes = [os.path.getsize(p) for p in paths]
        total = sum(sizes)
        scale = 1.0
        if represented_bytes is not None and total > 0:
            scale = max(1.0, represented_bytes / total)
        machine = replace(self.machine, workload_scale=scale)

        def make_args(nlive: int) -> tuple:
            # contiguous byte-balanced assignment of files to ranks
            parts: list[list] = [[] for _ in range(nlive)]
            target = total / nlive if total else 0.0
            rank = 0
            acc = 0.0
            for p, sz in zip(paths, sizes):
                if target and acc >= target * (rank + 1) and rank < nlive - 1:
                    rank += 1
                parts[rank].append(p)
                acc += sz
            return (parts, self.config)

        sim, recovery = self._run_with_recovery(
            machine, _files_rank_main, make_args
        )
        self.last_tracer = sim.tracer
        return self._assemble(sim, corpus_name, recovery)

    def _run_with_recovery(self, machine, entry, make_args):
        """Run ``entry`` on the cluster, restarting after rank crashes.

        Returns ``(sim, recovery_meta)``; ``recovery_meta`` is ``None``
        when no fault plan is configured.  Each restart drops the dead
        ranks (graceful degradation to P - |failed| survivors) and
        resumes from the last completed stage checkpoint.  The fault
        injector is shared across attempts so a consumed crash fault
        does not re-fire against the replacement run.
        """
        import shutil
        import tempfile

        cfg = self.config
        injector = (
            FaultInjector(cfg.fault_plan)
            if cfg.fault_plan is not None
            else None
        )
        ckpt = None
        tmpdir = None
        if cfg.checkpoint_dir is not None:
            ckpt = StageCheckpointer(cfg.checkpoint_dir)
            # checkpoints are an intra-run recovery mechanism: stale
            # snapshots from a previous run must not leak in, or
            # repeated runs would not be reproducible
            ckpt.reset()
        elif injector is not None and injector.has_crash_faults:
            tmpdir = tempfile.mkdtemp(prefix="repro-ckpt-")
            ckpt = StageCheckpointer(tmpdir)
        recovery = (
            None
            if injector is None
            else {"restarts": 0, "failed_attempts": []}
        )
        nlive = self.nprocs
        try:
            while True:
                try:
                    sim = Cluster(
                        nlive,
                        machine,
                        faults=injector,
                        backend=self.config.backend,
                    ).run(entry, *make_args(nlive), ckpt)
                    if recovery is not None:
                        recovery["final_nprocs"] = nlive
                    return sim, recovery
                except RankFailedError as exc:
                    if ckpt is None or recovery is None:
                        raise
                    recovery["restarts"] += 1
                    recovery["failed_attempts"].append(
                        {
                            "nprocs": nlive,
                            "failed_ranks": list(exc.failed),
                            "wall_time": exc.wall_time,
                        }
                    )
                    nlive -= max(1, len(exc.failed))
                    if nlive < 1 or recovery["restarts"] > cfg.max_restarts:
                        raise
        finally:
            if tmpdir is not None:
                shutil.rmtree(tmpdir, ignore_errors=True)

    def _assemble(self, sim, corpus_name: str, recovery=None) -> EngineResult:
        root = sim.rank_results[0]
        assert root is not None, "rank 0 must assemble the result"
        timings = StageTimings.from_tracer(sim.tracer, sim.rank_times)
        timings.extras["index_invert_per_rank"] = sim.tracer.per_rank_totals(
            "index:invert"
        )
        if recovery is not None:
            root["meta"] = dict(root["meta"], recovery=recovery)
        return EngineResult(
            corpus_name=corpus_name,
            nprocs=self.nprocs,
            timings=timings,
            # like last_tracer, this reports the final attempt of a
            # restarted run (each attempt gets a fresh World/registry)
            metrics=sim.metrics.snapshot(),
            **root,
        )


def _engine_rank_main(
    ctx: RankContext,
    parts: list[list[Document]],
    field_names: list[str],
    cfg: EngineConfig,
    ckpt: StageCheckpointer | None = None,
):
    """SPMD entry for in-memory corpora (pre-partitioned documents)."""
    return _engine_core(
        ctx, parts[ctx.rank], field_names, cfg, io_charged=False, ckpt=ckpt
    )


def _files_rank_main(
    ctx: RankContext,
    file_parts: list[list],
    cfg: EngineConfig,
    ckpt: StageCheckpointer | None = None,
):
    """SPMD entry for on-disk sources: each process scans its own
    list of source files (paper §3.2), then global document IDs and
    the field-name table are established collectively."""
    import os

    from repro.text.formats import read_source

    with ctx.region("scan"):
        local_docs: list[Document] = []
        for path in file_parts[ctx.rank]:
            nbytes = os.path.getsize(path)
            ctx.charge_io(nbytes, concurrent_readers=ctx.nprocs)
            corpus_part = read_source(path)
            # record/field identification over the raw bytes
            ctx.charge_cpu(nbytes // 4, Scale.STREAM)
            local_docs.extend(corpus_part.documents)
        # contiguous global document IDs via an exclusive scan
        offset = ctx.comm.exscan(len(local_docs))
        offset = 0 if offset is None else int(offset)
        docs = [
            Document(doc_id=offset + i, fields=d.fields)
            for i, d in enumerate(local_docs)
        ]
        # deterministic global field-name table (rank order, first seen)
        local_names: list[str] = []
        seen: set[str] = set()
        for d in docs:
            for name in d.fields:
                if name not in seen:
                    seen.add(name)
                    local_names.append(name)
        gathered = ctx.comm.allgather(local_names)
        field_names: list[str] = []
        for part in gathered:
            for name in part:
                if name not in field_names:
                    field_names.append(name)
    return _engine_core(
        ctx, docs, field_names, cfg, io_charged=True, ckpt=ckpt
    )


def _ckpt_write(
    ctx: RankContext,
    ckpt: StageCheckpointer,
    stage: str,
    arrays,
    meta=None,
) -> None:
    """Collective checkpoint write: rank 0 persists, everyone syncs.

    ``arrays`` is meaningful on rank 0 only.  Rank 0 pays the write as
    a single-writer shared-FS I/O charge; the closing barrier makes the
    stage boundary (and the snapshot) globally visible before anyone
    proceeds.
    """
    if ctx.rank == 0:
        nbytes = ckpt.save(stage, arrays, meta)
        ctx.charge_io(nbytes, concurrent_readers=1)
        ctx.tracer.instant(
            ctx.rank, f"ckpt:save:{stage}", ctx.now, {"nbytes": nbytes}
        )
    ctx.barrier()


def _ckpt_read(ctx: RankContext, ckpt: StageCheckpointer, stage: str):
    """Restore one stage snapshot on the calling rank.

    Every rank reads the shared file; the charge models ``nprocs``
    concurrent readers hitting the shared filesystem.
    """
    arrays, meta = ckpt.load(stage)
    nbytes = ckpt.nbytes(stage)
    ctx.charge_io(nbytes, concurrent_readers=ctx.nprocs)
    ctx.tracer.instant(
        ctx.rank, f"ckpt:load:{stage}", ctx.now, {"nbytes": nbytes}
    )
    return arrays, meta


def _stats_from_saved(arrays, local_terms, gid_lo: int, gid_hi: int):
    """Rebuild this rank's :class:`TermStats` from an index snapshot.

    The snapshot stores (term, df, cf) sorted by term -- independent of
    any gid layout -- so the restart maps its *own* dense-gid range
    back through the term strings.
    """
    saved_terms = arrays["term"]
    local_arr = np.asarray(local_terms, dtype=object)
    pos = np.searchsorted(saved_terms, local_arr)
    return TermStats(
        gid_lo=gid_lo,
        gid_hi=gid_hi,
        df=arrays["df"][pos].astype(np.int64),
        cf=arrays["cf"][pos].astype(np.int64),
    )


def _ranked_from_saved(arrays, prefix: str, term_to_gid) -> list[RankedTerm]:
    """Rebuild ranked-term lists with gids re-derived from the current
    run's vocabulary (saved gids belong to the crashed run's layout)."""
    keys = ("term", "gid", "score", "df", "cf")
    terms = terms_from_arrays({k: arrays[f"{prefix}{k}"] for k in keys})
    return [
        RankedTerm(
            term=t.term,
            gid=int(term_to_gid[t.term]),
            score=t.score,
            df=t.df,
            cf=t.cf,
        )
        for t in terms
    ]


def _engine_core(
    ctx: RankContext,
    docs: list[Document],
    field_names: list[str],
    cfg: EngineConfig,
    io_charged: bool,
    ckpt: StageCheckpointer | None = None,
):
    machine = ctx.machine
    local_bytes = sum(d.nbytes for d in docs)
    # memory-pressure multiplier on compute (Fig. 5 anomaly model)
    pf = machine.pressure_factor(local_bytes * cfg.mem_expansion)
    vocab_factor = machine.scaled(1.0, Scale.VOCAB)
    tokenizer = Tokenizer(cfg.tokenizer)
    # stages already snapshotted by a previous (crashed) attempt; their
    # recomputation is replaced by a restore below
    done = () if ckpt is None else ckpt.completed()

    # ------------------------------------------------------- scan & map
    with ctx.region("scan"):
        if not io_charged:
            ctx.charge_io(local_bytes, concurrent_readers=ctx.nprocs)
        scanned, sstats = scan_documents(docs, tokenizer)
        ctx.charge(
            machine.scan_seconds(sstats.nbytes, sstats.ntokens) * pf
        )
        uniq = unique_terms(scanned)
        hashmap = GlobalHashMap.create(ctx, "vocab")
        if "scan" in done:
            # skip the distributed insert RPCs: repopulate each shard
            # locally from the snapshotted vocabulary
            arrays, _ = _ckpt_read(ctx, ckpt, "scan")
            nrestored = hashmap.restore_terms(arrays["terms"])
            ctx.charge_cpu(nrestored * 6, Scale.VOCAB)
        else:
            hashmap.get_or_insert_batch(uniq)
            ctx.charge(machine.unique_terms_seconds(len(uniq)))
        ctx.barrier()  # forward indexing & hashmap construction done
        vocab = finalize_vocabulary(ctx, hashmap)
        field_to_id = {f: i for i, f in enumerate(field_names)}
        forward = encode_forward(scanned, vocab.term_to_gid, field_to_id)
        ctx.charge_cpu(sstats.ntokens * 3, Scale.STREAM)
        if ckpt is not None and "scan" not in done:
            _ckpt_write(
                ctx,
                ckpt,
                "scan",
                {"terms": np.array(vocab.gid_to_term, dtype=object)},
            )
        ctx.barrier()
    nfields_global = max(1, len(field_names))

    # ------------------------------------------- inverted file indexing
    with ctx.region("index"):
        # publish this rank's forward index in the global address space
        ctx.sched.wait_turn(ctx.rank)
        store = ctx.world.published_store(_FWD_STORE_KEY)
        ctx.world.publish_store(_FWD_STORE_KEY, ctx.rank, forward)
        ctx.barrier()
        gid_lo, gid_hi = vocab.dist.local_range(ctx.rank)
        local_terms = vocab.gid_to_term[gid_lo:gid_hi]
        if "index" in done:
            arrays, _ = _ckpt_read(ctx, ckpt, "index")
            stats = _stats_from_saved(arrays, local_terms, gid_lo, gid_hi)
            ctx.charge_cpu(len(local_terms) * 8, Scale.VOCAB)
            processed_loads = 0
        else:
            stats, processed_loads = _index_stage(
                ctx, cfg, machine, pf, vocab, forward, store,
                nfields_global, gid_lo, gid_hi,
            )
            if ckpt is not None:
                piece = (
                    np.array(local_terms, dtype=object),
                    stats.df,
                    stats.cf,
                )
                pieces = ctx.comm.gather(
                    piece,
                    root=0,
                    nbytes_hint=payload_nbytes(piece) * vocab_factor,
                )
                arrays = None
                if ctx.rank == 0:
                    terms_all = np.concatenate([p[0] for p in pieces])
                    df_all = np.concatenate([p[1] for p in pieces])
                    cf_all = np.concatenate([p[2] for p in pieces])
                    order = np.argsort(terms_all)
                    arrays = {
                        "term": terms_all[order],
                        "df": df_all[order],
                        "cf": cf_all[order],
                    }
                _ckpt_write(ctx, ckpt, "index", arrays)

    # ---------------------------------------------------------- topicality
    with ctx.region("topic"):
        n_docs = ctx.comm.allreduce(len(docs))
        if "topic" in done:
            arrays, _ = _ckpt_read(ctx, ckpt, "topic")
            candidates = _ranked_from_saved(
                arrays, "cand_", vocab.term_to_gid
            )
            ctx.charge_cpu(len(candidates) * 20, Scale.VOCAB)
        else:
            candidates = _topic_stage(
                ctx, cfg, vocab, stats, n_docs, local_terms,
                gid_lo, vocab_factor,
            )
            if ckpt is not None:
                arrays = None
                if ctx.rank == 0:
                    arrays = {
                        f"cand_{k}": v
                        for k, v in terms_to_arrays(candidates).items()
                    }
                _ckpt_write(ctx, ckpt, "topic", arrays)

    # ------------------------------- association matrix + signatures
    doc_gid_arrays = [d.gids for d in forward.docs]
    my_ids = np.array([d.doc_id for d in forward.docs], dtype=np.int64)

    if "sig" in done:
        arrays, sig_meta = _ckpt_read(ctx, ckpt, "sig")
        all_sig_ids = arrays["doc_ids"]
        pos = np.searchsorted(all_sig_ids, my_ids)
        sigs = arrays["signatures"][pos]
        assoc = arrays["association"]
        majors = _ranked_from_saved(arrays, "major_", vocab.term_to_gid)
        topics = majors[: int(sig_meta["n_topics"])]
        null_fraction = float(sig_meta["null_fraction"])
        rounds = int(sig_meta["adapt_rounds"])
        ctx.charge_cpu(sigs.size * 2, Scale.STREAM)
    else:
        majors, topics, assoc, sigs, null_fraction, rounds = _sig_stage(
            ctx, cfg, machine, pf, candidates, doc_gid_arrays,
            n_docs, forward, field_names, sstats,
        )
        if ckpt is not None:
            gathered_sigs = ctx.comm.gather(
                (my_ids, sigs),
                root=0,
                nbytes_hint=machine.scaled(
                    payload_nbytes((my_ids, sigs)), Scale.STREAM
                ),
            )
            arrays = None
            if ctx.rank == 0:
                ids_all = np.concatenate([p[0] for p in gathered_sigs])
                sig_all = np.vstack([p[1] for p in gathered_sigs])
                order = np.argsort(ids_all)
                arrays = {
                    "doc_ids": ids_all[order],
                    "signatures": sig_all[order],
                    "association": assoc,
                }
                for k, v in terms_to_arrays(majors).items():
                    arrays[f"major_{k}"] = v
            _ckpt_write(
                ctx,
                ckpt,
                "sig",
                arrays,
                meta={
                    "n_topics": len(topics),
                    "null_fraction": float(null_fraction),
                    "adapt_rounds": int(rounds),
                },
            )

    return _clusproj_and_assemble(
        ctx, cfg, machine, pf, vocab, n_docs,
        majors, topics, assoc, sigs, null_fraction, rounds,
        my_ids, local_terms, stats, processed_loads, sstats,
    )


def _dlb_cost_hints(ctx, machine, pf, forward, chunk):
    """Per-own-load cost hints for the mp backend's claim planner.

    ``None`` under the simulator (the scheduler already serializes
    claims deterministically).  Under mp the hints let every process
    replay the identical claim interleaving: each own load's scaled
    transfer bytes and base inversion seconds -- exactly the charges
    ``process_load`` makes, so the offline replay is bit-exact.
    """
    if getattr(ctx.world, "backend", "sim") != "mp":
        return None
    own = []
    ndocs = len(forward.docs)
    for li in range((ndocs + chunk - 1) // chunk):
        lo = li * chunk
        hi = min(ndocs, lo + chunk)
        nb = machine.scaled(forward.nbytes_of_chunk(lo, hi), Scale.STREAM)
        gsize = sum(int(d.gids.size) for d in forward.docs[lo:hi])
        own.append((float(nb), float(machine.invert_seconds(gsize))))
    return (pf, own)


def _index_stage(
    ctx: RankContext,
    cfg: EngineConfig,
    machine,
    pf: float,
    vocab,
    forward,
    store,
    nfields_global: int,
    gid_lo: int,
    gid_hi: int,
):
    """FAST-INV inversion with dynamic load balancing + postings
    exchange and global term statistics (paper 3.3)."""
    chunk = max(1, cfg.chunk_docs)
    nloads = (len(forward.docs) + chunk - 1) // chunk
    load_counts = ctx.comm.allgather(nloads)
    offsets = np.concatenate([[0], np.cumsum(load_counts)])
    # dense gid -> owning rank (postings destination)
    owner_counts = [
        vocab.dist.local_count(r) for r in range(ctx.nprocs)
    ]
    gid_owner = np.repeat(
        np.arange(ctx.nprocs, dtype=np.int64), owner_counts
    )
    bucket_g: list[list[np.ndarray]] = [[] for _ in range(ctx.nprocs)]
    bucket_d: list[list[np.ndarray]] = [[] for _ in range(ctx.nprocs)]
    bucket_c: list[list[np.ndarray]] = [[] for _ in range(ctx.nprocs)]
    processed_loads = 0

    def process_load(task_id: int) -> None:
        nonlocal processed_loads
        owner = int(
            np.searchsorted(offsets, task_id, side="right") - 1
        )
        li = int(task_id - offsets[owner])
        fwd = store[owner]
        lo = li * chunk
        hi = min(len(fwd.docs), lo + chunk)
        if owner != ctx.rank:
            # fetch the stolen load's forward data (one-sided get)
            nb = fwd.nbytes_of_chunk(lo, hi)
            ctx.charge(
                machine.onesided_seconds(
                    machine.scaled(nb, Scale.STREAM),
                    intra_node=machine.same_node(ctx.rank, owner),
                )
            )
            ctx.metrics.counter("comm.onesided.bytes", ("peer", "dir")).inc(
                ctx.rank,
                float(machine.scaled(nb, Scale.STREAM)),
                key=(owner, "get"),
            )
        g, d, f = fwd.chunk_streams(lo, hi)
        t2f, _ = invert_chunk(g, d, f)
        t2d = fields_to_docs(t2f, nfields_global)
        ctx.charge(machine.invert_seconds(g.size) * pf)
        dest = gid_owner[t2d.gids]
        for r in range(ctx.nprocs):
            mask = dest == r
            if mask.any():
                bucket_g[r].append(t2d.gids[mask])
                bucket_d[r].append(t2d.keys[mask])
                bucket_c[r].append(t2d.counts[mask])
        processed_loads += 1

    # the inner region measures each rank's inversion *busy* time
    # (before the exchange barrier evens the clocks out) -- the
    # per-processor load distribution Figure 9 plots
    with ctx.region("index:invert"):
        if cfg.dynamic_load_balancing:
            queue = SharedTaskQueue(
                ctx, "ifi", load_counts, chunk=1,
                cost_hints=_dlb_cost_hints(ctx, machine, pf, forward, chunk),
            )
            while (got := queue.next_chunk()) is not None:
                for t in range(got[0], got[1]):
                    process_load(t)
                queue.complete(*got)
        else:
            for t in range(
                int(offsets[ctx.rank]), int(offsets[ctx.rank + 1])
            ):
                process_load(t)

    def _cat(parts_list: list[np.ndarray]) -> np.ndarray:
        if not parts_list:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts_list)

    per_dest = [
        (_cat(bucket_g[r]), _cat(bucket_d[r]), _cat(bucket_c[r]))
        for r in range(ctx.nprocs)
    ]
    exchange_nbytes = sum(
        g.nbytes + d.nbytes + c.nbytes for g, d, c in per_dest
    )
    incoming = ctx.comm.alltoallv(
        per_dest,
        nbytes_hint=machine.scaled(exchange_nbytes, Scale.STREAM),
    )
    my_postings = merge_doc_postings(
        [Postings(g, d, c) for g, d, c in incoming]
    )
    ctx.charge(machine.invert_seconds(len(my_postings)))
    stats = stats_from_doc_postings(my_postings, gid_lo, gid_hi)
    # global term statistics live in global arrays (paper 3.3)
    df_ga = GlobalArray.create(
        ctx, "stats:df", (vocab.size,), dtype=np.int64, dist=vocab.dist
    )
    cf_ga = GlobalArray.create(
        ctx, "stats:cf", (vocab.size,), dtype=np.int64, dist=vocab.dist
    )
    df_ga.local_view()[:] = stats.df
    cf_ga.local_view()[:] = stats.cf
    ctx.charge(
        machine.memcpy_seconds(
            machine.scaled(stats.df.nbytes * 2, Scale.VOCAB)
        )
    )
    df_ga.sync()
    return stats, processed_loads


def _topic_stage(
    ctx: RankContext,
    cfg: EngineConfig,
    vocab,
    stats,
    n_docs: int,
    local_terms,
    gid_lo: int,
    vocab_factor: float,
):
    """Parallel topicality: local Bookstein candidates, global merge
    of the per-owner tops (paper 3.4)."""
    # Bookstein measure + local candidate sort (per owned term)
    ctx.charge_cpu(len(local_terms) * 1500, Scale.VOCAB)
    cands_local = local_candidates(
        local_terms,
        gid_lo=gid_lo,
        df=stats.df,
        cf=stats.cf,
        n_docs=n_docs,
        min_df=cfg.min_df,
        limit=cfg.max_major_terms,
        max_df_fraction=cfg.max_df_fraction,
    )
    # global merge-sort of per-owner tops, broadcast to all (3.4)
    cand_nbytes = payload_nbytes(cands_local)
    all_cands = ctx.comm.allgather(
        cands_local, nbytes_hint=cand_nbytes * vocab_factor
    )
    # every rank holds the same gathered lists, so the merge sort is
    # computed once and shared (the virtual-time charge below still
    # applies per rank -- the replication cost is what the paper's
    # scaling argument is about)
    candidates = ctx.replicated(
        ("topic.merge",),
        lambda: rank_candidates(
            [c for part in all_cands for c in part]
        )[: cfg.max_major_terms],
    )
    # global merge-sort of the gathered candidate lists -- this
    # work is replicated on every rank (it covers the full
    # vocabulary-sized candidate set), which is why the paper's
    # topicality component "does not scale well"
    total_cands = sum(len(part) for part in all_cands)
    ctx.charge_cpu(total_cands * 400, Scale.VOCAB)
    return candidates


def _sig_stage(
    ctx: RankContext,
    cfg: EngineConfig,
    machine,
    pf: float,
    candidates,
    doc_gid_arrays,
    n_docs: int,
    forward,
    field_names,
    sstats,
):
    """Association matrix + knowledge signatures (paper 3.4)."""

    def reduce_counts(local_counts: np.ndarray) -> np.ndarray:
        return ctx.comm.allreduce(local_counts)

    def reduce_nulls(n_null: int) -> int:
        return ctx.comm.allreduce(int(n_null))

    def charge_am(n_major: int, n_topics: int) -> None:
        # presence scan over the local token stream + matrix updates
        ctx.charge_cpu(sstats.ntokens * 12, Scale.STREAM)
        ctx.charge_flops(float(n_major) * n_topics * 4.0)

    def charge_docvec(batch) -> None:
        m = batch.signatures.shape[1] if batch.signatures.size else 1
        ctx.charge(
            machine.flops_seconds(sstats.ntokens * max(1, m) * 3.0, Scale.STREAM)
            * pf
        )

    weight_arrays = _sig_weight_arrays(forward, field_names, cfg)
    majors, topics, assoc, batch, null_fraction, rounds = signature_model(
        candidates,
        doc_gid_arrays,
        n_docs,
        cfg,
        doc_weight_arrays=weight_arrays,
        reduce_counts=reduce_counts,
        reduce_nulls=reduce_nulls,
        am_scope=lambda: ctx.region("am"),
        docvec_scope=lambda: ctx.region("docvec"),
        charge_am=charge_am,
        charge_docvec=charge_docvec,
        once=ctx.replicated,
    )
    return majors, topics, assoc, batch.signatures, null_fraction, rounds


def _clusproj_and_assemble(
    ctx: RankContext,
    cfg: EngineConfig,
    machine,
    pf: float,
    vocab,
    n_docs: int,
    majors,
    topics,
    assoc,
    sigs,
    null_fraction: float,
    rounds: int,
    my_ids: np.ndarray,
    local_terms,
    stats,
    processed_loads: int,
    sstats,
):
    """Distributed k-means + centroid PCA, then rank-0 assembly."""
    with ctx.region("clusproj"):
        k_goal, k_fine = cluster_sizes(cfg, n_docs)
        m_dim = sigs.shape[1]
        # replicated seeding sample at deterministic global indices
        sidx = sample_indices(n_docs, cfg.kmeans_sample)
        mine = np.isin(my_ids, sidx)
        contrib = (my_ids[mine], sigs[mine])
        pieces = ctx.comm.allgather(contrib)

        def _seed_centroids():
            samp_ids = np.concatenate([p[0] for p in pieces])
            samp_vecs = np.vstack([p[1] for p in pieces])
            sample = samp_vecs[np.argsort(samp_ids)]
            rng = np.random.default_rng(cfg.seed)
            return sample.shape[0], kmeanspp_seeds(sample, k_fine, rng)

        # the gathered sample is identical on every rank, so seeding
        # is replicated work: compute once, charge the model per rank
        n_sample, centroids = ctx.replicated(
            ("clusproj.seeds",), _seed_centroids
        )
        k = centroids.shape[0]
        ctx.charge_flops(float(n_sample) * k * max(1, m_dim) * 3)
        # Dhillon-Modha distributed k-means: local assign, allreduce
        # of per-cluster partial sums and counts
        n_iter = 0
        for n_iter in range(1, cfg.kmeans_max_iter + 1):
            labels, sq = assign_points(sigs, centroids)
            ctx.charge(
                machine.flops_seconds(
                    len(sigs) * k * max(1, m_dim) * 3.0, Scale.STREAM
                )
                * pf
            )
            sums, counts = partial_update(sigs, labels, k)
            packed = np.concatenate(
                [sums.ravel(), counts.astype(np.float64)]
            )
            total = ctx.comm.allreduce(packed)

            def _step(total=total, centroids=centroids):
                tot_sums = total[: k * m_dim].reshape(k, m_dim)
                tot_counts = total[k * m_dim :]
                new_c = centroids_from_partials(
                    tot_sums, tot_counts, centroids
                )
                return new_c, float(
                    np.max(np.abs(new_c - centroids), initial=0.0)
                )

            # the allreduced partials are identical on every rank
            centroids, shift = ctx.replicated(
                ("clusproj.step", n_iter), _step
            )
            if shift <= cfg.kmeans_tol:
                break
        labels, sq = assign_points(sigs, centroids)
        if cfg.cluster_method != "kmeans":
            # hierarchical merge of the replicated micro-clusters
            # (identical on every rank; see repro.cluster.twolevel)
            _, fine_counts = partial_update(sigs, labels, k)
            tot_fine = ctx.comm.allreduce(
                fine_counts.astype(np.float64)
            )
            mapping, centroids = ctx.replicated(
                ("clusproj.merge",),
                lambda: merge_micro_clusters(
                    centroids, tot_fine.astype(np.int64), k_goal,
                    cfg.cluster_method,
                ),
            )
            ctx.charge_flops(float(k) ** 3)
            labels = mapping[labels]
            sq = np.sum((sigs - centroids[labels]) ** 2, axis=1)
            k = centroids.shape[0]
        inertia = ctx.comm.allreduce(float(sq.sum()))
        # PCA on the replicated centroids, identical on every rank:
        # one real fit, shared; model cost charged per rank below
        transform = ctx.replicated(
            ("clusproj.pca",),
            lambda: fit_pca(centroids, dim=cfg.projection_dim),
        )
        ctx.charge_flops(
            float(k) * m_dim * m_dim + float(m_dim) ** 3
        )
        coords = transform.project(sigs)
        ctx.charge_flops(
            len(sigs) * m_dim * cfg.projection_dim, Scale.STREAM
        )
        # the master (rank 0) collects all coordinates (paper 3.5)
        payload = (my_ids, coords, labels)
        gathered = ctx.comm.gather(
            payload,
            root=0,
            nbytes_hint=machine.scaled(
                payload_nbytes(payload), Scale.STREAM
            ),
        )

    # --------------------------- result assembly (bookkeeping, rank 0)
    sig_pieces = None
    if cfg.keep_signatures:
        sig_pieces = ctx.comm.gather((my_ids, sigs), root=0, nbytes_hint=0.0)
    stats_pieces = None
    if cfg.keep_term_stats:
        stats_pieces = ctx.comm.gather(
            (local_terms, stats.df, stats.cf), root=0, nbytes_hint=0.0
        )
    if ctx.rank != 0:
        return None

    all_ids = np.concatenate([p[0] for p in gathered])
    all_coords = np.vstack([p[1] for p in gathered])
    all_labels = np.concatenate(
        [np.asarray(p[2], dtype=np.int64) for p in gathered]
    )
    order = np.argsort(all_ids)
    signatures = None
    if sig_pieces is not None:
        sig_ids = np.concatenate([p[0] for p in sig_pieces])
        sig_mat = np.vstack([p[1] for p in sig_pieces])
        signatures = sig_mat[np.argsort(sig_ids)]
    term_stats = None
    if stats_pieces is not None:
        term_stats = {}
        for terms_part, df_part, cf_part in stats_pieces:
            for t, dfv, cfv in zip(terms_part, df_part, cf_part):
                term_stats[t] = (int(dfv), int(cfv))
    return dict(
        n_docs=int(n_docs),
        vocab_size=vocab.size,
        major_terms=majors,
        topic_terms=topics,
        association=assoc,
        doc_ids=all_ids[order],
        coords=all_coords[order],
        assignments=all_labels[order],
        centroids=centroids,
        inertia=float(inertia),
        kmeans_iters=int(n_iter),
        null_fraction=float(null_fraction),
        adapt_rounds=int(rounds),
        projection=transform,
        signatures=signatures,
        term_stats=term_stats,
        meta={
            "processed_loads_rank0": processed_loads,
            "scan_tokens_rank0": sstats.ntokens,
        },
    )
