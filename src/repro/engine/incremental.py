"""Incremental projection of new documents into an existing model.

The paper's motivating data streams -- newswire feeds, message
traffic, crawls -- grow continuously, but the engine's expensive
stages (vocabulary, statistics, topicality, association matrix,
clustering, PCA) need not be recomputed per arrival: a new record can
be *projected* into the existing model exactly the way the original
documents were:

1. tokenize and look up terms in the frozen major-term model,
2. combine the association-matrix rows (frequency-weighted, L1
   normalized) into a signature,
3. assign to the nearest existing centroid,
4. project with the fitted centroid-PCA transform.

Documents whose vocabulary the model has never seen become null
signatures, and a rising null rate is the natural trigger for a full
re-run (the batch analogue of the §4.2 adaptive-dimensionality
remedy).  :func:`refresh_recommended` encodes that policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.kmeans import assign_points
from repro.signature.docvec import compute_signatures, major_lookup_arrays
from repro.text.documents import Document
from repro.text.tokenizer import Tokenizer, TokenizerConfig

from .results import EngineResult


@dataclass
class ProjectedBatch:
    """New documents placed into an existing model's landscape."""

    doc_ids: np.ndarray
    signatures: np.ndarray
    coords: np.ndarray
    assignments: np.ndarray
    null_mask: np.ndarray

    @property
    def null_fraction(self) -> float:
        if self.null_mask.size == 0:
            return 0.0
        return float(self.null_mask.mean())


def project_new_documents(
    result: EngineResult,
    documents: Sequence[Document],
    tokenizer_config: TokenizerConfig | None = None,
) -> ProjectedBatch:
    """Place ``documents`` into ``result``'s signature space and view.

    Requires the result to carry its fitted projection (results from
    this package's engines always do).  Field-emphasis weighting is not
    applied here: a streamed record is scored on its full text, so for
    models built with ``field_weights`` the incremental placement is an
    unweighted approximation.
    """
    if result.projection is None:
        raise ValueError(
            "result carries no fitted projection; re-run the engine"
        )
    tokenizer = Tokenizer(
        tokenizer_config if tokenizer_config is not None else TokenizerConfig()
    )
    # frozen model: major term -> canonical row
    term_row = {t.term: i for i, t in enumerate(result.major_terms)}
    # synthesize per-doc "gid" arrays in model-row space: rows are
    # already dense 0..N-1, so the lookup arrays are trivial
    n_major = len(result.major_terms)
    sorted_gids, positions = major_lookup_arrays(list(range(n_major)))
    doc_rows: list[np.ndarray] = []
    for doc in documents:
        rows = [
            term_row[t]
            for t in tokenizer.tokens(doc.text())
            if t in term_row
        ]
        doc_rows.append(np.asarray(rows, dtype=np.int64))
    batch = compute_signatures(
        doc_rows, sorted_gids, positions, result.association
    )
    sigs = batch.signatures
    labels, _ = assign_points(sigs, result.centroids)
    coords = result.projection.project(sigs)
    return ProjectedBatch(
        doc_ids=np.array([d.doc_id for d in documents], dtype=np.int64),
        signatures=sigs,
        coords=coords,
        assignments=labels,
        null_mask=batch.null_mask,
    )


def refresh_recommended(
    batch: ProjectedBatch,
    max_null_fraction: float | None = None,
    config=None,
    min_docs: int | None = None,
) -> bool:
    """Should the full engine re-run on the grown collection?

    True when the incoming stream's vocabulary has drifted far enough
    from the frozen model that too many new documents land as null
    signatures.  Thresholds resolve explicit argument first, then the
    :class:`~repro.engine.config.EngineConfig` ``refresh_*`` knobs,
    then the historical defaults (0.25 over any batch size).
    """
    if max_null_fraction is None:
        max_null_fraction = (
            config.refresh_null_fraction if config is not None else 0.25
        )
    if min_docs is None:
        min_docs = config.refresh_min_docs if config is not None else 1
    if batch.null_mask.size < min_docs:
        return False
    return batch.null_fraction > max_null_fraction
