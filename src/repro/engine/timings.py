"""Per-component timing containers.

Component names follow the paper's Figures 6b/7b x-axis: ``scan``,
``index``, ``topic``, ``am`` (association matrix), ``docvec``
(knowledge signatures), ``clusproj`` (clustering & projection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.runtime.tracing import Tracer

#: canonical component order (the paper's figure x-axis)
COMPONENTS: tuple[str, ...] = (
    "scan",
    "index",
    "topic",
    "am",
    "docvec",
    "clusproj",
)

#: component key -> label used in the paper's figures
PAPER_LABELS: dict[str, str] = {
    "scan": "scan",
    "index": "index",
    "topic": "topic",
    "am": "AM",
    "docvec": "DocVec",
    "clusproj": "ClusProj",
}


@dataclass
class StageTimings:
    """Wall/percentage view of one engine run's components."""

    #: component -> wall-clock contribution (max over ranks), seconds
    component_seconds: dict[str, float]
    #: total wall time of the run, seconds
    wall_time: float
    #: final virtual clock of each rank (None for the serial engine)
    rank_times: Optional[np.ndarray] = None
    #: component -> per-rank seconds (None for the serial engine)
    per_rank: Optional[dict[str, np.ndarray]] = None
    #: True when times are virtual (simulated cluster) rather than real
    virtual: bool = True
    extras: dict = field(default_factory=dict)

    @property
    def component_percentages(self) -> dict[str, float]:
        total = sum(self.component_seconds.values())
        if total <= 0:
            return {k: 0.0 for k in self.component_seconds}
        return {
            k: 100.0 * v / total for k, v in self.component_seconds.items()
        }

    @classmethod
    def from_tracer(cls, tracer: Tracer, rank_times: np.ndarray) -> "StageTimings":
        seconds: dict[str, float] = {}
        per_rank: dict[str, np.ndarray] = {}
        for name in COMPONENTS:
            totals = tracer.per_rank_totals(name)
            if totals.max() > 0 or name in tracer.component_names():
                seconds[name] = float(totals.max())
                per_rank[name] = totals
        return cls(
            component_seconds=seconds,
            wall_time=float(rank_times.max()),
            rank_times=rank_times,
            per_rank=per_rank,
            virtual=True,
        )
