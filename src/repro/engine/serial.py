"""Serial reference implementation of the text processing engine.

A straightforward single-process version of the nine-stage IN-SPIRE
pipeline (paper §2.1).  It shares all numerical kernels with the
parallel engine -- tokenizer, FAST-INV inversion, topicality,
association matrix, signatures, k-means, PCA -- so it serves both as
the correctness oracle for the parallel implementation and as the
"existing state-of-the-art desktop tool" baseline the paper sets out
to beat.

Timings here are *real* seconds (``time.perf_counter``); speedup
figures always use the simulated parallel engine's virtual time with
P=1 as the baseline instead, as the paper's self-relative speedups do.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

import numpy as np

from repro.cluster.kmeans import kmeanspp_seeds, lloyd
from repro.cluster.twolevel import (
    HIERARCHICAL_METHODS,
    merge_micro_clusters,
)
from repro.index.fastinv import invert_chunk, merge_doc_postings
from repro.index.stats import stats_from_doc_postings
from repro.project.pca import fit_pca
from repro.scan.forward import ForwardIndex, encode_forward
from repro.scan.scanner import scan_documents, unique_terms
from repro.scan.vocabulary import finalize_vocabulary_serial
from repro.signature.association import (
    association_matrix,
    cooccurrence_counts,
    doc_presence_indices,
)
from repro.signature.docvec import compute_signatures, major_lookup_arrays
from repro.signature.topicality import (
    local_candidates,
    select_major_terms,
)
from repro.text.documents import Corpus
from repro.text.tokenizer import Tokenizer

from .config import EngineConfig
from .results import EngineResult
from .timings import StageTimings


def sample_indices(n_docs: int, sample_size: int) -> np.ndarray:
    """Deterministic global seeding-sample document indices.

    Evenly spaced over the collection, identical for every processor
    count -- this is what keeps serial and parallel k-means aligned.
    """
    if n_docs <= 0:
        return np.empty(0, dtype=np.int64)
    take = min(max(1, sample_size), n_docs)
    return np.unique(
        np.linspace(0, n_docs - 1, num=take).astype(np.int64)
    )


def _field_weight_arrays(forward, field_names, config: EngineConfig):
    """Per-token weight arrays when field emphasis is configured."""
    if not config.field_weights:
        return None
    nfields = max(1, len(field_names))
    weights = np.array(
        [config.field_weights.get(name, 1.0) for name in field_names],
        dtype=np.float64,
    )
    return forward.token_weights(nfields, weights)


def cluster_sizes(config: EngineConfig, n_docs: int) -> tuple[int, int]:
    """(final cluster count, k-means micro-cluster count) for a run.

    Plain k-means uses one level; hierarchical methods cluster
    ``micro_cluster_factor`` times as many micro-clusters first and
    merge them (see :mod:`repro.cluster.twolevel`).  Raises on unknown
    methods so both engines validate identically.
    """
    method = config.cluster_method
    if method not in ("kmeans", *HIERARCHICAL_METHODS):
        raise ValueError(
            f"unknown cluster_method {method!r}; expected 'kmeans' or "
            f"one of {HIERARCHICAL_METHODS}"
        )
    k_goal = max(1, min(config.n_clusters, n_docs))
    if method == "kmeans":
        return k_goal, k_goal
    k_fine = max(
        1,
        min(
            config.n_clusters * max(1, config.micro_cluster_factor),
            n_docs,
        ),
    )
    return k_goal, k_fine


def signature_model(
    candidates,
    doc_gid_arrays,
    n_docs,
    config: EngineConfig,
    reduce_counts=None,
    reduce_nulls=None,
    am_scope=None,
    docvec_scope=None,
    charge_am=None,
    charge_docvec=None,
    doc_weight_arrays=None,
    once=None,
):
    """Association-matrix + signature construction with the paper's
    adaptive-dimensionality loop (§4.2): while too many documents have
    null signatures, the number of major terms N is doubled, producing
    "significantly more representative" signatures at the cost of more
    computation and memory.

    The serial engine calls this bare; the parallel engine supplies
    ``reduce_*`` allreduce closures (making the integer co-occurrence
    counts -- and hence the matrix -- bit-identical across processor
    counts), ``am_scope``/``docvec_scope`` region factories for
    component timing, ``charge_*`` cost hooks, and ``once`` (a
    compute-once cache, ``RankContext.replicated``) so work that is
    replicated with identical inputs on every rank -- the major-term
    selection and the association matrix built from the allreduced
    counts -- is computed once per run instead of once per rank.

    Returns ``(majors, topics, A, sig_batch, null_fraction, rounds)``
    where ``sig_batch`` covers only the *local* documents when
    reducers are supplied.
    """
    if reduce_counts is None:
        reduce_counts = lambda c: c  # noqa: E731 - serial identity
    if reduce_nulls is None:
        reduce_nulls = lambda n: n  # noqa: E731 - serial identity
    if once is None:
        once = lambda key, fn: fn()  # noqa: E731 - serial identity
    if am_scope is None:
        am_scope = nullcontext
    if docvec_scope is None:
        docvec_scope = nullcontext
    n_major = config.n_major_terms
    rounds = 0
    while True:
        with am_scope():
            majors, topics = once(
                ("am.select", n_major),
                lambda: select_major_terms(
                    candidates, n_major, config.topic_fraction
                ),
            )
            if not majors:
                raise ValueError(
                    "no candidate major terms: corpus too small or "
                    "min_df too high"
                )
            sorted_gids, positions = once(
                ("am.lookup", n_major),
                lambda: major_lookup_arrays([t.gid for t in majors]),
            )
            presence = [
                doc_presence_indices(g, sorted_gids, positions)
                for g in doc_gid_arrays
            ]
            local_counts = cooccurrence_counts(
                presence, len(majors), len(topics)
            )
            if charge_am is not None:
                charge_am(len(majors), len(topics))
            counts = reduce_counts(local_counts)
            # the reduced counts are bit-identical on every rank, so
            # the normalized matrix is replicated work too
            assoc = once(
                ("am.assoc", n_major),
                lambda: association_matrix(
                    counts,
                    np.array([t.df for t in majors], dtype=np.int64),
                    np.array([t.df for t in topics], dtype=np.int64),
                    n_docs,
                ),
            )
        with docvec_scope():
            batch = compute_signatures(
                doc_gid_arrays,
                sorted_gids,
                positions,
                assoc,
                doc_weight_arrays=doc_weight_arrays,
            )
            if charge_docvec is not None:
                charge_docvec(batch)
            n_null_global = reduce_nulls(batch.n_null)
        null_fraction = n_null_global / max(1, n_docs)
        can_grow = (
            config.adapt_dimensionality
            and n_major < config.max_major_terms
            and len(majors) == n_major  # more candidates remain
            and len(majors) < len(candidates)
        )
        if null_fraction <= config.max_null_fraction or not can_grow:
            return majors, topics, assoc, batch, null_fraction, rounds
        n_major = min(n_major * 2, config.max_major_terms)
        rounds += 1


class SerialTextEngine:
    """Single-process nine-stage text engine."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config if config is not None else EngineConfig()

    def run(self, corpus: Corpus) -> EngineResult:
        cfg = self.config
        tokenizer = Tokenizer(cfg.tokenizer)
        stage_seconds: dict[str, float] = {}
        t_start = time.perf_counter()

        # ------------------------------------------------ scan & map
        t0 = time.perf_counter()
        scanned, scan_stats = scan_documents(corpus.documents, tokenizer)
        vocab = finalize_vocabulary_serial(unique_terms(scanned))
        field_to_id = {f: i for i, f in enumerate(corpus.field_names)}
        forward: ForwardIndex = encode_forward(
            scanned, vocab.term_to_gid, field_to_id
        )
        stage_seconds["scan"] = time.perf_counter() - t0

        # ------------------------------------------------ indexing
        t0 = time.perf_counter()
        parts = []
        for lo in range(0, len(forward), max(1, cfg.chunk_docs)):
            hi = min(len(forward), lo + max(1, cfg.chunk_docs))
            _t2f, t2d = invert_chunk(*forward.chunk_streams(lo, hi))
            parts.append(t2d)
        postings = merge_doc_postings(parts)
        stats = stats_from_doc_postings(postings, 0, vocab.size)
        stage_seconds["index"] = time.perf_counter() - t0

        # ------------------------------------------------ topicality
        t0 = time.perf_counter()
        n_docs = len(corpus)
        candidates = local_candidates(
            vocab.gid_to_term,
            gid_lo=0,
            df=stats.df,
            cf=stats.cf,
            n_docs=n_docs,
            min_df=cfg.min_df,
            limit=cfg.max_major_terms,
            max_df_fraction=cfg.max_df_fraction,
        )
        stage_seconds["topic"] = time.perf_counter() - t0

        # --------------------------------- association + signatures
        t0 = time.perf_counter()
        doc_gid_arrays = [d.gids for d in forward.docs]
        weight_arrays = _field_weight_arrays(forward, corpus.field_names, cfg)
        majors, topics, assoc, batch, null_fraction, rounds = (
            signature_model(
                candidates,
                doc_gid_arrays,
                n_docs,
                cfg,
                doc_weight_arrays=weight_arrays,
            )
        )
        # the loop interleaves AM and DocVec work; attribute the matrix
        # arithmetic to "am" and the per-document combination to
        # "docvec" by a simple proportional split of the loop time
        loop_t = time.perf_counter() - t0
        stage_seconds["am"] = loop_t * 0.5
        stage_seconds["docvec"] = loop_t * 0.5

        # ------------------------------- clustering and projection
        t0 = time.perf_counter()
        sigs = batch.signatures
        k_goal, k_fine = cluster_sizes(cfg, n_docs)
        sample = sigs[sample_indices(n_docs, cfg.kmeans_sample)]
        rng = np.random.default_rng(cfg.seed)
        seeds = kmeanspp_seeds(sample, k_fine, rng)
        km = lloyd(
            sigs,
            seeds,
            max_iter=cfg.kmeans_max_iter,
            tol=cfg.kmeans_tol,
        )
        if cfg.cluster_method == "kmeans":
            labels, centroids, inertia = km.labels, km.centroids, km.inertia
        else:
            counts = np.bincount(
                km.labels, minlength=km.centroids.shape[0]
            )
            mapping, centroids = merge_micro_clusters(
                km.centroids, counts, k_goal, cfg.cluster_method
            )
            labels = mapping[km.labels]
            inertia = float(
                np.sum((sigs - centroids[labels]) ** 2)
            )
        transform = fit_pca(centroids, dim=cfg.projection_dim)
        coords = transform.project(sigs)
        stage_seconds["clusproj"] = time.perf_counter() - t0

        term_stats = None
        if cfg.keep_term_stats:
            term_stats = {
                term: (int(stats.df[g]), int(stats.cf[g]))
                for term, g in vocab.term_to_gid.items()
            }
        timings = StageTimings(
            component_seconds=stage_seconds,
            wall_time=time.perf_counter() - t_start,
            virtual=False,
        )
        return EngineResult(
            corpus_name=corpus.name,
            nprocs=1,
            n_docs=n_docs,
            vocab_size=vocab.size,
            major_terms=majors,
            topic_terms=topics,
            association=assoc,
            doc_ids=np.array([d.doc_id for d in forward.docs]),
            coords=coords,
            assignments=labels,
            centroids=centroids,
            inertia=inertia,
            kmeans_iters=km.n_iter,
            null_fraction=null_fraction,
            adapt_rounds=rounds,
            projection=transform,
            signatures=sigs if cfg.keep_signatures else None,
            term_stats=term_stats,
            timings=timings,
            meta={"scan_tokens": scan_stats.ntokens},
        )
