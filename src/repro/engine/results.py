"""Engine result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.project.pca import PCATransform
from repro.signature.topicality import RankedTerm

from .timings import StageTimings


@dataclass
class EngineResult:
    """Everything the text engine produces for one corpus.

    The primary product is ``coords`` -- the per-document 2-D (or 3-D)
    view coordinates the ThemeView visualization consumes; signatures
    and statistics are the "valuable intermediate products" the paper
    persists.
    """

    corpus_name: str
    nprocs: int
    n_docs: int
    vocab_size: int

    #: ranked major terms (top-N by topicality), canonical order
    major_terms: list[RankedTerm]
    #: the top-M anchoring topic terms (prefix of ``major_terms``)
    topic_terms: list[RankedTerm]
    #: (N, M) association matrix
    association: np.ndarray

    #: global document ids, ascending
    doc_ids: np.ndarray
    #: (n_docs, projection_dim) view coordinates, doc order
    coords: np.ndarray
    #: (n_docs,) cluster labels, doc order
    assignments: np.ndarray
    #: (k, M) final cluster centroids
    centroids: np.ndarray
    inertia: float
    kmeans_iters: int

    #: fraction of documents with null signatures (after adaptation)
    null_fraction: float
    #: number of times the adaptive-dimensionality loop doubled N
    adapt_rounds: int

    #: the fitted centroid-PCA projection (None in legacy results)
    projection: Optional[PCATransform] = None
    #: (n_docs, M) signatures, doc order (None unless keep_signatures)
    signatures: Optional[np.ndarray] = None
    #: term -> (df, cf) over the whole collection (None unless kept)
    term_stats: Optional[dict[str, tuple[int, int]]] = None

    timings: Optional[StageTimings] = None
    #: runtime metrics snapshot (schema "repro-metrics/1"; see
    #: :mod:`repro.runtime.metrics`) -- counters, comm matrix inputs,
    #: per-stage busy/blocked seconds (None in legacy results)
    metrics: Optional[dict] = None
    meta: dict = field(default_factory=dict)

    @property
    def n_major(self) -> int:
        return len(self.major_terms)

    @property
    def n_topics(self) -> int:
        return len(self.topic_terms)

    @property
    def major_term_strings(self) -> list[str]:
        return [t.term for t in self.major_terms]

    @property
    def topic_term_strings(self) -> list[str]:
        return [t.term for t in self.topic_terms]

    def topic_summary(self, n_related: int = 5) -> list[dict]:
        """Per-topic view of the model: each anchoring dimension with
        the major terms most associated with it.

        Returns one dict per topic: ``term``, ``score`` (topicality),
        ``df``, and ``related`` -- the strongest other major terms on
        that dimension of the association matrix.
        """
        out: list[dict] = []
        for j, topic in enumerate(self.topic_terms):
            col = self.association[:, j]
            order = np.argsort(-col)
            related = []
            for i in order:
                term = self.major_terms[int(i)].term
                if term == topic.term or col[i] <= 0:
                    continue
                related.append(term)
                if len(related) >= n_related:
                    break
            out.append(
                {
                    "term": topic.term,
                    "score": topic.score,
                    "df": topic.df,
                    "related": related,
                }
            )
        return out

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        lines = [
            f"corpus={self.corpus_name} docs={self.n_docs} "
            f"vocab={self.vocab_size} nprocs={self.nprocs}",
            f"major terms N={self.n_major} topics M={self.n_topics} "
            f"(adapted {self.adapt_rounds}x, null={self.null_fraction:.2%})",
            f"kmeans k={self.centroids.shape[0]} iters={self.kmeans_iters} "
            f"inertia={self.inertia:.5g}",
        ]
        if self.timings is not None:
            unit = "virtual s" if self.timings.virtual else "s"
            lines.append(f"wall time: {self.timings.wall_time:.4g} {unit}")
        return "\n".join(lines)
