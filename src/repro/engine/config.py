"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.tokenizer import TokenizerConfig


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the text processing engine (serial and parallel).

    Defaults follow the paper where it states values (topics are "the
    top M (typically 10% of the top N)"); the rest are sized for the
    megabyte-scale corpora this reproduction processes.
    """

    # --- signature model ------------------------------------------------
    #: N, the number of discriminating "major terms"
    n_major_terms: int = 400
    #: M = topic_fraction * N anchoring topic dimensions (paper: 10%)
    topic_fraction: float = 0.10
    #: terms must appear in at least this many documents to be candidates
    min_df: int = 2
    #: drop boilerplate terms present in more than this fraction of
    #: documents (1.0 = keep everything)
    max_df_fraction: float = 1.0
    #: adaptive dimensionality (§4.2 remedy): double N while too many
    #: signatures are null
    adapt_dimensionality: bool = True
    max_null_fraction: float = 0.05
    max_major_terms: int = 6400

    # --- incremental refresh policy (live ingest) -------------------------
    #: recommend a full-model rebuild when a projected batch's null-
    #: signature fraction exceeds this (vocabulary drift signal)
    refresh_null_fraction: float = 0.25
    #: ignore the null fraction of batches smaller than this -- tiny
    #: batches make the ratio too noisy to act on
    refresh_min_docs: int = 1

    # --- clustering ------------------------------------------------------
    n_clusters: int = 10
    #: "kmeans", or a hierarchical linkage applied over k-means
    #: micro-clusters: "single" | "complete" | "average" (§3.5's
    #: "other types of clustering")
    cluster_method: str = "kmeans"
    #: micro-clusters per final cluster for hierarchical methods
    micro_cluster_factor: int = 4
    kmeans_max_iter: int = 40
    kmeans_tol: float = 1e-7
    #: size of the replicated seeding sample
    kmeans_sample: int = 256
    seed: int = 0

    # --- projection -------------------------------------------------------
    projection_dim: int = 2

    # --- execution backend --------------------------------------------------
    #: "sim" = deterministic single-process simulator (the correctness
    #: oracle); "mp" = one OS process per rank with shared-memory GA
    #: state -- bit-identical results and virtual-time metrics, real
    #: parallelism (see :mod:`repro.runtime.mpbackend`)
    backend: str = "sim"

    # --- parallel indexing --------------------------------------------------
    #: documents per inversion load (fixed-size chunking, §3.3)
    chunk_docs: int = 8
    #: GA-atomic dynamic load balancing on (paper) or off (baseline)
    dynamic_load_balancing: bool = True

    # --- field emphasis -----------------------------------------------------
    #: per-field token weights for signature generation (e.g.
    #: {"title": 3.0}); unlisted fields weigh 1.0.  None = uniform.
    field_weights: "dict[str, float] | None" = None

    # --- outputs ---------------------------------------------------------
    keep_signatures: bool = True
    keep_term_stats: bool = True

    # --- fault tolerance -----------------------------------------------------
    #: fault scenario replayed against the run (None = fault-free);
    #: see :class:`repro.runtime.faults.FaultPlan`
    fault_plan: "object | None" = None
    #: directory for stage checkpoints; None = a temporary directory,
    #: auto-created when the plan injects crashes
    checkpoint_dir: "str | None" = None
    #: give up after this many checkpoint-restart attempts
    max_restarts: int = 8

    # --- tokenization & memory model ----------------------------------------
    tokenizer: TokenizerConfig = field(default_factory=TokenizerConfig)
    #: in-memory working set per byte of raw input (indexes, tables)
    mem_expansion: float = 1.5

    def __post_init__(self) -> None:
        if self.backend not in ("sim", "mp"):
            raise ValueError(
                f"backend must be 'sim' or 'mp', got {self.backend!r}"
            )
        if self.n_major_terms < 1:
            raise ValueError("n_major_terms must be >= 1")
        if not 0.0 < self.topic_fraction <= 1.0:
            raise ValueError("topic_fraction must be in (0, 1]")
        if self.min_df < 1:
            raise ValueError("min_df must be >= 1")
        if not 0.0 < self.max_df_fraction <= 1.0:
            raise ValueError("max_df_fraction must be in (0, 1]")
        if self.max_major_terms < self.n_major_terms:
            raise ValueError(
                "max_major_terms must be >= n_major_terms"
            )
        if not 0.0 <= self.max_null_fraction <= 1.0:
            raise ValueError("max_null_fraction must be in [0, 1]")
        if not 0.0 <= self.refresh_null_fraction <= 1.0:
            raise ValueError("refresh_null_fraction must be in [0, 1]")
        if self.refresh_min_docs < 1:
            raise ValueError("refresh_min_docs must be >= 1")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if self.kmeans_max_iter < 1:
            raise ValueError("kmeans_max_iter must be >= 1")
        if self.kmeans_tol < 0:
            raise ValueError("kmeans_tol must be >= 0")
        if self.kmeans_sample < 1:
            raise ValueError("kmeans_sample must be >= 1")
        if self.projection_dim < 1:
            raise ValueError("projection_dim must be >= 1")
        if self.chunk_docs < 1:
            raise ValueError("chunk_docs must be >= 1")
        if self.micro_cluster_factor < 1:
            raise ValueError("micro_cluster_factor must be >= 1")
        if self.mem_expansion <= 0:
            raise ValueError("mem_expansion must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.field_weights is not None and any(
            w < 0 for w in self.field_weights.values()
        ):
            raise ValueError("field_weights must be non-negative")
