"""Projection of the high-dimensional topic space to view coordinates."""

from .pca import PCATransform, fit_pca

__all__ = ["PCATransform", "fit_pca"]
