"""PCA projection of the topic space onto 2-D/3-D view coordinates.

Paper §3.5: "Our approach for dimensionality reduction was to use the
cluster centroids and employ principle component analysis (PCA), where
we can use the first two principal components to project the M space
onto those principal components."

Fitting PCA on the k centroids (not the millions of documents) is the
paper's trick for making projection cheap and parallel: the centroid
matrix is tiny and replicated, so every process computes the identical
transformation matrix locally and projects its own documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PCATransform:
    """Affine projection: ``coords = (x - mean) @ components``."""

    mean: np.ndarray  # (M,)
    components: np.ndarray  # (M, dim)
    explained_variance: np.ndarray  # (dim,)

    @property
    def dim(self) -> int:
        return int(self.components.shape[1])

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project (n, M) points to (n, dim) view coordinates."""
        points = np.atleast_2d(points)
        return (points - self.mean) @ self.components


def fit_pca(anchors: np.ndarray, dim: int = 2) -> PCATransform:
    """Fit PCA on the anchor points (cluster centroids).

    Deterministic across platforms/processor counts: eigenvectors come
    from ``numpy.linalg.eigh`` of the covariance and each component's
    sign is normalized so its largest-magnitude entry is positive.
    If fewer informative dimensions exist than ``dim``, the remaining
    components are zero (documents project to 0 on those axes).
    """
    anchors = np.asarray(anchors, dtype=np.float64)
    if anchors.ndim != 2 or anchors.shape[0] < 1:
        raise ValueError("anchors must be a non-empty 2-D array")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    n, m = anchors.shape
    mean = anchors.mean(axis=0)
    centered = anchors - mean
    denom = max(1, n - 1)
    cov = (centered.T @ centered) / denom
    eigvals, eigvecs = np.linalg.eigh(cov)
    # eigh returns ascending order; take the top eigenpairs
    order = np.argsort(eigvals)[::-1]
    eigvals = eigvals[order]
    eigvecs = eigvecs[:, order]
    components = np.zeros((m, dim), dtype=np.float64)
    variance = np.zeros(dim, dtype=np.float64)
    take = min(dim, m)
    components[:, :take] = eigvecs[:, :take]
    variance[:take] = np.maximum(eigvals[:take], 0.0)
    # deterministic sign: largest |entry| of each component positive
    for j in range(take):
        col = components[:, j]
        pivot = int(np.argmax(np.abs(col)))
        if col[pivot] < 0:
            components[:, j] = -col
    return PCATransform(
        mean=mean, components=components, explained_variance=variance
    )
