"""Append-only ingest journal: the durable record of arriving batches.

A journal is a directory holding one ``JOURNAL.json`` meta file plus
one ``batch-XXXXXX.jsonl`` corpus source per appended batch.  The meta
file lists the batches in arrival order with their virtual arrival
times; it is rewritten atomically (tmp + ``os.replace``) on every
append, so a reader always sees a consistent prefix of the stream.
The batch files themselves are ordinary ``.jsonl`` sources readable by
:func:`repro.text.io.read_corpus`.

Replaying a journal is what makes live ingest deterministic and
reproducible: the serve-side ingest driver does not generate data, it
replays the journal's batches at their recorded virtual arrival times.

A missing, unreadable, or corrupt meta file raises
:class:`~repro.serve.store.ShardFormatError` carrying the offending
path, matching the store layer's corruption contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.serve.store import ShardFormatError
from repro.text.documents import Corpus
from repro.text.io import read_corpus, write_corpus

JOURNAL_FORMAT = "repro-ingest-journal/1"
JOURNAL_META = "JOURNAL.json"


def batch_file(index: int) -> str:
    """Relative filename of one journaled batch."""
    return f"batch-{index:06d}.jsonl"


@dataclass(frozen=True)
class JournalBatch:
    """One appended batch as recorded in the journal meta."""

    index: int
    file: str
    n_docs: int
    #: virtual seconds after serving start at which the batch arrives
    arrival_s: float


class IngestJournal:
    """Reader/writer of one journal directory."""

    def __init__(
        self,
        path: str | os.PathLike,
        corpus_name: str,
        batches: tuple[JournalBatch, ...],
    ):
        self.path = str(path)
        self.corpus_name = corpus_name
        self.batches = list(batches)

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(
        cls, path: str | os.PathLike, corpus_name: str = "ingest"
    ) -> "IngestJournal":
        """Initialize an empty journal directory (idempotent mkdir)."""
        journal = cls(path, corpus_name, ())
        os.makedirs(journal.path, exist_ok=True)
        journal._write_meta()
        return journal

    @classmethod
    def open(cls, path: str | os.PathLike) -> "IngestJournal":
        """Open an existing journal, validating its meta file."""
        meta_path = os.path.join(str(path), JOURNAL_META)
        try:
            with open(meta_path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except OSError as exc:
            raise ShardFormatError(
                meta_path, f"unreadable: {exc}"
            ) from exc
        except ValueError as exc:
            raise ShardFormatError(
                meta_path, f"corrupt journal meta: {exc}"
            ) from exc
        try:
            if data["format"] != JOURNAL_FORMAT:
                raise ShardFormatError(
                    meta_path,
                    f"unsupported journal format {data['format']!r} "
                    f"(reader supports {JOURNAL_FORMAT!r})",
                )
            batches = tuple(
                JournalBatch(
                    index=int(b["index"]),
                    file=b["file"],
                    n_docs=int(b["n_docs"]),
                    arrival_s=float(b["arrival_s"]),
                )
                for b in data["batches"]
            )
            return cls(path, data["corpus_name"], batches)
        except ShardFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardFormatError(
                meta_path, f"corrupt journal meta: {exc}"
            ) from exc

    # -- append --------------------------------------------------------
    def append(self, batch: Corpus, arrival_s: float) -> JournalBatch:
        """Append one batch: write its source file, then publish the
        extended meta atomically."""
        if self.batches and arrival_s < self.batches[-1].arrival_s:
            raise ValueError(
                f"arrival_s must be non-decreasing: {arrival_s} < "
                f"{self.batches[-1].arrival_s}"
            )
        index = len(self.batches)
        fname = batch_file(index)
        write_corpus(batch, os.path.join(self.path, fname))
        entry = JournalBatch(
            index=index,
            file=fname,
            n_docs=len(batch.documents),
            arrival_s=float(arrival_s),
        )
        self.batches.append(entry)
        self._write_meta()
        return entry

    def _write_meta(self) -> None:
        doc = {
            "format": JOURNAL_FORMAT,
            "corpus_name": self.corpus_name,
            "batches": [
                {
                    "index": b.index,
                    "file": b.file,
                    "n_docs": b.n_docs,
                    "arrival_s": b.arrival_s,
                }
                for b in self.batches
            ],
        }
        meta_path = os.path.join(self.path, JOURNAL_META)
        tmp = meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, meta_path)

    # -- read ----------------------------------------------------------
    def read_batch(self, index: int) -> Corpus:
        """Load one journaled batch as a corpus."""
        entry = self.batches[index]
        return read_corpus(os.path.join(self.path, entry.file))

    def replay(self) -> list[tuple[Corpus, float]]:
        """All batches with arrival times, in arrival order."""
        return [
            (self.read_batch(b.index), b.arrival_s) for b in self.batches
        ]

    @property
    def n_docs(self) -> int:
        return sum(b.n_docs for b in self.batches)

    def __len__(self) -> int:
        return len(self.batches)
