"""Deterministic live ingest: generational delta shards over the store.

``repro.ingest`` turns the static :mod:`repro.serve` store into a
continuously growing one.  A seeded :class:`FeedSource` appends
document batches to an append-only :class:`IngestJournal`; an
:class:`IngestPlan` replays the journal inside a broker session,
projecting each batch through the frozen model into *delta segments*
published as atomic generations; the broker hot-reloads between
queries with epoch-pinned fan-outs; a :class:`CompactionPolicy`-driven
compactor folds deltas back into base shards.  Queries during churn
are bit-identical to the equivalent static store at each generation --
the subsystem's acceptance criterion.
"""

from repro.ingest.compact import (
    CompactionPolicy,
    compact_store,
    should_compact,
)
from repro.ingest.delta import (
    DeltaBatch,
    append_generation,
    build_delta,
    extend_result,
)
from repro.ingest.feed import FeedConfig, FeedSource
from repro.ingest.journal import IngestJournal, JournalBatch
from repro.ingest.live import IngestConfig, IngestPlan, serve_live

__all__ = [
    "CompactionPolicy",
    "DeltaBatch",
    "FeedConfig",
    "FeedSource",
    "IngestConfig",
    "IngestJournal",
    "IngestPlan",
    "JournalBatch",
    "append_generation",
    "build_delta",
    "compact_store",
    "extend_result",
    "serve_live",
    "should_compact",
]
