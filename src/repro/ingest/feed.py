"""Seeded feed source: deterministic document-batch arrivals.

A feed stands in for the paper's continuously growing sources (PubMed
updates, newswire dispatches, crawls): it draws fresh documents from
the same seeded theme-model generators as :mod:`repro.datasets`,
renumbers them to continue after an existing collection, slices them
into fixed-size batches, and assigns exponential interarrival gaps
from its own seeded stream.  Feeding a journal twice with the same
config appends byte-identical batch files at identical arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import generate_newswire, generate_pubmed, generate_trec
from repro.text.documents import Corpus, Document

from .journal import IngestJournal

_GENERATORS = {
    "pubmed": generate_pubmed,
    "trec": generate_trec,
    "newswire": generate_newswire,
}


@dataclass(frozen=True)
class FeedConfig:
    """Shape of one deterministic feed."""

    dataset: str = "pubmed"
    #: documents per emitted batch
    batch_docs: int = 40
    n_batches: int = 4
    seed: int = 0
    #: first doc_id to assign (continue after the base collection)
    start_doc_id: int = 0
    #: mean of the exponential interarrival gap (virtual seconds)
    mean_interarrival_s: float = 2.0
    #: theme count handed to the dataset generator (keep it equal to
    #: the base corpus's so the vocabulary overlaps the frozen model)
    themes: int = 4
    #: skip this many documents of the seeded stream first; with the
    #: base corpus's seed and its document count, the feed continues
    #: the same source past where the static build stopped
    skip_docs: int = 0
    #: stamp each batch with per-document time/source facets drawn over
    #: this many source regions; 0 (the default) leaves the feed
    #: unstamped and byte-identical to the pre-facet output.  Facet
    #: draws come from the dedicated ``(seed, FACET_STREAM_TAG)``
    #: stream, so turning them on never perturbs document content or
    #: arrival times.
    facet_sources: int = 0

    def __post_init__(self) -> None:
        if self.dataset not in _GENERATORS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; "
                f"expected one of {sorted(_GENERATORS)}"
            )
        if self.batch_docs < 1:
            raise ValueError("batch_docs must be >= 1")
        if self.n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be > 0")
        if self.skip_docs < 0:
            raise ValueError("skip_docs must be >= 0")
        if self.facet_sources < 0:
            raise ValueError("facet_sources must be >= 0")


class FeedSource:
    """Materializes one feed's batches and arrival times."""

    def __init__(self, config: FeedConfig):
        self.config = config

    def _documents(self) -> list[Document]:
        cfg = self.config
        needed = cfg.skip_docs + cfg.batch_docs * cfg.n_batches
        generate = _GENERATORS[cfg.dataset]
        # the generators are sized in bytes; grow the request until it
        # yields enough documents (deterministic in the seed)
        target = max(4096, needed * 256)
        for _ in range(12):
            corpus = generate(target, seed=cfg.seed, n_themes=cfg.themes)
            if len(corpus.documents) >= needed:
                break
            target *= 2
        else:
            raise ValueError(
                f"feed could not generate {needed} documents "
                f"(got {len(corpus.documents)})"
            )
        fresh = corpus.documents[cfg.skip_docs : needed]
        return [
            Document(doc_id=cfg.start_doc_id + i, fields=d.fields)
            for i, d in enumerate(fresh)
        ]

    def batches(self) -> list[tuple[Corpus, float]]:
        """``(batch corpus, arrival_s)`` per batch, arrival order."""
        cfg = self.config
        docs = self._documents()
        rng = np.random.default_rng(cfg.seed)
        gaps = rng.exponential(
            cfg.mean_interarrival_s, size=cfg.n_batches
        )
        arrivals = np.cumsum(gaps)
        frng = None
        if cfg.facet_sources:
            from repro.facets.stamp import FACET_STREAM_TAG, facet_meta

            frng = np.random.default_rng((cfg.seed, FACET_STREAM_TAG))
        out: list[tuple[Corpus, float]] = []
        prev_arrival = 0.0
        for i in range(cfg.n_batches):
            lo = i * cfg.batch_docs
            chunk = docs[lo : lo + cfg.batch_docs]
            corpus = Corpus(
                name=f"{cfg.dataset}-feed-{i:04d}",
                documents=chunk,
            )
            arrival = float(arrivals[i])
            if frng is not None:
                # documents in a batch arrived during the gap that
                # preceded its delivery, sorted so row order matches
                # arrival order (the block-pruning friendly layout)
                stamp_s = prev_arrival + np.sort(
                    frng.uniform(0.0, arrival - prev_arrival, len(chunk))
                )
                source = frng.integers(
                    0, cfg.facet_sources, size=len(chunk), dtype=np.int64
                )
                corpus.meta["facets"] = facet_meta(
                    stamp_s, source, cfg.facet_sources
                )
            out.append((corpus, arrival))
            prev_arrival = arrival
        return out

    def feed_journal(self, journal: IngestJournal) -> list:
        """Append every batch to ``journal``; returns the entries."""
        return [
            journal.append(corpus, arrival)
            for corpus, arrival in self.batches()
        ]
