"""Delta segments: projecting batches into publishable containers.

Each arriving batch is projected through the frozen model
(:func:`repro.engine.incremental.project_new_documents`) and inverted
onto the model's major terms
(:func:`repro.index.termindex.build_batch_postings`); the results
become one *delta segment* -- a REPROSHD container with exactly the
base shards' section layout (doc_ids, signatures, coords, assignments,
delta-coded postings) covering a new global row range appended after
everything already published.  Segments are assigned to serving shards
round-robin by delta index, so load from fresh documents spreads over
the existing ranks.

:func:`append_generation` performs the publish protocol: write the new
containers under ``gen-0000k/``, write ``manifest-0000k.json``, then
atomically flip ``CURRENT``.  :func:`extend_result` is the parity
oracle's static-side twin: the same per-batch projections concatenated
onto the base result, so ``build_shards`` over it is the "equivalent
static store at that generation" the acceptance tests byte-compare
against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.engine.incremental import ProjectedBatch, project_new_documents
from repro.engine.results import EngineResult
from repro.index.termindex import TermPostings, build_batch_postings
from repro.serve.store import (
    DeltaInfo,
    FACET_FORMAT_VERSION,
    FORMAT_VERSION,
    FacetData,
    MANIFEST_FORMAT_GEN,
    StoreManifest,
    generation_dir,
    load_manifest,
    publish_generation,
    write_container,
    write_generation_manifest,
)
from repro.text.documents import Corpus, Document


@dataclass
class DeltaBatch:
    """One batch's projected arrays plus its major-term postings.

    ``facets`` carries the batch's stamp/source arrays when the feed is
    stamped; a stamped store only accepts stamped batches (and vice
    versa), so a store can never end up half-faceted.
    """

    documents: list[Document]
    projected: ProjectedBatch
    postings: TermPostings
    facets: FacetData | None = None

    @property
    def n_docs(self) -> int:
        return len(self.documents)

    @property
    def null_count(self) -> int:
        return int(self.projected.null_mask.sum())


def build_delta(
    result: EngineResult,
    documents: Sequence[Document],
    tokenizer_config=None,
    facets: FacetData | None = None,
) -> DeltaBatch:
    """Project one batch and invert its postings against the model."""
    docs = list(documents)
    if not docs:
        raise ValueError("a delta batch needs at least one document")
    if facets is not None and facets.n_docs != len(docs):
        raise ValueError(
            f"facet arrays cover {facets.n_docs} docs but the batch "
            f"has {len(docs)}"
        )
    projected = project_new_documents(
        result, docs, tokenizer_config=tokenizer_config
    )
    postings = build_batch_postings(
        docs, result, tokenizer_config=tokenizer_config
    )
    return DeltaBatch(
        documents=docs,
        projected=projected,
        postings=postings,
        facets=facets,
    )


def _merged_bbox(
    bbox: tuple[float, float, float, float], coords: np.ndarray
) -> tuple[float, float, float, float]:
    if coords.shape[0] == 0:
        return bbox
    return (
        min(bbox[0], float(coords[:, 0].min())),
        min(bbox[1], float(coords[:, 1].min())),
        max(bbox[2], float(coords[:, 0].max())),
        max(bbox[3], float(coords[:, 1].max())),
    )


def append_generation(
    store_dir: str | os.PathLike,
    deltas: Sequence[DeltaBatch],
    published_s: float = 0.0,
) -> StoreManifest:
    """Publish one new generation holding ``deltas`` as segments.

    Follows the atomic publish protocol: containers first, then the
    generation manifest, then the ``CURRENT`` pointer flip.  Returns
    the published manifest.  ``published_s`` stamps the generation with
    its virtual publish instant (live ingest passes ``ctx.now``); the
    default 0.0 marks an offline publish, visible from session start.
    """
    from repro.serve.store import (
        encode_facet_sections,
        encode_postings_sections,
    )

    if not deltas:
        raise ValueError("append_generation needs at least one batch")
    store = str(store_dir)
    manifest = load_manifest(store)
    stamped = manifest.facets is not None
    for i, d in enumerate(deltas):
        if stamped and d.facets is None:
            raise ValueError(
                f"batch {i} is unstamped but the store is faceted: "
                "every batch appended to a stamped store needs facet "
                "arrays"
            )
        if not stamped and d.facets is not None:
            raise ValueError(
                f"batch {i} carries facet arrays but the store is not "
                "stamped: rebuild the store from a stamped corpus first"
            )
        if stamped and d.facets.n_sources != manifest.facets.n_sources:
            raise ValueError(
                f"batch {i} has {d.facets.n_sources} sources but the "
                f"store has {manifest.facets.n_sources}"
            )
    gen = manifest.generation + 1
    gdir = generation_dir(gen)
    os.makedirs(os.path.join(store, gdir), exist_ok=True)

    row_base = manifest.n_docs
    delta_seq = len(manifest.deltas)
    bbox = manifest.bbox
    stamp_lo = manifest.facets.stamp_lo if stamped else 0.0
    stamp_hi = manifest.facets.stamp_hi if stamped else 0.0
    new_infos: list[DeltaInfo] = []
    for d in deltas:
        p = d.projected
        n = d.n_docs
        owner = delta_seq % manifest.nshards
        fname = f"{gdir}/delta-{delta_seq:05d}.repro"
        arrays = {
            "doc_ids": np.asarray(p.doc_ids, dtype=np.int64),
            "signatures": np.asarray(p.signatures, dtype=np.float64),
            "coords": np.asarray(p.coords, dtype=np.float64),
            "assignments": np.asarray(p.assignments, dtype=np.int64),
            **encode_postings_sections(d.postings),
        }
        if stamped:
            arrays.update(
                encode_facet_sections(d.facets.stamp_s, d.facets.source)
            )
            stamp_lo = min(stamp_lo, float(d.facets.stamp_s.min()))
            stamp_hi = max(stamp_hi, float(d.facets.stamp_s.max()))
        meta = {
            "kind": "delta",
            "generation": gen,
            "delta": delta_seq,
            "owner": owner,
            "row_lo": row_base,
            "row_hi": row_base + n,
            "corpus_name": manifest.corpus_name,
        }
        nbytes = write_container(
            os.path.join(store, fname),
            arrays,
            meta,
            version=FACET_FORMAT_VERSION if stamped else FORMAT_VERSION,
        )
        new_infos.append(
            DeltaInfo(
                file=fname,
                generation=gen,
                owner=owner,
                row_lo=row_base,
                row_hi=row_base + n,
                doc_lo=int(p.doc_ids[0]),
                doc_hi=int(p.doc_ids[-1]),
                nbytes=nbytes,
            )
        )
        bbox = _merged_bbox(bbox, np.asarray(p.coords))
        row_base += n
        delta_seq += 1

    updated = replace(
        manifest,
        format=MANIFEST_FORMAT_GEN,
        generation=gen,
        n_docs=row_base,
        bbox=bbox,
        deltas=manifest.deltas + tuple(new_infos),
        ingested_batches=manifest.ingested_batches + len(new_infos),
        published_s=float(published_s),
        facets=(
            replace(manifest.facets, stamp_lo=stamp_lo, stamp_hi=stamp_hi)
            if stamped
            else None
        ),
    )
    write_generation_manifest(store, updated)
    publish_generation(store, updated)
    return updated


def extend_result(
    result: EngineResult,
    batches: Sequence[Corpus],
    tokenizer_config=None,
) -> EngineResult:
    """The grown collection's result under the *frozen* model.

    Projects each batch exactly like the ingest path (one
    :func:`project_new_documents` call per batch, in batch order) and
    concatenates onto the base arrays -- so a ``build_shards`` over the
    returned result is bit-identical, row for row, to what the
    generational store serves at the corresponding generation.
    """
    doc_ids = [np.asarray(result.doc_ids, dtype=np.int64)]
    signatures = [np.asarray(result.signatures)]
    coords = [np.asarray(result.coords)]
    assignments = [np.asarray(result.assignments, dtype=np.int64)]
    for corpus in batches:
        p = project_new_documents(
            result, corpus.documents, tokenizer_config=tokenizer_config
        )
        doc_ids.append(np.asarray(p.doc_ids, dtype=np.int64))
        signatures.append(np.asarray(p.signatures))
        coords.append(np.asarray(p.coords))
        assignments.append(np.asarray(p.assignments, dtype=np.int64))
    grown_ids = np.concatenate(doc_ids)
    return replace(
        result,
        n_docs=int(grown_ids.shape[0]),
        doc_ids=grown_ids,
        signatures=np.concatenate(signatures, axis=0),
        coords=np.concatenate(coords, axis=0),
        assignments=np.concatenate(assignments),
    )
