"""The live-ingest driver rank: replay, project, publish, compact.

An :class:`IngestPlan` runs as one extra rank inside a broker session
(:func:`repro.serve.broker.serve` with ``ingest=plan``): it replays an
ingest journal's batches at their recorded virtual arrival times,
projects each batch into a delta segment, publishes a new generation
(atomic ``CURRENT`` flip), and compacts when the
:class:`~repro.ingest.compact.CompactionPolicy` trips.  All the real
file writes happen at deterministic virtual instants -- the driver
charges the modelled projection/write cost *before* touching disk, so
the publish is visible exactly at the rank's post-charge clock, and
the scheduler's min-clock rule gives every broker poll a deterministic
view of the store under both scheduler mechanisms.

Rising null-signature rates (vocabulary drift) never mutate the model
mid-flight; they set the ``rebuild_recommended`` flag (and the
``ingest.rebuild_flags`` counter) so the operator can schedule a full
engine re-run.

**Epoch-pinning contract.**  Publishing a generation is strictly
additive: every new generation writes its segments under a fresh
``gen-K`` directory and flips ``CURRENT``; neither publish nor
compaction ever deletes or rewrites a previously published
generation's files or manifest.  A reader that captured generation
*k*'s manifest (a workbench session opened at epoch *k*, a broker
mid-query) can therefore keep answering from *k*'s exact bytes for as
long as it likes while this driver publishes *k+1*, *k+2*, ... -- the
property the workbench tier's epoch-pinned sessions and its
``(tenant, set digest, epoch)`` artifact cache rest on.  Reclaiming
superseded generations is an offline operator action, never part of a
live session.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.incremental import refresh_recommended
from repro.engine.results import EngineResult
from repro.facets.stamp import extract_facets
from repro.runtime.cluster import MachineSpec
from repro.serve.broker import BrokerConfig, ServeReport, serve
from repro.serve.workload import ClientScript

from .compact import CompactionPolicy, compact_store, should_compact
from .delta import append_generation, build_delta


@dataclass(frozen=True)
class IngestConfig:
    """Policy knobs of one live-ingest session."""

    #: compaction trigger thresholds
    compaction: CompactionPolicy = field(default_factory=CompactionPolicy)
    #: flag a full-model rebuild past this null-signature fraction
    refresh_null_fraction: float = 0.25
    #: ignore the null fraction of batches smaller than this
    refresh_min_docs: int = 1
    #: modelled projection cost per document (abstract flops)
    project_flops_per_doc: int = 4_000
    #: modelled publish overhead per generation (abstract cpu ops)
    publish_ops: int = 2_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.refresh_null_fraction <= 1.0:
            raise ValueError("refresh_null_fraction must be in [0, 1]")
        if self.refresh_min_docs < 1:
            raise ValueError("refresh_min_docs must be >= 1")
        if self.project_flops_per_doc < 0:
            raise ValueError("project_flops_per_doc must be >= 0")
        if self.publish_ops < 0:
            raise ValueError("publish_ops must be >= 0")


@dataclass
class IngestPlan:
    """One serve-side ingest run: batches to replay plus policy.

    ``batches`` is ``[(corpus, arrival_s), ...]`` -- typically
    :meth:`repro.ingest.journal.IngestJournal.replay` output.  The plan
    carries the frozen :class:`EngineResult` because projection needs
    the model arrays, not just the store.
    """

    result: EngineResult
    batches: list
    config: IngestConfig = field(default_factory=IngestConfig)
    tokenizer_config: object = None

    def run(self, ctx, store_dir: str) -> dict:
        """Drive ingest inside a broker session (rank ``nshards+1``)."""
        cfg = self.config
        m = ctx.metrics
        c_docs = m.counter("ingest.docs")
        c_null = m.counter("ingest.null_signatures")
        c_gen = m.counter("ingest.generations")
        c_comp = m.counter("ingest.compactions")
        c_flag = m.counter("ingest.rebuild_flags")
        events: list[dict] = []
        rebuild = False
        docs_total = 0
        for i, (corpus, arrival) in enumerate(self.batches):
            if ctx.now < arrival:
                ctx.charge(arrival - ctx.now)
            delta = build_delta(
                self.result,
                corpus.documents,
                tokenizer_config=self.tokenizer_config,
                facets=extract_facets(corpus),
            )
            n = delta.n_docs
            # charge the modelled work first so the publish lands at
            # the post-charge virtual instant
            ctx.charge_flops(n * cfg.project_flops_per_doc)
            ctx.charge_cpu(cfg.publish_ops)
            manifest = append_generation(
                store_dir, [delta], published_s=float(ctx.now)
            )
            ctx.charge_io(manifest.deltas[-1].nbytes)
            # yield the turn: the publish is a globally-visible side
            # effect, so lower-clock ranks must run before we proceed
            ctx.sync()
            c_docs.inc(ctx.rank, float(n))
            c_null.inc(ctx.rank, float(delta.null_count))
            c_gen.inc(ctx.rank)
            docs_total += n
            flagged = refresh_recommended(
                delta.projected,
                max_null_fraction=cfg.refresh_null_fraction,
                min_docs=cfg.refresh_min_docs,
            )
            if flagged:
                rebuild = True
                c_flag.inc(ctx.rank)
            events.append(
                {
                    "event": "publish",
                    "batch": i,
                    "generation": manifest.generation,
                    "docs": n,
                    "null_signatures": delta.null_count,
                    "arrival_s": float(arrival),
                    "published_s": manifest.published_s,
                    "rebuild_flagged": bool(flagged),
                }
            )
            if should_compact(manifest, cfg.compaction):
                merged_bytes = (
                    manifest.base_nbytes + manifest.delta_nbytes
                )
                ctx.charge_io(2 * merged_bytes)
                ctx.charge_cpu(cfg.publish_ops)
                manifest = compact_store(
                    store_dir, published_s=float(ctx.now)
                )
                c_comp.inc(ctx.rank)
                ctx.sync()
                events.append(
                    {
                        "event": "compact",
                        "generation": manifest.generation,
                        "virtual_s": float(ctx.now),
                        "nbytes": merged_bytes,
                    }
                )
        return {
            "events": events,
            "batches": len(self.batches),
            "docs_ingested": docs_total,
            "final_generation": events[-1]["generation"] if events else 0,
            "rebuild_recommended": rebuild,
            "finished_s": float(ctx.now),
        }


def serve_live(
    store_dir: str | os.PathLike,
    scripts: list[ClientScript],
    plan: IngestPlan,
    config: Optional[BrokerConfig] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
) -> ServeReport:
    """One broker session with live ingest churning alongside.

    Convenience wrapper over :func:`repro.serve.broker.serve` with the
    extra ingest rank; the returned report carries the driver's outcome
    in ``report.ingest`` and per-generation query stats in
    ``report.generations``.
    """
    return serve(
        store_dir,
        scripts,
        config=config,
        machine=machine,
        faults=faults,
        ingest=plan,
    )
