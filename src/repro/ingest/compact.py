"""Compaction: fold delta segments back into base shards.

Delta segments keep publishes cheap, but every segment a shard rank
owns adds per-query scan overhead.  When a policy threshold trips
(:func:`should_compact`), :func:`compact_store` rewrites the store's
documents -- base rows followed by delta rows, i.e. global row order
-- into ``nshards`` fresh contiguous shards with the same
``np.array_split`` convention as :func:`repro.serve.store.build_shards`
and publishes them as a new generation with an empty delta list.  The
rewrite reuses the stored arrays byte for byte and reassembles postings
with :func:`repro.index.termindex.concat_postings`, so a compacted
store answers every query bit-identically to both the pre-compaction
generational store and a fresh build over the grown collection.
Stamped (version-3) stores carry their facet stamp/source sections
through the rewrite the same way, re-encoded per shard with the same
block bounds a fresh stamped build would produce.

The model container is untouched: compaction reorganizes documents,
it never changes the frozen model (vocabulary drift is handled by the
rebuild flag, not the compactor).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from repro.index.termindex import TermPostings, concat_postings
from repro.serve.store import (
    Container,
    FACET_FORMAT_VERSION,
    FORMAT_VERSION,
    ShardInfo,
    StoreManifest,
    encode_facet_sections,
    encode_postings_sections,
    generation_dir,
    load_manifest,
    load_segment_postings,
    publish_generation,
    write_container,
    write_generation_manifest,
)


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold deltas back into base shards."""

    #: compact once this many delta segments are live
    max_deltas: int = 4
    #: ... or once deltas reach this fraction of base bytes
    max_delta_bytes_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_deltas < 1:
            raise ValueError("max_deltas must be >= 1")
        if self.max_delta_bytes_fraction <= 0:
            raise ValueError("max_delta_bytes_fraction must be > 0")


def should_compact(
    manifest: StoreManifest, policy: CompactionPolicy
) -> bool:
    """Does the manifest's delta load trip the policy?"""
    if not manifest.deltas:
        return False
    if len(manifest.deltas) >= policy.max_deltas:
        return True
    base = manifest.base_nbytes
    return base > 0 and (
        manifest.delta_nbytes / base > policy.max_delta_bytes_fraction
    )


def _segment_postings(container: Container) -> TermPostings:
    n_docs = int(container.meta["row_hi"]) - int(container.meta["row_lo"])
    return load_segment_postings(container, n_docs)


def compact_store(
    store_dir: str | os.PathLike, published_s: float = 0.0
) -> StoreManifest:
    """Merge all delta segments into rewritten base shards.

    No-op (returns the current manifest) when no deltas are live.
    Writes the new shard containers under the next generation's
    directory, then publishes atomically.  ``published_s`` stamps the
    compacted generation's virtual publish instant (0.0 = offline).
    """
    store = str(store_dir)
    manifest = load_manifest(store)
    if not manifest.deltas:
        return manifest
    gen = manifest.generation + 1
    gdir = generation_dir(gen)
    os.makedirs(os.path.join(store, gdir), exist_ok=True)

    # base shards in row order, then deltas in row order: global rows
    segments = [
        Container(os.path.join(store, s.file)) for s in manifest.shards
    ] + [Container(os.path.join(store, d.file)) for d in manifest.deltas]
    doc_ids = np.concatenate(
        [np.asarray(c.load("doc_ids")) for c in segments]
    )
    signatures = np.concatenate(
        [np.asarray(c.load("signatures")) for c in segments], axis=0
    )
    coords = np.concatenate(
        [np.asarray(c.load("coords")) for c in segments], axis=0
    )
    assignments = np.concatenate(
        [np.asarray(c.load("assignments")) for c in segments]
    )
    has_postings = all("post_offsets" in c for c in segments)
    postings = (
        concat_postings([_segment_postings(c) for c in segments])
        if has_postings
        else None
    )
    stamped = manifest.facets is not None
    if stamped:
        facet_stamp = np.concatenate(
            [np.asarray(c.load("facet_stamp_s")) for c in segments]
        )
        facet_source = np.concatenate(
            [np.asarray(c.load("facet_source")) for c in segments]
        )
    n_docs = manifest.n_docs

    splits = np.array_split(np.arange(n_docs, dtype=np.int64), manifest.nshards)
    shards: list[ShardInfo] = []
    for i, rows in enumerate(splits):
        row_lo = int(rows[0]) if rows.size else (
            shards[-1].row_hi if shards else 0
        )
        row_hi = int(rows[-1]) + 1 if rows.size else row_lo
        fname = f"{gdir}/shard-{i:03d}.repro"
        arrays = {
            "doc_ids": np.asarray(doc_ids[row_lo:row_hi], dtype=np.int64),
            "signatures": np.asarray(
                signatures[row_lo:row_hi], dtype=np.float64
            ),
            "coords": np.asarray(coords[row_lo:row_hi], dtype=np.float64),
            "assignments": np.asarray(
                assignments[row_lo:row_hi], dtype=np.int64
            ),
        }
        if postings is not None:
            local = postings.restrict(row_lo, row_hi)
            arrays.update(encode_postings_sections(local))
        if stamped:
            arrays.update(
                encode_facet_sections(
                    facet_stamp[row_lo:row_hi],
                    facet_source[row_lo:row_hi],
                )
            )
        meta = {
            "kind": "shard",
            "shard": i,
            "row_lo": row_lo,
            "row_hi": row_hi,
            "corpus_name": manifest.corpus_name,
        }
        nbytes = write_container(
            os.path.join(store, fname),
            arrays,
            meta,
            version=FACET_FORMAT_VERSION if stamped else FORMAT_VERSION,
        )
        shards.append(
            ShardInfo(
                file=fname,
                row_lo=row_lo,
                row_hi=row_hi,
                doc_lo=int(doc_ids[row_lo]) if row_hi > row_lo else 0,
                doc_hi=int(doc_ids[row_hi - 1]) if row_hi > row_lo else 0,
                nbytes=nbytes,
            )
        )
    compacted = replace(
        manifest,
        generation=gen,
        shards=tuple(shards),
        deltas=(),
        published_s=float(published_s),
    )
    write_generation_manifest(store, compacted)
    publish_generation(store, compacted)
    return compacted
