"""Topic-mixture document generator.

Documents are produced by a small generative model: a background
Zipfian word distribution plus ``n_themes`` theme distributions, each
concentrated on its own subset of the vocabulary.  Every document picks
one or two themes and interleaves theme terms with background terms.
This gives corpora with (a) Heaps-law vocabulary growth, (b) Zipf term
frequencies, and (c) genuine latent cluster structure that the
engine's topicality/clustering stages can recover -- the properties
the paper's pipeline stresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.text.documents import Corpus, Document

from .vocabulary import ZipfSampler, make_vocabulary


@dataclass(frozen=True)
class ThemeModelConfig:
    """Shape of the generative model."""

    vocab_size: int = 12_000
    n_themes: int = 12
    #: distinct terms devoted to each theme
    theme_vocab: int = 120
    #: fraction of a document's tokens drawn from its theme(s)
    theme_strength: float = 0.45
    #: probability a document mixes two themes
    two_theme_prob: float = 0.25
    zipf_s: float = 1.07


class ThemeModel:
    """Samples token streams from the background+themes mixture."""

    def __init__(
        self,
        config: ThemeModelConfig,
        seed: int,
        affixes: tuple[list[str], list[str]] | None = None,
    ):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.vocab = make_vocabulary(
            config.vocab_size, seed=seed * 7919 + 13, affixes=affixes
        )
        self.background = ZipfSampler(config.vocab_size, s=config.zipf_s)
        # each theme owns a contiguous slice of mid-frequency vocabulary
        # (very frequent words are background-ish, very rare ones noise)
        start = config.vocab_size // 20
        self.theme_terms = []
        for k in range(config.n_themes):
            lo = start + k * config.theme_vocab
            hi = lo + config.theme_vocab
            if hi > config.vocab_size:
                raise ValueError(
                    "vocab_size too small for n_themes * theme_vocab"
                )
            self.theme_terms.append(np.arange(lo, hi))
        self.theme_sampler = ZipfSampler(config.theme_vocab, s=1.0)

    def sample_themes(self) -> list[int]:
        k = self.rng.integers(self.config.n_themes)
        themes = [int(k)]
        if (
            self.config.n_themes > 1
            and self.rng.random() < self.config.two_theme_prob
        ):
            k2 = int(self.rng.integers(self.config.n_themes))
            if k2 != k:
                themes.append(k2)
        return themes

    def sample_tokens(self, n: int, themes: list[int]) -> list[str]:
        """Draw ``n`` word tokens for a document with given themes."""
        if n <= 0:
            return []
        from_theme = self.rng.random(n) < self.config.theme_strength
        n_theme = int(from_theme.sum())
        idx = np.empty(n, dtype=np.int64)
        idx[~from_theme] = self.background.sample(n - n_theme, self.rng)
        if n_theme:
            which = self.rng.integers(len(themes), size=n_theme)
            local = self.theme_sampler.sample(n_theme, self.rng)
            theme_idx = np.empty(n_theme, dtype=np.int64)
            for j, t in enumerate(themes):
                mask = which == j
                theme_idx[mask] = self.theme_terms[t][local[mask]]
            idx[from_theme] = theme_idx
        return [self.vocab[i] for i in idx]


FieldBuilder = Callable[[ThemeModel, list[int], np.random.Generator], dict]


def generate_corpus(
    name: str,
    target_bytes: int,
    field_builder: FieldBuilder,
    model: ThemeModel,
    represented_bytes: float | None = None,
) -> Corpus:
    """Generate documents until ``target_bytes`` of text exist.

    ``field_builder`` constructs one document's field dict from the
    model; the generator tracks actual byte production so corpora land
    within a few percent of the requested size.
    """
    if target_bytes <= 0:
        raise ValueError(f"target_bytes must be > 0, got {target_bytes}")
    documents: list[Document] = []
    produced = 0
    theme_labels: list[int] = []
    while produced < target_bytes:
        themes = model.sample_themes()
        fields = field_builder(model, themes, model.rng)
        doc = Document(doc_id=len(documents), fields=fields)
        documents.append(doc)
        theme_labels.append(themes[0])
        produced += doc.nbytes
    return Corpus(
        name=name,
        documents=documents,
        represented_bytes=represented_bytes,
        meta={
            "n_themes": model.config.n_themes,
            "vocab_size": model.config.vocab_size,
            "theme_labels": theme_labels,
        },
    )
