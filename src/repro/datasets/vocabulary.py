"""Synthetic vocabularies with Zipfian statistics.

The engine's scaling behaviour depends on corpus *statistics* --
vocabulary size and skew, document-length distribution -- not on the
actual words.  This module builds deterministic pseudo-word
vocabularies (pronounceable syllable chains, optionally flavoured with
domain affixes) and Zipf-distributed samplers over them.
"""

from __future__ import annotations

import numpy as np

_ONSETS = [
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gl", "gr",
    "h", "j", "k", "l", "m", "n", "p", "ph", "pl", "pr", "qu", "r",
    "s", "sc", "sh", "sl", "sp", "st", "str", "t", "th", "tr", "v",
    "w", "z",
]
_NUCLEI = ["a", "e", "i", "o", "u", "ae", "ea", "ia", "io", "ou"]
_CODAS = ["", "", "l", "m", "n", "r", "s", "t", "x", "st", "nd", "ct"]

#: affixes that give PubMed-flavoured terms ("...itis", "neo...")
BIOMEDICAL_AFFIXES = (
    ["neo", "cardio", "hemo", "cyto", "myo", "osteo", "endo", "micro"],
    ["itis", "osis", "emia", "ase", "gen", "cyte", "pathy", "oma"],
)
#: affixes that give .gov/web-flavoured terms
GOVWEB_AFFIXES = (
    ["gov", "fed", "pub", "reg", "admin", "info", "data", "web"],
    ["tion", "ment", "ance", "ency", "ing", "port", "form", "act"],
)


def _syllable(rng: np.random.Generator) -> str:
    return (
        _ONSETS[rng.integers(len(_ONSETS))]
        + _NUCLEI[rng.integers(len(_NUCLEI))]
        + _CODAS[rng.integers(len(_CODAS))]
    )


def make_vocabulary(
    size: int,
    seed: int,
    affixes: tuple[list[str], list[str]] | None = None,
    affix_fraction: float = 0.3,
) -> list[str]:
    """Build ``size`` distinct pseudo-words, deterministically."""
    rng = np.random.default_rng(seed)
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < size:
        nsyl = int(rng.integers(2, 5))
        w = "".join(_syllable(rng) for _ in range(nsyl))
        if affixes is not None and rng.random() < affix_fraction:
            prefixes, suffixes = affixes
            if rng.random() < 0.5:
                w = prefixes[rng.integers(len(prefixes))] + w
            else:
                w = w + suffixes[rng.integers(len(suffixes))]
        if len(w) > 24:
            w = w[:24]
        if w in seen:
            continue
        seen.add(w)
        words.append(w)
    return words


class ZipfSampler:
    """Draws word indices with Zipf–Mandelbrot probabilities.

    ``p(rank) ∝ 1 / (rank + q) ** s`` -- the classic fit for natural
    language term frequencies.
    """

    def __init__(self, size: int, s: float = 1.07, q: float = 2.7):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = 1.0 / (ranks + q) ** s
        self.probs = weights / weights.sum()
        self._cdf = np.cumsum(self.probs)
        self.size = size

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` word indices (0-based ranks)."""
        u = rng.random(n)
        return np.searchsorted(self._cdf, u, side="right").clip(
            0, self.size - 1
        )
