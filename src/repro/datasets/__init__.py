"""Synthetic dataset generators standing in for PubMed and TREC GOV2.

The paper's corpora are multi-gigabyte collections we cannot ship or
process here; these generators reproduce the statistics that drive the
engine's behaviour (document-size distributions, Zipf/Heaps vocabulary
laws, latent theme structure).  See ``DESIGN.md`` §2 for the full
substitution rationale.
"""

from .generator import (
    ThemeModel,
    ThemeModelConfig,
    generate_corpus,
)
from .newswire import generate_newswire
from .pubmed import generate_pubmed
from .trec import generate_trec
from .vocabulary import (
    BIOMEDICAL_AFFIXES,
    GOVWEB_AFFIXES,
    ZipfSampler,
    make_vocabulary,
)

__all__ = [
    "BIOMEDICAL_AFFIXES",
    "GOVWEB_AFFIXES",
    "ThemeModel",
    "ThemeModelConfig",
    "ZipfSampler",
    "generate_corpus",
    "generate_newswire",
    "generate_pubmed",
    "generate_trec",
    "make_vocabulary",
]
