"""Synthetic TREC GOV2-like corpus.

GOV2 is a web crawl of the ``.gov`` domain: HTML and extracted text of
PDF/Word/Postscript files with *heavy-tailed document sizes* and a
broad, noisy vocabulary.  The heavy tail is what stresses the paper's
static byte partitioner and dynamic load balancer, so we reproduce it
with a clipped Pareto body-length distribution, plus boilerplate
navigation terms and a sprinkle of rare crawl-noise tokens.
"""

from __future__ import annotations

import numpy as np

from repro.text.documents import Corpus

from .generator import ThemeModel, ThemeModelConfig, generate_corpus
from .vocabulary import GOVWEB_AFFIXES

_BOILERPLATE = (
    "home contact search privacy accessibility sitemap help faq "
    "department office agency federal report public notice policy"
).split()

_TLD_WORDS = ["agency", "bureau", "dept", "office", "commission"]


def _markup_soup(rng: np.random.Generator, nbytes: int) -> str:
    """Markup/table filler the tokenizer drops: bytes without postings.

    Real GOV2 pages vary wildly in text density (HTML tables, numeric
    forms, extracted PDFs); byte-balanced partitions therefore carry
    unequal *token* loads, which is exactly the imbalance the paper's
    dynamic load balancer targets (Fig. 9).
    """
    pieces = []
    produced = 0
    while produced < nbytes:
        p = (
            f"{rng.integers(10**6)} | {rng.integers(10**4)}."
            f"{rng.integers(100)} ({rng.integers(10**3)}) ="
        )
        pieces.append(p)
        produced += len(p) + 1
    return " ".join(pieces)


def _trec_fields(
    model: ThemeModel,
    themes: list[int],
    rng: np.random.Generator,
    max_body_tokens: int = 20_000,
    markup_heavy: bool | None = None,
) -> dict:
    # Pareto-tailed body length: most pages small, few huge
    body_len = int(
        np.clip((rng.pareto(1.3) + 1.0) * 80, 20, max_body_tokens)
    )
    if markup_heavy is None:
        markup_heavy = rng.random() < 0.35
    if markup_heavy:
        # tables/forms: mostly markup bytes, few indexable terms
        soup = _markup_soup(rng, body_len * 5)
        body_tokens = model.sample_tokens(max(5, body_len // 4), themes)
        body_tokens.append(soup)
    else:
        body_tokens = model.sample_tokens(body_len, themes)
    # web boilerplate interleaved through the page
    n_boiler = max(3, body_len // 40)
    boiler = [
        _BOILERPLATE[int(rng.integers(len(_BOILERPLATE)))]
        for _ in range(n_boiler)
    ]
    # crawl noise: rare quasi-unique tokens (session ids, file names)
    n_noise = int(rng.integers(0, max(2, body_len // 200) + 1))
    noise = [
        f"x{rng.integers(10**8):08d}" for _ in range(n_noise)
    ]
    body = " ".join(body_tokens + boiler + noise)
    host = (
        f"www.{_TLD_WORDS[int(rng.integers(len(_TLD_WORDS)))]}"
        f"{rng.integers(1000)}.gov"
    )
    title_len = int(rng.integers(3, 12))
    return {
        "url": f"http://{host}/page{rng.integers(10**6)}.html",
        "title": " ".join(model.sample_tokens(title_len, themes)),
        "body": body,
    }


def generate_trec(
    target_bytes: int,
    seed: int = 0,
    represented_bytes: float | None = None,
    n_themes: int = 16,
    vocab_size: int = 16_000,
    max_body_tokens: int = 20_000,
    facets=None,
) -> Corpus:
    """Generate a GOV2-like corpus of roughly ``target_bytes``.

    ``max_body_tokens`` clips the Pareto tail of page sizes; lower it
    to study load balancing without single-page-dominated partitions.
    Pass a :class:`repro.facets.FacetSpec` as ``facets`` to stamp the
    corpus with time/source fields; ``None`` (default) leaves output
    byte-identical to earlier versions.
    """
    model = ThemeModel(
        ThemeModelConfig(
            vocab_size=vocab_size,
            n_themes=n_themes,
            theme_strength=0.35,  # noisier than PubMed
            two_theme_prob=0.35,
            zipf_s=1.02,
        ),
        seed=seed,
        affixes=GOVWEB_AFFIXES,
    )
    # A crawl visits site sections in order, so markup-heavy pages
    # (tables, forms, numeric reports) come in *runs*: a sticky
    # two-state Markov chain reproduces the spatially correlated
    # token-density skew that byte-balanced contiguous partitions
    # inherit -- the inversion-load imbalance of the paper's Fig. 9.
    state = {"markup": False}

    def builder(m, t, r):
        if r.random() < 0.04:  # expected run length ~25 pages
            state["markup"] = not state["markup"]
        return _trec_fields(
            m,
            t,
            r,
            max_body_tokens=max_body_tokens,
            markup_heavy=state["markup"],
        )

    corpus = generate_corpus(
        name="trec-gov2-synthetic",
        target_bytes=target_bytes,
        field_builder=builder,
        model=model,
        represented_bytes=represented_bytes,
    )
    if facets is not None:
        from repro.facets.stamp import stamp_corpus

        stamp_corpus(corpus, facets)
    return corpus
