"""Synthetic newswire corpus.

The paper's introduction motivates the engine with streaming text --
"email, newspapers, web pages ... newswire feeds and message traffic".
Newswire has a structure the other two generators lack: *stories*
arrive in bursts (several consecutive dispatches about one event), so
themes are time-correlated.  That makes this generator the natural
input for the streaming/incremental examples and for partition-order
effects: contiguous partitions inherit whole stories.
"""

from __future__ import annotations

import numpy as np

from repro.text.documents import Corpus

from .generator import ThemeModel, ThemeModelConfig, generate_corpus

_WIRE_CITIES = [
    "WASHINGTON",
    "LONDON",
    "GENEVA",
    "SINGAPORE",
    "NAIROBI",
    "BRASILIA",
    "OTTAWA",
    "CANBERRA",
]
_MONTHS = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]

_NEWS_AFFIXES = (
    ["press", "gov", "euro", "inter", "trans", "multi"],
    ["ation", "ism", "ity", "ment", "ance", "gate"],
)


def generate_newswire(
    target_bytes: int,
    seed: int = 0,
    represented_bytes: float | None = None,
    n_themes: int = 10,
    vocab_size: int = 10_000,
    mean_story_length: float = 4.0,
    facets=None,
) -> Corpus:
    """Generate a bursty newswire corpus of roughly ``target_bytes``.

    Consecutive dispatches belong to the same *story* (theme) with
    geometric story lengths of mean ``mean_story_length``; the
    ``story_ids`` metadata records the grouping.  Pass a
    :class:`repro.facets.FacetSpec` as ``facets`` to stamp the corpus
    with time/source fields; ``None`` (default) leaves output
    byte-identical to earlier versions.
    """
    model = ThemeModel(
        ThemeModelConfig(
            vocab_size=vocab_size,
            n_themes=n_themes,
            theme_strength=0.5,  # wire copy is on-topic
            two_theme_prob=0.1,
            zipf_s=1.1,
        ),
        seed=seed,
        affixes=_NEWS_AFFIXES,
    )
    # burst state shared by the field builder
    state = {"theme": 0, "remaining": 0, "story": -1}
    story_ids: list[int] = []
    themes_used: list[int] = []
    cont_prob = 1.0 - 1.0 / max(1.0, mean_story_length)

    def builder(m: ThemeModel, themes: list[int], rng: np.random.Generator):
        if state["remaining"] <= 0 or rng.random() > cont_prob:
            state["theme"] = int(rng.integers(n_themes))
            state["remaining"] = 1 + int(rng.geometric(1 - cont_prob))
            state["story"] += 1
        state["remaining"] -= 1
        story_ids.append(state["story"])
        themes_used.append(state["theme"])
        theme = [state["theme"]]
        headline_len = int(rng.integers(4, 10))
        body_len = int(np.clip(rng.lognormal(np.log(120), 0.4), 30, 600))
        city = _WIRE_CITIES[int(rng.integers(len(_WIRE_CITIES)))]
        month = _MONTHS[int(rng.integers(12))]
        day = int(rng.integers(1, 29))
        return {
            "headline": " ".join(m.sample_tokens(headline_len, theme)),
            "dateline": f"{city}, {month} {day} (Wire)",
            "body": " ".join(m.sample_tokens(body_len, theme)),
        }

    corpus = generate_corpus(
        name="newswire-synthetic",
        target_bytes=target_bytes,
        field_builder=builder,
        model=model,
        represented_bytes=represented_bytes,
    )
    corpus.meta["story_ids"] = story_ids[: len(corpus)]
    # the burst state, not the mixture draw, defines the true labels
    corpus.meta["theme_labels"] = themes_used[: len(corpus)]
    if facets is not None:
        from repro.facets.stamp import stamp_corpus

        stamp_corpus(corpus, facets)
    return corpus
