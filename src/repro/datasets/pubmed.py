"""Synthetic PubMed-like corpus.

The paper describes PubMed abstracts as "unstructured (or free form)
text ... consistent in both size and language type".  We reproduce
those statistics: tightly distributed abstract lengths (lognormal with
small sigma), a biomedical-flavoured vocabulary, and title / abstract /
journal fields per record.
"""

from __future__ import annotations

import numpy as np

from repro.text.documents import Corpus

from .generator import ThemeModel, ThemeModelConfig, generate_corpus
from .vocabulary import BIOMEDICAL_AFFIXES

_JOURNALS = [
    "journal of synthetic medicine",
    "annals of generated biology",
    "clinical corpus letters",
    "archives of simulated oncology",
    "synthetic neuroscience reports",
    "proceedings of modelled immunology",
    "generated cardiology review",
    "simulated pathology quarterly",
]


def _pubmed_fields(
    model: ThemeModel, themes: list[int], rng: np.random.Generator
) -> dict:
    title_len = int(rng.integers(6, 14))
    # lognormal with small sigma: "consistent in size"
    abstract_len = int(np.clip(rng.lognormal(np.log(170), 0.25), 60, 450))
    return {
        "title": " ".join(model.sample_tokens(title_len, themes)),
        "abstract": " ".join(model.sample_tokens(abstract_len, themes)),
        "journal": _JOURNALS[int(rng.integers(len(_JOURNALS)))],
    }


def generate_pubmed(
    target_bytes: int,
    seed: int = 0,
    represented_bytes: float | None = None,
    n_themes: int = 12,
    vocab_size: int = 12_000,
    facets=None,
) -> Corpus:
    """Generate a PubMed-like corpus of roughly ``target_bytes``.

    Pass ``represented_bytes`` (e.g. ``2.75e9``) to declare what real
    corpus size this stands for; the benchmark harness feeds the
    resulting scale factor to the machine cost model.  Pass a
    :class:`repro.facets.FacetSpec` as ``facets`` to stamp the corpus
    with time/source fields from the dedicated facet rng stream; the
    default ``None`` leaves output byte-identical to earlier versions.
    """
    model = ThemeModel(
        ThemeModelConfig(
            vocab_size=vocab_size,
            n_themes=n_themes,
            theme_strength=0.45,
            zipf_s=1.07,
        ),
        seed=seed,
        affixes=BIOMEDICAL_AFFIXES,
    )
    corpus = generate_corpus(
        name="pubmed-synthetic",
        target_bytes=target_bytes,
        field_builder=_pubmed_fields,
        model=model,
        represented_bytes=represented_bytes,
    )
    if facets is not None:
        from repro.facets.stamp import stamp_corpus

        stamp_corpus(corpus, facets)
    return corpus
