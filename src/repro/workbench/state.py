"""Workbench session state: scripts, result sets, algebra, quotas.

A *result set* is a named tuple of serving-layer
:class:`~repro.serve.query.Candidate`\\ s held in the canonical
``(-score, row)`` order (selected through the shared
:func:`repro.index.termindex.topk_score_row` helper, so set algebra
cannot drift from the broker's merge order).  Set combinators score a
row by the **max** of its operand scores -- ``max`` is commutative and
associative on floats (no NaNs enter: every candidate score is a real
tf·icf or cosine value), which is what makes ``union`` and
``intersect`` bit-exactly commutative and associative, the property
the hypothesis suite checks against a brute-force reference.

Every over-quota or out-of-contract request is answered with a typed
:class:`WorkbenchReject` (the workbench analogue of the tier's
``ShedResponse``): state is never partially mutated -- an op either
saves its full result set / artifact or changes nothing.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.index.termindex import topk_score_row
from repro.serve.query import Candidate, Query

WORKBENCH_VERBS = (
    "open",
    "search",
    "refine",
    "union",
    "diff",
    "intersect",
    "window",
    "keyphrases",
    "cooccur",
    "relations",
    "close",
)

#: query kinds a set may be created or refined from (ranked kinds
#: whose scores are per-row and shard-independent)
SET_QUERY_KINDS = ("search", "query")


@dataclass(frozen=True)
class WorkbenchConfig:
    """Per-tenant quota and lifecycle knobs of a workbench tier."""

    #: concurrently open sessions per tenant
    max_sessions: int = 4
    #: saved named sets per tenant, across its open sessions
    max_sets: int = 16
    #: per-tenant artifact-cache budget (canonical-response bytes)
    max_derived_bytes: int = 1 << 15
    #: virtual seconds of idleness before a session is evicted
    session_ttl_s: float = 120.0
    #: cache derived artifacts keyed by (tenant, set digest, epoch)
    artifact_cache: bool = True
    #: hits included inline in a set response (preview, not the set)
    preview_hits: int = 10

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_sets < 1:
            raise ValueError("max_sets must be >= 1")
        if self.max_derived_bytes < 1:
            raise ValueError("max_derived_bytes must be >= 1")
        if self.session_ttl_s <= 0:
            raise ValueError("session_ttl_s must be > 0")
        if self.preview_hits < 0:
            raise ValueError("preview_hits must be >= 0")


@dataclass(frozen=True)
class WorkbenchOp:
    """One scripted analyst action inside a session.

    ``name`` is the result set an op *creates* (``search``/``refine``,
    the combinators, and ``window``); ``base``/``other`` name its
    operands (``refine`` refines ``base``; derives read ``base``).
    ``n`` is the top-term budget of a derive; ``min_support`` the
    relation pair-count floor.  ``window`` restricts ``base`` to rows
    stamped inside ``[t0, t1)`` (and to one source region when
    ``source >= 0``), keeping per-row scores and the canonical order;
    it needs a stamped store.
    """

    verb: str
    name: str = ""
    base: str = ""
    other: str = ""
    query: Optional[Query] = None
    n: int = 10
    min_support: int = 2
    t0: float = 0.0
    t1: float = 0.0
    source: int = -1

    def __post_init__(self) -> None:
        if self.verb not in WORKBENCH_VERBS:
            raise ValueError(
                f"unknown workbench verb {self.verb!r}; "
                f"expected one of {WORKBENCH_VERBS}"
            )
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")

    def key(self) -> tuple:
        """Hashable identity (the artifact-cache op component)."""
        return (
            self.verb,
            self.name,
            self.base,
            self.other,
            self.query.key() if self.query is not None else None,
            self.n,
            self.min_support,
            self.t0,
            self.t1,
            self.source,
        )


@dataclass(frozen=True)
class WorkbenchScript:
    """One analyst session script, pumped like a client script.

    ``think_s[i]`` is the virtual think time between the completion of
    op ``i - 1`` (tier start for ``i = 0``) and the issue of op ``i``.
    A tenant's scripts all route to the same workbench broker (quota
    state is broker-local), mirroring the tier's sticky client
    routing.
    """

    tenant: int
    client: int
    ops: tuple[WorkbenchOp, ...]
    think_s: tuple[float, ...]
    priority: int = 0


@dataclass(frozen=True)
class WorkbenchReject:
    """One workbench request turned away (typed, never silent).

    ``reason`` is one of: ``session_quota``, ``set_quota``,
    ``derived_bytes_quota``, ``session_evicted``, ``no_session``,
    ``already_open``, ``unknown_set``, ``bad_query``,
    ``unstamped_store`` (a ``window`` op against a store without
    facet sections).
    """

    tenant: int
    client: int
    seq: int
    verb: str
    reason: str


@dataclass
class WorkbenchSession:
    """Server-side state of one open analyst session.

    Epoch-pinned: ``epoch``, ``n_docs``, and ``icf`` are frozen at
    open time, so every fan-out and derive of this session answers
    from the generation the analyst started against -- even while
    ingest publishes newer generations to the broker.
    """

    tenant: int
    client: int
    epoch: int
    n_docs: int
    icf: np.ndarray
    opened_s: float
    last_active_s: float
    sets: dict[str, tuple[Candidate, ...]] = field(default_factory=dict)


# ----------------------------------------------------------------------
# result-set ordering, digests, and algebra
# ----------------------------------------------------------------------
def order_set(cands: Iterable[Candidate]) -> tuple[Candidate, ...]:
    """Candidates in the canonical ``(-score, row)`` order."""
    lst = list(cands)
    if not lst:
        return ()
    sel = topk_score_row(
        np.array([c.score for c in lst], dtype=np.float64),
        np.array([c.row for c in lst], dtype=np.int64),
        -1,
    )
    return tuple(lst[int(i)] for i in sel)


def set_digest(cands: tuple[Candidate, ...]) -> str:
    """Content digest of an ordered result set.

    Hashes the exact float bits of every score alongside rows and
    payload columns, so two sets digest equal iff they are
    bit-identical -- the artifact-cache key component and the
    transcript byte-compare anchor.
    """
    h = hashlib.blake2b(digest_size=16)
    for c in cands:
        h.update(
            struct.pack("<qdqq", c.row, c.score, c.doc_id, c.cluster)
        )
    return h.hexdigest()


def _max_merge(a: Candidate, b: Candidate) -> Candidate:
    """The higher-scored of two candidates for one row (ties keep
    either: same row means same document payload)."""
    return b if b.score > a.score else a


def union_sets(
    a: tuple[Candidate, ...], b: tuple[Candidate, ...]
) -> tuple[Candidate, ...]:
    """Rows of either set; each row keeps its max operand score."""
    by_row: dict[int, Candidate] = {c.row: c for c in a}
    for c in b:
        prev = by_row.get(c.row)
        by_row[c.row] = c if prev is None else _max_merge(prev, c)
    return order_set(by_row.values())


def intersect_sets(
    a: tuple[Candidate, ...], b: tuple[Candidate, ...]
) -> tuple[Candidate, ...]:
    """Rows of both sets; each row keeps its max operand score."""
    in_b = {c.row: c for c in b}
    out = [
        _max_merge(c, in_b[c.row]) for c in a if c.row in in_b
    ]
    return order_set(out)


def diff_sets(
    a: tuple[Candidate, ...], b: tuple[Candidate, ...]
) -> tuple[Candidate, ...]:
    """Rows of ``a`` absent from ``b``, keeping ``a``'s scores.

    ``diff(a, a)`` is the empty set by construction.
    """
    drop = {c.row for c in b}
    return order_set(c for c in a if c.row not in drop)


def set_rows(cands: tuple[Candidate, ...]) -> np.ndarray:
    """Ascending global rows of a set (the ``restrict_rows`` wire
    payload of a refine fan-out)."""
    return np.sort(
        np.array([c.row for c in cands], dtype=np.int64)
    )


# ----------------------------------------------------------------------
# session report
# ----------------------------------------------------------------------
@dataclass
class WorkbenchReport:
    """Outcome of one workbench tier session over analyst scripts."""

    responses: list[dict]
    latencies: list[float]
    rejected: list[WorkbenchReject]
    failed_ranks: list[int]
    makespan: float
    sessions_opened: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    sets_saved: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_evictions: int = 0
    metrics: dict = field(repr=False, default_factory=dict)
    generations: dict = field(default_factory=dict)
    per_broker: list = field(default_factory=list)
    ingest: Optional[dict] = None

    @property
    def served(self) -> int:
        return len(self.responses)

    @property
    def throughput(self) -> float:
        """Answered ops per virtual second."""
        return self.served / self.makespan if self.makespan > 0 else 0.0

    @property
    def reject_rate(self) -> float:
        return (
            len(self.rejected) / self.served if self.served else 0.0
        )

    @property
    def artifact_hit_rate(self) -> float:
        total = self.artifact_hits + self.artifact_misses
        return self.artifact_hits / total if total else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of answered-op virtual latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = max(0, int(np.ceil(pct / 100.0 * len(ordered))) - 1)
        return ordered[idx]
