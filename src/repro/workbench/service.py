"""Workbench ranks speaking the broker protocol.

Topologies:

- :func:`serve_workbench` -- ``nshards + 1`` ranks (plus one optional
  ingest-driver rank): rank 0 is a *workbench broker* (the PR-4 query
  broker extended with session state), ranks ``1..nshards`` are the
  unchanged shard workers.  Every workbench fan-out rides the existing
  ``TAG_REQ``/``TAG_RESP`` wire protocol, pinned to the session's
  epoch.
- :func:`serve_workbench_replicated` -- ``1 + brokers + workers``
  ranks: rank 0 routes each *tenant* to a sticky workbench broker
  (quota state is broker-local, so a tenant's sessions must share a
  broker), brokers pump their tenant subsets against the replica
  worker tier with the PR-7 failover/hedging fan-out.  With
  ``replicas >= 2`` a worker crash mid-session is masked: every
  response and artifact stays byte-identical to the fault-free run.

Determinism: op handlers do float work only through the shared serving
kernels (merge order via ``topk_score_row``, tf·icf accumulation in
query-term order) and integer work through exact int64 sums that are
associative across shard layouts, so a transcript's canonical bytes
are identical across fastpath/slowpath schedulers, ``sim``/``mp``
backends, shard counts, and replica counts.

Quota and lifecycle: over-quota and post-eviction ops answer with a
typed rejection response (mirrored into ``report.rejected`` as
:class:`~repro.workbench.state.WorkbenchReject`); session state is
never partially mutated.  Idle sessions are evicted by virtual-time
TTL sweeps in sorted session order.  Derived artifacts cache per
tenant under ``(set digest, epoch, op)`` keys and are invalidated only
by generation change (the epoch component), with LRU eviction against
the tenant's byte budget.
"""

from __future__ import annotations

import heapq
import os
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.analysis.session import pseudo_signature
from repro.index.termindex import topk_score_row
from repro.runtime.cluster import Cluster, MachineSpec
from repro.runtime.errors import CommTimeoutError, RankFailedError
from repro.serve.broker import (
    _REJECT_OPS,
    TAG_REQ,
    _Broker,
    _ShardWorker,
    BrokerConfig,
)
from repro.serve.query import canonical_response, hits_payload, merge_desc
from repro.serve.replica import ReplicaMap
from repro.serve.router import (
    TAG_REPORT,
    TAG_SCRIPTS,
    RouterConfig,
    _ReplicaWorker,
    _TierBroker,
    broker_of_client,
)
from repro.serve.store import load_manifest
from repro.workbench.state import (
    SET_QUERY_KINDS,
    WorkbenchConfig,
    WorkbenchOp,
    WorkbenchReject,
    WorkbenchReport,
    WorkbenchScript,
    WorkbenchSession,
    diff_sets,
    intersect_sets,
    set_digest,
    set_rows,
    union_sets,
)

#: modelled broker-side cost of a local set-algebra op (per candidate)
_ALGEBRA_OPS_PER_CAND = 4
#: modelled broker-side cost of assembling one artifact
_DERIVE_OPS = 500


class _WorkbenchCore:
    """Session/op layer shared by both broker flavours.

    Mixed in front of :class:`~repro.serve.broker._Broker` (single
    tier) or :class:`~repro.serve.router._TierBroker` (replicated
    tier): uses only the host's fan-out, flagging, reload, and
    shutdown hooks, so replica failover and hedging come along for
    free in the replicated flavour.
    """

    def _init_workbench(self, wcfg: WorkbenchConfig) -> None:
        self.wcfg = wcfg
        #: (tenant, client) -> open session
        self.sessions: dict[tuple[int, int], WorkbenchSession] = {}
        #: (tenant, client) tombstones of TTL-evicted sessions
        self.evicted_keys: set[tuple[int, int]] = set()
        #: tenant -> artifact LRU: key -> (response dict, nbytes)
        self.art_cache: dict[int, OrderedDict[tuple, tuple[dict, int]]] = {}
        self.art_bytes: dict[int, int] = {}
        self.n_opened = 0
        self.n_closed = 0
        self.n_evicted = 0
        self.n_sets = 0
        self.n_art_hit = 0
        self.n_art_miss = 0
        self.n_art_evict = 0
        m = self.ctx.metrics
        self.c_wb_ops = m.counter("workbench.ops", ("verb",))
        self.c_wb_opened = m.counter("workbench.sessions.opened")
        self.c_wb_closed = m.counter("workbench.sessions.closed")
        self.c_wb_evicted = m.counter("workbench.sessions.evicted")
        self.c_wb_rejected = m.counter("workbench.rejected", ("reason",))
        self.c_wb_sets = m.counter("workbench.sets.saved")
        self.c_art_hit = m.counter("workbench.artifact.hit")
        self.c_art_miss = m.counter("workbench.artifact.miss")
        self.c_art_evict = m.counter("workbench.artifact.evict")
        self.h_wb_latency = m.histogram(
            "workbench.latency", label_names=("verb",)
        )

    # -- lifecycle -----------------------------------------------------
    def _evict_idle(self, now: float) -> None:
        """TTL sweep in sorted session order (deterministic)."""
        ttl = self.wcfg.session_ttl_s
        for key in sorted(self.sessions):
            sess = self.sessions[key]
            if now - sess.last_active_s > ttl:
                del self.sessions[key]
                self.evicted_keys.add(key)
                self.n_evicted += 1
                self.c_wb_evicted.inc(self.mrank)

    def _tenant_sessions(self, tenant: int) -> int:
        return sum(1 for t, _ in self.sessions if t == tenant)

    def _tenant_sets(self, tenant: int) -> int:
        return sum(
            len(s.sets)
            for (t, _), s in self.sessions.items()
            if t == tenant
        )

    # -- epoch-pinned fan-out ------------------------------------------
    def _session_fanout(
        self, sess: WorkbenchSession, op: str, params: dict
    ) -> tuple[dict[int, object], list[int]]:
        """One shard round pinned to the session's open-time epoch.

        The broker's own epoch may have moved on (hot reload between
        ops); swapping it in around the fan-out makes the wire
        messages carry the pinned generation, so every shard resolves
        the segment list the session was opened against.
        """
        saved = self.epoch
        self.epoch = sess.epoch
        try:
            return self._fanout(self.live, op, params)
        finally:
            self.epoch = saved

    # -- ranked execution over a session -------------------------------
    def _wb_query(
        self,
        sess: WorkbenchSession,
        query,
        restrict: Optional[np.ndarray],
    ) -> tuple[list, list[int]]:
        """Ranked candidates of one set-builder query.

        ``restrict`` (ascending global rows) is the refine path: only
        those rows compete, with unchanged per-row floats.
        """
        if query.kind == "search":
            term_rows = [
                self.model.term_row[t]
                for t in query.terms
                if t in self.model.term_row
            ]
            if not term_rows or not self.model.has_postings:
                return [], []
            k = (
                int(restrict.size)
                if restrict is not None
                else min(max(1, query.k), sess.n_docs)
            )
            if k < 1:
                return [], []
            params = {
                "term_rows": term_rows,
                "icf": sess.icf,
                "k": k,
                "pruned": self.config.pruned_search,
            }
            if restrict is not None:
                params["restrict_rows"] = restrict
            got, dropped = self._session_fanout(sess, "search", params)
        else:  # "query": pseudo-signature cosine ranking
            rows = [
                self.model.term_row[t]
                for t in query.terms
                if t in self.model.term_row
            ]
            unit = pseudo_signature(self.model.association, rows)
            if unit is None:
                return [], []
            k = (
                int(restrict.size)
                if restrict is not None
                else min(max(1, query.k), sess.n_docs)
            )
            if k < 1:
                return [], []
            params = {"unit": unit, "k": k}
            if restrict is not None:
                params["restrict_rows"] = restrict
            got, dropped = self._session_fanout(sess, "matvec", params)
        cands = merge_desc([got[s] for s in sorted(got)], k)
        self.ctx.charge_cpu(sum(len(got[s]) for s in got) + _DERIVE_OPS)
        return cands, dropped

    def _wb_set_tf(
        self, sess: WorkbenchSession, rows: np.ndarray
    ) -> tuple[np.ndarray, list[int]]:
        """Exact per-term tf totals of a set, summed in shard order."""
        totals = np.zeros(self.model.term_df.shape[0], dtype=np.int64)
        if rows.size == 0:
            return totals, []
        got, dropped = self._session_fanout(
            sess, "set_tf", {"rows": rows}
        )
        for s in sorted(got):
            totals += got[s]
        self.ctx.charge_cpu(totals.shape[0] * len(got) + _DERIVE_OPS)
        return totals, dropped

    def _wb_cooc(
        self,
        sess: WorkbenchSession,
        rows: np.ndarray,
        n: int,
    ) -> tuple[list[int], np.ndarray, list[int]]:
        """Top-``n`` in-set terms plus their co-occurrence counts.

        Term basis: the ``n`` highest in-set tf totals with ascending
        term row breaking ties -- the same ``(-score, row)`` selection
        as every ranked answer, on exact integers.
        """
        totals, dropped = self._wb_set_tf(sess, rows)
        nz = np.flatnonzero(totals > 0)
        if nz.size == 0 or rows.size == 0:
            return [], np.zeros((0, 0), dtype=np.int64), dropped
        sel = topk_score_row(
            totals[nz].astype(np.float64), nz, min(n, int(nz.size))
        )
        term_rows = [int(r) for r in nz[sel]]
        got, dropped2 = self._session_fanout(
            sess, "set_cooc", {"rows": rows, "term_rows": term_rows}
        )
        counts = np.zeros(
            (len(term_rows), len(term_rows)), dtype=np.int64
        )
        for s in sorted(got):
            counts += got[s]
        self.ctx.charge_cpu(counts.size * len(got) + _DERIVE_OPS)
        return term_rows, counts, sorted(set(dropped) | set(dropped2))

    # -- artifact cache ------------------------------------------------
    def _artifact_lookup(
        self, tenant: int, key: tuple
    ) -> Optional[dict]:
        if not self.wcfg.artifact_cache:
            return None
        cache = self.art_cache.get(tenant)
        if cache is None or key not in cache:
            return None
        cache.move_to_end(key)
        self.n_art_hit += 1
        self.c_art_hit.inc(self.mrank)
        return cache[key][0]

    def _artifact_store(
        self, tenant: int, key: tuple, resp: dict
    ) -> Optional[str]:
        """Cache one artifact under the tenant's byte budget.

        Returns a rejection reason when the artifact alone exceeds the
        budget (``derived_bytes_quota``); otherwise evicts the
        tenant's least-recently-used artifacts until it fits.
        """
        nbytes = len(canonical_response(resp))
        if nbytes > self.wcfg.max_derived_bytes:
            return "derived_bytes_quota"
        if not self.wcfg.artifact_cache:
            return None
        cache = self.art_cache.setdefault(tenant, OrderedDict())
        used = self.art_bytes.get(tenant, 0)
        while cache and used + nbytes > self.wcfg.max_derived_bytes:
            _, (_, old) = cache.popitem(last=False)
            used -= old
            self.n_art_evict += 1
            self.c_art_evict.inc(self.mrank)
        cache[key] = (resp, nbytes)
        self.art_bytes[tenant] = used + nbytes
        return None

    # -- op execution --------------------------------------------------
    def _reject(
        self,
        script: WorkbenchScript,
        seq: int,
        op: WorkbenchOp,
        reason: str,
        rejected: list,
    ) -> dict:
        self.ctx.charge_cpu(_REJECT_OPS)
        self.c_wb_rejected.inc(self.mrank, key=(reason,))
        rejected.append(
            WorkbenchReject(
                tenant=script.tenant,
                client=script.client,
                seq=seq,
                verb=op.verb,
                reason=reason,
            )
        )
        return {"kind": "reject", "verb": op.verb, "reason": reason}

    def _get_session(
        self, script: WorkbenchScript
    ) -> tuple[Optional[WorkbenchSession], str]:
        key = (script.tenant, script.client)
        sess = self.sessions.get(key)
        if sess is not None:
            return sess, ""
        if key in self.evicted_keys:
            return None, "session_evicted"
        return None, "no_session"

    def _set_response(
        self,
        verb: str,
        name: str,
        cands: tuple,
        dropped: list[int],
    ) -> dict:
        resp = {
            "kind": verb,
            "set": name,
            "size": len(cands),
            "digest": set_digest(cands),
            "hits": hits_payload(
                list(cands[: self.wcfg.preview_hits])
            ),
        }
        self._flag(resp, dropped)
        return resp

    def _save_set(
        self,
        script: WorkbenchScript,
        seq: int,
        op: WorkbenchOp,
        sess: WorkbenchSession,
        cands: tuple,
        dropped: list[int],
        rejected: list,
    ) -> dict:
        resp = self._set_response(op.verb, op.name, cands, dropped)
        if resp["partial"]:
            # a set missing shards would silently corrupt every later
            # derive; answer degraded but save nothing
            resp["saved"] = False
            return resp
        if (
            op.name not in sess.sets
            and self._tenant_sets(script.tenant) >= self.wcfg.max_sets
        ):
            return self._reject(script, seq, op, "set_quota", rejected)
        sess.sets[op.name] = cands
        self.n_sets += 1
        self.c_wb_sets.inc(self.mrank)
        resp["saved"] = True
        return resp

    def _exec_wb_op(
        self,
        script: WorkbenchScript,
        seq: int,
        op: WorkbenchOp,
        rejected: list,
    ) -> tuple[dict, bool, int]:
        """Answer one op: ``(response, artifact_cached, generation)``."""
        wcfg = self.wcfg
        ctx = self.ctx
        key = (script.tenant, script.client)
        if op.verb == "open":
            if key in self.sessions:
                return (
                    self._reject(
                        script, seq, op, "already_open", rejected
                    ),
                    False,
                    self.epoch,
                )
            if self._tenant_sessions(script.tenant) >= wcfg.max_sessions:
                return (
                    self._reject(
                        script, seq, op, "session_quota", rejected
                    ),
                    False,
                    self.epoch,
                )
            self.evicted_keys.discard(key)
            self.sessions[key] = WorkbenchSession(
                tenant=script.tenant,
                client=script.client,
                epoch=self.epoch,
                n_docs=self.n_docs,
                icf=self.icf,
                opened_s=float(ctx.now),
                last_active_s=float(ctx.now),
            )
            self.n_opened += 1
            self.c_wb_opened.inc(self.mrank)
            return {"kind": "open"}, False, self.epoch

        sess, why = self._get_session(script)
        if sess is None:
            return (
                self._reject(script, seq, op, why, rejected),
                False,
                self.epoch,
            )
        gen = sess.epoch

        if op.verb == "close":
            del self.sessions[key]
            self.n_closed += 1
            self.c_wb_closed.inc(self.mrank)
            return (
                {"kind": "close", "sets": sorted(sess.sets)},
                False,
                gen,
            )

        if op.verb in ("search", "refine"):
            if (
                op.query is None
                or op.query.kind not in SET_QUERY_KINDS
            ):
                return (
                    self._reject(script, seq, op, "bad_query", rejected),
                    False,
                    gen,
                )
            restrict = None
            if op.verb == "refine":
                base = sess.sets.get(op.base)
                if base is None:
                    return (
                        self._reject(
                            script, seq, op, "unknown_set", rejected
                        ),
                        False,
                        gen,
                    )
                restrict = set_rows(base)
            cands, dropped = self._wb_query(sess, op.query, restrict)
            resp = self._save_set(
                script, seq, op, sess, tuple(cands), dropped, rejected
            )
            sess.last_active_s = float(ctx.now)
            return resp, False, gen

        if op.verb == "window":
            base = sess.sets.get(op.base)
            if base is None:
                return (
                    self._reject(
                        script, seq, op, "unknown_set", rejected
                    ),
                    False,
                    gen,
                )
            if self.manifest.facets is None:
                return (
                    self._reject(
                        script, seq, op, "unstamped_store", rejected
                    ),
                    False,
                    gen,
                )
            rows = set_rows(base)
            dropped: list[int] = []
            kept: set[int] = set()
            if rows.size:
                got, dropped = self._session_fanout(
                    sess,
                    "window_restrict",
                    {
                        "rows": rows,
                        "t0": op.t0,
                        "t1": op.t1,
                        "source": op.source,
                    },
                )
                scanned = 0
                for s in sorted(got):
                    in_window, shard_scanned = got[s]
                    kept.update(int(r) for r in in_window)
                    scanned += int(shard_scanned)
                self._count_facets("window_restrict", scanned)
            # filtering the base set preserves its canonical order
            cands = tuple(c for c in base if c.row in kept)
            ctx.charge_cpu(
                _ALGEBRA_OPS_PER_CAND * len(base) + _DERIVE_OPS
            )
            resp = self._save_set(
                script, seq, op, sess, cands, dropped, rejected
            )
            sess.last_active_s = float(ctx.now)
            return resp, False, gen

        if op.verb in ("union", "diff", "intersect"):
            a = sess.sets.get(op.base)
            b = sess.sets.get(op.other)
            if a is None or b is None:
                return (
                    self._reject(
                        script, seq, op, "unknown_set", rejected
                    ),
                    False,
                    gen,
                )
            ctx.charge_cpu(
                _ALGEBRA_OPS_PER_CAND * (len(a) + len(b)) + _DERIVE_OPS
            )
            combine = {
                "union": union_sets,
                "diff": diff_sets,
                "intersect": intersect_sets,
            }[op.verb]
            resp = self._save_set(
                script, seq, op, sess, combine(a, b), [], rejected
            )
            sess.last_active_s = float(ctx.now)
            return resp, False, gen

        # -- derives: keyphrases / cooccur / relations ----------------
        base = sess.sets.get(op.base)
        if base is None:
            return (
                self._reject(script, seq, op, "unknown_set", rejected),
                False,
                gen,
            )
        digest = set_digest(base)
        ck = (digest, gen, op.verb, op.n, op.min_support)
        cached = self._artifact_lookup(script.tenant, ck)
        if cached is not None:
            sess.last_active_s = float(ctx.now)
            return cached, True, gen
        self.n_art_miss += 1
        self.c_art_miss.inc(self.mrank)
        rows = set_rows(base)
        if op.verb == "keyphrases":
            totals, dropped = self._wb_set_tf(sess, rows)
            nz = np.flatnonzero(totals > 0)
            scores = totals[nz].astype(np.float64) * sess.icf[nz]
            sel = topk_score_row(
                scores, nz, min(op.n, int(nz.size))
            )
            resp = {
                "kind": "keyphrases",
                "set": op.base,
                "size": len(base),
                "digest": digest,
                "terms": [
                    {
                        "term": self.model.terms[int(nz[i])],
                        "tf": int(totals[int(nz[i])]),
                        "score": float(scores[int(i)]),
                    }
                    for i in sel
                ],
            }
        else:
            term_rows, counts, dropped = self._wb_cooc(
                sess, rows, op.n
            )
            terms = [self.model.terms[r] for r in term_rows]
            if op.verb == "cooccur":
                resp = {
                    "kind": "cooccur",
                    "set": op.base,
                    "size": len(base),
                    "digest": digest,
                    "terms": terms,
                    "counts": counts.tolist(),
                }
            else:  # relations: the entity-relation summary
                linked = sorted(
                    (
                        (-int(counts[i, j]), term_rows[i], term_rows[j], i, j)
                        for i in range(len(terms))
                        for j in range(i + 1, len(terms))
                        if counts[i, j] >= op.min_support
                    ),
                )
                pairs = [
                    {"a": terms[i], "b": terms[j], "count": -neg}
                    for neg, _ri, _rj, i, j in linked
                ]
                resp = {
                    "kind": "relations",
                    "set": op.base,
                    "size": len(base),
                    "digest": digest,
                    "min_support": op.min_support,
                    "pairs": pairs,
                }
        self._flag(resp, dropped)
        sess.last_active_s = float(ctx.now)
        if resp["partial"]:
            return resp, False, gen  # degraded: never cached
        reason = self._artifact_store(script.tenant, ck, resp)
        if reason is not None:
            return (
                self._reject(script, seq, op, reason, rejected),
                False,
                gen,
            )
        return resp, False, gen

    # -- event pump ----------------------------------------------------
    def pump_workbench(self, wscripts: list[WorkbenchScript]):
        """Closed-loop pump over analyst scripts (one op in flight per
        session, think times between ops)."""
        ctx = self.ctx
        heap: list[tuple[float, int, int]] = []
        for i, script in enumerate(wscripts):
            if script.ops:
                heapq.heappush(heap, (script.think_s[0], i, 0))
        responses: list[dict] = []
        latencies: list[float] = []
        rejected: list[WorkbenchReject] = []
        while heap:
            arrival, idx, seq = heapq.heappop(heap)
            script = wscripts[idx]
            op = script.ops[seq]
            self.c_wb_ops.inc(self.mrank, key=(op.verb,))
            if ctx.now < arrival:
                ctx.charge(arrival - ctx.now)
            self._evict_idle(ctx.now)
            self._maybe_reload()
            resp, art_cached, gen = self._exec_wb_op(
                script, seq, op, rejected
            )
            finish = ctx.now
            latency = finish - arrival
            self.h_wb_latency.observe(
                self.mrank, latency, key=(op.verb,)
            )
            stats = self.gen_stats.setdefault(
                gen, {"queries": 0, "first_virtual_s": float(arrival)}
            )
            stats["queries"] += 1
            responses.append(
                {
                    "tenant": script.tenant,
                    "client": script.client,
                    "seq": seq,
                    "verb": op.verb,
                    "cached": art_cached,
                    "generation": gen,
                    "response": resp,
                }
            )
            latencies.append(latency)
            if seq + 1 < len(script.ops):
                heapq.heappush(
                    heap,
                    (finish + script.think_s[seq + 1], idx, seq + 1),
                )
        self._shutdown()
        return self._build_wb_report(responses, latencies, rejected)

    def _build_wb_report(
        self, responses, latencies, rejected
    ) -> WorkbenchReport:
        return WorkbenchReport(
            responses=responses,
            latencies=latencies,
            rejected=rejected,
            failed_ranks=sorted(
                s + 1
                for s in range(self.nshards)
                if s not in self.live
            ),
            makespan=self.ctx.now,
            sessions_opened=self.n_opened,
            sessions_closed=self.n_closed,
            sessions_evicted=self.n_evicted,
            sets_saved=self.n_sets,
            artifact_hits=self.n_art_hit,
            artifact_misses=self.n_art_miss,
            artifact_evictions=self.n_art_evict,
            generations=self.gen_stats,
        )


class _WorkbenchBroker(_WorkbenchCore, _Broker):
    """Single-tier workbench broker over the PR-4 shard ranks."""

    def __init__(
        self,
        ctx,
        store_dir: str,
        config: BrokerConfig,
        wcfg: WorkbenchConfig,
        generational: bool = False,
    ):
        _Broker.__init__(
            self, ctx, store_dir, config, generational=generational
        )
        self._init_workbench(wcfg)


class _WorkbenchTierBroker(_WorkbenchCore, _TierBroker):
    """Replicated-tier workbench broker with failover/hedging."""

    def __init__(
        self,
        ctx,
        store_dir: str,
        config: RouterConfig,
        wcfg: WorkbenchConfig,
        rmap: ReplicaMap,
        generational: bool,
    ):
        _TierBroker.__init__(
            self, ctx, store_dir, config, rmap, generational
        )
        self._init_workbench(wcfg)

    def _build_wb_report(self, responses, latencies, rejected) -> dict:
        return {
            "broker": self.broker_idx,
            "responses": responses,
            "latencies": latencies,
            "rejected": rejected,
            "counts": {
                "sessions_opened": self.n_opened,
                "sessions_closed": self.n_closed,
                "sessions_evicted": self.n_evicted,
                "sets_saved": self.n_sets,
                "artifact_hits": self.n_art_hit,
                "artifact_misses": self.n_art_miss,
                "artifact_evictions": self.n_art_evict,
            },
            "gen_stats": self.gen_stats,
            "makespan": self.ctx.now,
        }

    def run(self) -> dict:
        ctx = self.ctx
        while True:
            try:
                scripts = ctx.comm.recv(0, tag=TAG_SCRIPTS)
                break
            except CommTimeoutError:
                continue
        report = self.pump_workbench(list(scripts))
        ctx.comm.send(0, report, tag=TAG_REPORT)
        return report


# ----------------------------------------------------------------------
# router (replicated flavour)
# ----------------------------------------------------------------------
def _run_workbench_router(
    ctx, wscripts, cfg: RouterConfig, rmap: ReplicaMap
) -> WorkbenchReport:
    nbrokers, nworkers = cfg.brokers, cfg.workers
    worker_base = 1 + nbrokers
    assign: dict[int, list[WorkbenchScript]] = {
        b: [] for b in range(nbrokers)
    }
    # sticky *tenant* routing: a tenant's quota and artifact state
    # live on exactly one broker
    for script in wscripts:
        assign[
            broker_of_client(script.tenant, nbrokers, cfg.seed)
        ].append(script)
    for b in range(nbrokers):
        ctx.charge_cpu(50 * max(1, len(assign[b])))
        ctx.comm.send(1 + b, tuple(assign[b]), tag=TAG_SCRIPTS)
    reports: list[Optional[dict]] = []
    for b in range(nbrokers):
        while True:
            try:
                reports.append(ctx.comm.recv(1 + b, tag=TAG_REPORT))
                break
            except CommTimeoutError:
                continue
            except RankFailedError:
                reports.append(None)
                break
    dead = set(ctx.failed_ranks())
    for w in range(nworkers):
        rank = worker_base + w
        if rank not in dead:
            ctx.comm.send(rank, ("stop",), tag=TAG_REQ)
    live = [r for r in reports if r is not None]
    indexed: list[tuple[tuple[int, int, int], dict, float]] = []
    for rep in live:
        for resp, lat in zip(rep["responses"], rep["latencies"]):
            resp = dict(resp, broker=rep["broker"])
            indexed.append(
                (
                    (resp["tenant"], resp["client"], resp["seq"]),
                    resp,
                    lat,
                )
            )
    indexed.sort(key=lambda t: t[0])
    rejected = sorted(
        (r for rep in live for r in rep["rejected"]),
        key=lambda r: (r.tenant, r.client, r.seq),
    )
    generations: dict[int, dict] = {}
    for rep in live:
        for g, stats in rep["gen_stats"].items():
            agg = generations.setdefault(
                g,
                {
                    "queries": 0,
                    "first_virtual_s": stats["first_virtual_s"],
                },
            )
            agg["queries"] += stats["queries"]
            agg["first_virtual_s"] = min(
                agg["first_virtual_s"], stats["first_virtual_s"]
            )
    totals = {
        k: sum(rep["counts"][k] for rep in live)
        for k in (
            "sessions_opened",
            "sessions_closed",
            "sessions_evicted",
            "sets_saved",
            "artifact_hits",
            "artifact_misses",
            "artifact_evictions",
        )
    }
    return WorkbenchReport(
        responses=[r for _, r, _ in indexed],
        latencies=[lat for _, _, lat in indexed],
        rejected=rejected,
        failed_ranks=sorted(dead),
        makespan=max(
            (rep["makespan"] for rep in live), default=ctx.now
        ),
        generations=generations,
        per_broker=[
            {
                "broker": rep["broker"],
                "served": len(rep["responses"]),
                "rejected": len(rep["rejected"]),
                "makespan": rep["makespan"],
            }
            for rep in live
        ],
        **totals,
    )


# ----------------------------------------------------------------------
# rank mains + entry points
# ----------------------------------------------------------------------
def _workbench_main(
    ctx, store_dir, wscripts, wcfg, bcfg, nshards, ingest
):
    if ctx.rank == 0:
        return _WorkbenchBroker(
            ctx, store_dir, bcfg, wcfg, generational=ingest is not None
        ).pump_workbench(list(wscripts))
    if ctx.rank <= nshards:
        return _ShardWorker(ctx, store_dir).run()
    return ingest.run(ctx, store_dir)


def _workbench_tier_main(
    ctx, store_dir, wscripts, wcfg, cfg, rmap, ingest
):
    nbrokers, nworkers = cfg.brokers, cfg.workers
    if ctx.rank == 0:
        return _run_workbench_router(ctx, wscripts, cfg, rmap)
    if ctx.rank <= nbrokers:
        return _WorkbenchTierBroker(
            ctx,
            store_dir,
            cfg,
            wcfg,
            rmap,
            generational=ingest is not None,
        ).run()
    if ctx.rank <= nbrokers + nworkers:
        return _ReplicaWorker(ctx, store_dir, rmap, nbrokers).run()
    return ingest.run(ctx, store_dir)


def serve_workbench(
    store_dir: str | os.PathLike,
    wscripts: list[WorkbenchScript],
    config: Optional[WorkbenchConfig] = None,
    broker: Optional[BrokerConfig] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
    ingest=None,
    backend: str = "sim",
) -> WorkbenchReport:
    """Run one workbench session over a sharded store.

    Spawns ``nshards + 1`` ranks (plus one when ``ingest`` is given),
    answers every scripted analyst op, and returns the
    :class:`WorkbenchReport` with the run's metrics snapshot attached.
    ``backend`` selects the execution backend (``sim``/``mp``);
    transcripts are bit-exact across both.
    """
    store_dir = str(store_dir)
    manifest = load_manifest(store_dir)
    wcfg = config if config is not None else WorkbenchConfig()
    bcfg = broker if broker is not None else BrokerConfig()
    nprocs = manifest.nshards + 1 + (1 if ingest is not None else 0)
    cluster = Cluster(
        nprocs, machine=machine, faults=faults, backend=backend
    )
    result = cluster.run(
        _workbench_main,
        store_dir,
        tuple(wscripts),
        wcfg,
        bcfg,
        manifest.nshards,
        ingest,
        raise_on_failure=False,
    )
    report = result.rank_results[0]
    if report is None:
        raise RankFailedError(
            result.failed_ranks, "workbench broker rank crashed"
        )
    report.metrics = result.metrics.snapshot()
    report.failed_ranks = sorted(
        set(report.failed_ranks) | set(result.failed_ranks)
    )
    if ingest is not None:
        report.ingest = result.rank_results[manifest.nshards + 1]
    return report


def serve_workbench_replicated(
    store_dir: str | os.PathLike,
    wscripts: list[WorkbenchScript],
    config: Optional[WorkbenchConfig] = None,
    router: Optional[RouterConfig] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
    ingest=None,
    backend: str = "sim",
) -> WorkbenchReport:
    """Run one workbench session over the replicated worker tier.

    Tenants route stickily to ``router.brokers`` workbench brokers;
    shard requests fan out over ``replicas`` copies with failover and
    hedging, so with ``replicas >= 2`` a worker crash mid-session is
    masked byte-for-byte.
    """
    from dataclasses import replace as _replace

    store_dir = str(store_dir)
    manifest = load_manifest(store_dir)
    wcfg = config if config is not None else WorkbenchConfig()
    cfg = router if router is not None else RouterConfig()
    replicas = cfg.replicas or max(1, manifest.replication)
    workers = cfg.workers or max(manifest.nshards, replicas)
    if cfg.brokers < 1:
        raise ValueError(f"need at least one broker, got {cfg.brokers}")
    cfg = _replace(cfg, replicas=replicas, workers=workers)
    rmap = ReplicaMap.place(
        manifest.nshards,
        replicas,
        workers,
        vnodes=cfg.vnodes,
        seed=cfg.seed,
    )
    nprocs = 1 + cfg.brokers + workers + (1 if ingest is not None else 0)
    cluster = Cluster(
        nprocs, machine=machine, faults=faults, backend=backend
    )
    result = cluster.run(
        _workbench_tier_main,
        store_dir,
        tuple(wscripts),
        wcfg,
        cfg,
        rmap,
        ingest,
        raise_on_failure=False,
    )
    report = result.rank_results[0]
    if report is None:
        raise RankFailedError(
            result.failed_ranks, "workbench router rank crashed"
        )
    report.metrics = result.metrics.snapshot()
    report.failed_ranks = sorted(
        set(report.failed_ranks) | set(result.failed_ranks)
    )
    if ingest is not None:
        report.ingest = result.rank_results[nprocs - 1]
    return report
