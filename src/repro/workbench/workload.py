"""Seeded analyst workloads for the workbench tier.

An analyst script is the workbench analogue of a client script:
``open`` a session, build result sets with searches, narrow them with
``refine`` and the set combinators, derive keyphrase / co-occurrence /
relation artifacts, and ``close``.  Everything is drawn from
``np.random.default_rng(seed)`` over the store profile, so a
``(profile, seed, knobs)`` triple always yields the byte-identical
workload -- the property the serving benchmark's exact-equality
baseline rests on.

Sessions of one tenant draw their anchor queries from a small shared
per-tenant pool: two sessions anchoring on the same query build the
same result set (same digest), which is what gives the per-tenant
artifact cache something to hit.  ``pause_fraction`` injects one long
idle gap into a fraction of sessions -- eviction fodder for the
virtual-time TTL sweep, after which the script's remaining ops answer
with typed ``session_evicted`` rejections.
"""

from __future__ import annotations

import numpy as np

from repro.serve.query import Query
from repro.serve.workload import StoreProfile, _rank_biased_term
from repro.workbench.state import WorkbenchOp, WorkbenchScript

#: body-op draw weights (cumulative over this order)
_BODY_VERBS = (
    "search",
    "refine",
    "combine",
    "keyphrases",
    "cooccur",
    "relations",
)
_BODY_WEIGHTS = (0.25, 0.20, 0.20, 0.15, 0.10, 0.10)


def _set_query(
    rng: np.random.Generator, profile: StoreProfile
) -> Query:
    """One ranked set-builder query (search or pseudo-signature)."""
    kind = "search" if rng.random() < 0.6 else "query"
    n_terms = 1 + int(rng.integers(0, 3))
    terms = tuple(
        _rank_biased_term(rng, profile.terms) for _ in range(n_terms)
    )
    return Query(kind=kind, terms=terms, k=20)


def generate_analyst_workload(
    profile: StoreProfile,
    n_tenants: int = 2,
    sessions_per_tenant: int = 2,
    ops_per_session: int = 8,
    seed: int = 0,
    mean_think_s: float = 0.05,
    derive_terms: int = 8,
    pool_size: int = 3,
    pause_fraction: float = 0.0,
    pause_s: float = 0.0,
) -> list[WorkbenchScript]:
    """Generate seeded analyst sessions over a store profile.

    Each script is ``open`` + ``ops_per_session`` body ops + a trailing
    keyphrase derive on the session's anchor set + ``close``.  The
    anchor set is always built first from the tenant's shared query
    pool, so repeated derives across a tenant's sessions share cache
    keys.  Fully deterministic in ``(profile, seed, knobs)``.
    """
    if not profile.terms:
        raise ValueError("store profile has no terms; nothing to mine")
    if n_tenants < 1 or sessions_per_tenant < 1:
        raise ValueError("need at least one tenant and one session")
    if ops_per_session < 1:
        raise ValueError("ops_per_session must be >= 1")
    rng = np.random.default_rng(seed)
    pools = [
        [_set_query(rng, profile) for _ in range(pool_size)]
        for _ in range(n_tenants)
    ]
    cum = np.cumsum(
        np.array(_BODY_WEIGHTS, dtype=np.float64)
        / sum(_BODY_WEIGHTS)
    )
    scripts: list[WorkbenchScript] = []
    client = 0
    for tenant in range(n_tenants):
        for _ in range(sessions_per_tenant):
            ops: list[WorkbenchOp] = [WorkbenchOp(verb="open")]
            anchor = pools[tenant][
                int(rng.integers(len(pools[tenant])))
            ]
            ops.append(
                WorkbenchOp(verb="search", name="anchor", query=anchor)
            )
            names = ["anchor"]
            counter = 0
            for _ in range(max(0, ops_per_session - 2)):
                verb = _BODY_VERBS[
                    int(
                        np.searchsorted(
                            cum, rng.random(), side="right"
                        )
                    )
                ]
                if verb == "search":
                    counter += 1
                    name = f"s{counter}"
                    ops.append(
                        WorkbenchOp(
                            verb="search",
                            name=name,
                            query=_set_query(rng, profile),
                        )
                    )
                    names.append(name)
                elif verb == "refine":
                    base = names[int(rng.integers(len(names)))]
                    counter += 1
                    name = f"s{counter}"
                    ops.append(
                        WorkbenchOp(
                            verb="refine",
                            name=name,
                            base=base,
                            query=_set_query(rng, profile),
                        )
                    )
                    names.append(name)
                elif verb == "combine":
                    a = names[int(rng.integers(len(names)))]
                    b = names[int(rng.integers(len(names)))]
                    kind = ("union", "diff", "intersect")[
                        int(rng.integers(3))
                    ]
                    counter += 1
                    name = f"s{counter}"
                    ops.append(
                        WorkbenchOp(
                            verb=kind, name=name, base=a, other=b
                        )
                    )
                    names.append(name)
                else:  # derive on a random existing set
                    base = names[int(rng.integers(len(names)))]
                    ops.append(
                        WorkbenchOp(
                            verb=verb, base=base, n=derive_terms
                        )
                    )
            # the cache-fodder derive: every session of a tenant that
            # anchored on the same pool query shares this artifact key
            ops.append(
                WorkbenchOp(
                    verb="keyphrases", base="anchor", n=derive_terms
                )
            )
            ops.append(WorkbenchOp(verb="close"))
            think = [
                float(rng.exponential(mean_think_s)) for _ in ops
            ]
            paused = rng.random() < pause_fraction
            if paused and pause_s > 0.0 and len(ops) > 3:
                # one long mid-session gap: eviction fodder
                think[len(ops) // 2] = float(pause_s)
            scripts.append(
                WorkbenchScript(
                    tenant=tenant,
                    client=client,
                    ops=tuple(ops),
                    think_s=tuple(think),
                )
            )
            client += 1
    return scripts
