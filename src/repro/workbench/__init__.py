"""Analyst workbench: multi-tenant sessions above the serving tier.

The Sifaka-style mining layer of the reproduction: analysts open
server-side *sessions* against the broker, save named result sets,
combine them with set algebra (``refine``/``union``/``diff``/
``intersect``), and derive keyphrase, co-occurrence, and
entity-relation artifacts over a set -- all with the serving layer's
``(-score, row)`` ordering and byte-identical answers across
schedulers, execution backends, shard counts, and live ingest churn.
"""

from repro.workbench.state import (
    WORKBENCH_VERBS,
    WorkbenchConfig,
    WorkbenchOp,
    WorkbenchReject,
    WorkbenchReport,
    WorkbenchScript,
    diff_sets,
    intersect_sets,
    order_set,
    set_digest,
    union_sets,
)
from repro.workbench.service import (
    serve_workbench,
    serve_workbench_replicated,
)
from repro.workbench.workload import generate_analyst_workload

__all__ = [
    "WORKBENCH_VERBS",
    "WorkbenchConfig",
    "WorkbenchOp",
    "WorkbenchReject",
    "WorkbenchReport",
    "WorkbenchScript",
    "diff_sets",
    "intersect_sets",
    "order_set",
    "set_digest",
    "union_sets",
    "serve_workbench",
    "serve_workbench_replicated",
    "generate_analyst_workload",
]
