"""Scan & Map: tokenize sources and build the forward index.

Paper §3.2: each process scans its list of sources, tokenizes the byte
stream, and identifies records, fields and terms locally, producing a
field-to-term table (terms identified in each field) and a
document-to-field table -- *forward indexing*.  Unique terms are
registered in the global vocabulary hashmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.text.documents import Document
from repro.text.tokenizer import Tokenizer


@dataclass
class ScannedDocument:
    """Forward-indexed record: tokens per field, in field order."""

    doc_id: int
    field_names: list[str]
    field_tokens: list[list[str]]
    nbytes: int

    @property
    def ntokens(self) -> int:
        return sum(len(t) for t in self.field_tokens)

    def all_tokens(self) -> list[str]:
        out: list[str] = []
        for toks in self.field_tokens:
            out.extend(toks)
        return out


@dataclass
class ScanStats:
    """Work counters that feed the scan-stage cost model."""

    ndocs: int = 0
    nbytes: int = 0
    ntokens: int = 0
    nfields: int = 0


def scan_documents(
    documents: Sequence[Document], tokenizer: Tokenizer
) -> tuple[list[ScannedDocument], ScanStats]:
    """Tokenize ``documents`` into forward-index records."""
    scanned: list[ScannedDocument] = []
    stats = ScanStats()
    for doc in documents:
        names = list(doc.fields.keys())
        tokens = [tokenizer.tokens(text) for text in doc.fields.values()]
        rec = ScannedDocument(
            doc_id=doc.doc_id,
            field_names=names,
            field_tokens=tokens,
            nbytes=doc.nbytes,
        )
        scanned.append(rec)
        stats.ndocs += 1
        stats.nbytes += rec.nbytes
        stats.ntokens += rec.ntokens
        stats.nfields += len(names)
    return scanned, stats


def unique_terms(scanned: Sequence[ScannedDocument]) -> list[str]:
    """Sorted distinct terms across scanned documents."""
    seen: set[str] = set()
    for rec in scanned:
        for toks in rec.field_tokens:
            seen.update(toks)
    return sorted(seen)
