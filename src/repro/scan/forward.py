"""Encoded forward index: documents as global-term-ID arrays.

After the vocabulary is finalized, tokens become dense global term IDs
and the forward index becomes a set of NumPy arrays -- the structure
the inverted-file-indexing stage chunks into *loads* for dynamic load
balancing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .scanner import ScannedDocument


@dataclass
class EncodedDocument:
    """One record's token stream as dense term IDs, with field slices."""

    doc_id: int
    #: all fields' term IDs concatenated in field order
    gids: np.ndarray
    #: ``gids[field_offsets[f]:field_offsets[f+1]]`` is field ``f``
    field_offsets: np.ndarray
    #: global field IDs, aligned with field slices
    field_ids: np.ndarray

    @property
    def ntokens(self) -> int:
        return int(self.gids.shape[0])


@dataclass
class ForwardIndex:
    """A rank's forward index: encoded documents in global-doc order."""

    docs: list[EncodedDocument]

    def __len__(self) -> int:
        return len(self.docs)

    @property
    def total_postings(self) -> int:
        return sum(d.ntokens for d in self.docs)

    def nbytes_of_chunk(self, lo: int, hi: int) -> int:
        """Approximate size of documents ``[lo, hi)`` for transfer costs."""
        return sum(
            d.gids.nbytes + d.field_offsets.nbytes + d.field_ids.nbytes + 16
            for d in self.docs[lo:hi]
        )

    def token_weights(
        self, nfields_global: int, field_weight_by_idx: np.ndarray
    ) -> list[np.ndarray]:
        """Per-token weight arrays from per-field weights.

        ``field_weight_by_idx[f]`` is the weight of canonical field
        index ``f``; each document's tokens inherit their field's
        weight (used for field-emphasized signatures).
        """
        out: list[np.ndarray] = []
        for d in self.docs:
            if d.ntokens == 0:
                out.append(np.empty(0, dtype=np.float64))
                continue
            field_idx = d.field_ids % nfields_global
            counts = np.diff(d.field_offsets)
            out.append(
                np.repeat(
                    np.asarray(field_weight_by_idx, dtype=np.float64)[
                        field_idx
                    ],
                    counts,
                )
            )
        return out

    def chunk_streams(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated (gids, doc_ids, field_ids) for documents [lo, hi).

        ``doc_ids`` and ``field_ids`` are expanded per token, ready for
        FAST-INV inversion.
        """
        gid_parts: list[np.ndarray] = []
        doc_parts: list[np.ndarray] = []
        fld_parts: list[np.ndarray] = []
        for d in self.docs[lo:hi]:
            n = d.ntokens
            if n == 0:
                continue
            gid_parts.append(d.gids)
            doc_parts.append(np.full(n, d.doc_id, dtype=np.int64))
            counts = np.diff(d.field_offsets)
            fld_parts.append(np.repeat(d.field_ids, counts))
        if not gid_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate(gid_parts),
            np.concatenate(doc_parts),
            np.concatenate(fld_parts),
        )


def encode_forward(
    scanned: Sequence[ScannedDocument],
    term_to_gid: Mapping[str, int],
    field_name_to_id: Mapping[str, int],
) -> ForwardIndex:
    """Turn scanned token text into dense-ID forward records."""
    docs: list[EncodedDocument] = []
    nfields_global = max(field_name_to_id.values(), default=-1) + 1
    for rec in scanned:
        offsets = [0]
        gid_parts: list[np.ndarray] = []
        field_ids: list[int] = []
        for name, toks in zip(rec.field_names, rec.field_tokens):
            gid_parts.append(
                np.fromiter(
                    (term_to_gid[t] for t in toks),
                    dtype=np.int64,
                    count=len(toks),
                )
            )
            offsets.append(offsets[-1] + len(toks))
            # a *global* field id: unique per (document, field name)
            field_ids.append(
                rec.doc_id * nfields_global + field_name_to_id[name]
            )
        gids = (
            np.concatenate(gid_parts)
            if gid_parts
            else np.empty(0, dtype=np.int64)
        )
        docs.append(
            EncodedDocument(
                doc_id=rec.doc_id,
                gids=gids,
                field_offsets=np.asarray(offsets, dtype=np.int64),
                field_ids=np.asarray(field_ids, dtype=np.int64),
            )
        )
    return ForwardIndex(docs=docs)
