"""Vocabulary finalization: provisional hashmap IDs -> dense global IDs.

During scanning, ranks register unique terms in the distributed
hashmap, which hands out provisional (strided) IDs on demand.  Once the
forward-indexing phase completes ("at the end of forward indexing
phase, the hashmap construction will be completed and all the unique
terms will have a unique global ID" -- §3.2), the vocabulary is
*finalized*: every owner sorts its terms and assigns dense consecutive
IDs within a contiguous per-owner block.

This step buys two things:

* term statistics become plain arrays with contiguous per-owner row
  blocks (an :class:`~repro.ga.IrregularBlockDistribution`), exactly
  the "global array storing term statistics" of §3.3;
* the assignment is independent of scan-time insertion order, so any
  processor count yields the same deterministic vocabulary layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ga.distribution import IrregularBlockDistribution
from repro.ga.hashmap import GlobalHashMap
from repro.runtime.context import RankContext
from repro.runtime.machine import Scale


@dataclass
class VocabMap:
    """Finalized vocabulary shared by every rank."""

    #: term -> dense global ID (replicated)
    term_to_gid: dict[str, int]
    #: dense global ID -> term (replicated)
    gid_to_term: list[str]
    #: per-owner row blocks of the dense ID space
    dist: IrregularBlockDistribution

    @property
    def size(self) -> int:
        return len(self.gid_to_term)

    def owner_of_gid(self, gid: int) -> int:
        return self.dist.owner_of(gid)


def finalize_vocabulary(ctx: RankContext, hashmap: GlobalHashMap) -> VocabMap:
    """Collectively assign dense global IDs (all ranks call).

    Each owner sorts its shard's terms; dense IDs are the position in
    the concatenation of the sorted shards in rank order.  The full
    term table is replicated via allgather (the paper keeps the
    vocabulary globally accessible in global arrays).
    """
    mine = sorted(t for t, _ in hashmap.local_items())
    ctx.charge_cpu(len(mine) * 20, Scale.VOCAB)  # local sort
    vocab_factor = ctx.machine.scaled(1.0, Scale.VOCAB)
    shard_nbytes = sum(len(t) + 8 for t in mine) + 16
    shards = ctx.comm.allgather(mine, nbytes_hint=shard_nbytes * vocab_factor)
    counts = [len(s) for s in shards]
    dist = IrregularBlockDistribution.from_counts(counts)
    gid_to_term: list[str] = []
    for shard in shards:
        gid_to_term.extend(shard)
    term_to_gid = {t: i for i, t in enumerate(gid_to_term)}
    ctx.charge_cpu(len(gid_to_term) * 4, Scale.VOCAB)  # table build
    return VocabMap(
        term_to_gid=term_to_gid, gid_to_term=gid_to_term, dist=dist
    )


def finalize_vocabulary_serial(terms: list[str]) -> VocabMap:
    """Single-process equivalent used by the serial engine."""
    ordered = sorted(set(terms))
    dist = IrregularBlockDistribution.from_counts([len(ordered)])
    return VocabMap(
        term_to_gid={t: i for i, t in enumerate(ordered)},
        gid_to_term=list(ordered),
        dist=dist,
    )
