"""Scan & Map stage: tokenization, forward indexing, vocabulary."""

from .forward import EncodedDocument, ForwardIndex, encode_forward
from .scanner import ScanStats, ScannedDocument, scan_documents, unique_terms
from .vocabulary import (
    VocabMap,
    finalize_vocabulary,
    finalize_vocabulary_serial,
)

__all__ = [
    "EncodedDocument",
    "ForwardIndex",
    "ScanStats",
    "ScannedDocument",
    "VocabMap",
    "encode_forward",
    "finalize_vocabulary",
    "finalize_vocabulary_serial",
    "scan_documents",
    "unique_terms",
]
