"""Distributed hashmap for the global vocabulary.

The paper deploys ARMCI remote procedure calls to implement a scalable
distributed hashmap: each unique term discovered during scanning is
hashed to an owner rank and inserted there, receiving a globally unique
term ID.  We reproduce exactly that structure:

* ownership: ``crc32(term) % nprocs`` (deterministic across runs,
  unlike Python's salted ``hash``);
* IDs: owner ``o`` hands out ``count * nprocs + o`` -- globally unique
  without any coordination, like a strided ID block per owner;
* cost: a local insert costs a dictionary operation; a remote insert
  costs one RPC round-trip.  Ranks are expected to keep a local cache
  (the scanner does) so each unique term is inserted once.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional

from repro.runtime.context import RankContext
from repro.runtime.errors import TransientRpcError


def term_owner(term: str, nprocs: int) -> int:
    """Deterministic owner rank of a term."""
    return zlib.crc32(term.encode("utf-8")) % nprocs


#: retry policy for transiently-failing insert RPCs: attempts and the
#: initial virtual-seconds backoff (doubles per retry)
RPC_RETRIES = 4
RPC_BACKOFF_S = 2e-4


class _OwnerState:
    """One rank's shard of the hashmap."""

    __slots__ = ("table", "next_local")

    def __init__(self) -> None:
        self.table: dict[str, int] = {}
        self.next_local = 0


class GlobalHashMap:
    """Distributed term -> global-ID map with RPC-style inserts."""

    def __init__(self, ctx: RankContext, name: str, shards: list[_OwnerState]):
        self._ctx = ctx
        self.name = name
        self.nprocs = ctx.nprocs
        self._shards = shards
        self._m_ops = ctx.metrics.counter("hashmap.ops", ("map", "locality"))
        self._m_retries = ctx.metrics.counter("hashmap.rpc_retries", ("map",))

    def _record_op(self, owner: int) -> None:
        """Count one map operation as local or remote to its owner."""
        locality = "local" if owner == self._ctx.rank else "remote"
        self._m_ops.inc(self._ctx.rank, key=(self.name, locality))

    @classmethod
    def create(cls, ctx: RankContext, name: str) -> "GlobalHashMap":
        """Collectively create a named hashmap (all ranks call)."""
        key = f"hashmap:{name}"
        ctx.comm.barrier()
        ctx.sched.wait_turn(ctx.rank)
        shards = ctx.world.shared_state(
            key, lambda: [_OwnerState() for _ in range(ctx.nprocs)]
        )
        return cls(ctx, name, shards)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def owner_of(self, term: str) -> int:
        return term_owner(term, self.nprocs)

    def _rpc_with_retry(
        self,
        owner: int,
        handler: Callable[..., Any],
        nbytes_out: float,
        nbytes_in: float,
    ) -> Any:
        """Issue an RPC, retrying transient flakes with backoff.

        Hashmap inserts are idempotent (get-or-insert), so re-issuing
        a flaked call is safe.  Each retry waits an exponentially
        growing virtual-time backoff before re-sending; the transient
        error propagates only once the budget is exhausted.
        """
        backoff = RPC_BACKOFF_S
        for attempt in range(RPC_RETRIES + 1):
            try:
                return self._ctx.rpc(
                    owner, handler, nbytes_out=nbytes_out, nbytes_in=nbytes_in
                )
            except TransientRpcError:
                self._m_retries.inc(self._ctx.rank, key=(self.name,))
                if attempt == RPC_RETRIES:
                    raise
                self._ctx.charge(backoff)
                backoff *= 2.0

    def get_or_insert(self, term: str) -> int:
        """Insert ``term`` if absent; return its global ID either way."""
        owner = self.owner_of(term)
        shard = self._shards[owner]

        def handler() -> int:
            gid = shard.table.get(term)
            if gid is None:
                gid = shard.next_local * self.nprocs + owner
                shard.table[term] = gid
                shard.next_local += 1
            return gid

        nbytes = 16.0 + len(term)
        self._record_op(owner)
        gid = self._rpc_with_retry(
            owner, handler, nbytes_out=nbytes, nbytes_in=16.0
        )
        if owner != self._ctx.rank:
            self._ctx.world.post_hashmap_sideband(self.name, owner, [term])
        return gid

    def get_or_insert_batch(self, terms: list[str]) -> dict[str, int]:
        """Insert many terms with one aggregated RPC per owner rank.

        ARMCI (the Aggregate Remote Memory Copy Interface) supports
        aggregating small operations into one network transaction; the
        scanner uses this to register each of its unique terms exactly
        once without paying a round-trip per term.
        """
        by_owner: dict[int, list[str]] = {}
        for t in terms:
            by_owner.setdefault(self.owner_of(t), []).append(t)
        out: dict[str, int] = {}
        for owner in sorted(by_owner):
            batch = by_owner[owner]
            shard = self._shards[owner]

            def handler(batch=batch, shard=shard, owner=owner) -> list[int]:
                gids = []
                for term in batch:
                    gid = shard.table.get(term)
                    if gid is None:
                        gid = shard.next_local * self.nprocs + owner
                        shard.table[term] = gid
                        shard.next_local += 1
                    gids.append(gid)
                return gids

            nbytes = sum(len(t) for t in batch) + 16.0 * len(batch)
            self._record_op(owner)
            gids = self._rpc_with_retry(
                owner, handler, nbytes_out=nbytes, nbytes_in=8.0 * len(batch)
            )
            # aggregate op still pays per-element handler work
            self._ctx.charge(
                self._ctx.machine.rpc_handler_cost_s * max(0, len(batch) - 1)
            )
            if owner != self._ctx.rank:
                # under the mp backend the handler above ran against a
                # process-local replica of the owner's shard; replicate
                # the inserted terms to the owner's process so its
                # local_items() is complete before finalization
                self._ctx.world.post_hashmap_sideband(self.name, owner, batch)
            out.update(zip(batch, gids))
        return out

    def lookup(self, term: str) -> Optional[int]:
        """Return the global ID of ``term`` or ``None``."""
        owner = self.owner_of(term)
        shard = self._shards[owner]
        nbytes = 16.0 + len(term)
        self._record_op(owner)
        return self._rpc_with_retry(
            owner,
            lambda: shard.table.get(term),
            nbytes_out=nbytes,
            nbytes_in=16.0,
        )

    def restore_terms(self, terms) -> int:
        """Re-register checkpointed vocabulary terms owned by this rank.

        Checkpoint restore path: every rank filters the saved global
        term list down to its own shard and re-inserts locally (no
        RPCs).  Insertion in sorted order keeps provisional IDs
        deterministic; the dense IDs are re-derived later by
        vocabulary finalization, so they stay consistent even when the
        restart runs with fewer ranks than the checkpointing run.
        Returns the number of terms restored, for cost charging.
        """
        rank = self._ctx.rank
        shard = self._shards[rank]
        mine = sorted(t for t in terms if self.owner_of(t) == rank)
        for term in mine:
            if term not in shard.table:
                shard.table[term] = shard.next_local * self.nprocs + rank
                shard.next_local += 1
        return len(mine)

    def local_items(self) -> list[tuple[str, int]]:
        """(term, gid) pairs owned by the calling rank (no comm cost)."""
        return list(self._shards[self._ctx.rank].table.items())

    def local_size(self) -> int:
        return len(self._shards[self._ctx.rank].table)

    def global_size(self) -> int:
        """Collective: total number of unique terms."""
        return self._ctx.comm.allreduce(self.local_size())

    def all_items(self) -> dict[str, int]:
        """Collective: the full term -> gid mapping on every rank."""
        pieces = self._ctx.comm.allgather(self.local_items())
        out: dict[str, int] = {}
        for piece in pieces:
            out.update(piece)
        return out
