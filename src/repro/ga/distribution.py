"""Block data distributions for global arrays.

Global Arrays distributes dense arrays in regular blocks across ranks
and exposes the layout to the programmer so locality can be exploited.
We implement block distribution along the first axis (the layout every
structure in the paper's engine uses) plus a degenerate replicated
layout for small read-mostly tables.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.runtime.errors import RuntimeMisuseError


@dataclass(frozen=True)
class BlockDistribution:
    """Rows ``[lo_r, hi_r)`` of axis 0 live on rank ``r``.

    Rows are divided as evenly as possible: the first ``n % p`` ranks
    get one extra row, matching GA's default regular distribution.
    """

    nrows: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.nrows < 0:
            raise RuntimeMisuseError(f"nrows must be >= 0, got {self.nrows}")
        if self.nprocs < 1:
            raise RuntimeMisuseError(
                f"nprocs must be >= 1, got {self.nprocs}"
            )

    def local_range(self, rank: int) -> tuple[int, int]:
        """Half-open row range owned by ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise RuntimeMisuseError(
                f"rank {rank} out of range [0, {self.nprocs})"
            )
        base, extra = divmod(self.nrows, self.nprocs)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi

    def local_count(self, rank: int) -> int:
        lo, hi = self.local_range(rank)
        return hi - lo

    def owner_of(self, row: int) -> int:
        """Rank owning global row ``row``."""
        if not 0 <= row < self.nrows:
            raise RuntimeMisuseError(
                f"row {row} out of range [0, {self.nrows})"
            )
        base, extra = divmod(self.nrows, self.nprocs)
        boundary = extra * (base + 1)
        if row < boundary:
            return row // (base + 1) if base + 1 > 0 else 0
        if base == 0:
            return extra  # unreachable when row < nrows, defensive
        return extra + (row - boundary) // base

    def owners_of_range(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        """Split global row range ``[lo, hi)`` by owner.

        Returns ``(rank, sub_lo, sub_hi)`` triples covering the range in
        order.  Used to split one-sided get/put requests into per-owner
        messages for the cost model.
        """
        if lo < 0 or hi > self.nrows or lo > hi:
            raise RuntimeMisuseError(
                f"range [{lo}, {hi}) invalid for nrows={self.nrows}"
            )
        parts: list[tuple[int, int, int]] = []
        row = lo
        while row < hi:
            r = self.owner_of(row)
            _, owner_hi = self.local_range(r)
            sub_hi = min(hi, owner_hi)
            parts.append((r, row, sub_hi))
            row = sub_hi
        return parts


@dataclass(frozen=True)
class IrregularBlockDistribution:
    """Explicit row boundaries: rank ``r`` owns ``[bounds[r], bounds[r+1])``.

    Used when ownership must align with an externally determined
    partition -- e.g. the term-statistics arrays whose rows are owned
    by whichever rank owns that term in the vocabulary hashmap.
    """

    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bounds) < 2:
            raise RuntimeMisuseError("bounds needs at least [0, nrows]")
        if self.bounds[0] != 0:
            raise RuntimeMisuseError("bounds must start at 0")
        if any(b > a for a, b in zip(self.bounds[1:], self.bounds[:-1])):
            raise RuntimeMisuseError("bounds must be non-decreasing")

    @classmethod
    def from_counts(cls, counts: "list[int]") -> "IrregularBlockDistribution":
        bounds = [0]
        for c in counts:
            bounds.append(bounds[-1] + int(c))
        return cls(tuple(bounds))

    @property
    def nrows(self) -> int:
        return self.bounds[-1]

    @property
    def nprocs(self) -> int:
        return len(self.bounds) - 1

    def local_range(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.nprocs:
            raise RuntimeMisuseError(
                f"rank {rank} out of range [0, {self.nprocs})"
            )
        return self.bounds[rank], self.bounds[rank + 1]

    def local_count(self, rank: int) -> int:
        lo, hi = self.local_range(rank)
        return hi - lo

    def owner_of(self, row: int) -> int:
        if not 0 <= row < self.nrows:
            raise RuntimeMisuseError(
                f"row {row} out of range [0, {self.nrows})"
            )
        # rightmost rank whose lower bound is <= row and that owns rows
        r = bisect.bisect_right(self.bounds, row) - 1
        # skip empty ranks (bounds may repeat)
        while self.local_count(r) == 0:
            r += 1
        return r

    def owners_of_range(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        if lo < 0 or hi > self.nrows or lo > hi:
            raise RuntimeMisuseError(
                f"range [{lo}, {hi}) invalid for nrows={self.nrows}"
            )
        parts: list[tuple[int, int, int]] = []
        row = lo
        while row < hi:
            r = self.owner_of(row)
            _, owner_hi = self.local_range(r)
            sub_hi = min(hi, owner_hi)
            parts.append((r, row, sub_hi))
            row = sub_hi
        return parts
