"""Global-Arrays-style global address space substrate.

Reproduces the pieces of the Global Array Toolkit / ARMCI stack the
paper relies on: block-distributed dense arrays with one-sided
get/put/accumulate and atomic fetch-and-increment, an RPC-backed
distributed hashmap for the global vocabulary, and the shared task
queue used for dynamic load balancing during inverted-file indexing.
"""

from .array import GlobalArray
from .distribution import BlockDistribution, IrregularBlockDistribution
from .hashmap import GlobalHashMap, term_owner
from .taskqueue import SharedTaskQueue

__all__ = [
    "BlockDistribution",
    "GlobalArray",
    "GlobalHashMap",
    "IrregularBlockDistribution",
    "SharedTaskQueue",
    "term_owner",
]
