"""Global Arrays: distributed dense arrays with one-sided access.

This is the reproduction's stand-in for the Global Array Toolkit the
paper builds on.  A :class:`GlobalArray` is created *collectively*,
block-distributed along its first axis, and then accessed with
*one-sided* ``get``/``put``/``acc`` operations plus the atomic
``read_inc`` (fetch-and-increment) that powers the paper's dynamic
load balancer.  No cooperation from the owner rank is required -- the
virtual-time scheduler's global operation ordering provides the
consistency that ARMCI provides on real hardware.

Costs: accesses are split by owner; the locally-owned part is charged
at memory-copy speed, remote parts as one-sided network transfers, so
algorithms that exploit locality (as GA encourages) are rewarded by
the model exactly as on the paper's cluster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime.context import RankContext
from repro.runtime.errors import RuntimeMisuseError

from .distribution import BlockDistribution


class GlobalArray:
    """A block-distributed dense array in the global address space."""

    def __init__(
        self,
        ctx: RankContext,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
        dist: BlockDistribution,
        backing: np.ndarray,
    ):
        self._ctx = ctx
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.dist = dist
        self._data = backing
        self._m_onesided = ctx.metrics.counter(
            "comm.onesided.bytes", ("peer", "dir")
        )

    # ------------------------------------------------------------------
    # collective lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        ctx: RankContext,
        name: str,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
        fill: float = 0,
        dist=None,
    ) -> "GlobalArray":
        """Collectively create a named global array (all ranks call).

        ``dist`` defaults to a regular block distribution along axis 0;
        pass an :class:`~repro.ga.distribution.IrregularBlockDistribution`
        to align ownership with an external partition (e.g. the term
        statistics arrays whose rows follow vocabulary ownership).
        """
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise RuntimeMisuseError(f"bad shape {shape}")
        if dist is not None and dist.nrows != shape[0]:
            raise RuntimeMisuseError(
                f"distribution covers {dist.nrows} rows, array has {shape[0]}"
            )
        key = f"ga:{name}"
        # Rendezvous so every rank sees the same backing store.
        ctx.comm.barrier()
        ctx.sched.wait_turn(ctx.rank)
        entry = ctx.world.registry.get(key)
        if entry is None:
            if dist is None:
                dist = BlockDistribution(shape[0], ctx.nprocs)
            # the world decides where the backing memory lives (a
            # private allocation under the simulator, a shared-memory
            # segment under the mp backend)
            data = ctx.world.alloc_ndarray(key, shape, fill, np.dtype(dtype))
            entry = (data, dist, shape, np.dtype(dtype))
            ctx.world.registry[key] = entry
        else:
            if entry[2] != shape or entry[3] != np.dtype(dtype):
                raise RuntimeMisuseError(
                    f"ranks disagree on global array {name!r}: "
                    f"{entry[2]}/{entry[3]} vs {shape}/{np.dtype(dtype)}"
                )
        data, dist, _, _ = entry
        return cls(ctx, name, shape, np.dtype(dtype), dist, data)

    def destroy(self) -> None:
        """Collectively free the array."""
        self._ctx.comm.barrier()
        self._ctx.sched.wait_turn(self._ctx.rank)
        self._ctx.world.registry.pop(f"ga:{self.name}", None)

    # ------------------------------------------------------------------
    # one-sided access
    # ------------------------------------------------------------------
    def get(self, lo: int, hi: Optional[int] = None) -> np.ndarray:
        """One-sided read of global rows ``[lo, hi)`` (copy)."""
        lo, hi = self._normalize(lo, hi)
        self._ctx.sched.wait_turn(self._ctx.rank)
        out = self._data[lo:hi].copy()
        self._charge_transfer(lo, hi, "get")
        return out

    def put(self, lo: int, values: np.ndarray) -> None:
        """One-sided write starting at global row ``lo``."""
        values = np.asarray(values, dtype=self.dtype)
        hi = lo + values.shape[0]
        lo, hi = self._normalize(lo, hi)
        self._ctx.sched.wait_turn(self._ctx.rank)
        self._data[lo:hi] = values
        self._charge_transfer(lo, hi, "put")

    def acc(self, lo: int, values: np.ndarray, alpha: float = 1.0) -> None:
        """One-sided atomic accumulate: ``A[lo:hi] += alpha * values``."""
        values = np.asarray(values, dtype=self.dtype)
        hi = lo + values.shape[0]
        lo, hi = self._normalize(lo, hi)
        self._ctx.sched.wait_turn(self._ctx.rank)
        if alpha == 1.0:
            self._data[lo:hi] += values
        else:
            self._data[lo:hi] += alpha * values
        self._charge_transfer(lo, hi, "put")

    def read_inc(self, index: int, inc: int = 1) -> int:
        """Atomic fetch-and-add on one integer element.

        This is GA's ``NGA_Read_inc`` -- the few-line primitive the
        paper uses to implement its shared-task-queue dynamic load
        balancer without a master process.
        """
        if not np.issubdtype(self.dtype, np.integer):
            raise RuntimeMisuseError(
                f"read_inc requires an integer array, {self.name!r} is "
                f"{self.dtype}"
            )
        if self._data.ndim != 1:
            raise RuntimeMisuseError("read_inc supports 1-D arrays only")
        lo, hi = self._normalize(index, index + 1)
        ctx = self._ctx
        ctx.sched.wait_turn(ctx.rank)
        with ctx.world.ga_lock:
            old = int(self._data[index])
            self._data[index] = old + inc
        owner = self.dist.owner_of(index)
        if owner == ctx.rank:
            ctx.charge(ctx.machine.rpc_handler_cost_s)
        else:
            ctx.charge(ctx.machine.rpc_seconds(16.0, 16.0))
        return old

    # ------------------------------------------------------------------
    # whole-array convenience operations (GA_Fill / GA_Scale / GA_Copy /
    # GA_Ddot / NGA_Gather / NGA_Scatter analogues)
    # ------------------------------------------------------------------
    def fill(self, value) -> None:
        """Collective: set every element to ``value`` (GA_Fill)."""
        self._ctx.comm.barrier()
        self._ctx.sched.wait_turn(self._ctx.rank)
        lo, hi = self.local_range()
        self._data[lo:hi] = value
        self._ctx.charge(
            self._ctx.machine.memcpy_seconds((hi - lo) * self._row_nbytes())
        )
        self._ctx.comm.barrier()

    def scale(self, alpha: float) -> None:
        """Collective: multiply every element by ``alpha`` (GA_Scale)."""
        self._ctx.comm.barrier()
        self._ctx.sched.wait_turn(self._ctx.rank)
        lo, hi = self.local_range()
        self._data[lo:hi] = self._data[lo:hi] * alpha
        self._ctx.charge(
            self._ctx.machine.flops_seconds(
                (hi - lo) * max(1, self._row_nbytes() // 8)
            )
        )
        self._ctx.comm.barrier()

    def copy_from(self, other: "GlobalArray") -> None:
        """Collective: copy ``other`` into this array (GA_Copy).

        Both arrays must share shape; each rank copies its own block
        (the distributions may differ, in which case remote gets are
        charged).
        """
        if other.shape != self.shape:
            raise RuntimeMisuseError(
                f"copy_from shape mismatch: {other.shape} -> {self.shape}"
            )
        self._ctx.comm.barrier()
        lo, hi = self.local_range()
        if hi > lo:
            block = other.get(lo, hi)
            self._ctx.sched.wait_turn(self._ctx.rank)
            self._data[lo:hi] = block.astype(self.dtype, copy=False)
        self._ctx.comm.barrier()

    def dot(self, other: "GlobalArray") -> float:
        """Collective: global inner product (GA_Ddot).

        Each rank reduces its local block; partials are summed with an
        allreduce, so every rank receives the same scalar.
        """
        if other.shape != self.shape:
            raise RuntimeMisuseError(
                f"dot shape mismatch: {self.shape} vs {other.shape}"
            )
        ctx = self._ctx
        ctx.sched.wait_turn(ctx.rank)
        lo, hi = self.local_range()
        olo, ohi = other.local_range()
        if (lo, hi) != (olo, ohi):
            raise RuntimeMisuseError(
                "dot requires identically distributed arrays"
            )
        local = float(
            np.sum(
                np.asarray(self._data[lo:hi], dtype=np.float64)
                * np.asarray(other._data[lo:hi], dtype=np.float64)
            )
        )
        ctx.charge(
            ctx.machine.flops_seconds(
                2.0 * (hi - lo) * max(1, self._row_nbytes() // 8)
            )
        )
        return float(ctx.comm.allreduce(local))

    def gather_elements(self, rows: np.ndarray) -> np.ndarray:
        """One-sided indexed read of arbitrary global rows (NGA_Gather)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise RuntimeMisuseError("gather_elements row out of bounds")
        self._ctx.sched.wait_turn(self._ctx.rank)
        out = self._data[rows].copy()
        self._charge_elementwise(rows, "get")
        return out

    def scatter_elements(self, rows: np.ndarray, values: np.ndarray) -> None:
        """One-sided indexed write of arbitrary global rows (NGA_Scatter).

        Duplicate rows are written in order (last wins), matching GA's
        unordered-scatter caveat deterministically.
        """
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=self.dtype)
        if rows.shape[0] != values.shape[0]:
            raise RuntimeMisuseError(
                "scatter_elements rows/values length mismatch"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise RuntimeMisuseError("scatter_elements row out of bounds")
        self._ctx.sched.wait_turn(self._ctx.rank)
        self._data[rows] = values
        self._charge_elementwise(rows, "put")

    def _charge_elementwise(self, rows: np.ndarray, direction: str) -> None:
        """Charge per-owner message costs for an indexed access."""
        if rows.size == 0:
            return
        ctx = self._ctx
        row_nbytes = self._row_nbytes()
        owners = np.array([self.dist.owner_of(int(r)) for r in rows])
        total = 0.0
        for owner in np.unique(owners):
            nbytes = int((owners == owner).sum()) * row_nbytes
            if owner == ctx.rank:
                total += ctx.machine.memcpy_seconds(nbytes)
            else:
                total += ctx.machine.onesided_seconds(
                    nbytes,
                    intra_node=ctx.machine.same_node(ctx.rank, owner),
                )
            self._m_onesided.inc(
                ctx.rank, float(nbytes), key=(int(owner), direction)
            )
        ctx.charge(total)

    # ------------------------------------------------------------------
    # locality
    # ------------------------------------------------------------------
    def local_range(self, rank: Optional[int] = None) -> tuple[int, int]:
        """Row range owned by ``rank`` (default: the calling rank)."""
        r = self._ctx.rank if rank is None else rank
        return self.dist.local_range(r)

    def local_view(self) -> np.ndarray:
        """Zero-copy view of the calling rank's owned block.

        GA programs use direct local access for the compute-heavy inner
        loops; no communication cost is charged.
        """
        lo, hi = self.local_range()
        return self._data[lo:hi]

    def owner_of(self, row: int) -> int:
        return self.dist.owner_of(row)

    def sync(self) -> None:
        """GA_Sync: barrier + completion of outstanding operations."""
        self._ctx.comm.barrier()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _normalize(self, lo: int, hi: Optional[int]) -> tuple[int, int]:
        if hi is None:
            hi = lo + 1
        if not (0 <= lo <= hi <= self.shape[0]):
            raise RuntimeMisuseError(
                f"rows [{lo}, {hi}) out of bounds for {self.name!r} with "
                f"shape {self.shape}"
            )
        return lo, hi

    def _row_nbytes(self) -> int:
        itemsize = self.dtype.itemsize
        per_row = 1
        for s in self.shape[1:]:
            per_row *= s
        return itemsize * per_row

    def _charge_transfer(self, lo: int, hi: int, direction: str) -> None:
        """Charge get/put/acc cost, split by owning rank.

        ``direction`` ("get"/"put") only labels the byte counters; the
        diagonal (owner == caller) entries record rank-local volume.
        """
        if hi <= lo:
            return
        ctx = self._ctx
        row_nbytes = self._row_nbytes()
        total = 0.0
        for owner, sub_lo, sub_hi in self.dist.owners_of_range(lo, hi):
            nbytes = (sub_hi - sub_lo) * row_nbytes
            if owner == ctx.rank:
                total += ctx.machine.memcpy_seconds(nbytes)
            else:
                total += ctx.machine.onesided_seconds(
                    nbytes,
                    intra_node=ctx.machine.same_node(ctx.rank, owner),
                )
            self._m_onesided.inc(
                ctx.rank, float(nbytes), key=(int(owner), direction)
            )
        ctx.charge(total)
