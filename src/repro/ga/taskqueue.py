"""Shared task queue with fixed-size chunking (dynamic load balancing).

This reproduces the paper's §3.3 load balancer: the collection of
inversion *loads* (fixed-size chunks of forward-index entries) lives in
a global array; an atomic fetch-and-increment (``read_inc``) hands out
the next available load.  The queue is prioritized so that "each
process completes its inversion loads first, and then works on loads
owned by other processes": there is one counter per owner rank, each
covering that rank's contiguous load range; an idle rank first drains
its own counter, then scans the other ranks' counters round-robin,
stealing their remaining loads.

Compared with the master–worker alternative
(:mod:`repro.baselines.masterworker`), no process ever serves as a
bottleneck: claiming a task is a single one-sided atomic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.runtime.context import RankContext
from repro.runtime.errors import RuntimeMisuseError

from .array import GlobalArray


class SharedTaskQueue:
    """Work-stealing task queue over per-owner atomic counters.

    ``counts[r]`` is the number of tasks initially owned by rank ``r``;
    task IDs are global and contiguous: rank ``r`` owns
    ``[offset[r], offset[r] + counts[r])``.
    """

    def __init__(
        self,
        ctx: RankContext,
        name: str,
        counts: Sequence[int],
        chunk: int = 1,
    ):
        if len(counts) != ctx.nprocs:
            raise RuntimeMisuseError(
                f"counts must have one entry per rank "
                f"({ctx.nprocs}), got {len(counts)}"
            )
        if chunk < 1:
            raise RuntimeMisuseError(f"chunk must be >= 1, got {chunk}")
        self._ctx = ctx
        self.chunk = int(chunk)
        self.counts = [int(c) for c in counts]
        self.offsets = np.concatenate([[0], np.cumsum(self.counts)])
        self.ntasks = int(self.offsets[-1])
        # Per-owner "next task" cursors, stored in a global array so a
        # claim is one atomic read_inc -- exactly the paper's scheme.
        self._cursors = GlobalArray.create(
            ctx, f"taskq:{name}", (ctx.nprocs,), dtype=np.int64
        )
        self._steal_order = [
            (ctx.rank + d) % ctx.nprocs for d in range(1, ctx.nprocs)
        ]
        # Owners this rank has already observed to be drained; tasks are
        # never re-added, so we can skip the atomic on later polls.
        self._drained: set[int] = set()

    def _claim_from(self, owner: int) -> Optional[tuple[int, int]]:
        """Try to claim up to ``chunk`` tasks from ``owner``'s range."""
        count = self.counts[owner]
        if count == 0 or owner in self._drained:
            return None
        pos = self._cursors.read_inc(owner, self.chunk)
        if pos >= count:
            self._drained.add(owner)
            return None
        lo = int(self.offsets[owner]) + pos
        hi = int(self.offsets[owner]) + min(count, pos + self.chunk)
        return lo, hi

    def next_chunk(self) -> Optional[tuple[int, int]]:
        """Claim the next chunk of global task IDs ``[lo, hi)``.

        Own loads are drained first; afterwards other ranks' loads are
        stolen round-robin.  Returns ``None`` when every load in the
        queue has been claimed.
        """
        got = self._claim_from(self._ctx.rank)
        if got is not None:
            return got
        for owner in self._steal_order:
            got = self._claim_from(owner)
            if got is not None:
                return got
        return None

    def owner_of_task(self, task_id: int) -> int:
        """The rank whose data a given global task ID refers to."""
        if not 0 <= task_id < self.ntasks:
            raise RuntimeMisuseError(
                f"task {task_id} out of range [0, {self.ntasks})"
            )
        return int(np.searchsorted(self.offsets, task_id, side="right") - 1)
