"""Shared task queue with fixed-size chunking (dynamic load balancing).

This reproduces the paper's §3.3 load balancer: the collection of
inversion *loads* (fixed-size chunks of forward-index entries) lives in
a global array; an atomic fetch-and-increment (``read_inc``) hands out
the next available load.  The queue is prioritized so that "each
process completes its inversion loads first, and then works on loads
owned by other processes": there is one counter per owner rank, each
covering that rank's contiguous load range; an idle rank first drains
its own counter, then scans the other ranks' counters round-robin,
stealing their remaining loads.

Compared with the master–worker alternative
(:mod:`repro.baselines.masterworker`), no process ever serves as a
bottleneck: claiming a task is a single one-sided atomic.

Fault tolerance: under fault injection each claimed chunk carries a
*lease* naming the claimant.  A chunk whose holder fail-stop crashed
before calling :meth:`SharedTaskQueue.complete` is reclaimed by the
first survivor that runs out of unclaimed work, so no task is lost --
at-least-once hand-out, which is safe because inversion loads are
idempotent.  Without an injector the lease bookkeeping is skipped
entirely (zero overhead), preserving exactly-once hand-out.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.runtime.context import RankContext
from repro.runtime.errors import RuntimeMisuseError

from .array import GlobalArray


def _simulate_claims(
    nprocs: int,
    counts: Sequence[int],
    offsets: np.ndarray,
    chunk: int,
    machine,
    entry_clocks: Sequence[float],
    pf: Sequence[float],
    own_costs: Sequence[Sequence[tuple[float, float]]],
) -> list[list[tuple[int, Optional[tuple[int, int]]]]]:
    """Replay the simulator's global claim interleaving, offline.

    The simulator serializes ``read_inc`` attempts by (virtual clock,
    rank); between attempts a rank's clock advances by the atomic's RPC
    charge plus the processing cost of what it just claimed.  Given
    every rank's entry clock, pressure factor, and per-task costs
    (``own_costs[o][i] = (scaled_nbytes, invert_seconds)``), that
    interleaving is a pure function -- each mp process runs this
    discrete-event replay and obtains the identical global plan.

    Returns, per rank, its ordered ``read_inc`` attempts as
    ``(owner, (lo, hi) | None)`` -- ``None`` marks a drained-counter
    probe.
    """
    rpc_self = machine.rpc_handler_cost_s
    rpc_remote = machine.rpc_seconds(16.0, 16.0)
    targets = [
        [r] + [(r + d) % nprocs for d in range(1, nprocs)]
        for r in range(nprocs)
    ]
    cursors = [0] * nprocs
    drained: list[set[int]] = [set() for _ in range(nprocs)]
    scan_pos = [0] * nprocs
    plan: list[list[tuple[int, Optional[tuple[int, int]]]]] = [
        [] for _ in range(nprocs)
    ]
    heap: list[tuple[float, int]] = [
        (float(entry_clocks[r]), r) for r in range(nprocs)
    ]
    heapq.heapify(heap)
    while heap:
        clock, r = heapq.heappop(heap)
        # skip free probes (empty or known-drained counters)
        while scan_pos[r] < nprocs:
            o = targets[r][scan_pos[r]]
            if counts[o] == 0 or o in drained[r]:
                scan_pos[r] += 1
            else:
                break
        if scan_pos[r] >= nprocs:
            continue  # this rank leaves the queue
        o = targets[r][scan_pos[r]]
        pos = cursors[o]
        cursors[o] += chunk
        clock += rpc_self if o == r else rpc_remote
        if pos >= counts[o]:
            drained[r].add(o)
            scan_pos[r] += 1
            plan[r].append((o, None))
        else:
            lo = int(offsets[o]) + pos
            hi = int(offsets[o]) + min(counts[o], pos + chunk)
            plan[r].append((o, (lo, hi)))
            for t in range(lo, hi):
                nb, inv = own_costs[o][t - int(offsets[o])]
                clock += inv * pf[r]
                if o != r:
                    clock += machine.onesided_seconds(
                        nb, intra_node=machine.same_node(r, o)
                    )
            scan_pos[r] = 0  # a successful claim restarts at own rank
        heapq.heappush(heap, (clock, r))
    return plan


class SharedTaskQueue:
    """Work-stealing task queue over per-owner atomic counters.

    ``counts[r]`` is the number of tasks initially owned by rank ``r``;
    task IDs are global and contiguous: rank ``r`` owns
    ``[offset[r], offset[r] + counts[r])``.
    """

    def __init__(
        self,
        ctx: RankContext,
        name: str,
        counts: Sequence[int],
        chunk: int = 1,
        cost_hints: Optional[tuple] = None,
    ):
        if len(counts) != ctx.nprocs:
            raise RuntimeMisuseError(
                f"counts must have one entry per rank "
                f"({ctx.nprocs}), got {len(counts)}"
            )
        if chunk < 1:
            raise RuntimeMisuseError(f"chunk must be >= 1, got {chunk}")
        self._ctx = ctx
        self.name = name
        self.chunk = int(chunk)
        self.counts = [int(c) for c in counts]
        self._m_chunks = ctx.metrics.counter("taskq.chunks", ("queue", "kind"))
        self._m_tasks = ctx.metrics.counter("taskq.tasks", ("queue", "kind"))
        self._m_reclaims = ctx.metrics.counter("taskq.lease_reclaims", ("queue",))
        self.offsets = np.concatenate([[0], np.cumsum(self.counts)])
        self.ntasks = int(self.offsets[-1])
        # Per-owner "next task" cursors, stored in a global array so a
        # claim is one atomic read_inc -- exactly the paper's scheme.
        self._cursors = GlobalArray.create(
            ctx, f"taskq:{name}", (ctx.nprocs,), dtype=np.int64
        )
        self._steal_order = [
            (ctx.rank + d) % ctx.nprocs for d in range(1, ctx.nprocs)
        ]
        # Owners this rank has already observed to be drained; tasks are
        # never re-added, so we can skip the atomic on later polls.
        self._drained: set[int] = set()
        # Lease table (chunk -> holder rank), shared across ranks via
        # the world registry.  Only maintained under fault injection;
        # the dict operations are free in virtual time (the read_inc
        # that accompanies every claim already paid for the RMA).
        self._track_leases = ctx.sched.injector is not None
        if self._track_leases:
            self._leases: dict[tuple[int, int], int] = (
                ctx.world.shared_state(f"taskq:{name}:leases", dict)
            )
        # Under the mp backend real read_inc interleaving is racy; a
        # deterministic claim plan -- the exact schedule the simulator
        # would produce -- is replayed instead.  ``cost_hints`` is
        # ``(pressure_factor, [(scaled_nbytes, invert_seconds), ...])``
        # for this rank's own tasks (see the engine's index stage).
        self._mp_plan: Optional[deque] = None
        if (
            cost_hints is not None
            and getattr(ctx.world, "backend", "sim") == "mp"
        ):
            self._mp_plan = self._mp_build_plan(cost_hints)

    def _claim_from(self, owner: int) -> Optional[tuple[int, int]]:
        """Try to claim up to ``chunk`` tasks from ``owner``'s range."""
        count = self.counts[owner]
        if count == 0 or owner in self._drained:
            return None
        pos = self._cursors.read_inc(owner, self.chunk)
        if pos >= count:
            self._drained.add(owner)
            return None
        lo = int(self.offsets[owner]) + pos
        hi = int(self.offsets[owner]) + min(count, pos + self.chunk)
        if self._track_leases:
            self._leases[(lo, hi)] = self._ctx.rank
        kind = "own" if owner == self._ctx.rank else "stolen"
        self._m_chunks.inc(self._ctx.rank, key=(self.name, kind))
        self._m_tasks.inc(self._ctx.rank, float(hi - lo), key=(self.name, kind))
        return lo, hi

    def next_chunk(self) -> Optional[tuple[int, int]]:
        """Claim the next chunk of global task IDs ``[lo, hi)``.

        Own loads are drained first; afterwards other ranks' loads are
        stolen round-robin.  Returns ``None`` when every load in the
        queue has been claimed (and, under fault injection, every chunk
        leased to a crashed rank has been reclaimed).
        """
        if self._mp_plan is not None:
            return self._mp_next_from_plan()
        got = self._claim_from(self._ctx.rank)
        if got is not None:
            return got
        for owner in self._steal_order:
            got = self._claim_from(owner)
            if got is not None:
                return got
        if self._track_leases:
            return self._reclaim_dead()
        return None

    def complete(self, lo: int, hi: int) -> None:
        """Mark chunk ``[lo, hi)`` as processed, releasing its lease.

        Results produced from the chunk must be globally visible before
        the call (in this runtime every store is immediate, so calling
        right after processing is correct).  A no-op without fault
        injection.
        """
        if self._track_leases:
            self._leases.pop((lo, hi), None)

    def _reclaim_dead(self) -> Optional[tuple[int, int]]:
        """Re-issue one chunk whose lease holder has crashed.

        Deterministic: chunks are scanned in task-ID order, and only
        deaths already visible to this rank's failure detector count.
        The reclaimed lease transfers to this rank, so each orphaned
        chunk is re-issued once (unless the reclaimer dies too).
        """
        dead = set(self._ctx.failed_ranks())
        if not dead:
            return None
        for (lo, hi) in sorted(self._leases):
            if self._leases[(lo, hi)] in dead:
                self._leases[(lo, hi)] = self._ctx.rank
                self._m_reclaims.inc(self._ctx.rank, key=(self.name,))
                return lo, hi
        return None

    # ------------------------------------------------------------------
    # mp-backend deterministic playback
    # ------------------------------------------------------------------
    def _mp_build_plan(self, cost_hints: tuple) -> deque:
        """Exchange per-rank costs out of band and replay the global
        claim schedule; returns this rank's planned attempts."""
        ctx = self._ctx
        pf, own_costs = cost_hints
        infos = ctx.world.oob_allgather(
            ("taskq", self.name),
            (float(ctx.sched.now(ctx.rank)), float(pf), list(own_costs)),
        )
        plan = _simulate_claims(
            ctx.nprocs,
            self.counts,
            self.offsets,
            self.chunk,
            ctx.machine,
            [i[0] for i in infos],
            [i[1] for i in infos],
            [i[2] for i in infos],
        )
        return deque(plan[ctx.rank])

    def _mp_next_from_plan(self) -> Optional[tuple[int, int]]:
        """Replay the planned attempts: every ``read_inc`` is issued
        for real (identical charges, fault hooks, and shared-cursor
        totals), but the claim outcome follows the plan rather than
        the racy cross-process counter value."""
        while self._mp_plan:
            owner, claim = self._mp_plan.popleft()
            self._cursors.read_inc(owner, self.chunk)
            if claim is None:
                self._drained.add(owner)
                continue
            lo, hi = claim
            if self._track_leases:
                self._leases[(lo, hi)] = self._ctx.rank
            kind = "own" if owner == self._ctx.rank else "stolen"
            self._m_chunks.inc(self._ctx.rank, key=(self.name, kind))
            self._m_tasks.inc(
                self._ctx.rank, float(hi - lo), key=(self.name, kind)
            )
            return lo, hi
        if self._track_leases:
            return self._reclaim_dead()
        return None

    def owner_of_task(self, task_id: int) -> int:
        """The rank whose data a given global task ID refers to."""
        if not 0 <= task_id < self.ntasks:
            raise RuntimeMisuseError(
                f"task {task_id} out of range [0, {self.ntasks})"
            )
        return int(np.searchsorted(self.offsets, task_id, side="right") - 1)
