"""Shared task queue with fixed-size chunking (dynamic load balancing).

This reproduces the paper's §3.3 load balancer: the collection of
inversion *loads* (fixed-size chunks of forward-index entries) lives in
a global array; an atomic fetch-and-increment (``read_inc``) hands out
the next available load.  The queue is prioritized so that "each
process completes its inversion loads first, and then works on loads
owned by other processes": there is one counter per owner rank, each
covering that rank's contiguous load range; an idle rank first drains
its own counter, then scans the other ranks' counters round-robin,
stealing their remaining loads.

Compared with the master–worker alternative
(:mod:`repro.baselines.masterworker`), no process ever serves as a
bottleneck: claiming a task is a single one-sided atomic.

Fault tolerance: under fault injection each claimed chunk carries a
*lease* naming the claimant.  A chunk whose holder fail-stop crashed
before calling :meth:`SharedTaskQueue.complete` is reclaimed by the
first survivor that runs out of unclaimed work, so no task is lost --
at-least-once hand-out, which is safe because inversion loads are
idempotent.  Without an injector the lease bookkeeping is skipped
entirely (zero overhead), preserving exactly-once hand-out.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.runtime.context import RankContext
from repro.runtime.errors import RuntimeMisuseError

from .array import GlobalArray


class SharedTaskQueue:
    """Work-stealing task queue over per-owner atomic counters.

    ``counts[r]`` is the number of tasks initially owned by rank ``r``;
    task IDs are global and contiguous: rank ``r`` owns
    ``[offset[r], offset[r] + counts[r])``.
    """

    def __init__(
        self,
        ctx: RankContext,
        name: str,
        counts: Sequence[int],
        chunk: int = 1,
    ):
        if len(counts) != ctx.nprocs:
            raise RuntimeMisuseError(
                f"counts must have one entry per rank "
                f"({ctx.nprocs}), got {len(counts)}"
            )
        if chunk < 1:
            raise RuntimeMisuseError(f"chunk must be >= 1, got {chunk}")
        self._ctx = ctx
        self.name = name
        self.chunk = int(chunk)
        self.counts = [int(c) for c in counts]
        self._m_chunks = ctx.metrics.counter("taskq.chunks", ("queue", "kind"))
        self._m_tasks = ctx.metrics.counter("taskq.tasks", ("queue", "kind"))
        self._m_reclaims = ctx.metrics.counter("taskq.lease_reclaims", ("queue",))
        self.offsets = np.concatenate([[0], np.cumsum(self.counts)])
        self.ntasks = int(self.offsets[-1])
        # Per-owner "next task" cursors, stored in a global array so a
        # claim is one atomic read_inc -- exactly the paper's scheme.
        self._cursors = GlobalArray.create(
            ctx, f"taskq:{name}", (ctx.nprocs,), dtype=np.int64
        )
        self._steal_order = [
            (ctx.rank + d) % ctx.nprocs for d in range(1, ctx.nprocs)
        ]
        # Owners this rank has already observed to be drained; tasks are
        # never re-added, so we can skip the atomic on later polls.
        self._drained: set[int] = set()
        # Lease table (chunk -> holder rank), shared across ranks via
        # the world registry.  Only maintained under fault injection;
        # the dict operations are free in virtual time (the read_inc
        # that accompanies every claim already paid for the RMA).
        self._track_leases = ctx.sched.injector is not None
        if self._track_leases:
            self._leases: dict[tuple[int, int], int] = (
                ctx.world.registry.setdefault(f"taskq:{name}:leases", {})
            )

    def _claim_from(self, owner: int) -> Optional[tuple[int, int]]:
        """Try to claim up to ``chunk`` tasks from ``owner``'s range."""
        count = self.counts[owner]
        if count == 0 or owner in self._drained:
            return None
        pos = self._cursors.read_inc(owner, self.chunk)
        if pos >= count:
            self._drained.add(owner)
            return None
        lo = int(self.offsets[owner]) + pos
        hi = int(self.offsets[owner]) + min(count, pos + self.chunk)
        if self._track_leases:
            self._leases[(lo, hi)] = self._ctx.rank
        kind = "own" if owner == self._ctx.rank else "stolen"
        self._m_chunks.inc(self._ctx.rank, key=(self.name, kind))
        self._m_tasks.inc(self._ctx.rank, float(hi - lo), key=(self.name, kind))
        return lo, hi

    def next_chunk(self) -> Optional[tuple[int, int]]:
        """Claim the next chunk of global task IDs ``[lo, hi)``.

        Own loads are drained first; afterwards other ranks' loads are
        stolen round-robin.  Returns ``None`` when every load in the
        queue has been claimed (and, under fault injection, every chunk
        leased to a crashed rank has been reclaimed).
        """
        got = self._claim_from(self._ctx.rank)
        if got is not None:
            return got
        for owner in self._steal_order:
            got = self._claim_from(owner)
            if got is not None:
                return got
        if self._track_leases:
            return self._reclaim_dead()
        return None

    def complete(self, lo: int, hi: int) -> None:
        """Mark chunk ``[lo, hi)`` as processed, releasing its lease.

        Results produced from the chunk must be globally visible before
        the call (in this runtime every store is immediate, so calling
        right after processing is correct).  A no-op without fault
        injection.
        """
        if self._track_leases:
            self._leases.pop((lo, hi), None)

    def _reclaim_dead(self) -> Optional[tuple[int, int]]:
        """Re-issue one chunk whose lease holder has crashed.

        Deterministic: chunks are scanned in task-ID order, and only
        deaths already visible to this rank's failure detector count.
        The reclaimed lease transfers to this rank, so each orphaned
        chunk is re-issued once (unless the reclaimer dies too).
        """
        dead = set(self._ctx.failed_ranks())
        if not dead:
            return None
        for (lo, hi) in sorted(self._leases):
            if self._leases[(lo, hi)] in dead:
                self._leases[(lo, hi)] = self._ctx.rank
                self._m_reclaims.inc(self._ctx.rank, key=(self.name,))
                return lo, hi
        return None

    def owner_of_task(self, task_id: int) -> int:
        """The rank whose data a given global task ID refers to."""
        if not 0 <= task_id < self.ntasks:
            raise RuntimeMisuseError(
                f"task {task_id} out of range [0, {self.ntasks})"
            )
        return int(np.searchsorted(self.offsets, task_id, side="right") - 1)
