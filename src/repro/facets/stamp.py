"""Seeded facet stamping: per-document time and source-region fields.

Facet values ride on ``Corpus.meta["facets"]`` (plain JSON-able lists,
so they round-trip exactly through the jsonl corpus format and the
ingest journal) and are drawn from an rng stream *separate* from the
document-content stream -- tagged :data:`FACET_STREAM_TAG` -- so
stamping a corpus never perturbs its text, and unstamped output stays
byte-identical to the pre-facet generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.store import FacetData, facet_data_from_meta
from repro.text.documents import Corpus

#: rng stream tag for facet stamping: ``default_rng((seed, 0xFA))``
#: never collides with the content stream (``seed``), the priority
#: stream (``(seed, 0x70)``), or the tenant stream (``(seed, 0x7E)``)
FACET_STREAM_TAG = 0xFA


class FacetsUnavailableError(Exception):
    """A facet operation was asked of an unstamped store or corpus."""

    def __init__(self, path: str, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{path}: {reason}")


@dataclass(frozen=True)
class FacetSpec:
    """How to stamp a corpus: time span, source fan-out, seed."""

    n_sources: int = 4
    #: stamps fall in ``[t0_s, t0_s + span_s)``, sorted ascending so
    #: document-row order equals arrival order (the block-pruning
    #: friendly layout)
    span_s: float = 600.0
    t0_s: float = 0.0
    seed: int = 0
    source_names: tuple[str, ...] = ()

    def __post_init__(self):
        if self.n_sources < 1:
            raise ValueError(
                f"n_sources must be >= 1, got {self.n_sources}"
            )
        if self.span_s <= 0:
            raise ValueError(f"span_s must be > 0, got {self.span_s}")
        if self.source_names and len(self.source_names) != self.n_sources:
            raise ValueError(
                f"{len(self.source_names)} source names for "
                f"{self.n_sources} sources"
            )


def default_source_names(n_sources: int) -> tuple[str, ...]:
    return tuple(f"src-{i:02d}" for i in range(n_sources))


def facet_meta(
    stamp_s: np.ndarray,
    source: np.ndarray,
    n_sources: int,
    source_names: tuple[str, ...] = (),
) -> dict:
    """The JSON-able ``Corpus.meta["facets"]`` carrier."""
    return {
        "stamp_s": [float(t) for t in np.asarray(stamp_s)],
        "source": [int(s) for s in np.asarray(source)],
        "n_sources": int(n_sources),
        "source_names": list(
            source_names or default_source_names(n_sources)
        ),
    }


def stamp_corpus(corpus: Corpus, spec: FacetSpec) -> Corpus:
    """Attach seeded facet fields to a corpus (returned for chaining).

    Stamps are sorted ascending over ``[t0_s, t0_s + span_s)`` and
    sources are uniform over ``[0, n_sources)``, both from the
    dedicated facet stream -- re-stamping with the same spec is
    idempotent bit for bit.
    """
    rng = np.random.default_rng((spec.seed, FACET_STREAM_TAG))
    n = len(corpus.documents)
    stamp_s = spec.t0_s + np.sort(
        rng.uniform(0.0, spec.span_s, size=n)
    )
    source = rng.integers(0, spec.n_sources, size=n, dtype=np.int64)
    corpus.meta = dict(corpus.meta)
    corpus.meta["facets"] = facet_meta(
        stamp_s, source, spec.n_sources, spec.source_names
    )
    return corpus


def extract_facets(corpus: Corpus) -> FacetData | None:
    """The corpus's facet arrays, or ``None`` when unstamped."""
    return facet_data_from_meta(corpus.meta)
