"""Exact integer kernels for window analytics.

Everything here is int64 arithmetic on exact tf counts: no floats
anywhere, so window scores are identical at every shard count, shard
order, scheduler, and execution backend by plain associativity.
"""

from __future__ import annotations

import numpy as np


def previous_window(t0: float, t1: float) -> tuple[float, float]:
    """The adjacent window of equal width ending at ``t0``."""
    return t0 - (t1 - t0), t0


def window_edges(lo: float, hi: float, n_windows: int) -> np.ndarray:
    """``n_windows + 1`` equal edges over ``[lo, hi]``."""
    if n_windows < 1:
        raise ValueError(f"n_windows must be >= 1, got {n_windows}")
    return np.linspace(float(lo), float(hi), n_windows + 1)


def emerging_scores(
    tf_prev: np.ndarray, tf_cur: np.ndarray
) -> np.ndarray:
    """Exact int64 emergence score per term.

    Cross-multiplied rate comparison with add-one smoothing::

        s(t) = tf_cur[t] * (total_prev + 1) - tf_prev[t] * (total_cur + 1)

    ``s(t) > 0`` iff the term's share of the current window strictly
    exceeds its (smoothed) share of the previous window -- the same
    ordering as the ratio test ``tf_cur/(total_cur+1) >
    tf_prev/(total_prev+1)`` but computed entirely in integers, so
    there is no float rounding to drift across shard layouts.
    """
    tf_prev = np.asarray(tf_prev, dtype=np.int64)
    tf_cur = np.asarray(tf_cur, dtype=np.int64)
    total_prev = int(tf_prev.sum())
    total_cur = int(tf_cur.sum())
    return tf_cur * (total_prev + 1) - tf_prev * (total_cur + 1)
