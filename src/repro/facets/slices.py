"""Time-sliced ThemeView sequences over a stamped store.

Paper §2.1 grows a terrain per collection; the Textiverse scenario
needs the terrain *over time*.  A slice sequence cuts the store's
stamp range into equal windows and builds one ThemeView per window on
a grid aligned to the store's manifest bbox -- the same cell means the
same place in every slice, so a dashboard can animate theme drift.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.session import top_positive_terms
from repro.facets.stamp import FacetsUnavailableError
from repro.facets.windows import window_edges
from repro.serve.store import Container, load_manifest, load_model
from repro.viz.themeview import ThemeView, build_themeview


def _store_rows(
    store_dir: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Global-row-order ``(coords, assignments, stamps)`` of a store.

    Base shards then deltas, in manifest order -- exactly the global
    row layout (deltas are appended after every earlier segment's
    rows), so slice membership matches what window queries see.
    """
    store = str(store_dir)
    manifest = load_manifest(store)
    if manifest.facets is None:
        raise FacetsUnavailableError(
            store,
            "store is not stamped: no facet sections "
            "(rebuild from a stamped corpus)",
        )
    coords_parts = []
    assign_parts = []
    stamp_parts = []
    for seg in list(manifest.shards) + list(manifest.deltas):
        cont = Container(os.path.join(store, seg.file))
        coords_parts.append(np.asarray(cont.load("coords")))
        assign_parts.append(np.asarray(cont.load("assignments")))
        stamp_parts.append(np.asarray(cont.load("facet_stamp_s")))
    return (
        np.concatenate(coords_parts, axis=0),
        np.concatenate(assign_parts),
        np.concatenate(stamp_parts),
    )


def themeview_slices(
    store_dir: str | os.PathLike,
    n_slices: int = 4,
    grid: int = 48,
    sigma_cells: float = 1.8,
    max_peaks: int = 12,
    label_terms: int = 4,
) -> list[dict]:
    """Equal-window ThemeView sequence over a stamped store.

    Returns one record per slice: ``{"t0", "t1", "n_docs", "view"}``
    where ``view`` is a :class:`~repro.viz.themeview.ThemeView`
    (``None`` for empty windows).  All slices share the manifest-bbox
    grid; peak labels come from the frozen model's cluster centroids.
    Raises :class:`FacetsUnavailableError` on unstamped stores.
    """
    store = str(store_dir)
    manifest = load_manifest(store)
    if manifest.facets is None:
        raise FacetsUnavailableError(
            store,
            "store is not stamped: no facet sections "
            "(rebuild from a stamped corpus)",
        )
    coords, assignments, stamps = _store_rows(store)
    model = load_model(store)
    labels = {
        c: top_positive_terms(
            model.centroids[c], model.topic_terms, label_terms
        )
        for c in range(model.centroids.shape[0])
    }
    edges = window_edges(
        manifest.facets.stamp_lo, manifest.facets.stamp_hi, n_slices
    )
    out = []
    for i in range(n_slices):
        t0, t1 = float(edges[i]), float(edges[i + 1])
        mask = (stamps >= t0) & (stamps < t1)
        if i == n_slices - 1:
            # the final slice closes the range so the latest document
            # is never dropped by the half-open convention
            mask |= stamps == t1
        n = int(mask.sum())
        view: ThemeView | None = None
        if n:
            view = build_themeview(
                coords[mask],
                assignments[mask],
                cluster_labels=labels,
                grid=grid,
                sigma_cells=sigma_cells,
                max_peaks=max_peaks,
                bbox=manifest.bbox,
            )
        out.append({"t0": t0, "t1": t1, "n_docs": n, "view": view})
    return out


def slices_payload(slices: list[dict]) -> list[dict]:
    """JSON-able form of a slice sequence (peaks only, no grids)."""
    payload = []
    for s in slices:
        view = s["view"]
        payload.append(
            {
                "t0": s["t0"],
                "t1": s["t1"],
                "n_docs": s["n_docs"],
                "peaks": [
                    {
                        "x": p.x,
                        "y": p.y,
                        "height": p.height,
                        "cluster": p.cluster,
                        "labels": list(p.labels),
                    }
                    for p in (view.peaks if view is not None else [])
                ],
            }
        )
    return payload
