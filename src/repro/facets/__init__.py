"""Time/source-faceted analytics over the serving tier.

The Textiverse-scenario layer of the reproduction: documents carry
seeded arrival stamps and source-region ids (drawn from an rng stream
separate from their content, so unstamped output is byte-identical to
the pre-facet generators), every store writer persists per-shard facet
sections behind a container version bump, and the broker answers
window queries -- faceted counts, per-window top terms, emerging-term
detection -- with exact int64 partial sums merged in the canonical
``(-score, row)`` order.  A time-sliced ThemeView export and a
high-rate dashboard workload class ride on top.
"""

from repro.facets.slices import slices_payload, themeview_slices
from repro.facets.stamp import (
    FACET_STREAM_TAG,
    FacetSpec,
    FacetsUnavailableError,
    default_source_names,
    extract_facets,
    facet_meta,
    stamp_corpus,
)
from repro.facets.windows import (
    emerging_scores,
    previous_window,
    window_edges,
)
from repro.serve.store import (
    FACET_BLOCK_ROWS,
    FacetData,
    FacetSections,
    FacetsInfo,
    encode_facet_sections,
    facet_data_from_meta,
    load_facet_sections,
)

__all__ = [
    "FACET_BLOCK_ROWS",
    "FACET_STREAM_TAG",
    "FacetData",
    "FacetSections",
    "FacetSpec",
    "FacetsInfo",
    "FacetsUnavailableError",
    "default_source_names",
    "emerging_scores",
    "encode_facet_sections",
    "extract_facets",
    "facet_data_from_meta",
    "facet_meta",
    "load_facet_sections",
    "previous_window",
    "slices_payload",
    "stamp_corpus",
    "themeview_slices",
    "window_edges",
]
