"""Benchmark harness: workload generation, sweeps, figure reproduction."""

from .figures import (
    FigureReport,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    reproduce_all,
    run_all_sweeps,
)
from .harness import (
    PAPER_PROCS,
    PUBMED_SIZES,
    TREC_SIZES,
    SweepResult,
    Workload,
    default_figure_config,
    make_workload,
    run_sweep,
)
from .tables import format_series, format_table
from .verify import ShapeCheck, render_checks, verify_shapes

__all__ = [
    "FigureReport",
    "PAPER_PROCS",
    "PUBMED_SIZES",
    "SweepResult",
    "TREC_SIZES",
    "Workload",
    "default_figure_config",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ShapeCheck",
    "format_series",
    "format_table",
    "make_workload",
    "render_checks",
    "reproduce_all",
    "run_all_sweeps",
    "run_sweep",
    "verify_shapes",
]
