"""Executable verification of the paper's qualitative claims.

`EXPERIMENTS.md` argues that the reproduction matches the paper's
*shapes*; this module turns each of those shape claims into a checked
predicate over regenerated sweep data, so the claim table can be
re-verified mechanically (``python -m repro figures --verify`` or
:func:`verify_shapes` directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .figures import FigureReport, Sweeps, _dataset_sweeps


@dataclass(frozen=True)
class ShapeCheck:
    """One verified claim."""

    figure: str
    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.figure}: {self.claim} ({self.detail})"


def _near_linear(speedups: list[float], procs: list[int], floor: float) -> bool:
    """Monotone speedup with terminal parallel efficiency above floor."""
    if any(b <= a for a, b in zip(speedups, speedups[1:])):
        return False
    return speedups[-1] / procs[-1] >= floor


def verify_shapes(
    sweeps: Sweeps, fig9: Optional[FigureReport] = None
) -> list[ShapeCheck]:
    """Check every evaluation-figure claim against fresh sweep data."""
    checks: list[ShapeCheck] = []

    # ---------------- Figure 5/6a/7a: near-linear overall scaling
    for dataset in ("pubmed", "trec"):
        for sweep in _dataset_sweeps(sweeps, dataset):
            procs = sorted(sweep.results)
            sp = [sweep.speedup(p) for p in procs]
            label = sweep.workload.label
            anomalous = dataset == "pubmed" and label == "16.44 GB"
            if anomalous:
                ok = sp[0] < 2.0 and _near_linear(sp[1:], procs[1:], 0.5)
                checks.append(
                    ShapeCheck(
                        "Fig 5/6a",
                        f"{dataset} {label}: depressed at P={procs[0]} "
                        "(memory pressure), near-linear after",
                        ok,
                        f"speedups={[round(s, 2) for s in sp]}",
                    )
                )
            else:
                ok = _near_linear(sp, procs, 0.5)
                checks.append(
                    ShapeCheck(
                        "Fig 5/6a/7a",
                        f"{dataset} {label}: near-linear speedup",
                        ok,
                        f"speedups={[round(s, 2) for s in sp]}",
                    )
                )

    # ---------------- Figure 5: anomaly magnitude
    pub = {
        s.workload.label: s for s in _dataset_sweeps(sweeps, "pubmed")
    }
    if {"16.44 GB", "6.67 GB"} <= set(pub):
        procs = sorted(pub["16.44 GB"].results)
        p0, p_last = procs[0], procs[-1]
        r_small = pub["16.44 GB"].wall(p0) / pub["6.67 GB"].wall(p0)
        r_large = pub["16.44 GB"].wall(p_last) / pub["6.67 GB"].wall(p_last)
        checks.append(
            ShapeCheck(
                "Fig 5",
                "16.44 GB disproportionately slow at the smallest P",
                r_small > 2.0 * r_large,
                f"size-ratio {r_small:.1f}x at P={p0} vs "
                f"{r_large:.1f}x at P={p_last}",
            )
        )

    # ---------------- Figures 6b/7b: component percentage stability
    for dataset, size in (("pubmed", "2.75 GB"), ("trec", "1.00 GB")):
        sweep = next(
            (
                s
                for s in _dataset_sweeps(sweeps, dataset)
                if s.workload.label == size
            ),
            None,
        )
        if sweep is None:
            continue
        procs = sorted(sweep.results)
        pct = {
            p: sweep.component_percentages(p) for p in procs
        }
        stable = all(
            max(pct[p].get(c, 0.0) for p in procs)
            - min(pct[p].get(c, 0.0) for p in procs)
            < 12.0
            for c in ("scan", "index", "am", "docvec", "clusproj")
        )
        checks.append(
            ShapeCheck(
                "Fig 6b/7b",
                f"{dataset} {size}: component shares constant in P "
                "(except topicality)",
                stable,
                "max spread < 12 points",
            )
        )
        topic = [pct[p].get("topic", 0.0) for p in procs]
        checks.append(
            ShapeCheck(
                "Fig 6b/7b",
                f"{dataset} {size}: topicality share grows with P "
                "yet stays smallest",
                topic[-1] > topic[0]
                and topic[-1]
                < min(
                    pct[procs[-1]].get("scan", 100.0),
                    pct[procs[-1]].get("index", 100.0),
                ),
                f"topic%={[round(t, 2) for t in topic]}",
            )
        )

    # ---------------- Figure 8: every component scales
    from .figures import FIG8_GROUPS

    for dataset in ("pubmed", "trec"):
        ds = _dataset_sweeps(sweeps, dataset)
        if not ds:
            continue
        procs = sorted(ds[0].results)
        all_ok = True
        worst = ""
        for group, comps in FIG8_GROUPS:
            for sweep in ds:
                serial_t = sum(
                    sweep.serial_result.timings.component_seconds.get(
                        c, 0.0
                    )
                    for c in comps
                )
                sp = []
                for p in procs:
                    par = sum(
                        sweep.component_seconds(p).get(c, 0.0)
                        for c in comps
                    )
                    sp.append(serial_t / par if par > 0 else 0.0)
                if sp[-1] <= sp[0]:
                    all_ok = False
                    worst = f"{group}/{sweep.workload.label}"
        checks.append(
            ShapeCheck(
                "Fig 8",
                f"{dataset}: every component's speedup grows "
                f"{procs[0]}->{procs[-1]}",
                all_ok,
                worst or "all groups monotone end-to-end",
            )
        )

    # ---------------- Figure 9: dynamic load balancing
    if fig9 is not None:
        stats = fig9.data["stats"]
        checks.append(
            ShapeCheck(
                "Fig 9",
                "dynamic LB flattens per-processor indexing times",
                stats["dynamic"]["imbalance"]
                < stats["static"]["imbalance"]
                and stats["dynamic"]["imbalance"] < 1.15,
                f"imbalance dyn={stats['dynamic']['imbalance']:.3f} "
                f"vs static={stats['static']['imbalance']:.3f}",
            )
        )
        checks.append(
            ShapeCheck(
                "Fig 9",
                "dynamic LB does not hurt the indexing wall",
                stats["dynamic"]["wall"]
                <= stats["static"]["wall"] * 1.02,
                f"wall dyn={stats['dynamic']['wall']:.3f}s "
                f"vs static={stats['static']['wall']:.3f}s",
            )
        )
    return checks


def render_checks(checks: list[ShapeCheck]) -> str:
    """Human-readable report of the verification run."""
    lines = ["Shape verification against the paper's claims", ""]
    lines.extend(str(c) for c in checks)
    n_pass = sum(c.passed for c in checks)
    lines.append("")
    lines.append(f"{n_pass}/{len(checks)} claims verified")
    return "\n".join(lines)
