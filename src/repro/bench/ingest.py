"""Ingest benchmark: freshness and query latency under churn.

``python -m repro.cli bench-ingest`` builds a small seeded corpus and
engine result, shards it at several shard counts, and replays the same
seeded document feed through a live broker session
(:func:`repro.ingest.serve_live`) at each count while a seeded
workload queries the store.  It writes ``BENCH_ingest.json``:

* ``results[P]`` -- served/degraded counts and churn-time p50/p99
  virtual latency, ingest volume (docs, generations, compactions,
  broker hot-reloads), publish freshness lag (virtual seconds from a
  batch's arrival to its generation's ``CURRENT`` flip), and ingest
  throughput in docs per virtual second;
* ``fault`` -- the same live session at the largest shard count with a
  crash plan killing one shard rank mid-run: every query must still
  answer (degrading to partial responses) while ingest keeps
  publishing;
* ``baseline`` comparison -- all statistics are virtual and
  deterministic per machine, so the harness demands exact equality and
  fails on any drift unless ``--update-baseline`` (machine-local in
  CI, like ``serve-bench``).
"""

from __future__ import annotations

import json
import platform
import subprocess
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.ingest.compact import CompactionPolicy
from repro.ingest.feed import FeedConfig, FeedSource
from repro.ingest.live import IngestConfig, IngestPlan, serve_live
from repro.runtime.faults import CrashFault, FaultPlan
from repro.runtime.metrics import counter_totals
from repro.serve.broker import BrokerConfig, ServeReport
from repro.serve.store import build_shards
from repro.serve.workload import generate_workload, store_profile

SCHEMA = "repro-bench-ingest/1"
DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_OUT = "BENCH_ingest.json"
DEFAULT_CORPUS_BYTES = 120_000
DEFAULT_CLIENTS = 3
DEFAULT_QUERIES = 20
DEFAULT_BATCHES = 4
DEFAULT_BATCH_DOCS = 10

#: engine sized for a benchmark corpus, not a paper figure
_BENCH_ENGINE = EngineConfig(
    n_major_terms=300, n_clusters=8, chunk_docs=8
)


@dataclass
class IngestPoint:
    """Measurements for one shard count's live session."""

    nshards: int
    served: int
    rejected: int
    degraded: int
    degraded_rate: float
    cache_hit_rate: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    makespan_s: float
    docs_ingested: int
    generations_published: int
    compactions: int
    broker_reloads: int
    rebuild_flags: int
    publish_lag_mean_s: float
    publish_lag_max_s: float
    ingest_docs_per_s: float
    generations_queried: list[int]
    counters: dict[str, float]

    @classmethod
    def from_report(
        cls, nshards: int, report: ServeReport
    ) -> "IngestPoint":
        totals = counter_totals(report.metrics)
        kept = {
            k: v
            for k, v in totals.items()
            if k.startswith(("serve.", "ingest."))
        }
        outcome = report.ingest or {}
        publishes = [
            e
            for e in outcome.get("events", ())
            if e["event"] == "publish"
        ]
        lags = [e["published_s"] - e["arrival_s"] for e in publishes]
        finished = float(outcome.get("finished_s", 0.0))
        docs = int(outcome.get("docs_ingested", 0))
        return cls(
            nshards=nshards,
            served=report.served,
            rejected=len(report.rejected),
            degraded=report.degraded,
            degraded_rate=round(report.degraded_rate, 6),
            cache_hit_rate=round(report.cache_hit_rate, 6),
            throughput_qps=round(report.throughput, 6),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            makespan_s=round(report.makespan, 9),
            docs_ingested=docs,
            generations_published=int(
                totals.get("ingest.generations", 0.0)
            ),
            compactions=int(totals.get("ingest.compactions", 0.0)),
            broker_reloads=int(
                totals.get("ingest.broker.reloads", 0.0)
            ),
            rebuild_flags=int(totals.get("ingest.rebuild_flags", 0.0)),
            publish_lag_mean_s=round(
                sum(lags) / len(lags), 9
            )
            if lags
            else 0.0,
            publish_lag_max_s=round(max(lags), 9) if lags else 0.0,
            ingest_docs_per_s=round(docs / finished, 6)
            if finished > 0
            else 0.0,
            generations_queried=sorted(
                int(g) for g in report.generations
            ),
            counters=kept,
        )


@dataclass
class Regression:
    """One baseline-comparison failure."""

    nshards: int
    field: str
    baseline: float
    measured: float


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def measure(
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    corpus_bytes: int = DEFAULT_CORPUS_BYTES,
    corpus_seed: int = 4,
    feed_seed: int = 4,
    workload_seed: int = 7,
    n_clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES,
    n_batches: int = DEFAULT_BATCHES,
    batch_docs: int = DEFAULT_BATCH_DOCS,
    compact_max_deltas: int = 2,
    progress=None,
) -> tuple[dict[int, IngestPoint], IngestPoint, dict]:
    """Run the live-ingest matrix plus the crash-fault run.

    Each shard count gets a *fresh* store (ingest mutates the store
    directory) but replays the identical feed batches and workload
    scripts, so the statistics are comparable across P.
    """
    corpus = generate_pubmed(corpus_bytes, seed=corpus_seed, n_themes=6)
    result = SerialTextEngine(_BENCH_ENGINE).run(corpus)
    postings = build_term_postings(
        corpus, result, _BENCH_ENGINE.tokenizer
    )
    # continue the corpus's own seeded stream (the synthetic
    # vocabulary is keyed to the seed: a different one would share no
    # terms with the frozen model and project every doc to null)
    feed = FeedSource(
        FeedConfig(
            dataset="pubmed",
            batch_docs=batch_docs,
            n_batches=n_batches,
            seed=feed_seed,
            skip_docs=len(corpus.documents),
            start_doc_id=int(result.doc_ids[-1]) + 1,
            mean_interarrival_s=0.05,
            themes=6,
        )
    )
    batches = feed.batches()
    ingest_config = IngestConfig(
        compaction=CompactionPolicy(max_deltas=compact_max_deltas)
    )
    config = BrokerConfig()
    points: dict[int, IngestPoint] = {}
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:

        def _fresh_store(p: int, tag: str) -> str:
            store_dir = str(Path(tmp) / f"store-{tag}-{p}")
            build_shards(result, store_dir, p, postings=postings)
            return store_dir

        scripts = generate_workload(
            store_profile(_fresh_store(max(shards), "profile")),
            n_clients=n_clients,
            queries_per_client=queries_per_client,
            seed=workload_seed,
        )
        for p in shards:
            store_dir = _fresh_store(p, "live")
            plan = IngestPlan(
                result=result,
                batches=list(batches),
                config=ingest_config,
            )
            report = serve_live(store_dir, scripts, plan, config=config)
            points[p] = IngestPoint.from_report(p, report)
            if progress:
                pt = points[p]
                progress(
                    f"P={p}: {pt.served} served during churn, "
                    f"p99 {pt.p99_latency_s * 1e3:.2f} ms, "
                    f"{pt.generations_published} generations "
                    f"(+{pt.compactions} compactions), "
                    f"publish lag {pt.publish_lag_mean_s * 1e3:.2f} ms"
                )
        # fault run: crash one mid shard rank while ingest churns
        p = max(shards)
        crash_rank = 1 + p // 2
        total_queries = n_clients * queries_per_client
        plan_faults = FaultPlan(
            faults=(
                CrashFault(rank=crash_rank, at_call=total_queries // 2),
            )
        )
        store_dir = _fresh_store(p, "fault")
        plan = IngestPlan(
            result=result, batches=list(batches), config=ingest_config
        )
        report = serve_live(
            store_dir,
            scripts,
            plan,
            config=BrokerConfig(shard_timeout_s=2.0),
            faults=plan_faults,
        )
        fault_point = IngestPoint.from_report(p, report)
        fault_meta = {
            "nshards": p,
            "crashed_rank": crash_rank,
            "at_call": total_queries // 2,
            "failed_ranks": report.failed_ranks,
            "completed": report.served + len(report.rejected)
            == total_queries,
        }
        if progress:
            progress(
                f"P={p} +crash(rank {crash_rank}): "
                f"{fault_point.served} served, "
                f"{fault_point.degraded} degraded "
                f"({fault_point.degraded_rate:.0%}), "
                f"{fault_point.generations_published} generations"
            )
    return points, fault_point, fault_meta


_COMPARED_FIELDS = (
    "served",
    "rejected",
    "degraded",
    "cache_hit_rate",
    "throughput_qps",
    "p50_latency_s",
    "p99_latency_s",
    "makespan_s",
    "docs_ingested",
    "generations_published",
    "compactions",
    "broker_reloads",
    "publish_lag_mean_s",
    "publish_lag_max_s",
    "ingest_docs_per_s",
)


def compare(
    points: dict[int, IngestPoint],
    fault_point: IngestPoint,
    baseline: dict,
) -> list[Regression]:
    """Exact-equality check of every statistic vs. a baseline.

    Live-ingest stats are fully deterministic on one machine, so *any*
    drift is a behavioural change that must be acknowledged with
    ``--update-baseline``.
    """
    regressions: list[Regression] = []
    base_results = baseline.get("results", {})
    for p, point in points.items():
        base = base_results.get(str(p))
        if base is None:
            continue
        for field in _COMPARED_FIELDS:
            b, m = float(base[field]), float(getattr(point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=p, field=field, baseline=b, measured=m
                    )
                )
    base_fault = baseline.get("fault", {}).get("point")
    if base_fault is not None:
        for field in _COMPARED_FIELDS:
            b = float(base_fault[field])
            m = float(getattr(fault_point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=fault_point.nshards,
                        field=f"fault.{field}",
                        baseline=b,
                        measured=m,
                    )
                )
    return regressions


def build_report(
    points: dict[int, IngestPoint],
    fault_point: IngestPoint,
    fault_meta: dict,
    config_meta: dict,
    baseline: Optional[dict] = None,
) -> tuple[dict, list[Regression]]:
    """Assemble the BENCH_ingest.json document."""
    report = {
        "schema": SCHEMA,
        "commit": _git_commit(),
        "config": config_meta,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            str(p): asdict(pt) for p, pt in sorted(points.items())
        },
        "fault": {"point": asdict(fault_point), **fault_meta},
    }
    regressions: list[Regression] = []
    if baseline is not None:
        regressions = compare(points, fault_point, baseline)
        report["baseline"] = {
            "commit": baseline.get("commit", "unknown"),
            "regressions": [asdict(r) for r in regressions],
        }
    return report, regressions


def run_bench(
    out_path: str | Path = DEFAULT_OUT,
    baseline_path: Optional[str | Path] = None,
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    corpus_bytes: int = DEFAULT_CORPUS_BYTES,
    corpus_seed: int = 4,
    feed_seed: int = 4,
    workload_seed: int = 7,
    n_clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES,
    n_batches: int = DEFAULT_BATCHES,
    batch_docs: int = DEFAULT_BATCH_DOCS,
    compact_max_deltas: int = 2,
    update_baseline: bool = False,
    progress=print,
) -> int:
    """Full CLI flow; returns a process exit code.

    The file at ``out_path`` (default ``BENCH_ingest.json``) doubles
    as the next run's baseline; ``--update-baseline`` rewrites it
    without comparing.  A fault run that fails to answer the full
    workload is always an error.
    """
    progress = progress or (lambda *_args: None)
    out_path = Path(out_path)
    baseline_path = Path(baseline_path or out_path)
    baseline: Optional[dict] = None
    if not update_baseline and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("schema") != SCHEMA:
            progress(
                f"ignoring {baseline_path}: unknown schema "
                f"{baseline.get('schema')!r}"
            )
            baseline = None
    points, fault_point, fault_meta = measure(
        shards=shards,
        corpus_bytes=corpus_bytes,
        corpus_seed=corpus_seed,
        feed_seed=feed_seed,
        workload_seed=workload_seed,
        n_clients=n_clients,
        queries_per_client=queries_per_client,
        n_batches=n_batches,
        batch_docs=batch_docs,
        compact_max_deltas=compact_max_deltas,
        progress=progress,
    )
    config_meta = {
        "shards": list(shards),
        "corpus_bytes": corpus_bytes,
        "corpus_seed": corpus_seed,
        "feed_seed": feed_seed,
        "workload_seed": workload_seed,
        "n_clients": n_clients,
        "queries_per_client": queries_per_client,
        "n_batches": n_batches,
        "batch_docs": batch_docs,
        "compact_max_deltas": compact_max_deltas,
    }
    report, regressions = build_report(
        points, fault_point, fault_meta, config_meta, baseline
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    progress(f"wrote {out_path}")
    for r in regressions:
        progress(
            f"DRIFT at P={r.nshards} [{r.field}]: baseline "
            f"{r.baseline!r} vs measured {r.measured!r}"
        )
    if not fault_meta["completed"]:
        progress("FAULT RUN INCOMPLETE: queries went unanswered")
        return 1
    return 1 if regressions else 0
