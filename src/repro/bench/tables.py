"""ASCII table / series formatting for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    col_header: str,
    col_labels: Sequence[str],
    rows: Sequence[tuple[str, Sequence[float]]],
    fmt: str = "{:.2f}",
) -> str:
    """Render a labelled numeric table.

    ``rows`` is a list of (row label, values) with one value per column.
    """
    label_w = max(
        [len(col_header)] + [len(str(r[0])) for r in rows], default=8
    )
    cells = [[fmt.format(v) for v in values] for _, values in rows]
    col_ws = [
        max([len(col_labels[j])] + [len(c[j]) for c in cells])
        for j in range(len(col_labels))
    ]
    lines = [title]
    header = str(col_header).ljust(label_w) + "  " + "  ".join(
        col_labels[j].rjust(col_ws[j]) for j in range(len(col_labels))
    )
    lines.append(header)
    lines.append("-" * len(header))
    for (label, _), row_cells in zip(rows, cells):
        lines.append(
            str(label).ljust(label_w)
            + "  "
            + "  ".join(
                row_cells[j].rjust(col_ws[j])
                for j in range(len(col_labels))
            )
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    fmt: str = "{:.2f}",
) -> str:
    """Render one or more y-series over a shared x axis."""
    rows = [(label, values) for label, values in series.items()]
    return format_table(
        title, x_label, [str(v) for v in x], rows, fmt=fmt
    )
