"""Reproductions of every evaluation figure in the paper.

Each ``figure*`` function regenerates the data behind one figure of
§4.2 and renders it as an ASCII table, mirroring the rows/series the
paper plots:

* Figure 5 -- overall wall-clock time vs processors, both datasets,
  three problem sizes each;
* Figure 6 -- (a) PubMed speedup curves, (b) PubMed per-component time
  percentages for the 2.75 GB size;
* Figure 7 -- (a) TREC speedup curves, (b) TREC per-component time
  percentages for the 1 GB size;
* Figure 8 -- per-component speedup (scanning, indexing, signature
  generation, clustering & projection) for both datasets;
* Figure 9 -- effectiveness of dynamic load balancing in the indexing
  component (per-processor indexing times, dynamic vs static).

Sweeps are shared: :func:`run_all_sweeps` computes each workload's
sweep once and every figure renders from that cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.engine import EngineConfig, ParallelTextEngine
from repro.engine.timings import PAPER_LABELS
from repro.runtime import MachineSpec

from .harness import (
    PAPER_PROCS,
    PUBMED_SIZES,
    TREC_SIZES,
    SweepResult,
    Workload,
    default_figure_config,
    make_workload,
    run_sweep,
)
from .tables import format_series

#: Figure 8 groups the six pipeline components into four panels
FIG8_GROUPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Scanning", ("scan",)),
    ("Indexing", ("index",)),
    ("Signature Generation", ("topic", "am", "docvec")),
    ("Clustering & Projection", ("clusproj",)),
)

_COMPONENT_ORDER = ("scan", "index", "topic", "am", "docvec", "clusproj")


@dataclass
class FigureReport:
    """One reproduced figure: machine-readable data + rendered text."""

    figure: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text

    def write(self, directory) -> None:
        """Write both renderings: ``<fig>.txt`` and ``<fig>.json``."""
        import json
        from pathlib import Path

        def jsonable(obj):
            if isinstance(obj, dict):
                return {str(k): jsonable(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [jsonable(v) for v in obj]
            if isinstance(obj, np.ndarray):
                return obj.tolist()
            if isinstance(obj, (np.integer,)):
                return int(obj)
            if isinstance(obj, (np.floating,)):
                return float(obj)
            return obj

        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        stem = self.figure.lower().replace(" ", "")
        (d / f"{stem}.txt").write_text(self.text + "\n")
        (d / f"{stem}.json").write_text(json.dumps(jsonable(self.data)))


Sweeps = dict[tuple[str, str], SweepResult]


def run_all_sweeps(
    downscale: float = 10_000.0,
    procs: tuple[int, ...] = PAPER_PROCS,
    machine: Optional[MachineSpec] = None,
    config: Optional[EngineConfig] = None,
    seed: int = 7,
    progress: Optional[Callable[[str], None]] = None,
) -> Sweeps:
    """Run the full evaluation grid once (both datasets, all sizes)."""
    sweeps: Sweeps = {}
    for dataset, sizes in (("pubmed", PUBMED_SIZES), ("trec", TREC_SIZES)):
        for label, rep in sizes:
            wl = make_workload(
                dataset, label, rep, downscale=downscale, seed=seed
            )
            sweeps[(dataset, label)] = run_sweep(
                wl,
                procs=procs,
                machine=machine,
                config=config,
                progress=progress,
            )
    return sweeps


def _dataset_sweeps(sweeps: Sweeps, dataset: str) -> list[SweepResult]:
    return [s for (d, _), s in sweeps.items() if d == dataset]


# ----------------------------------------------------------------------
# Figure 5: overall wall-clock timings
# ----------------------------------------------------------------------
def figure5(sweeps: Sweeps) -> FigureReport:
    blocks = []
    data: dict = {}
    for dataset, title in (
        ("pubmed", "Pubmed - Overall Timings (wall clock, minutes)"),
        ("trec", "TREC - Overall Timings (wall clock, minutes)"),
    ):
        ds = _dataset_sweeps(sweeps, dataset)
        if not ds:
            continue
        procs = sorted(ds[0].results)
        series = {
            s.workload.label: [s.wall(p) / 60.0 for p in procs]
            for s in ds
        }
        data[dataset] = {"procs": procs, "minutes": series}
        blocks.append(
            format_series(title, "Processors", procs, series, fmt="{:.2f}")
        )
    return FigureReport(
        figure="Figure 5", text="\n\n".join(blocks), data=data
    )


# ----------------------------------------------------------------------
# Figures 6a/7a: overall speedup; 6b/7b: component percentages
# ----------------------------------------------------------------------
def _speedup_report(
    sweeps: Sweeps, dataset: str, fig_name: str, pct_size: str
) -> FigureReport:
    ds = _dataset_sweeps(sweeps, dataset)
    procs = sorted(ds[0].results)
    speedups = {
        s.workload.label: [s.speedup(p) for p in procs] for s in ds
    }
    part_a = format_series(
        f"{fig_name}a. {dataset.upper()} - Overall Speedup "
        "(vs ideal serial)",
        "Processors",
        procs,
        speedups,
        fmt="{:.2f}",
    )
    small = next(s for s in ds if s.workload.label == pct_size)
    pct_series: dict[str, list[float]] = {}
    for comp in _COMPONENT_ORDER:
        pct_series[PAPER_LABELS[comp]] = [
            small.component_percentages(p).get(comp, 0.0) for p in procs
        ]
    part_b = format_series(
        f"{fig_name}b. {dataset.upper()} {pct_size} - "
        "Time Percentage in Components",
        "Component/P",
        procs,
        pct_series,
        fmt="{:.1f}",
    )
    return FigureReport(
        figure=f"Figure {fig_name}",
        text=part_a + "\n\n" + part_b,
        data={
            "procs": procs,
            "speedup": speedups,
            "percentages": pct_series,
            "pct_size": pct_size,
        },
    )


def figure6(sweeps: Sweeps) -> FigureReport:
    """PubMed speedups + component percentages (2.75 GB)."""
    return _speedup_report(sweeps, "pubmed", "6", "2.75 GB")


def figure7(sweeps: Sweeps) -> FigureReport:
    """TREC speedups + component percentages (1 GB)."""
    return _speedup_report(sweeps, "trec", "7", "1.00 GB")


# ----------------------------------------------------------------------
# Figure 8: per-component speedup
# ----------------------------------------------------------------------
def figure8(sweeps: Sweeps) -> FigureReport:
    blocks = []
    data: dict = {}
    for dataset in ("pubmed", "trec"):
        ds = _dataset_sweeps(sweeps, dataset)
        if not ds:
            continue
        procs = sorted(ds[0].results)
        data[dataset] = {}
        for group_name, comps in FIG8_GROUPS:
            series = {}
            for s in ds:
                serial_t = sum(
                    s.serial_result.timings.component_seconds.get(c, 0.0)
                    for c in comps
                )
                vals = []
                for p in procs:
                    par_t = sum(
                        s.component_seconds(p).get(c, 0.0) for c in comps
                    )
                    vals.append(serial_t / par_t if par_t > 0 else 0.0)
                series[s.workload.label] = vals
            data[dataset][group_name] = {"procs": procs, **series}
            blocks.append(
                format_series(
                    f"{dataset.upper()} - {group_name} Speedup",
                    "Processors",
                    procs,
                    series,
                    fmt="{:.2f}",
                )
            )
    return FigureReport(
        figure="Figure 8", text="\n\n".join(blocks), data=data
    )


# ----------------------------------------------------------------------
# Figure 9: dynamic load balancing effectiveness
# ----------------------------------------------------------------------
def figure9(
    nprocs: int = 8,
    gen_bytes: int = 3_000_000,
    machine: Optional[MachineSpec] = None,
    config: Optional[EngineConfig] = None,
    seed: int = 7,
) -> FigureReport:
    """Per-processor indexing times, dynamic vs static balancing.

    Uses the skewed TREC-like corpus where byte-balanced partitions
    carry unequal posting loads.  The fixed-size chunk is one document
    per load so the balancer has fine-grained work to redistribute, as
    in the paper's Kruskal-Weiss chunking.  Unlike the scaling figures
    this runs *unscaled* (one generated byte is one byte): workload
    scaling would inflate each document into an indivisible multi-
    second task and hide the balancer's effect behind task granularity.
    """
    from repro.datasets import generate_trec

    corpus = generate_trec(
        gen_bytes,
        seed=seed,
        max_body_tokens=2_000,
    )
    base = config if config is not None else default_figure_config()
    results = {}
    for label, dyn in (("dynamic", True), ("static", False)):
        from dataclasses import replace as dc_replace

        cfg = dc_replace(base, dynamic_load_balancing=dyn, chunk_docs=1)
        results[label] = ParallelTextEngine(
            nprocs, machine=machine, config=cfg
        ).run(corpus)
    series = {}
    stats = {}
    for label, res in results.items():
        per_rank = res.timings.extras["index_invert_per_rank"]
        series[f"{label} LB"] = list(per_rank)
        stats[label] = {
            "wall": float(per_rank.max()),
            "mean": float(per_rank.mean()),
            "imbalance": float(per_rank.max() / max(1e-12, per_rank.mean())),
        }
    text = format_series(
        f"Figure 9. Indexing time per processor (seconds, P={nprocs}, "
        "TREC synthetic)",
        "Strategy/rank",
        list(range(nprocs)),
        series,
        fmt="{:.3f}",
    )
    text += (
        f"\n\nimbalance (max/mean): dynamic="
        f"{stats['dynamic']['imbalance']:.3f}  "
        f"static={stats['static']['imbalance']:.3f}\n"
        f"indexing wall: dynamic={stats['dynamic']['wall']:.3f}s  "
        f"static={stats['static']['wall']:.3f}s"
    )
    return FigureReport(
        figure="Figure 9",
        text=text,
        data={"per_rank": series, "stats": stats, "nprocs": nprocs},
    )


def reproduce_all(
    downscale: float = 10_000.0,
    procs: tuple[int, ...] = PAPER_PROCS,
    machine: Optional[MachineSpec] = None,
    config: Optional[EngineConfig] = None,
    seed: int = 7,
    progress: Optional[Callable[[str], None]] = None,
) -> list[FigureReport]:
    """Regenerate every evaluation figure; returns the reports."""
    sweeps = run_all_sweeps(
        downscale=downscale,
        procs=procs,
        machine=machine,
        config=config,
        seed=seed,
        progress=progress,
    )
    reports = [
        figure5(sweeps),
        figure6(sweeps),
        figure7(sweeps),
        figure8(sweeps),
        figure9(machine=machine, config=config, seed=seed),
    ]
    return reports
