"""Sweep driver: run the engine across processor counts and datasets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.datasets import generate_pubmed, generate_trec
from repro.engine import EngineConfig, EngineResult, ParallelTextEngine
from repro.runtime import MachineSpec
from repro.text.documents import Corpus

#: processor counts the paper's evaluation sweeps (Figs. 5-8)
PAPER_PROCS: tuple[int, ...] = (4, 8, 16, 32)

#: problem sizes from §4.2, as (label, represented bytes)
PUBMED_SIZES: tuple[tuple[str, float], ...] = (
    ("2.75 GB", 2.75e9),
    ("6.67 GB", 6.67e9),
    ("16.44 GB", 16.44e9),
)
TREC_SIZES: tuple[tuple[str, float], ...] = (
    ("1.00 GB", 1.00e9),
    ("4.00 GB", 4.00e9),
    ("8.21 GB", 8.21e9),
)


def default_figure_config() -> EngineConfig:
    """Engine configuration used by the figure reproductions.

    Sized for a production-like signature space (M = 150 topic
    dimensions when the vocabulary supports it).
    """
    return EngineConfig(
        n_major_terms=1500,
        topic_fraction=0.10,
        n_clusters=16,
        kmeans_sample=192,
        chunk_docs=4,
    )


@dataclass
class Workload:
    """A generated corpus standing in for one of the paper's inputs."""

    dataset: str  # "pubmed" | "trec"
    label: str  # e.g. "2.75 GB"
    corpus: Corpus


def make_workload(
    dataset: str,
    label: str,
    represented_bytes: float,
    downscale: float = 10_000.0,
    seed: int = 7,
) -> Workload:
    """Generate the scaled-down stand-in corpus for one problem size.

    ``downscale`` is the generated-to-represented ratio: the default
    10**4 turns 2.75 GB into a 275 KB generated corpus whose cost-model
    charges are scaled back up (see ``MachineSpec`` docs).
    """
    gen_bytes = max(150_000, int(represented_bytes / downscale))
    if dataset == "pubmed":
        corpus = generate_pubmed(
            gen_bytes, seed=seed, represented_bytes=represented_bytes
        )
    elif dataset == "trec":
        # Under workload scaling one generated document stands for a
        # *bundle* of thousands of real pages, so the per-page Pareto
        # tail must be smoothed: an unclipped generated page would
        # model a single indivisible multi-gigabyte document, which
        # GOV2 does not contain.  The density skew (markup runs) that
        # drives load imbalance is preserved.
        corpus = generate_trec(
            gen_bytes,
            seed=seed,
            represented_bytes=represented_bytes,
            max_body_tokens=400,
        )
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    return Workload(dataset=dataset, label=label, corpus=corpus)


@dataclass
class SweepResult:
    """Engine results across processor counts for one workload."""

    workload: Workload
    results: dict[int, EngineResult]
    #: ideal (pressure-free) 1-proc run used as the speedup baseline
    serial_result: EngineResult
    config: EngineConfig = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def serial_baseline(self) -> float:
        return self.serial_result.timings.wall_time

    def wall(self, nprocs: int) -> float:
        return self.results[nprocs].timings.wall_time

    def speedup(self, nprocs: int) -> float:
        """Self-relative speedup against the ideal serial time.

        The paper's 16.44 GB curve starts *below* linear at 4
        processors (memory thrashing) and rejoins linear afterwards;
        normalizing against a thrash-free serial estimate reproduces
        exactly that shape.
        """
        return self.serial_baseline / self.wall(nprocs)

    def component_seconds(self, nprocs: int) -> dict[str, float]:
        return self.results[nprocs].timings.component_seconds

    def component_percentages(self, nprocs: int) -> dict[str, float]:
        return self.results[nprocs].timings.component_percentages


def run_sweep(
    workload: Workload,
    procs: tuple[int, ...] = PAPER_PROCS,
    machine: Optional[MachineSpec] = None,
    config: Optional[EngineConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run the engine at every processor count in ``procs``."""
    machine = machine if machine is not None else MachineSpec()
    config = config if config is not None else default_figure_config()
    results: dict[int, EngineResult] = {}
    for p in procs:
        if progress:
            progress(f"{workload.dataset} {workload.label}: P={p}")
        results[p] = ParallelTextEngine(
            p, machine=machine, config=config
        ).run(workload.corpus)
    # thrash-free serial estimate for speedup normalization
    ideal_machine = replace(machine, pressure_slope=0.0)
    serial_result = ParallelTextEngine(
        1, machine=ideal_machine, config=config
    ).run(workload.corpus)
    return SweepResult(
        workload=workload,
        results=results,
        serial_result=serial_result,
        config=config,
    )
