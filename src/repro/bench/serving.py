"""Serving benchmark: throughput/latency of the sharded query layer.

``python -m repro.cli serve-bench`` builds a small seeded corpus, runs
the engine once, shards the result at several shard counts, replays a
seeded closed-loop workload through the broker at each count, and
writes ``BENCH_serving.json``:

* ``results[P]`` -- served/rejected counts, virtual throughput,
  p50/p99 virtual latency, cache hit rate and the ``serve.*`` counter
  totals of the fault-free run;
* ``fault`` -- the same workload at the largest shard count under a
  crash fault plan (one shard rank dies mid-run): the run must still
  answer **every** query, degrading to partial responses, and the
  report records the degraded-response rate;
* ``replica.matrix`` -- the replicated tier scaling study: Zipf
  hot-spot workloads with thousands of clients replayed through
  router-fronted broker pools at growing rank counts (the largest row
  runs 64 ranks), recording failover counts, shed rates and tail
  latency per configuration;
* ``replica.failover`` -- one replicated configuration run three
  ways: fault-free, with a mid-run worker crash at R=2 (must answer
  every admitted query with **zero** degraded responses,
  byte-identical to the fault-free run), and the same crash at R=1
  (reproduces the flagged degradation the tier exists to remove);
* ``pruning`` -- the block-max study: a term-search-heavy workload
  over a larger corpus replayed exhaustively and with the exact
  block-max kernel at broker batch sizes B in {1, 4, 16}, recording
  **wall-clock** throughput (the virtual clock cannot see Python/numpy
  kernel costs), virtual tail latency, posting bytes actually decoded,
  and blocks skipped.  Every pruned configuration's answers are
  byte-compared against the exhaustive run; any mismatch fails the
  bench (exit 1) -- the exactness oracle;
* ``workbench`` -- the analyst-workload study: seeded multi-tenant
  sessions (open -> search -> refine/set algebra -> derive -> close)
  replayed through the workbench tier at P in {1, 2, 4}, recording
  throughput, virtual p50/p99 op latency, artifact cache-hit rate,
  quota-shed rate and TTL eviction count.  Two byte-identity oracles
  gate the study: canonical response transcripts must be identical
  across shard counts, and the largest-P run must be byte-identical
  under ``REPRO_SCHED_SLOWPATH=1``; any mismatch fails the bench;
* ``dashboard`` -- the faceted-analytics workload class: many seeded
  dashboard clients polling sliding-window queries (faceted counts,
  per-window top terms, emerging-term detection) at high rate, mixed
  with classic search traffic, over a *stamped* two-generation store.
  Four exact-transcript oracles gate the study: canonical answer
  bytes must be identical across shard counts, identical under
  ``REPRO_SCHED_SLOWPATH=1``, identical under the multiprocessing
  backend, and identical between fastpath and slowpath schedulers
  while live ingest churns generations (including a stamped
  compaction) mid-run.  Any drift fails the bench (exit 1);
* ``baseline`` comparison -- all virtual statistics are deterministic
  for a given (corpus seed, workload seed, machine), so a drifted
  number means a behavioural change: the run fails (exit 1) unless
  ``--update-baseline``.  Wall-clock fields are never compared against
  the stored baseline (absolute walls are machine-local); instead the
  best pruned configuration must stay within 15% of the *same-run*
  exhaustive wall throughput, or the bench fails.

Virtual stats depend on the engine's BLAS-backed stages (k-means/PCA
assignments shape per-query payload sizes), so baselines are
machine-local: CI regenerates its own baseline before comparing, like
the perf-smoke job, and the committed file documents one reference
machine.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.runtime.faults import CrashFault, FaultPlan
from repro.runtime.metrics import counter_totals
from repro.serve.broker import BrokerConfig, ServeReport, serve
from repro.serve.query import canonical_response
from repro.serve.replica import ReplicaMap
from repro.serve.router import RouterConfig, TierReport, serve_replicated
from repro.serve.store import build_shards
from repro.serve.workload import (
    generate_dashboard_workload,
    generate_workload,
    generate_zipf_workload,
    store_profile,
)
from repro.workbench import (
    WorkbenchConfig,
    WorkbenchReport,
    generate_analyst_workload,
    serve_workbench,
)

SCHEMA = "repro-bench-serving/5"
DEFAULT_SHARDS = (1, 2, 4, 8)
DEFAULT_OUT = "BENCH_serving.json"
DEFAULT_CORPUS_BYTES = 120_000
DEFAULT_CLIENTS = 4
DEFAULT_QUERIES = 30

#: the pruning study runs over its own, much larger corpus -- block-max
#: skipping only pays once posting decode dominates per-query cost, so
#: the headline numbers need enough documents for the numpy kernels to
#: outweigh simulator bookkeeping.  0 skips the study entirely.
DEFAULT_PRUNING_CORPUS_BYTES = 40_000_000
DEFAULT_BATCH_SIZES = (1, 4, 16)
#: one shard: block-max skipping is a per-shard kernel win, and
#: splitting ~15k docs over many tiny shards buries it in per-op
#: dispatch overhead (the shard-count scaling story is ``results``)
_PRUNING_SHARDS = 1
#: zero-think closed loop so the broker actually queues -- cross-query
#: batching only pays when more than one search op is waiting
_PRUNING_CLIENTS = 32
_PRUNING_QUERIES = 10
_PRUNING_MAX_INFLIGHT = 64
#: wall-clock is noisy; each configuration runs this many times and
#: reports the *best* wall time (virtual stats are identical across
#: repeats by determinism, so only the clock varies)
_PRUNING_REPEATS = 3
#: best pruned config's wall throughput below this fraction of the
#: same-run exhaustive reference is a regression -- a same-process
#: ratio, so it holds across machines where absolute walls do not
_WALL_REGRESSION_FRACTION = 0.85

#: analyst-workload study: shard counts the same transcript must be
#: byte-identical across (run only at counts the main matrix built)
_WORKBENCH_SHARDS = (1, 2, 4)
#: deliberately tight quotas + a short TTL so the study exercises every
#: lifecycle path: quota sheds (3 sessions/tenant vs max 2), TTL
#: evictions (the paused sessions idle far past 30 virtual seconds),
#: and artifact cache hits (sessions share per-tenant anchor pools)
_WORKBENCH_CONFIG = WorkbenchConfig(
    max_sessions=2,
    max_sets=8,
    max_derived_bytes=1 << 14,
    session_ttl_s=30.0,
)
_WORKBENCH_KNOBS = dict(
    n_tenants=2,
    sessions_per_tenant=3,
    ops_per_session=8,
    pool_size=2,
    pause_fraction=0.4,
    pause_s=90.0,
)

#: dashboard study: shard counts the same poll transcript must be
#: byte-identical across (restricted to counts the main matrix built)
_DASHBOARD_SHARDS = (1, 2, 4)
_DASHBOARD_CORPUS_BYTES = 60_000
_DASHBOARD_SOURCES = 4
_DASHBOARD_SPAN_S = 600.0
#: many clients, high poll rate, a quarter classic search traffic --
#: the "wall of dashboards next to the analysts" shape
_DASHBOARD_KNOBS = dict(
    n_clients=10,
    polls_per_client=8,
    window_fraction=0.25,
    mean_poll_s=0.01,
    search_fraction=0.25,
    source_fraction=0.25,
    n_terms=6,
)
#: the stamped feed appended as the store's second generation (and
#: replayed live in the churn oracle)
_DASHBOARD_FEED_DOCS = 8
_DASHBOARD_FEED_BATCHES = 2

#: replicated-tier scaling matrix:
#: (nshards, workers, brokers, replicas, clients, queries/client).
#: Ranks = 1 router + brokers + workers; the last row runs 64 ranks
#: with two thousand Zipf clients hammering seven brokers.
DEFAULT_REPLICA_MATRIX = (
    (8, 8, 2, 2, 200, 3),
    (16, 16, 4, 2, 600, 3),
    (32, 56, 7, 2, 2000, 2),
)

#: engine sized for a benchmark corpus, not a paper figure
_BENCH_ENGINE = EngineConfig(
    n_major_terms=300, n_clusters=8, chunk_docs=8
)

#: the pruning corpus is ~200x larger; bigger chunks keep the one-time
#: engine run out of the measurement budget (serving stats never depend
#: on chunking -- it only shapes engine wall time)
_PRUNING_ENGINE = EngineConfig(
    n_major_terms=300, n_clusters=8, chunk_docs=64
)


@dataclass
class ServePoint:
    """Measurements for one shard count."""

    nshards: int
    served: int
    rejected: int
    degraded: int
    degraded_rate: float
    cache_hit_rate: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    makespan_s: float
    counters: dict[str, float]

    @classmethod
    def from_report(cls, nshards: int, report: ServeReport) -> "ServePoint":
        serve_counters = {
            k: v
            for k, v in counter_totals(report.metrics).items()
            if k.startswith("serve.")
        }
        return cls(
            nshards=nshards,
            served=report.served,
            rejected=len(report.rejected),
            degraded=report.degraded,
            degraded_rate=round(report.degraded_rate, 6),
            cache_hit_rate=round(report.cache_hit_rate, 6),
            throughput_qps=round(report.throughput, 6),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            makespan_s=round(report.makespan, 9),
            counters=serve_counters,
        )


#: reject reasons that count as quota sheds (vs contract errors)
_QUOTA_REASONS = (
    "session_quota",
    "set_quota",
    "derived_bytes_quota",
)


@dataclass
class WorkbenchPoint:
    """Measurements for one shard count of the analyst study."""

    nshards: int
    served: int
    rejected: int
    quota_shed: int
    quota_shed_rate: float
    sessions_opened: int
    sessions_closed: int
    sessions_evicted: int
    sets_saved: int
    artifact_hit_rate: float
    throughput_ops_s: float
    p50_latency_s: float
    p99_latency_s: float
    makespan_s: float
    counters: dict[str, float]

    @classmethod
    def from_report(
        cls, nshards: int, report: WorkbenchReport
    ) -> "WorkbenchPoint":
        wb_counters = {
            k: v
            for k, v in counter_totals(report.metrics).items()
            if k.startswith("workbench.")
        }
        quota = sum(
            1
            for r in report.rejected
            if r.reason in _QUOTA_REASONS
        )
        issued = report.served + len(report.rejected)
        return cls(
            nshards=nshards,
            served=report.served,
            rejected=len(report.rejected),
            quota_shed=quota,
            quota_shed_rate=round(quota / issued if issued else 0.0, 6),
            sessions_opened=report.sessions_opened,
            sessions_closed=report.sessions_closed,
            sessions_evicted=report.sessions_evicted,
            sets_saved=report.sets_saved,
            artifact_hit_rate=round(report.artifact_hit_rate, 6),
            throughput_ops_s=round(report.throughput, 6),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            makespan_s=round(report.makespan, 9),
            counters=wb_counters,
        )


@dataclass
class DashboardPoint:
    """Measurements for one shard count of the dashboard study."""

    nshards: int
    served: int
    rejected: int
    degraded: int
    facet_windows: float
    facet_bytes_scanned: float
    emerging_hits: float
    cache_hit_rate: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    makespan_s: float
    counters: dict[str, float]

    @classmethod
    def from_report(
        cls, nshards: int, report: ServeReport
    ) -> "DashboardPoint":
        totals = counter_totals(report.metrics)
        facet_counters = {
            k: v for k, v in totals.items() if k.startswith("facets.")
        }
        return cls(
            nshards=nshards,
            served=report.served,
            rejected=len(report.rejected),
            degraded=report.degraded,
            facet_windows=totals.get("facets.windows", 0.0),
            facet_bytes_scanned=totals.get("facets.bytes_scanned", 0.0),
            emerging_hits=totals.get("facets.emerging_hits", 0.0),
            cache_hit_rate=round(report.cache_hit_rate, 6),
            throughput_qps=round(report.throughput, 6),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            makespan_s=round(report.makespan, 9),
            counters=facet_counters,
        )


def _with_slowpath(run):
    """Call ``run()`` with ``REPRO_SCHED_SLOWPATH=1``, restoring the
    prior environment afterwards."""
    saved = os.environ.get("REPRO_SCHED_SLOWPATH")
    os.environ["REPRO_SCHED_SLOWPATH"] = "1"
    try:
        return run()
    finally:
        if saved is None:
            os.environ.pop("REPRO_SCHED_SLOWPATH", None)
        else:
            os.environ["REPRO_SCHED_SLOWPATH"] = saved


def _measure_dashboard(
    tmp: Path,
    corpus_seed: int,
    workload_seed: int,
    progress,
) -> dict:
    """Dashboard workload study over a stamped two-generation store.

    Builds a stamped corpus, shards it at each count in
    ``_DASHBOARD_SHARDS`` and appends a stamped feed as a second,
    pre-published generation, then replays one seeded dashboard
    workload (sliding-window polls mixed with search traffic) at every
    count.  Exact-transcript oracles: canonical answers must be
    byte-identical across shard counts, under the slowpath scheduler,
    under the ``mp`` backend, and between fastpath/slowpath while the
    same feed is ingested *live* (with a stamped compaction mid-run).
    """
    import shutil

    from repro.facets import FacetSpec, extract_facets
    from repro.ingest.compact import CompactionPolicy
    from repro.ingest.delta import append_generation, build_delta
    from repro.ingest.feed import FeedConfig, FeedSource
    from repro.ingest.live import IngestConfig, IngestPlan

    spec = FacetSpec(
        n_sources=_DASHBOARD_SOURCES,
        span_s=_DASHBOARD_SPAN_S,
        seed=corpus_seed,
    )
    corpus = generate_pubmed(
        _DASHBOARD_CORPUS_BYTES, seed=corpus_seed, n_themes=6, facets=spec
    )
    result = SerialTextEngine(_BENCH_ENGINE).run(corpus)
    postings = build_term_postings(
        corpus, result, _BENCH_ENGINE.tokenizer
    )
    facets = extract_facets(corpus)
    feed = FeedSource(
        FeedConfig(
            dataset="pubmed",
            batch_docs=_DASHBOARD_FEED_DOCS,
            n_batches=_DASHBOARD_FEED_BATCHES,
            seed=corpus_seed,
            themes=6,
            skip_docs=len(corpus.documents),
            start_doc_id=int(result.doc_ids[-1]) + 1,
            mean_interarrival_s=0.05,
            facet_sources=_DASHBOARD_SOURCES,
        )
    )
    batches = feed.batches()
    stores: dict[int, str] = {}
    for p in _DASHBOARD_SHARDS:
        store_dir = str(tmp / f"dash-store-{p}")
        build_shards(
            result, store_dir, p, postings=postings, facets=facets
        )
        # second generation, pre-published: visible from session start
        # at every shard count
        deltas = [
            build_delta(
                result,
                c.documents,
                tokenizer_config=_BENCH_ENGINE.tokenizer,
                facets=extract_facets(c),
            )
            for c, _arrival in batches
        ]
        append_generation(store_dir, deltas, published_s=0.0)
        stores[p] = store_dir
    scripts = generate_dashboard_workload(
        store_profile(stores[_DASHBOARD_SHARDS[-1]]),
        seed=workload_seed,
        **_DASHBOARD_KNOBS,
    )
    points: dict[int, DashboardPoint] = {}
    answers: dict[int, dict] = {}
    for p in _DASHBOARD_SHARDS:
        report = serve(stores[p], scripts)
        points[p] = DashboardPoint.from_report(p, report)
        answers[p] = _canonical_answers(report.responses)
        if progress:
            pt = points[p]
            progress(
                f"dashboard P={p}: {pt.served} polls, "
                f"{pt.throughput_qps:.1f} q/s virtual, p99 "
                f"{pt.p99_latency_s * 1e3:.2f} ms, "
                f"{pt.facet_windows:.0f} windows, "
                f"{pt.facet_bytes_scanned / 1e3:.1f} kB facet scan, "
                f"{pt.emerging_hits:.0f} emerging hits"
            )
    ref = answers[_DASHBOARD_SHARDS[0]]
    exact_shards = all(
        answers[p] == ref for p in _DASHBOARD_SHARDS
    )
    p = _DASHBOARD_SHARDS[-1]
    slow = _with_slowpath(lambda: serve(stores[p], scripts))
    exact_slow = _canonical_answers(slow.responses) == answers[p]
    mp = serve(stores[p], scripts, backend="mp")
    exact_mp = _canonical_answers(mp.responses) == answers[p]
    # churn oracle: replay the feed *live* against a fresh copy of the
    # single-generation store (max_deltas=2 forces a stamped
    # compaction mid-session) under both scheduler mechanisms
    churn_p = _DASHBOARD_SHARDS[len(_DASHBOARD_SHARDS) // 2]
    churn_base = str(tmp / "dash-churn-base")
    build_shards(
        result, churn_base, churn_p, postings=postings, facets=facets
    )
    plan_cfg = IngestConfig(
        compaction=CompactionPolicy(max_deltas=_DASHBOARD_FEED_BATCHES)
    )

    def _churn_run():
        run_dir = tempfile.mkdtemp(dir=str(tmp), prefix="dash-churn-")
        shutil.rmtree(run_dir)
        shutil.copytree(churn_base, run_dir)
        plan = IngestPlan(
            result=result,
            batches=list(batches),
            config=plan_cfg,
            tokenizer_config=_BENCH_ENGINE.tokenizer,
        )
        return serve(run_dir, scripts, ingest=plan)

    churn_fast = _churn_run()
    churn_slow = _with_slowpath(_churn_run)
    exact_churn = _canonical_answers(
        churn_fast.responses
    ) == _canonical_answers(churn_slow.responses)
    compactions = counter_totals(churn_fast.metrics).get(
        "ingest.compactions", 0.0
    )
    if progress:
        progress(
            "dashboard oracles: shards "
            f"{'exact' if exact_shards else 'MISMATCH'}, slowpath "
            f"{'exact' if exact_slow else 'MISMATCH'}, mp "
            f"{'exact' if exact_mp else 'MISMATCH'}, churn "
            f"{'exact' if exact_churn else 'MISMATCH'} "
            f"({compactions:.0f} live compactions)"
        )
    return {
        "shards": list(_DASHBOARD_SHARDS),
        "corpus_bytes": _DASHBOARD_CORPUS_BYTES,
        "n_sources": _DASHBOARD_SOURCES,
        "span_s": _DASHBOARD_SPAN_S,
        "knobs": dict(_DASHBOARD_KNOBS),
        "points": {str(p): asdict(pt) for p, pt in points.items()},
        "churn": {
            "nshards": churn_p,
            "point": asdict(
                DashboardPoint.from_report(churn_p, churn_fast)
            ),
            "live_compactions": compactions,
        },
        "exact_match_shards": exact_shards,
        "exact_match_slowpath": exact_slow,
        "exact_match_mp": exact_mp,
        "exact_match_churn": exact_churn,
    }


def _workbench_transcript(report: WorkbenchReport) -> bytes:
    return b"\n".join(
        canonical_response(r) for r in report.responses
    )


def _measure_workbench(
    stores: dict[int, str],
    workload_seed: int,
    progress,
) -> dict:
    """Analyst-workload study over the workbench tier.

    Replays one seeded multi-tenant session workload at each shard
    count in ``_WORKBENCH_SHARDS`` (restricted to the counts the main
    matrix built) and byte-compares the canonical transcripts: result
    sets and derived artifacts are shard-layout independent, so any
    cross-count drift is a determinism bug.  The largest count then
    re-runs under ``REPRO_SCHED_SLOWPATH=1`` and must reproduce the
    fastpath transcript byte for byte.
    """
    wb_shards = tuple(
        p for p in _WORKBENCH_SHARDS if p in stores
    ) or (max(stores),)
    scripts = generate_analyst_workload(
        store_profile(stores[wb_shards[-1]]),
        seed=workload_seed,
        **_WORKBENCH_KNOBS,
    )
    points: dict[int, WorkbenchPoint] = {}
    transcripts: dict[int, bytes] = {}
    for p in wb_shards:
        report = serve_workbench(
            stores[p], scripts, config=_WORKBENCH_CONFIG
        )
        points[p] = WorkbenchPoint.from_report(p, report)
        transcripts[p] = _workbench_transcript(report)
        if progress:
            pt = points[p]
            progress(
                f"workbench P={p}: {pt.served} ops, "
                f"{pt.throughput_ops_s:.1f} ops/s virtual, "
                f"p99 {pt.p99_latency_s * 1e3:.2f} ms, artifact hits "
                f"{pt.artifact_hit_rate:.0%}, shed {pt.quota_shed}, "
                f"evicted {pt.sessions_evicted}"
            )
    ref = transcripts[wb_shards[0]]
    exact_shards = all(transcripts[p] == ref for p in wb_shards)
    # slowpath identity at the largest count, toggled in-process (the
    # scheduler reads the env var at cluster construction)
    p = wb_shards[-1]
    saved = os.environ.get("REPRO_SCHED_SLOWPATH")
    os.environ["REPRO_SCHED_SLOWPATH"] = "1"
    try:
        slow = serve_workbench(
            stores[p], scripts, config=_WORKBENCH_CONFIG
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_SCHED_SLOWPATH", None)
        else:
            os.environ["REPRO_SCHED_SLOWPATH"] = saved
    exact_slow = _workbench_transcript(slow) == transcripts[p]
    if progress:
        progress(
            f"workbench oracles: shards "
            f"{'exact' if exact_shards else 'MISMATCH'}, slowpath "
            f"{'exact' if exact_slow else 'MISMATCH'}"
        )
    return {
        "shards": list(wb_shards),
        "knobs": dict(_WORKBENCH_KNOBS),
        "quotas": asdict(_WORKBENCH_CONFIG),
        "points": {str(p): asdict(pt) for p, pt in points.items()},
        "exact_match_shards": exact_shards,
        "exact_match_slowpath": exact_slow,
    }


@dataclass(frozen=True)
class ReplicaSpec:
    """One row of the replicated-tier scaling matrix."""

    nshards: int
    workers: int
    brokers: int
    replicas: int
    n_clients: int
    queries_per_client: int

    @property
    def nprocs(self) -> int:
        return 1 + self.brokers + self.workers

    @property
    def label(self) -> str:
        return (
            f"{self.nshards}s-{self.workers}w-{self.brokers}b-"
            f"r{self.replicas}-c{self.n_clients}"
        )

    @classmethod
    def parse(cls, text: str) -> "ReplicaSpec":
        """Parse the CLI colon form ``shards:workers:brokers:replicas:clients:qpc``."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(
                "replica spec must be "
                f"shards:workers:brokers:replicas:clients:qpc, got {text!r}"
            )
        return cls(*(int(p) for p in parts))


@dataclass
class ReplicaPoint:
    """Measurements for one replicated-tier configuration."""

    label: str
    nshards: int
    workers: int
    brokers: int
    replicas: int
    ranks: int
    n_clients: int
    served: int
    shed: int
    shed_rate: float
    degraded: int
    failovers: int
    hedges: int
    suspicions: int
    cache_hit_rate: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    makespan_s: float
    counters: dict[str, float]

    @classmethod
    def from_report(
        cls, spec: ReplicaSpec, report: TierReport
    ) -> "ReplicaPoint":
        serve_counters = {
            k: v
            for k, v in counter_totals(report.metrics).items()
            if k.startswith("serve.")
        }
        return cls(
            label=spec.label,
            nshards=spec.nshards,
            workers=spec.workers,
            brokers=spec.brokers,
            replicas=spec.replicas,
            ranks=spec.nprocs,
            n_clients=spec.n_clients,
            served=report.served,
            shed=len(report.shed),
            shed_rate=round(report.shed_rate, 6),
            degraded=report.degraded,
            failovers=report.failovers,
            hedges=report.hedges,
            suspicions=report.suspicions,
            cache_hit_rate=round(report.cache_hit_rate, 6),
            throughput_qps=round(report.throughput, 6),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            makespan_s=round(report.makespan, 9),
            counters=serve_counters,
        )


@dataclass
class PruningPoint:
    """One configuration of the block-max pruning study.

    ``wall_s``/``wall_throughput_qps`` are real clock measurements
    (best of ``_PRUNING_REPEATS``); everything else is deterministic
    virtual/counter state.  ``exact_match`` is ``None`` for the
    exhaustive reference itself, and a hard pass/fail oracle for every
    pruned configuration: the canonical answer bytes must equal the
    exhaustive run's, query for query.
    """

    label: str
    pruned: bool
    batch_max_queries: int
    served: int
    cache_hit_rate: float
    bytes_scanned: float
    blocks_skipped: float
    makespan_s: float
    p50_latency_s: float
    p99_latency_s: float
    wall_s: float
    wall_throughput_qps: float
    exact_match: bool | None


@dataclass
class Regression:
    """One baseline-comparison failure."""

    nshards: int
    field: str
    baseline: float
    measured: float


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def _canonical_answers(responses: list[dict]) -> dict:
    return {
        (r["client"], r["seq"]): canonical_response(r["response"])
        for r in responses
    }


def _measure_replica_matrix(
    result,
    postings,
    tmp: Path,
    matrix: tuple[ReplicaSpec, ...],
    workload_seed: int,
    progress,
) -> dict[str, ReplicaPoint]:
    """Zipf scaling study over the replicated tier."""
    points: dict[str, ReplicaPoint] = {}
    for spec in matrix:
        store_dir = str(tmp / f"rstore-{spec.label}")
        build_shards(
            result,
            store_dir,
            spec.nshards,
            postings=postings,
            replication=spec.replicas,
        )
        scripts = generate_zipf_workload(
            store_profile(store_dir),
            n_clients=spec.n_clients,
            queries_per_client=spec.queries_per_client,
            seed=workload_seed,
        )
        config = RouterConfig(
            brokers=spec.brokers,
            workers=spec.workers,
            replicas=spec.replicas,
            max_inflight=16,
        )
        report = serve_replicated(store_dir, scripts, config=config)
        pt = ReplicaPoint.from_report(spec, report)
        points[spec.label] = pt
        if progress:
            progress(
                f"replica {spec.label} ({spec.nprocs} ranks): "
                f"{pt.served} served, shed {pt.shed} "
                f"({pt.shed_rate:.0%}), p99 "
                f"{pt.p99_latency_s * 1e3:.2f} ms"
            )
    return points


def _measure_failover(
    result,
    postings,
    tmp: Path,
    workload_seed: int,
    progress,
) -> dict:
    """One replicated configuration, fault-free vs crash at R=2 and R=1.

    The crash victim is the sole R=1 owner of shard 0 (the consistent
    hash walk makes it the *first* R=2 owner too), so the same fault
    plan forces a failover at R=2 and a flagged degradation at R=1.
    """
    nshards, workers, brokers = 8, 8, 2
    spec2 = ReplicaSpec(nshards, workers, brokers, 2, 40, 3)
    spec1 = ReplicaSpec(nshards, workers, brokers, 1, 40, 3)
    store_dir = str(tmp / "rstore-failover")
    build_shards(
        result, store_dir, nshards, postings=postings, replication=2
    )
    scripts = generate_zipf_workload(
        store_profile(store_dir),
        n_clients=spec2.n_clients,
        queries_per_client=spec2.queries_per_client,
        seed=workload_seed,
    )
    victim = ReplicaMap.place(nshards, 1, workers).workers_for(0)[0]
    crash_rank = 1 + brokers + victim
    # crash during the first fanout wave so requests are in flight to
    # the victim (exercises RankFailedError failover, not just
    # health-based avoidance); max_inflight is set high enough that
    # the failover backlog never trips the priority shed thresholds --
    # this study isolates failover, the matrix rows cover shedding
    at_call = 5
    plan = FaultPlan(
        faults=(CrashFault(rank=crash_rank, at_call=at_call),)
    )

    def _config(replicas: int) -> RouterConfig:
        return RouterConfig(
            brokers=brokers,
            workers=workers,
            replicas=replicas,
            max_inflight=256,
            hedge_delay_s=0.5,
            shard_timeout_s=2.0,
        )

    base = serve_replicated(store_dir, scripts, config=_config(2))
    fault2 = serve_replicated(
        store_dir, scripts, config=_config(2), faults=plan
    )
    fault1 = serve_replicated(
        store_dir, scripts, config=_config(1), faults=plan
    )
    exact = _canonical_answers(base.responses) == _canonical_answers(
        fault2.responses
    )
    if progress:
        progress(
            f"failover study ({spec2.label}, crash rank {crash_rank}): "
            f"R=2 {fault2.degraded} degraded / "
            f"{fault2.failovers} failovers "
            f"(exact={'yes' if exact else 'NO'}), "
            f"R=1 {fault1.degraded} degraded"
        )
    return {
        "spec": asdict(spec2),
        "crashed_rank": crash_rank,
        "crashed_worker": victim,
        "at_call": at_call,
        "baseline": asdict(ReplicaPoint.from_report(spec2, base)),
        "fault_r2": asdict(ReplicaPoint.from_report(spec2, fault2)),
        "fault_r1": asdict(ReplicaPoint.from_report(spec1, fault1)),
        "exact_match_r2": exact,
    }


def _measure_pruning(
    tmp: Path,
    corpus_seed: int,
    workload_seed: int,
    pruning_corpus_bytes: int,
    batch_sizes: tuple[int, ...],
    progress,
) -> Optional[dict]:
    """Block-max pruning + batching study on a term-search workload.

    Builds a dedicated large corpus, replays an all-search workload
    exhaustively (the reference) and with the block-max kernel at each
    broker batch size, and byte-compares every pruned run's canonical
    answers against the exhaustive run's.  Returns ``None`` when the
    study is disabled (``pruning_corpus_bytes <= 0``).
    """
    if pruning_corpus_bytes <= 0:
        return None
    corpus = generate_pubmed(
        pruning_corpus_bytes, seed=corpus_seed, n_themes=6
    )
    result = SerialTextEngine(_PRUNING_ENGINE).run(corpus)
    postings = build_term_postings(
        corpus, result, _PRUNING_ENGINE.tokenizer
    )
    store_dir = str(tmp / "pruning-store")
    build_shards(result, store_dir, _PRUNING_SHARDS, postings=postings)
    scripts = generate_workload(
        store_profile(store_dir),
        n_clients=_PRUNING_CLIENTS,
        queries_per_client=_PRUNING_QUERIES,
        seed=workload_seed,
        mix={"search": 1.0},
        mean_think_s=0.0,
    )
    configs: list[tuple[str, BrokerConfig]] = [
        (
            "exhaustive",
            BrokerConfig(
                pruned_search=False, max_inflight=_PRUNING_MAX_INFLIGHT
            ),
        )
    ]
    for b in batch_sizes:
        configs.append(
            (
                f"blockmax-b{b}",
                BrokerConfig(
                    pruned_search=True,
                    batch_max_queries=b,
                    max_inflight=_PRUNING_MAX_INFLIGHT,
                ),
            )
        )
    runs: dict[str, PruningPoint] = {}
    reference_answers: Optional[dict] = None
    for label, config in configs:
        wall = float("inf")
        report = None
        for _ in range(_PRUNING_REPEATS):
            t0 = time.perf_counter()
            report = serve(store_dir, scripts, config=config)
            wall = min(wall, time.perf_counter() - t0)
        totals = counter_totals(report.metrics)
        answers = _canonical_answers(report.responses)
        if reference_answers is None:
            reference_answers = answers
            exact: bool | None = None
        else:
            exact = answers == reference_answers
        runs[label] = PruningPoint(
            label=label,
            pruned=config.pruned_search,
            batch_max_queries=config.batch_max_queries,
            served=report.served,
            cache_hit_rate=round(report.cache_hit_rate, 6),
            bytes_scanned=totals.get("serve.shard.bytes_scanned", 0.0),
            blocks_skipped=totals.get("serve.shard.blocks_skipped", 0.0),
            makespan_s=round(report.makespan, 9),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            wall_s=round(wall, 6),
            wall_throughput_qps=round(report.served / wall, 3)
            if wall > 0
            else 0.0,
            exact_match=exact,
        )
        if progress:
            pt = runs[label]
            oracle = (
                "reference"
                if exact is None
                else ("exact" if exact else "MISMATCH")
            )
            progress(
                f"pruning {label}: wall {pt.wall_s * 1e3:.1f} ms "
                f"({pt.wall_throughput_qps:.0f} q/s), virtual p99 "
                f"{pt.p99_latency_s * 1e3:.2f} ms, "
                f"{pt.blocks_skipped:.0f} blocks skipped, "
                f"{pt.bytes_scanned / 1e6:.2f} MB scanned [{oracle}]"
            )
    exhaustive = runs["exhaustive"]
    best = max(
        (pt for label, pt in runs.items() if label != "exhaustive"),
        key=lambda pt: pt.wall_throughput_qps,
    )
    return {
        "corpus_bytes": pruning_corpus_bytes,
        "n_docs": int(result.n_docs),
        "nshards": _PRUNING_SHARDS,
        "n_clients": _PRUNING_CLIENTS,
        "queries_per_client": _PRUNING_QUERIES,
        "repeats": _PRUNING_REPEATS,
        "batch_sizes": list(batch_sizes),
        "runs": {label: asdict(pt) for label, pt in runs.items()},
        "exact_match_all": all(
            pt.exact_match
            for label, pt in runs.items()
            if label != "exhaustive"
        ),
        "best_config": best.label,
        "wall_speedup_vs_exhaustive": round(
            best.wall_throughput_qps
            / max(exhaustive.wall_throughput_qps, 1e-9),
            3,
        ),
        "p99_reduction_vs_exhaustive": round(
            1.0
            - best.p99_latency_s / max(exhaustive.p99_latency_s, 1e-12),
            6,
        ),
    }


def measure(
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    corpus_bytes: int = DEFAULT_CORPUS_BYTES,
    corpus_seed: int = 4,
    workload_seed: int = 7,
    n_clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES,
    replica_matrix: tuple[ReplicaSpec, ...] | None = None,
    pruning_corpus_bytes: int = DEFAULT_PRUNING_CORPUS_BYTES,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    progress=None,
) -> tuple[
    dict[int, ServePoint],
    ServePoint,
    dict,
    dict[str, ReplicaPoint],
    dict,
    Optional[dict],
    dict,
    dict,
]:
    """Run the serving matrix, the fault run, and the replica studies.

    Returns ``(per-shard-count points, fault-run point, fault
    metadata, replica matrix points, failover study, pruning study,
    workbench study, dashboard study)``.  The same workload scripts
    replay at every shard count so the virtual stats are comparable
    across P.
    """
    if replica_matrix is None:
        replica_matrix = tuple(
            ReplicaSpec(*row) for row in DEFAULT_REPLICA_MATRIX
        )
    corpus = generate_pubmed(corpus_bytes, seed=corpus_seed, n_themes=6)
    result = SerialTextEngine(_BENCH_ENGINE).run(corpus)
    postings = build_term_postings(
        corpus, result, _BENCH_ENGINE.tokenizer
    )
    points: dict[int, ServePoint] = {}
    config = BrokerConfig()
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        stores = {}
        for p in shards:
            store_dir = str(Path(tmp) / f"store-{p}")
            build_shards(result, store_dir, p, postings=postings)
            stores[p] = store_dir
        scripts = generate_workload(
            store_profile(stores[max(shards)]),
            n_clients=n_clients,
            queries_per_client=queries_per_client,
            seed=workload_seed,
        )
        for p in shards:
            report = serve(stores[p], scripts, config=config)
            points[p] = ServePoint.from_report(p, report)
            if progress:
                pt = points[p]
                progress(
                    f"P={p}: {pt.served} served, "
                    f"{pt.throughput_qps:.1f} q/s virtual, "
                    f"p99 {pt.p99_latency_s * 1e3:.2f} ms, "
                    f"hit rate {pt.cache_hit_rate:.0%}"
                )
        # fault run: crash one mid shard rank partway into the workload
        p = max(shards)
        crash_rank = 1 + p // 2
        total_queries = n_clients * queries_per_client
        plan = FaultPlan(
            faults=(
                CrashFault(rank=crash_rank, at_call=total_queries // 2),
            )
        )
        fault_config = BrokerConfig(shard_timeout_s=2.0)
        report = serve(
            stores[p], scripts, config=fault_config, faults=plan
        )
        fault_point = ServePoint.from_report(p, report)
        fault_meta = {
            "nshards": p,
            "crashed_rank": crash_rank,
            "at_call": total_queries // 2,
            "failed_ranks": report.failed_ranks,
            "completed": report.served + len(report.rejected)
            == total_queries,
        }
        if progress:
            progress(
                f"P={p} +crash(rank {crash_rank}): "
                f"{fault_point.served} served, "
                f"{fault_point.degraded} degraded "
                f"({fault_point.degraded_rate:.0%})"
            )
        replica_points = _measure_replica_matrix(
            result,
            postings,
            Path(tmp),
            replica_matrix,
            workload_seed,
            progress,
        )
        failover = _measure_failover(
            result, postings, Path(tmp), workload_seed, progress
        )
        workbench = _measure_workbench(
            stores, workload_seed, progress
        )
        dashboard = _measure_dashboard(
            Path(tmp), corpus_seed, workload_seed, progress
        )
        pruning = _measure_pruning(
            Path(tmp),
            corpus_seed,
            workload_seed,
            pruning_corpus_bytes,
            batch_sizes,
            progress,
        )
    return (
        points,
        fault_point,
        fault_meta,
        replica_points,
        failover,
        pruning,
        workbench,
        dashboard,
    )


_COMPARED_FIELDS = (
    "served",
    "rejected",
    "degraded",
    "cache_hit_rate",
    "throughput_qps",
    "p50_latency_s",
    "p99_latency_s",
    "makespan_s",
)

#: deterministic (virtual/counter) pruning fields, exact-compared;
#: wall_s / wall_throughput_qps are real-clock and get the 15% gate
_PRUNING_COMPARED_FIELDS = (
    "served",
    "cache_hit_rate",
    "bytes_scanned",
    "blocks_skipped",
    "makespan_s",
    "p50_latency_s",
    "p99_latency_s",
)

_WORKBENCH_COMPARED_FIELDS = (
    "served",
    "rejected",
    "quota_shed",
    "quota_shed_rate",
    "sessions_opened",
    "sessions_closed",
    "sessions_evicted",
    "sets_saved",
    "artifact_hit_rate",
    "throughput_ops_s",
    "p50_latency_s",
    "p99_latency_s",
    "makespan_s",
)

_DASHBOARD_COMPARED_FIELDS = (
    "served",
    "rejected",
    "degraded",
    "facet_windows",
    "facet_bytes_scanned",
    "emerging_hits",
    "cache_hit_rate",
    "throughput_qps",
    "p50_latency_s",
    "p99_latency_s",
    "makespan_s",
)

_REPLICA_COMPARED_FIELDS = (
    "served",
    "shed",
    "shed_rate",
    "degraded",
    "failovers",
    "hedges",
    "cache_hit_rate",
    "throughput_qps",
    "p50_latency_s",
    "p99_latency_s",
    "makespan_s",
)


def compare(
    points: dict[int, ServePoint],
    fault_point: ServePoint,
    baseline: dict,
    replica_points: dict[str, ReplicaPoint] | None = None,
    failover: dict | None = None,
    pruning: dict | None = None,
    workbench: dict | None = None,
    dashboard: dict | None = None,
) -> list[Regression]:
    """Exact-equality check of every virtual statistic vs. a baseline.

    Serving stats are fully deterministic on one machine, so *any*
    drift is a behavioural change that must be acknowledged with
    ``--update-baseline``.
    """
    regressions: list[Regression] = []
    base_results = baseline.get("results", {})
    for p, point in points.items():
        base = base_results.get(str(p))
        if base is None:
            continue
        for field in _COMPARED_FIELDS:
            b, m = float(base[field]), float(getattr(point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=p, field=field, baseline=b, measured=m
                    )
                )
    base_fault = baseline.get("fault", {}).get("point")
    if base_fault is not None:
        for field in _COMPARED_FIELDS:
            b = float(base_fault[field])
            m = float(getattr(fault_point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=fault_point.nshards,
                        field=f"fault.{field}",
                        baseline=b,
                        measured=m,
                    )
                )
    base_replica = baseline.get("replica", {})
    for label, point in (replica_points or {}).items():
        base = base_replica.get("matrix", {}).get(label)
        if base is None:
            continue
        for field in _REPLICA_COMPARED_FIELDS:
            b, m = float(base[field]), float(getattr(point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=point.nshards,
                        field=f"replica[{label}].{field}",
                        baseline=b,
                        measured=m,
                    )
                )
    base_failover = base_replica.get("failover")
    if failover is not None and base_failover is not None:
        for run in ("baseline", "fault_r2", "fault_r1"):
            base_run = base_failover.get(run)
            if base_run is None:
                continue
            measured_run = failover[run]
            for field in _REPLICA_COMPARED_FIELDS:
                b = float(base_run[field])
                m = float(measured_run[field])
                if b != m:
                    regressions.append(
                        Regression(
                            nshards=int(measured_run["nshards"]),
                            field=f"failover.{run}.{field}",
                            baseline=b,
                            measured=m,
                        )
                    )
    base_workbench = baseline.get("workbench")
    if workbench is not None and base_workbench is not None:
        for p_str, run in workbench["points"].items():
            base_run = base_workbench.get("points", {}).get(p_str)
            if base_run is None:
                continue
            for field in _WORKBENCH_COMPARED_FIELDS:
                b, m = float(base_run[field]), float(run[field])
                if b != m:
                    regressions.append(
                        Regression(
                            nshards=int(p_str),
                            field=f"workbench.{field}",
                            baseline=b,
                            measured=m,
                        )
                    )
    base_dashboard = baseline.get("dashboard")
    if dashboard is not None and base_dashboard is not None:
        for p_str, run in dashboard["points"].items():
            base_run = base_dashboard.get("points", {}).get(p_str)
            if base_run is None:
                continue
            for field in _DASHBOARD_COMPARED_FIELDS:
                b, m = float(base_run[field]), float(run[field])
                if b != m:
                    regressions.append(
                        Regression(
                            nshards=int(p_str),
                            field=f"dashboard.{field}",
                            baseline=b,
                            measured=m,
                        )
                    )
    base_pruning = baseline.get("pruning")
    if pruning is not None and base_pruning is not None:
        nshards = int(pruning["nshards"])
        for label, run in pruning["runs"].items():
            base_run = base_pruning.get("runs", {}).get(label)
            if base_run is None:
                continue
            for field in _PRUNING_COMPARED_FIELDS:
                b, m = float(base_run[field]), float(run[field])
                if b != m:
                    regressions.append(
                        Regression(
                            nshards=nshards,
                            field=f"pruning[{label}].{field}",
                            baseline=b,
                            measured=m,
                        )
                    )
            # wall-clock fields are never compared against a stored
            # baseline: absolute walls are machine- and load-local.
            # The throughput gate is the same-run speedup ratio,
            # checked in run_bench.
    return regressions


def build_report(
    points: dict[int, ServePoint],
    fault_point: ServePoint,
    fault_meta: dict,
    config_meta: dict,
    baseline: Optional[dict] = None,
    replica_points: dict[str, ReplicaPoint] | None = None,
    failover: dict | None = None,
    pruning: dict | None = None,
    workbench: dict | None = None,
    dashboard: dict | None = None,
) -> tuple[dict, list[Regression]]:
    """Assemble the BENCH_serving.json document."""
    report = {
        "schema": SCHEMA,
        "commit": _git_commit(),
        "config": config_meta,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            str(p): asdict(pt) for p, pt in sorted(points.items())
        },
        "fault": {"point": asdict(fault_point), **fault_meta},
        "replica": {
            "matrix": {
                label: asdict(pt)
                for label, pt in sorted(
                    (replica_points or {}).items()
                )
            },
            "failover": failover,
        },
        "workbench": workbench,
        "dashboard": dashboard,
        "pruning": pruning,
    }
    regressions: list[Regression] = []
    if baseline is not None:
        regressions = compare(
            points,
            fault_point,
            baseline,
            replica_points,
            failover,
            pruning,
            workbench,
            dashboard,
        )
        report["baseline"] = {
            "commit": baseline.get("commit", "unknown"),
            "regressions": [asdict(r) for r in regressions],
        }
    return report, regressions


def run_bench(
    out_path: str | Path = DEFAULT_OUT,
    baseline_path: Optional[str | Path] = None,
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    corpus_bytes: int = DEFAULT_CORPUS_BYTES,
    corpus_seed: int = 4,
    workload_seed: int = 7,
    n_clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES,
    replica_matrix: tuple[ReplicaSpec, ...] | None = None,
    pruning_corpus_bytes: int = DEFAULT_PRUNING_CORPUS_BYTES,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    update_baseline: bool = False,
    progress=print,
) -> int:
    """Full CLI flow; returns a process exit code.

    The file at ``out_path`` (default ``BENCH_serving.json``) doubles
    as the next run's baseline; ``--update-baseline`` rewrites it
    without comparing.  A fault run that fails to answer the full
    workload is always an error, as is a replicated R=2 crash run
    that degrades any response or drifts from the fault-free answers,
    or a pruned search run whose answers are not byte-identical to
    the exhaustive reference.
    """
    progress = progress or (lambda *_args: None)
    out_path = Path(out_path)
    baseline_path = Path(baseline_path or out_path)
    baseline: Optional[dict] = None
    if not update_baseline and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("schema") != SCHEMA:
            progress(
                f"ignoring {baseline_path}: unknown schema "
                f"{baseline.get('schema')!r}"
            )
            baseline = None
    if replica_matrix is None:
        replica_matrix = tuple(
            ReplicaSpec(*row) for row in DEFAULT_REPLICA_MATRIX
        )
    (
        points,
        fault_point,
        fault_meta,
        replica_points,
        failover,
        pruning,
        workbench,
        dashboard,
    ) = (
        measure(
            shards=shards,
            corpus_bytes=corpus_bytes,
            corpus_seed=corpus_seed,
            workload_seed=workload_seed,
            n_clients=n_clients,
            queries_per_client=queries_per_client,
            replica_matrix=replica_matrix,
            pruning_corpus_bytes=pruning_corpus_bytes,
            batch_sizes=batch_sizes,
            progress=progress,
        )
    )
    config_meta = {
        "shards": list(shards),
        "corpus_bytes": corpus_bytes,
        "corpus_seed": corpus_seed,
        "workload_seed": workload_seed,
        "n_clients": n_clients,
        "queries_per_client": queries_per_client,
        "replica_matrix": [asdict(s) for s in replica_matrix],
        "pruning_corpus_bytes": pruning_corpus_bytes,
        "batch_sizes": list(batch_sizes),
        "dashboard": {
            "shards": list(_DASHBOARD_SHARDS),
            "corpus_bytes": _DASHBOARD_CORPUS_BYTES,
            "n_sources": _DASHBOARD_SOURCES,
            **_DASHBOARD_KNOBS,
        },
    }
    report, regressions = build_report(
        points,
        fault_point,
        fault_meta,
        config_meta,
        baseline,
        replica_points,
        failover,
        pruning,
        workbench,
        dashboard,
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    progress(f"wrote {out_path}")
    for r in regressions:
        progress(
            f"DRIFT at P={r.nshards} [{r.field}]: baseline "
            f"{r.baseline!r} vs measured {r.measured!r}"
        )
    if not fault_meta["completed"]:
        progress("FAULT RUN INCOMPLETE: queries went unanswered")
        return 1
    if failover["fault_r2"]["degraded"] != 0:
        progress("REPLICA FAULT RUN DEGRADED: failover did not mask the crash")
        return 1
    if not failover["exact_match_r2"]:
        progress("REPLICA FAULT RUN DRIFTED from fault-free answers")
        return 1
    if not workbench["exact_match_shards"]:
        progress(
            "WORKBENCH ORACLE MISMATCH: analyst transcripts differ "
            "across shard counts"
        )
        return 1
    if not workbench["exact_match_slowpath"]:
        progress(
            "WORKBENCH ORACLE MISMATCH: analyst transcript differs "
            "under REPRO_SCHED_SLOWPATH=1"
        )
        return 1
    if not dashboard["exact_match_shards"]:
        progress(
            "DASHBOARD ORACLE MISMATCH: window-query transcripts "
            "differ across shard counts"
        )
        return 1
    if not dashboard["exact_match_slowpath"]:
        progress(
            "DASHBOARD ORACLE MISMATCH: window-query transcript "
            "differs under REPRO_SCHED_SLOWPATH=1"
        )
        return 1
    if not dashboard["exact_match_mp"]:
        progress(
            "DASHBOARD ORACLE MISMATCH: window-query transcript "
            "differs under the multiprocessing backend"
        )
        return 1
    if not dashboard["exact_match_churn"]:
        progress(
            "DASHBOARD ORACLE MISMATCH: fastpath and slowpath "
            "transcripts differ under live ingest churn"
        )
        return 1
    if pruning is not None and not pruning["exact_match_all"]:
        progress(
            "PRUNING ORACLE MISMATCH: a block-max run's answers "
            "differ from the exhaustive reference"
        )
        return 1
    if (
        pruning is not None
        and pruning["wall_speedup_vs_exhaustive"]
        < _WALL_REGRESSION_FRACTION
    ):
        progress(
            "PRUNING THROUGHPUT REGRESSION: best block-max config is "
            f"{pruning['wall_speedup_vs_exhaustive']:.2f}x the "
            "same-run exhaustive wall throughput "
            f"(floor {_WALL_REGRESSION_FRACTION})"
        )
        return 1
    return 1 if regressions else 0
