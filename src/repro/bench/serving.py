"""Serving benchmark: throughput/latency of the sharded query layer.

``python -m repro.cli serve-bench`` builds a small seeded corpus, runs
the engine once, shards the result at several shard counts, replays a
seeded closed-loop workload through the broker at each count, and
writes ``BENCH_serving.json``:

* ``results[P]`` -- served/rejected counts, virtual throughput,
  p50/p99 virtual latency, cache hit rate and the ``serve.*`` counter
  totals of the fault-free run;
* ``fault`` -- the same workload at the largest shard count under a
  crash fault plan (one shard rank dies mid-run): the run must still
  answer **every** query, degrading to partial responses, and the
  report records the degraded-response rate;
* ``baseline`` comparison -- all virtual statistics are deterministic
  for a given (corpus seed, workload seed, machine), so a drifted
  number means a behavioural change: the run fails (exit 1) unless
  ``--update-baseline``.

Virtual stats depend on the engine's BLAS-backed stages (k-means/PCA
assignments shape per-query payload sizes), so baselines are
machine-local: CI regenerates its own baseline before comparing, like
the perf-smoke job, and the committed file documents one reference
machine.
"""

from __future__ import annotations

import json
import platform
import subprocess
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.datasets.pubmed import generate_pubmed
from repro.engine.config import EngineConfig
from repro.engine.serial import SerialTextEngine
from repro.index.termindex import build_term_postings
from repro.runtime.faults import CrashFault, FaultPlan
from repro.runtime.metrics import counter_totals
from repro.serve.broker import BrokerConfig, ServeReport, serve
from repro.serve.store import build_shards
from repro.serve.workload import generate_workload, store_profile

SCHEMA = "repro-bench-serving/1"
DEFAULT_SHARDS = (1, 2, 4, 8)
DEFAULT_OUT = "BENCH_serving.json"
DEFAULT_CORPUS_BYTES = 120_000
DEFAULT_CLIENTS = 4
DEFAULT_QUERIES = 30

#: engine sized for a benchmark corpus, not a paper figure
_BENCH_ENGINE = EngineConfig(
    n_major_terms=300, n_clusters=8, chunk_docs=8
)


@dataclass
class ServePoint:
    """Measurements for one shard count."""

    nshards: int
    served: int
    rejected: int
    degraded: int
    degraded_rate: float
    cache_hit_rate: float
    throughput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    makespan_s: float
    counters: dict[str, float]

    @classmethod
    def from_report(cls, nshards: int, report: ServeReport) -> "ServePoint":
        serve_counters = {
            k: v
            for k, v in counter_totals(report.metrics).items()
            if k.startswith("serve.")
        }
        return cls(
            nshards=nshards,
            served=report.served,
            rejected=len(report.rejected),
            degraded=report.degraded,
            degraded_rate=round(report.degraded_rate, 6),
            cache_hit_rate=round(report.cache_hit_rate, 6),
            throughput_qps=round(report.throughput, 6),
            p50_latency_s=round(report.latency_percentile(50), 9),
            p99_latency_s=round(report.latency_percentile(99), 9),
            makespan_s=round(report.makespan, 9),
            counters=serve_counters,
        )


@dataclass
class Regression:
    """One baseline-comparison failure."""

    nshards: int
    field: str
    baseline: float
    measured: float


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def measure(
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    corpus_bytes: int = DEFAULT_CORPUS_BYTES,
    corpus_seed: int = 4,
    workload_seed: int = 7,
    n_clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES,
    progress=None,
) -> tuple[dict[int, ServePoint], ServePoint, dict]:
    """Run the serving matrix plus the fault-plan run.

    Returns ``(per-shard-count points, fault-run point, fault
    metadata)``.  The same workload scripts replay at every shard
    count so the virtual stats are comparable across P.
    """
    corpus = generate_pubmed(corpus_bytes, seed=corpus_seed, n_themes=6)
    result = SerialTextEngine(_BENCH_ENGINE).run(corpus)
    postings = build_term_postings(
        corpus, result, _BENCH_ENGINE.tokenizer
    )
    points: dict[int, ServePoint] = {}
    config = BrokerConfig()
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        stores = {}
        for p in shards:
            store_dir = str(Path(tmp) / f"store-{p}")
            build_shards(result, store_dir, p, postings=postings)
            stores[p] = store_dir
        scripts = generate_workload(
            store_profile(stores[max(shards)]),
            n_clients=n_clients,
            queries_per_client=queries_per_client,
            seed=workload_seed,
        )
        for p in shards:
            report = serve(stores[p], scripts, config=config)
            points[p] = ServePoint.from_report(p, report)
            if progress:
                pt = points[p]
                progress(
                    f"P={p}: {pt.served} served, "
                    f"{pt.throughput_qps:.1f} q/s virtual, "
                    f"p99 {pt.p99_latency_s * 1e3:.2f} ms, "
                    f"hit rate {pt.cache_hit_rate:.0%}"
                )
        # fault run: crash one mid shard rank partway into the workload
        p = max(shards)
        crash_rank = 1 + p // 2
        total_queries = n_clients * queries_per_client
        plan = FaultPlan(
            faults=(
                CrashFault(rank=crash_rank, at_call=total_queries // 2),
            )
        )
        fault_config = BrokerConfig(shard_timeout_s=2.0)
        report = serve(
            stores[p], scripts, config=fault_config, faults=plan
        )
        fault_point = ServePoint.from_report(p, report)
        fault_meta = {
            "nshards": p,
            "crashed_rank": crash_rank,
            "at_call": total_queries // 2,
            "failed_ranks": report.failed_ranks,
            "completed": report.served + len(report.rejected)
            == total_queries,
        }
        if progress:
            progress(
                f"P={p} +crash(rank {crash_rank}): "
                f"{fault_point.served} served, "
                f"{fault_point.degraded} degraded "
                f"({fault_point.degraded_rate:.0%})"
            )
    return points, fault_point, fault_meta


_COMPARED_FIELDS = (
    "served",
    "rejected",
    "degraded",
    "cache_hit_rate",
    "throughput_qps",
    "p50_latency_s",
    "p99_latency_s",
    "makespan_s",
)


def compare(
    points: dict[int, ServePoint],
    fault_point: ServePoint,
    baseline: dict,
) -> list[Regression]:
    """Exact-equality check of every virtual statistic vs. a baseline.

    Serving stats are fully deterministic on one machine, so *any*
    drift is a behavioural change that must be acknowledged with
    ``--update-baseline``.
    """
    regressions: list[Regression] = []
    base_results = baseline.get("results", {})
    for p, point in points.items():
        base = base_results.get(str(p))
        if base is None:
            continue
        for field in _COMPARED_FIELDS:
            b, m = float(base[field]), float(getattr(point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=p, field=field, baseline=b, measured=m
                    )
                )
    base_fault = baseline.get("fault", {}).get("point")
    if base_fault is not None:
        for field in _COMPARED_FIELDS:
            b = float(base_fault[field])
            m = float(getattr(fault_point, field))
            if b != m:
                regressions.append(
                    Regression(
                        nshards=fault_point.nshards,
                        field=f"fault.{field}",
                        baseline=b,
                        measured=m,
                    )
                )
    return regressions


def build_report(
    points: dict[int, ServePoint],
    fault_point: ServePoint,
    fault_meta: dict,
    config_meta: dict,
    baseline: Optional[dict] = None,
) -> tuple[dict, list[Regression]]:
    """Assemble the BENCH_serving.json document."""
    report = {
        "schema": SCHEMA,
        "commit": _git_commit(),
        "config": config_meta,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            str(p): asdict(pt) for p, pt in sorted(points.items())
        },
        "fault": {"point": asdict(fault_point), **fault_meta},
    }
    regressions: list[Regression] = []
    if baseline is not None:
        regressions = compare(points, fault_point, baseline)
        report["baseline"] = {
            "commit": baseline.get("commit", "unknown"),
            "regressions": [asdict(r) for r in regressions],
        }
    return report, regressions


def run_bench(
    out_path: str | Path = DEFAULT_OUT,
    baseline_path: Optional[str | Path] = None,
    shards: tuple[int, ...] = DEFAULT_SHARDS,
    corpus_bytes: int = DEFAULT_CORPUS_BYTES,
    corpus_seed: int = 4,
    workload_seed: int = 7,
    n_clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES,
    update_baseline: bool = False,
    progress=print,
) -> int:
    """Full CLI flow; returns a process exit code.

    The file at ``out_path`` (default ``BENCH_serving.json``) doubles
    as the next run's baseline; ``--update-baseline`` rewrites it
    without comparing.  A fault run that fails to answer the full
    workload is always an error.
    """
    progress = progress or (lambda *_args: None)
    out_path = Path(out_path)
    baseline_path = Path(baseline_path or out_path)
    baseline: Optional[dict] = None
    if not update_baseline and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("schema") != SCHEMA:
            progress(
                f"ignoring {baseline_path}: unknown schema "
                f"{baseline.get('schema')!r}"
            )
            baseline = None
    points, fault_point, fault_meta = measure(
        shards=shards,
        corpus_bytes=corpus_bytes,
        corpus_seed=corpus_seed,
        workload_seed=workload_seed,
        n_clients=n_clients,
        queries_per_client=queries_per_client,
        progress=progress,
    )
    config_meta = {
        "shards": list(shards),
        "corpus_bytes": corpus_bytes,
        "corpus_seed": corpus_seed,
        "workload_seed": workload_seed,
        "n_clients": n_clients,
        "queries_per_client": queries_per_client,
    }
    report, regressions = build_report(
        points, fault_point, fault_meta, config_meta, baseline
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    progress(f"wrote {out_path}")
    for r in regressions:
        progress(
            f"DRIFT at P={r.nshards} [{r.field}]: baseline "
            f"{r.baseline!r} vs measured {r.measured!r}"
        )
    if not fault_meta["completed"]:
        progress("FAULT RUN INCOMPLETE: queries went unanswered")
        return 1
    return 1 if regressions else 0
