"""Wall-clock benchmark harness: the repo's performance trajectory.

The simulator's *virtual* timings reproduce the paper's figures; this
module tracks what the simulator itself costs in *real* seconds, so
every PR can prove a speedup or catch a regression.  ``python -m
repro.cli bench-wallclock`` runs the generated-PubMed pipeline at
several processor counts, times each pipeline stage (scan, IFI
indexing, topicality, association matrix, signatures, cluster +
projection) and the end-to-end run, and writes ``BENCH_runtime.json``
at the repo root:

* ``results[P].wall_seconds`` -- best-of-N end-to-end real seconds;
* ``results[P].stages_wall_seconds`` -- per-stage real windows (first
  rank in to last rank out, captured via ``REPRO_TRACE_WALL``);
* ``results[P].virtual_seconds`` -- the simulated wall time, which
  must stay **bit-identical** run to run (determinism guard);
* ``baseline`` -- the committed reference measurements; new runs are
  compared against it and the run **fails on >15 % regression** of
  any end-to-end time (and on any virtual-time drift).

The committed ``BENCH_runtime.json`` doubles as the baseline: rerun
with ``--update-baseline`` after an intentional performance change.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.bench.harness import default_figure_config, make_workload
from repro.engine.parallel import ParallelTextEngine
from repro.runtime import MachineSpec, counter_totals
from repro.runtime.tracing import WALL_ENV

SCHEMA = "repro-bench-runtime/1"
DEFAULT_PROCS = (1, 4, 8, 16)
DEFAULT_REPEATS = 5
DEFAULT_THRESHOLD = 0.15
DEFAULT_OUT = "BENCH_runtime.json"


@dataclass
class BenchPoint:
    """Measurements for one processor count."""

    nprocs: int
    wall_seconds: float  # best of `repeats` end-to-end runs
    wall_seconds_all: list[float]
    virtual_seconds: float
    stages_wall_seconds: dict[str, float]
    stages_virtual_seconds: dict[str, float]
    #: per-family runtime counter totals (messages, bytes, RPCs ...)
    #: from the fastest run -- deterministic, so they double as a
    #: behavioural fingerprint next to the wall times
    counters: dict[str, float] = None  # type: ignore[assignment]


@dataclass
class Regression:
    """One baseline-comparison failure."""

    nprocs: int
    kind: str  # "wall" or "virtual"
    baseline: float
    measured: float
    detail: str = ""


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def measure(
    procs: tuple[int, ...] = DEFAULT_PROCS,
    repeats: int = DEFAULT_REPEATS,
    dataset: str = "pubmed",
    represented_bytes: float = 2.75e9,
    downscale: float = 10_000.0,
    seed: int = 7,
    progress=None,
) -> dict[int, BenchPoint]:
    """Run the benchmark matrix and return per-P measurements.

    End-to-end times are best-of-``repeats`` (the minimum is the
    standard estimator for the noise-free cost of a deterministic
    workload); the stage breakdown is taken from the fastest run.
    """
    workload = make_workload(
        dataset, dataset, represented_bytes, downscale=downscale, seed=seed
    )
    config = default_figure_config()
    machine = MachineSpec()
    points: dict[int, BenchPoint] = {}
    prev_wall = os.environ.get(WALL_ENV)
    os.environ[WALL_ENV] = "1"
    try:
        for p in procs:
            times: list[float] = []
            best: Optional[tuple[float, object, object]] = None
            for _ in range(max(1, repeats)):
                engine = ParallelTextEngine(
                    p, machine=machine, config=config
                )
                t0 = time.perf_counter()
                result = engine.run(workload.corpus)
                dt = time.perf_counter() - t0
                times.append(dt)
                if best is None or dt < best[0]:
                    best = (dt, result, engine.last_tracer)
            assert best is not None
            _, result, tracer = best
            points[p] = BenchPoint(
                nprocs=p,
                wall_seconds=min(times),
                wall_seconds_all=times,
                virtual_seconds=float(result.timings.wall_time),
                stages_wall_seconds={
                    k: round(v, 6)
                    for k, v in tracer.wall_component_times().items()
                },
                stages_virtual_seconds={
                    k: float(v)
                    for k, v in result.timings.component_seconds.items()
                },
                counters=counter_totals(result.metrics),
            )
            if progress:
                progress(
                    f"P={p}: best {min(times):.3f}s real, "
                    f"{points[p].virtual_seconds:.2f}s virtual"
                )
    finally:
        if prev_wall is None:
            del os.environ[WALL_ENV]
        else:
            os.environ[WALL_ENV] = prev_wall
    return points


def compare(
    points: dict[int, BenchPoint],
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[dict[str, float], list[Regression]]:
    """Speedups vs. a baseline report and any regressions found.

    A wall regression is an end-to-end slowdown beyond ``threshold``;
    a virtual regression is *any* change of the simulated time, which
    a correct performance PR must never cause.
    """
    speedups: dict[str, float] = {}
    regressions: list[Regression] = []
    base_results = baseline.get("results", {})
    for p, point in points.items():
        base = base_results.get(str(p))
        if base is None:
            continue
        base_wall = float(base["wall_seconds"])
        if point.wall_seconds > 0:
            speedups[str(p)] = round(base_wall / point.wall_seconds, 3)
        if point.wall_seconds > base_wall * (1.0 + threshold):
            regressions.append(
                Regression(
                    nprocs=p,
                    kind="wall",
                    baseline=base_wall,
                    measured=point.wall_seconds,
                    detail=(
                        f"end-to-end {point.wall_seconds:.3f}s vs "
                        f"baseline {base_wall:.3f}s "
                        f"(>{threshold:.0%} slower)"
                    ),
                )
            )
        base_virtual = base.get("virtual_seconds")
        if (
            base_virtual is not None
            and float(base_virtual) != point.virtual_seconds
        ):
            regressions.append(
                Regression(
                    nprocs=p,
                    kind="virtual",
                    baseline=float(base_virtual),
                    measured=point.virtual_seconds,
                    detail=(
                        "virtual time drifted: determinism or cost-"
                        "model change (update the baseline if this "
                        "was intentional)"
                    ),
                )
            )
    return speedups, regressions


def build_report(
    points: dict[int, BenchPoint],
    config_meta: dict,
    baseline: Optional[dict] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[dict, list[Regression]]:
    """Assemble the BENCH_runtime.json document."""
    report = {
        "schema": SCHEMA,
        "commit": _git_commit(),
        "config": config_meta,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            str(p): asdict(pt) for p, pt in sorted(points.items())
        },
    }
    regressions: list[Regression] = []
    if baseline is not None:
        speedups, regressions = compare(points, baseline, threshold)
        report["baseline"] = {
            "commit": baseline.get("commit", "unknown"),
            "wall_seconds": {
                p: b["wall_seconds"]
                for p, b in baseline.get("results", {}).items()
            },
            "speedup_vs_baseline": speedups,
            "threshold": threshold,
            "regressions": [asdict(r) for r in regressions],
        }
    return report, regressions


def run_bench(
    out_path: str | Path = DEFAULT_OUT,
    baseline_path: Optional[str | Path] = None,
    procs: tuple[int, ...] = DEFAULT_PROCS,
    repeats: int = DEFAULT_REPEATS,
    dataset: str = "pubmed",
    downscale: float = 10_000.0,
    seed: int = 7,
    threshold: float = DEFAULT_THRESHOLD,
    update_baseline: bool = False,
    progress=print,
) -> int:
    """Full CLI flow; returns a process exit code.

    The file at ``out_path`` (default ``BENCH_runtime.json``) is both
    the report and, on the next run, the committed baseline.  With
    ``update_baseline`` the comparison is skipped and the file is
    rewritten -- for intentional performance or cost-model changes.
    """
    out_path = Path(out_path)
    baseline_path = Path(baseline_path or out_path)
    baseline: Optional[dict] = None
    if not update_baseline and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("schema") != SCHEMA:
            progress(
                f"ignoring {baseline_path}: unknown schema "
                f"{baseline.get('schema')!r}"
            )
            baseline = None
    points = measure(
        procs=procs,
        repeats=repeats,
        dataset=dataset,
        downscale=downscale,
        seed=seed,
        progress=progress,
    )
    config_meta = {
        "dataset": dataset,
        "downscale": downscale,
        "seed": seed,
        "repeats": repeats,
        "procs": list(procs),
    }
    report, regressions = build_report(
        points, config_meta, baseline, threshold
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    progress(f"wrote {out_path}")
    if baseline is not None:
        for p, s in sorted(
            report["baseline"]["speedup_vs_baseline"].items(),
            key=lambda kv: int(kv[0]),
        ):
            progress(
                f"P={p}: {s}x vs baseline "
                f"{report['baseline']['commit'][:12]}"
            )
    for r in regressions:
        progress(f"REGRESSION at P={r.nprocs} [{r.kind}]: {r.detail}")
    return 1 if regressions else 0
