"""Wall-clock benchmark harness: the repo's performance trajectory.

The simulator's *virtual* timings reproduce the paper's figures; this
module tracks what the runtime itself costs in *real* seconds, so
every PR can prove a speedup or catch a regression.  ``python -m
repro.cli bench-wallclock`` runs the generated-PubMed pipeline at
several processor counts under one or more **execution backends**
(``sim`` -- the single-process virtual-time simulator, ``mp`` -- one
OS process per rank), times each pipeline stage (scan, IFI indexing,
topicality, association matrix, signatures, cluster + projection) and
the end-to-end run, and writes ``BENCH_runtime.json`` at the repo
root:

* ``results[P].wall_seconds`` -- best-of-N end-to-end real seconds
  for the ``sim`` backend (schema-stable with older baselines);
* ``results[P].stages_wall_seconds`` -- per-stage real windows (first
  rank in to last rank out, captured via ``REPRO_TRACE_WALL``);
* ``results[P].virtual_seconds`` -- the simulated wall time, which
  must stay **bit-identical** run to run (determinism guard);
* ``backends[B][P]`` -- the same measurements per backend, each with
  a ``modeled_vs_measured`` block pairing every stage's *modeled*
  (virtual) seconds with its *measured* (real) seconds;
* ``backend_compare[P]`` -- sim-vs-mp walls and the mp speedup.  The
  virtual times must agree **exactly** across backends (any drift is
  a hard failure: the backends are contractually bit-identical); the
  wall comparison is advisory, because real mp speedup requires real
  cores (``env.cpus`` records how many the host had);
* ``baseline`` -- the committed reference measurements; new runs are
  compared against it and the run **fails on >15 % regression** of
  any sim end-to-end time (and on any virtual-time drift, in either
  backend).

The committed ``BENCH_runtime.json`` doubles as the baseline: rerun
with ``--update-baseline`` after an intentional performance change.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.bench.harness import default_figure_config, make_workload
from repro.engine.parallel import ParallelTextEngine
from repro.runtime import MachineSpec, counter_totals
from repro.runtime.tracing import WALL_ENV

SCHEMA = "repro-bench-runtime/2"
DEFAULT_PROCS = (1, 4, 8, 16)
DEFAULT_BACKENDS = ("sim", "mp")
DEFAULT_REPEATS = 5
DEFAULT_THRESHOLD = 0.15
DEFAULT_OUT = "BENCH_runtime.json"


@dataclass
class BenchPoint:
    """Measurements for one (backend, processor count) cell."""

    nprocs: int
    wall_seconds: float  # best of `repeats` end-to-end runs
    wall_seconds_all: list[float]
    virtual_seconds: float
    stages_wall_seconds: dict[str, float]
    stages_virtual_seconds: dict[str, float]
    #: per-family runtime counter totals (messages, bytes, RPCs ...)
    #: from the fastest run -- deterministic, so they double as a
    #: behavioural fingerprint next to the wall times
    counters: dict[str, float] = None  # type: ignore[assignment]
    backend: str = "sim"


@dataclass
class Regression:
    """One baseline-comparison failure."""

    nprocs: int
    kind: str  # "wall", "virtual", or "virtual-backend"
    baseline: float
    measured: float
    detail: str = ""


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def reap_children(timeout: float = 5.0) -> list[str]:
    """Join any live multiprocessing children; return names still alive.

    The mp backend tears its workers down on every exit path, but a
    benchmark or test that died mid-run can leave orphans whose atexit
    handlers then race pytest's warning checks.  Joining (and, as a
    last resort, terminating) here makes teardown deterministic.
    """
    leaked: list[str] = []
    for proc in multiprocessing.active_children():
        proc.join(timeout)
        if proc.is_alive():  # pragma: no cover - pathological
            proc.terminate()
            proc.join(timeout)
        if proc.is_alive():  # pragma: no cover - pathological
            leaked.append(proc.name)
    return leaked


def measure(
    procs: tuple[int, ...] = DEFAULT_PROCS,
    repeats: int = DEFAULT_REPEATS,
    dataset: str = "pubmed",
    represented_bytes: float = 2.75e9,
    downscale: float = 10_000.0,
    seed: int = 7,
    backend: str = "sim",
    progress=None,
) -> dict[int, BenchPoint]:
    """Run the benchmark matrix for one backend; per-P measurements.

    End-to-end times are best-of-``repeats`` (the minimum is the
    standard estimator for the noise-free cost of a deterministic
    workload); the stage breakdown is taken from the fastest run.
    """
    workload = make_workload(
        dataset, dataset, represented_bytes, downscale=downscale, seed=seed
    )
    config = dataclasses.replace(
        default_figure_config(), backend=backend
    )
    machine = MachineSpec()
    points: dict[int, BenchPoint] = {}
    prev_wall = os.environ.get(WALL_ENV)
    os.environ[WALL_ENV] = "1"
    try:
        for p in procs:
            times: list[float] = []
            best: Optional[tuple[float, object, object]] = None
            for _ in range(max(1, repeats)):
                engine = ParallelTextEngine(
                    p, machine=machine, config=config
                )
                t0 = time.perf_counter()
                result = engine.run(workload.corpus)
                dt = time.perf_counter() - t0
                times.append(dt)
                if best is None or dt < best[0]:
                    best = (dt, result, engine.last_tracer)
            assert best is not None
            _, result, tracer = best
            points[p] = BenchPoint(
                nprocs=p,
                wall_seconds=min(times),
                wall_seconds_all=times,
                virtual_seconds=float(result.timings.wall_time),
                stages_wall_seconds={
                    k: round(v, 6)
                    for k, v in tracer.wall_component_times().items()
                },
                stages_virtual_seconds={
                    k: float(v)
                    for k, v in result.timings.component_seconds.items()
                },
                counters=counter_totals(result.metrics),
                backend=backend,
            )
            if progress:
                progress(
                    f"[{backend}] P={p}: best {min(times):.3f}s real, "
                    f"{points[p].virtual_seconds:.2f}s virtual"
                )
    finally:
        if prev_wall is None:
            del os.environ[WALL_ENV]
        else:
            os.environ[WALL_ENV] = prev_wall
        leaked = reap_children()
        if leaked and progress:  # pragma: no cover - pathological
            progress(f"warning: unreaped child processes: {leaked}")
    return points


def measure_backends(
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    procs: tuple[int, ...] = DEFAULT_PROCS,
    **kwargs,
) -> dict[str, dict[int, BenchPoint]]:
    """Run :func:`measure` once per backend."""
    out: dict[str, dict[int, BenchPoint]] = {}
    for backend in backends:
        bprocs = procs
        if backend == "mp":
            # one OS process per rank: P=1 exercises no cross-process
            # machinery worth timing, but keep it if explicitly asked
            bprocs = tuple(p for p in procs if p >= 1)
        out[backend] = measure(
            procs=bprocs, backend=backend, **kwargs
        )
    return out


def compare(
    points: dict[int, BenchPoint],
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[dict[str, float], list[Regression]]:
    """Speedups vs. a baseline report and any regressions found.

    A wall regression is an end-to-end slowdown beyond ``threshold``;
    a virtual regression is *any* change of the simulated time, which
    a correct performance PR must never cause.
    """
    speedups: dict[str, float] = {}
    regressions: list[Regression] = []
    base_results = baseline.get("results", {})
    for p, point in points.items():
        base = base_results.get(str(p))
        if base is None:
            continue
        base_wall = float(base["wall_seconds"])
        if point.wall_seconds > 0:
            speedups[str(p)] = round(base_wall / point.wall_seconds, 3)
        if point.wall_seconds > base_wall * (1.0 + threshold):
            regressions.append(
                Regression(
                    nprocs=p,
                    kind="wall",
                    baseline=base_wall,
                    measured=point.wall_seconds,
                    detail=(
                        f"end-to-end {point.wall_seconds:.3f}s vs "
                        f"baseline {base_wall:.3f}s "
                        f"(>{threshold:.0%} slower)"
                    ),
                )
            )
        base_virtual = base.get("virtual_seconds")
        if (
            base_virtual is not None
            and float(base_virtual) != point.virtual_seconds
        ):
            regressions.append(
                Regression(
                    nprocs=p,
                    kind="virtual",
                    baseline=float(base_virtual),
                    measured=point.virtual_seconds,
                    detail=(
                        "virtual time drifted: determinism or cost-"
                        "model change (update the baseline if this "
                        "was intentional)"
                    ),
                )
            )
    return speedups, regressions


def backend_compare(
    by_backend: dict[str, dict[int, BenchPoint]],
) -> tuple[dict, list[Regression], list[str]]:
    """Cross-backend table, hard regressions, and advisory notes.

    The two backends run identical code against identical virtual
    machines, so their *virtual* times must agree to the last bit --
    any drift is a correctness failure.  Their *wall* times reflect
    the host: the mp backend only outruns the simulator when the OS
    can actually schedule ranks on distinct cores, so the wall
    comparison is advisory (logged, recorded, never fatal).
    """
    table: dict[str, dict] = {}
    regressions: list[Regression] = []
    advisories: list[str] = []
    sim = by_backend.get("sim", {})
    mp = by_backend.get("mp", {})
    cpus = os.cpu_count() or 1
    for p in sorted(set(sim) & set(mp)):
        s, m = sim[p], mp[p]
        entry = {
            "sim_wall_seconds": s.wall_seconds,
            "mp_wall_seconds": m.wall_seconds,
            "mp_speedup": (
                round(s.wall_seconds / m.wall_seconds, 3)
                if m.wall_seconds > 0
                else None
            ),
            "virtual_match": s.virtual_seconds == m.virtual_seconds,
        }
        table[str(p)] = entry
        if s.virtual_seconds != m.virtual_seconds:
            regressions.append(
                Regression(
                    nprocs=p,
                    kind="virtual-backend",
                    baseline=s.virtual_seconds,
                    measured=m.virtual_seconds,
                    detail=(
                        f"backends disagree on virtual time at P={p}: "
                        f"sim {s.virtual_seconds!r} vs "
                        f"mp {m.virtual_seconds!r} (bit-exactness "
                        "contract broken)"
                    ),
                )
            )
        if p >= 8 and m.wall_seconds > s.wall_seconds:
            advisories.append(
                f"advisory: mp wall {m.wall_seconds:.3f}s > sim "
                f"{s.wall_seconds:.3f}s at P={p} "
                f"(host has {cpus} CPU core(s); real-parallel speedup "
                "needs >= 2)"
            )
    return table, regressions, advisories


def _modeled_vs_measured(pt: BenchPoint) -> dict[str, dict[str, float]]:
    """Pair each stage's modeled (virtual) and measured (wall) time."""
    stages = sorted(
        set(pt.stages_wall_seconds) | set(pt.stages_virtual_seconds)
    )
    out = {
        stage: {
            "modeled_seconds": pt.stages_virtual_seconds.get(stage, 0.0),
            "measured_seconds": pt.stages_wall_seconds.get(stage, 0.0),
        }
        for stage in stages
    }
    out["end_to_end"] = {
        "modeled_seconds": pt.virtual_seconds,
        "measured_seconds": pt.wall_seconds,
    }
    return out


def build_report(
    by_backend: dict[str, dict[int, BenchPoint]],
    config_meta: dict,
    baseline: Optional[dict] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[dict, list[Regression], list[str]]:
    """Assemble the BENCH_runtime.json document."""
    sim_points = by_backend.get("sim", {})
    report = {
        "schema": SCHEMA,
        "commit": _git_commit(),
        "config": config_meta,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        # schema-stable view of the sim backend, used as the baseline
        "results": {
            str(p): asdict(pt) for p, pt in sorted(sim_points.items())
        },
        "backends": {
            backend: {
                str(p): {
                    **asdict(pt),
                    "modeled_vs_measured": _modeled_vs_measured(pt),
                }
                for p, pt in sorted(points.items())
            }
            for backend, points in by_backend.items()
        },
    }
    regressions: list[Regression] = []
    advisories: list[str] = []
    if len(by_backend) > 1:
        table, cross_regs, advisories = backend_compare(by_backend)
        report["backend_compare"] = table
        regressions.extend(cross_regs)
    if baseline is not None:
        base_results = baseline.get("results", {})
        speedups, base_regs = compare(sim_points, baseline, threshold)
        # mp walls vary with host cores: check only virtual drift
        for p, pt in by_backend.get("mp", {}).items():
            base = base_results.get(str(p))
            if base is None or base.get("virtual_seconds") is None:
                continue
            if float(base["virtual_seconds"]) != pt.virtual_seconds:
                base_regs.append(
                    Regression(
                        nprocs=p,
                        kind="virtual",
                        baseline=float(base["virtual_seconds"]),
                        measured=pt.virtual_seconds,
                        detail=(
                            f"mp backend virtual time drifted at P={p}"
                        ),
                    )
                )
        regressions.extend(base_regs)
        report["baseline"] = {
            "commit": baseline.get("commit", "unknown"),
            "wall_seconds": {
                p: b["wall_seconds"]
                for p, b in base_results.items()
            },
            "speedup_vs_baseline": speedups,
            "threshold": threshold,
            "regressions": [asdict(r) for r in regressions],
        }
    if advisories:
        report["advisories"] = advisories
    return report, regressions, advisories


def run_bench(
    out_path: str | Path = DEFAULT_OUT,
    baseline_path: Optional[str | Path] = None,
    procs: tuple[int, ...] = DEFAULT_PROCS,
    repeats: int = DEFAULT_REPEATS,
    dataset: str = "pubmed",
    downscale: float = 10_000.0,
    seed: int = 7,
    threshold: float = DEFAULT_THRESHOLD,
    update_baseline: bool = False,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    progress=print,
) -> int:
    """Full CLI flow; returns a process exit code.

    The file at ``out_path`` (default ``BENCH_runtime.json``) is both
    the report and, on the next run, the committed baseline.  With
    ``update_baseline`` the comparison is skipped and the file is
    rewritten -- for intentional performance or cost-model changes.
    Exit is non-zero only for *hard* regressions: sim wall beyond the
    threshold, or any virtual-time drift (vs the baseline or between
    backends).  Slower mp walls are advisory.
    """
    out_path = Path(out_path)
    baseline_path = Path(baseline_path or out_path)
    baseline: Optional[dict] = None
    if not update_baseline and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        if baseline.get("schema") not in (
            SCHEMA,
            "repro-bench-runtime/1",
        ):
            progress(
                f"ignoring {baseline_path}: unknown schema "
                f"{baseline.get('schema')!r}"
            )
            baseline = None
    by_backend = measure_backends(
        backends=backends,
        procs=procs,
        repeats=repeats,
        dataset=dataset,
        downscale=downscale,
        seed=seed,
        progress=progress,
    )
    config_meta = {
        "dataset": dataset,
        "downscale": downscale,
        "seed": seed,
        "repeats": repeats,
        "procs": list(procs),
        "backends": list(backends),
    }
    report, regressions, advisories = build_report(
        by_backend, config_meta, baseline, threshold
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    progress(f"wrote {out_path}")
    if baseline is not None and "baseline" in report:
        for p, s in sorted(
            report["baseline"]["speedup_vs_baseline"].items(),
            key=lambda kv: int(kv[0]) if kv[0].isdigit() else 0,
        ):
            progress(
                f"P={p}: {s}x vs baseline "
                f"{report['baseline']['commit'][:12]}"
            )
    for note in advisories:
        progress(note)
    for r in regressions:
        progress(f"REGRESSION at P={r.nprocs} [{r.kind}]: {r.detail}")
    return 1 if regressions else 0
