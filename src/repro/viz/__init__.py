"""ThemeView visualization: terrain construction, labels, rendering."""

from .labels import cluster_top_terms, labels_from_result
from .render import export_json, render_ascii, write_pgm
from .svg import PALETTE, render_svg, write_svg
from .themeview import Peak, ThemeView, build_themeview

__all__ = [
    "PALETTE",
    "Peak",
    "ThemeView",
    "build_themeview",
    "cluster_top_terms",
    "export_json",
    "labels_from_result",
    "render_ascii",
    "render_svg",
    "write_pgm",
    "write_svg",
]
