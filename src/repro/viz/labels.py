"""Cluster labeling: descriptive terms for each thematic grouping.

A cluster's label terms are the topic dimensions where its centroid is
strongest -- the same information the ThemeView's mountain labels (see
the paper's Figure 2 screenshot) convey.
"""

from __future__ import annotations

import numpy as np

from repro.engine.results import EngineResult


def cluster_top_terms(
    centroids: np.ndarray,
    topic_terms: list[str],
    n_terms: int = 4,
) -> dict[int, list[str]]:
    """Top topic terms per cluster from centroid weights."""
    if centroids.ndim != 2 or centroids.shape[1] != len(topic_terms):
        raise ValueError(
            "centroid dimensionality must match the topic list"
        )
    out: dict[int, list[str]] = {}
    for c, row in enumerate(centroids):
        take = min(n_terms, row.shape[0])
        top = np.argsort(-row)[:take]
        out[c] = [topic_terms[j] for j in top if row[j] > 0]
    return out


def labels_from_result(
    result: EngineResult, n_terms: int = 4
) -> dict[int, list[str]]:
    """Convenience: cluster labels straight from an engine result."""
    return cluster_top_terms(
        result.centroids, result.topic_term_strings, n_terms=n_terms
    )
