"""ThemeView rendering: ASCII terrain, PGM images, JSON export."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .themeview import ThemeView

PathLike = Union[str, Path]

#: height ramp from valley to mountain top
_RAMP = " .:-=+*#%@"


def render_ascii(view: ThemeView, label_peaks: bool = True) -> str:
    """Terminal rendering of the terrain (row 0 printed last so the
    y axis points up), with peak markers and a label legend."""
    h = view.heights
    top = h.max() or 1.0
    levels = np.clip(
        (h / top * (len(_RAMP) - 1)).astype(int), 0, len(_RAMP) - 1
    )
    chars = np.array(list(_RAMP))[levels]
    # mark peaks with digits (index into the legend)
    marks: dict[tuple[int, int], str] = {}
    for i, p in enumerate(view.peaks[:10]):
        gx = int(
            np.clip(
                np.searchsorted(view.x_edges, p.x, side="right") - 1,
                0,
                view.grid - 1,
            )
        )
        gy = int(
            np.clip(
                np.searchsorted(view.y_edges, p.y, side="right") - 1,
                0,
                view.grid - 1,
            )
        )
        marks[(gy, gx)] = str(i)
    rows = []
    for gy in range(view.grid - 1, -1, -1):
        row = [
            marks.get((gy, gx), chars[gy, gx]) for gx in range(view.grid)
        ]
        rows.append("".join(row))
    out = "\n".join(rows)
    if label_peaks and view.peaks:
        legend = [
            f"  [{i}] cluster {p.cluster}: {' '.join(p.labels) or '(unlabelled)'}"
            for i, p in enumerate(view.peaks[:10])
        ]
        out += "\npeaks:\n" + "\n".join(legend)
    return out


def write_pgm(view: ThemeView, path: PathLike) -> None:
    """Write the terrain as a binary PGM grayscale image (stdlib-only)."""
    h = view.heights
    top = h.max() or 1.0
    img = np.clip(h / top * 255.0, 0, 255).astype(np.uint8)
    img = img[::-1]  # y axis up
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("wb") as f:
        f.write(f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        f.write(img.tobytes())


def export_json(view: ThemeView, path: PathLike) -> None:
    """Dump terrain and peaks for downstream visualization tools."""
    obj = {
        "grid": view.grid,
        "x_edges": view.x_edges.tolist(),
        "y_edges": view.y_edges.tolist(),
        "heights": view.heights.tolist(),
        "peaks": [
            {
                "x": p.x,
                "y": p.y,
                "height": p.height,
                "cluster": p.cluster,
                "labels": p.labels,
            }
            for p in view.peaks
        ],
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(obj))
