"""ThemeView: a terrain of themes from projected document coordinates.

Paper §2.1: "A ThemeView visualization is a scale-independent landscape
of themes based on the contributions of the projected documents into
2-space.  The terrain has various mountains depicting where themes are
dominant and valleys where weak themes lie."

We build the terrain by accumulating an isotropic Gaussian kernel per
document onto a regular grid, then locate peaks (local maxima) and
label them with the dominant cluster's strongest topic terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class Peak:
    """One mountain of the terrain."""

    x: float
    y: float
    height: float
    #: cluster most represented near the peak
    cluster: int
    #: descriptive terms of that cluster
    labels: list[str] = field(default_factory=list)


@dataclass
class ThemeView:
    """The terrain grid plus its peaks."""

    heights: np.ndarray  # (grid, grid), row 0 = min y
    x_edges: np.ndarray
    y_edges: np.ndarray
    peaks: list[Peak]

    @property
    def grid(self) -> int:
        return self.heights.shape[0]


def _grid_coords(
    coords: np.ndarray,
    grid: int,
    bbox: Optional[tuple[float, float, float, float]] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    x, y = coords[:, 0], coords[:, 1]
    if bbox is None:
        x_lo, y_lo, x_hi, y_hi = x.min(), y.min(), x.max(), y.max()
    else:
        x_lo, y_lo, x_hi, y_hi = bbox
    pad_x = (x_hi - x_lo) * 0.05 + 1e-9
    pad_y = (y_hi - y_lo) * 0.05 + 1e-9
    x_edges = np.linspace(x_lo - pad_x, x_hi + pad_x, grid + 1)
    y_edges = np.linspace(y_lo - pad_y, y_hi + pad_y, grid + 1)
    xi = np.clip(np.searchsorted(x_edges, x, side="right") - 1, 0, grid - 1)
    yi = np.clip(np.searchsorted(y_edges, y, side="right") - 1, 0, grid - 1)
    return x_edges, y_edges, xi, yi


def build_themeview(
    coords: np.ndarray,
    assignments: Optional[np.ndarray] = None,
    cluster_labels: Optional[dict[int, list[str]]] = None,
    grid: int = 48,
    sigma_cells: float = 1.8,
    max_peaks: int = 12,
    bbox: Optional[tuple[float, float, float, float]] = None,
) -> ThemeView:
    """Build the terrain for projected documents.

    ``assignments``/``cluster_labels`` (both optional) attach cluster
    identities and top-term labels to the detected peaks.  ``bbox``
    ``(x_lo, y_lo, x_hi, y_hi)`` fixes the grid extent instead of
    deriving it from ``coords`` -- a time-sliced sequence built over
    one store's manifest bbox gets aligned grids, so the same cell
    means the same place in every slice.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] < 2:
        raise ValueError("coords must be (n, >=2)")
    if coords.shape[0] == 0:
        raise ValueError("need at least one document")
    x_edges, y_edges, xi, yi = _grid_coords(coords[:, :2], grid, bbox)
    counts = np.zeros((grid, grid))
    np.add.at(counts, (yi, xi), 1.0)
    heights = _gaussian_blur(counts, sigma_cells)
    peaks = _find_peaks(
        heights, x_edges, y_edges, xi, yi, assignments, max_peaks
    )
    if cluster_labels:
        for p in peaks:
            p.labels = list(cluster_labels.get(p.cluster, []))[:4]
    return ThemeView(
        heights=heights, x_edges=x_edges, y_edges=y_edges, peaks=peaks
    )


def _gaussian_kernel_1d(sigma: float) -> np.ndarray:
    radius = max(1, int(round(3 * sigma)))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    k = np.exp(-0.5 * (x / sigma) ** 2)
    return k / k.sum()


def _gaussian_blur(img: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with edge clamping (no SciPy needed at
    runtime; kept dependency-light and deterministic)."""
    k = _gaussian_kernel_1d(sigma)
    pad = len(k) // 2
    tmp = np.apply_along_axis(
        lambda row: np.convolve(
            np.pad(row, pad, mode="edge"), k, mode="valid"
        ),
        1,
        img,
    )
    out = np.apply_along_axis(
        lambda col: np.convolve(
            np.pad(col, pad, mode="edge"), k, mode="valid"
        ),
        0,
        tmp,
    )
    return out


def _find_peaks(
    heights: np.ndarray,
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    xi: np.ndarray,
    yi: np.ndarray,
    assignments: Optional[np.ndarray],
    max_peaks: int,
) -> list[Peak]:
    grid = heights.shape[0]
    padded = np.pad(heights, 1, mode="constant", constant_values=-np.inf)
    center = padded[1:-1, 1:-1]
    is_peak = np.ones((grid, grid), dtype=bool)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dy == 0 and dx == 0:
                continue
            neigh = padded[1 + dy : 1 + dy + grid, 1 + dx : 1 + dx + grid]
            is_peak &= center >= neigh
    is_peak &= center > center.max() * 0.05
    ys, xs = np.nonzero(is_peak)
    order = np.argsort(-heights[ys, xs])
    peaks: list[Peak] = []
    # non-max suppression: one peak per mountain (suppression radius
    # scales with the grid so plateau ridges don't spawn duplicates)
    suppress = max(2, grid // 8)
    kept: list[tuple[int, int]] = []
    for i in order:
        gy, gx = int(ys[i]), int(xs[i])
        if any(
            abs(gy - ky) <= suppress and abs(gx - kx) <= suppress
            for ky, kx in kept
        ):
            continue
        kept.append((gy, gx))
        if len(kept) >= max_peaks:
            break
    for gy, gx in kept:
        cluster = -1
        if assignments is not None:
            near = (np.abs(xi - gx) <= 2) & (np.abs(yi - gy) <= 2)
            if near.any():
                vals = np.asarray(assignments)[near]
                cluster = int(np.bincount(vals).argmax())
        peaks.append(
            Peak(
                x=float((x_edges[gx] + x_edges[gx + 1]) / 2),
                y=float((y_edges[gy] + y_edges[gy + 1]) / 2),
                height=float(heights[gy, gx]),
                cluster=cluster,
            )
        )
    return peaks
