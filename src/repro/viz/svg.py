"""SVG export: a publication-quality scatter of the document landscape.

Renders the engine's 2-D coordinates as an SVG: documents as circles
colored by cluster, optional terrain contour shading from a
:class:`~repro.viz.themeview.ThemeView`, and peak labels.  Pure
stdlib -- the output opens in any browser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union
from xml.sax.saxutils import escape

import numpy as np

from .themeview import ThemeView

PathLike = Union[str, Path]

#: categorical palette (colorblind-safe Okabe-Ito plus extensions)
PALETTE = [
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#CC79A7",
    "#56B4E9",
    "#D55E00",
    "#F0E442",
    "#999999",
    "#882255",
    "#44AA99",
    "#332288",
    "#117733",
]


def render_svg(
    coords: np.ndarray,
    assignments: Optional[np.ndarray] = None,
    view: Optional[ThemeView] = None,
    width: int = 640,
    height: int = 640,
    point_radius: float = 3.0,
) -> str:
    """Build the SVG document as a string."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] < 2 or coords.shape[0] == 0:
        raise ValueError("coords must be a non-empty (n, >=2) array")
    x, y = coords[:, 0], coords[:, 1]
    pad = 0.06
    x_lo, x_hi = x.min(), x.max()
    y_lo, y_hi = y.min(), y.max()
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(v: float) -> float:
        return (pad + (1 - 2 * pad) * (v - x_lo) / x_span) * width

    def sy(v: float) -> float:
        # SVG y grows downward
        return (1 - pad - (1 - 2 * pad) * (v - y_lo) / y_span) * height

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    # terrain shading: one translucent rect per occupied grid cell
    if view is not None:
        top = view.heights.max() or 1.0
        grid = view.grid
        cell_w = width / grid
        cell_h = height / grid
        for gy in range(grid):
            for gx in range(grid):
                h = view.heights[gy, gx]
                if h <= top * 0.05:
                    continue
                opacity = 0.25 * h / top
                # grid row 0 is min-y; flip for SVG
                py = (grid - 1 - gy) * cell_h
                parts.append(
                    f'<rect x="{gx * cell_w:.1f}" y="{py:.1f}" '
                    f'width="{cell_w + 0.5:.1f}" height="{cell_h + 0.5:.1f}" '
                    f'fill="#7f8c9b" opacity="{opacity:.3f}"/>'
                )
    # documents
    for i in range(coords.shape[0]):
        color = (
            PALETTE[int(assignments[i]) % len(PALETTE)]
            if assignments is not None
            else PALETTE[0]
        )
        parts.append(
            f'<circle cx="{sx(x[i]):.2f}" cy="{sy(y[i]):.2f}" '
            f'r="{point_radius}" fill="{color}" fill-opacity="0.75"/>'
        )
    # peak labels
    if view is not None:
        for p in view.peaks[:10]:
            if not p.labels:
                continue
            label = escape(" ".join(p.labels[:2]))
            parts.append(
                f'<text x="{sx(p.x):.1f}" y="{sy(p.y):.1f}" '
                f'font-family="sans-serif" font-size="11" '
                f'text-anchor="middle" fill="#222222" '
                f'stroke="#ffffff" stroke-width="3" '
                f'paint-order="stroke">{label}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    coords: np.ndarray,
    path: PathLike,
    assignments: Optional[np.ndarray] = None,
    view: Optional[ThemeView] = None,
    **kwargs,
) -> None:
    """Render and write the SVG to ``path``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_svg(coords, assignments, view, **kwargs))
