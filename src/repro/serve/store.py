"""Versioned on-disk shard store for the serving layer.

A *store* is a directory holding one ``model`` container (the
replicated per-collection state: major-term dictionary and statistics,
association matrix, cluster centroids, optional PCA projection), P
``shard-XXX`` containers (each a contiguous document-row slice of the
result: doc ids, L1-normalized signatures, landscape coordinates,
cluster assignments, and delta-encoded major-term postings), and a
``manifest.json`` describing the layout.

Container format (one file)::

    offset 0   magic     b"REPROSHD"                       (8 bytes)
    offset 8   version   u32 little-endian                 (4 bytes)
    offset 12  reserved  u32, zero                         (4 bytes)
    offset 16  hdr_len   u64 little-endian                 (8 bytes)
    offset 24  header    UTF-8 JSON, hdr_len bytes
    ...        padding to the next 64-byte boundary
    ...        sections  raw little-endian arrays, each 64-aligned

The header JSON lists the ordered section table (name, dtype, shape)
plus free-form ``meta``; section offsets are *recomputed* from that
table identically by writer and reader, so they can never disagree
with the payload.  Sections are loaded lazily via ``np.memmap`` --
opening a store touches only headers, and a query reads only the
sections (and pages) it scans.

Malformed input -- bad magic, unsupported version, truncated or
corrupt header, section table overrunning the file -- raises
:class:`ShardFormatError` carrying the offending path.

Postings are stored delta-encoded.  Version-1 containers restart the
coding at each *term run*: the run's first document row is absolute
and the rest are gaps, so decoding a term is one ``np.cumsum`` over
its slice.  Version-2 containers add the block-max sections
``post_block_offsets`` / ``post_block_maxtf`` (see
:func:`repro.index.termindex.compute_posting_blocks`) and restart the
coding at each *block* instead -- every block's first entry is an
absolute row, so a block is independently decodable and a pruned
search that skips a block really skips its decode.  The reader accepts
both versions; containers without block sections fall back to
exhaustive scoring.

Version-3 containers add the *facet* sections ``facet_stamp_s`` /
``facet_source`` (per-document arrival stamp and source-region id, in
row order) plus per-block stamp bounds ``facet_block_lo`` /
``facet_block_hi`` (:data:`FACET_BLOCK_ROWS` rows per block), letting
a window query prune whole row blocks by stamp range without touching
their stamps.  Version 3 is written *only* for stamped collections --
an unstamped build emits byte-identical version-2 containers -- and
version-1/2 stores remain fully readable (facet queries on them get a
typed error, not a crash).

Generational stores (live ingest)
---------------------------------

A store becomes *generational* once :mod:`repro.ingest` publishes its
first delta generation.  Generation 0 is the static layout above
(``manifest.json``).  Generation ``k >= 1`` adds a directory
``gen-0000k/`` holding that generation's new containers (delta
segments, or rewritten base shards after a compaction) plus a manifest
``manifest-0000k.json`` (format ``repro-serve/2``) recording the base
shard table *and* the ordered delta list.  A small ``CURRENT`` pointer
file names the active generation and is replaced atomically
(``os.replace``), so a reader either sees the old complete generation
or the new complete generation -- never a torn store.  Publish order
is therefore: delta containers, then the generation manifest, then
``CURRENT``.

A stale pointer (``CURRENT`` naming a manifest that does not exist),
a corrupt pointer, or a generation manifest referencing a missing or
truncated container all raise :class:`ShardFormatError` carrying the
offending path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.engine.results import EngineResult
from repro.index.termindex import (
    BLOCK_SIZE,
    TermPostings,
    build_term_postings,
)
from repro.project.pca import PCATransform
from repro.signature.topicality import RankedTerm

MAGIC = b"REPROSHD"
FORMAT_VERSION = 2
#: container version carrying facet sections (stamped collections)
FACET_FORMAT_VERSION = 3
#: container versions this reader understands (1 = run-aligned delta
#: coding, no block sections; 2 = block-aligned coding + block-max
#: sections; 3 = adds facet stamp/source sections + block stamp bounds)
SUPPORTED_VERSIONS = (1, 2, 3)
#: document rows per facet block (one min/max stamp pair per block)
FACET_BLOCK_ROWS = 128
MANIFEST_FORMAT = "repro-serve/1"
MANIFEST_FORMAT_GEN = "repro-serve/2"
CURRENT_FORMAT = "repro-serve-current/1"
_ALIGN = 64
_PREFIX_LEN = 24
_MAX_HEADER = 64 * 1024 * 1024

MODEL_FILE = "model.repro"
MANIFEST_FILE = "manifest.json"
CURRENT_FILE = "CURRENT"


def generation_dir(generation: int) -> str:
    """Relative directory name of one published generation."""
    return f"gen-{generation:05d}"


def generation_manifest_file(generation: int) -> str:
    """Manifest filename of one published generation (k >= 1)."""
    return f"manifest-{generation:05d}.json"


class ShardFormatError(Exception):
    """A store file is malformed, truncated, or version-incompatible.

    ``context`` names *which copy* hit the problem when replicas are
    in play (e.g. ``"shard 3 copy 1 on worker 5 (rank 9)"``), so an
    operator can tell a corrupt replica from a corrupt store.
    """

    def __init__(self, path: str, reason: str, context: str = ""):
        self.path = str(path)
        self.reason = reason
        self.context = context
        suffix = f" [{context}]" if context else ""
        super().__init__(f"{path}: {reason}{suffix}")


def _pad(n: int) -> int:
    return (-n) % _ALIGN


def _section_layout(
    sections: list[dict], header_len: int
) -> list[tuple[int, int]]:
    """(offset, nbytes) per section, recomputed from the ordered table."""
    pos = _PREFIX_LEN + header_len
    pos += _pad(pos)
    layout = []
    for sec in sections:
        nbytes = int(np.dtype(sec["dtype"]).itemsize) * int(
            np.prod(sec["shape"], dtype=np.int64)
        )
        layout.append((pos, nbytes))
        pos += nbytes + _pad(nbytes)
    return layout


def write_container(
    path: str | os.PathLike,
    arrays: dict[str, np.ndarray],
    meta: dict,
    version: int = FORMAT_VERSION,
) -> int:
    """Write one container file; returns its size in bytes.

    ``version`` defaults to the current format; passing an older
    supported version writes a legacy-layout container (the fallback
    tests use this to fabricate pre-block-max stores).
    """
    sections = []
    payload = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        sections.append(
            {"name": name, "dtype": arr.dtype.str, "shape": list(arr.shape)}
        )
        payload.append(arr)
    header = json.dumps(
        {"sections": sections, "meta": meta}, sort_keys=True
    ).encode("utf-8")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"cannot write container version {version}; "
            f"supported: {SUPPORTED_VERSIONS}"
        )
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(
            int(version).to_bytes(4, "little") + b"\x00\x00\x00\x00"
        )
        f.write(len(header).to_bytes(8, "little"))
        f.write(header)
        f.write(b"\x00" * _pad(_PREFIX_LEN + len(header)))
        for arr in payload:
            data = arr.tobytes()
            f.write(data)
            f.write(b"\x00" * _pad(len(data)))
        return f.tell()


class Container:
    """Lazy reader of one container file.

    The header is parsed eagerly (and validated); each section becomes
    a read-only ``np.memmap`` on first access and is cached.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = str(path)
        try:
            size = os.path.getsize(self.path)
            with open(self.path, "rb") as f:
                prefix = f.read(_PREFIX_LEN)
                if len(prefix) < _PREFIX_LEN or prefix[:8] != MAGIC:
                    raise ShardFormatError(
                        self.path, "bad magic: not a repro shard container"
                    )
                version = int.from_bytes(prefix[8:12], "little")
                if version not in SUPPORTED_VERSIONS:
                    raise ShardFormatError(
                        self.path,
                        f"unsupported format version {version} "
                        f"(reader supports {SUPPORTED_VERSIONS})",
                    )
                self.version = version
                hdr_len = int.from_bytes(prefix[16:24], "little")
                if hdr_len > _MAX_HEADER or _PREFIX_LEN + hdr_len > size:
                    raise ShardFormatError(
                        self.path,
                        f"header length {hdr_len} exceeds file size {size}",
                    )
                raw = f.read(hdr_len)
                if len(raw) < hdr_len:
                    raise ShardFormatError(self.path, "truncated header")
        except OSError as exc:
            raise ShardFormatError(self.path, f"unreadable: {exc}") from exc
        try:
            header = json.loads(raw.decode("utf-8"))
            self._sections = {
                sec["name"]: (sec["dtype"], tuple(sec["shape"]))
                for sec in header["sections"]
            }
            self.meta = header["meta"]
            self._layout = dict(
                zip(
                    (s["name"] for s in header["sections"]),
                    _section_layout(header["sections"], hdr_len),
                )
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ShardFormatError(
                self.path, f"corrupt header: {exc}"
            ) from exc
        for name, (off, nbytes) in self._layout.items():
            if off + nbytes > size:
                raise ShardFormatError(
                    self.path,
                    f"section {name!r} [{off}, {off + nbytes}) overruns "
                    f"file size {size}",
                )
        self._cache: dict[str, np.ndarray] = {}

    @property
    def section_names(self) -> list[str]:
        return list(self._sections)

    def nbytes(self, name: str) -> int:
        """Payload size of one section (bytes-scanned accounting)."""
        return self._layout[name][1]

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def load(self, name: str) -> np.ndarray:
        """Memory-map one section (cached, read-only)."""
        if name not in self._cache:
            if name not in self._sections:
                raise KeyError(f"{self.path}: no section {name!r}")
            dtype, shape = self._sections[name]
            offset, _ = self._layout[name]
            self._cache[name] = np.memmap(
                self.path,
                mode="r",
                dtype=np.dtype(dtype),
                shape=shape,
                offset=offset,
            )
        return self._cache[name]


# ----------------------------------------------------------------------
# postings delta coding
# ----------------------------------------------------------------------
def delta_encode_postings(postings: TermPostings) -> np.ndarray:
    """Per-term delta code of the postings' document rows.

    Rows ascend within each term run; each run stores its first row
    absolute and subsequent rows as gaps.
    """
    delta = np.diff(postings.rows, prepend=0).astype(np.int64)
    starts = postings.offsets[:-1][np.diff(postings.offsets) > 0]
    delta[starts] = postings.rows[starts]
    return delta


def decode_term_rows(
    delta: np.ndarray, offsets: np.ndarray, term_row: int
) -> np.ndarray:
    """Absolute document rows of one term's delta-coded run."""
    lo = int(offsets[term_row])
    hi = int(offsets[term_row + 1])
    return np.cumsum(delta[lo:hi])


def decode_postings(
    n_docs: int, offsets: np.ndarray, delta: np.ndarray, tf: np.ndarray
) -> TermPostings:
    """Decode a full delta-coded postings block."""
    rows = np.asarray(delta, dtype=np.int64).copy()
    offsets = np.asarray(offsets, dtype=np.int64)
    for t in range(offsets.shape[0] - 1):
        lo, hi = int(offsets[t]), int(offsets[t + 1])
        if hi > lo:
            rows[lo:hi] = np.cumsum(rows[lo:hi])
    return TermPostings(
        n_docs=n_docs,
        offsets=offsets,
        rows=rows,
        tf=np.asarray(tf, dtype=np.int64),
    )


def delta_encode_blocked(postings: TermPostings) -> np.ndarray:
    """Block-aligned delta code of the postings' document rows.

    Like :func:`delta_encode_postings` but the coding restarts at
    every *block* boundary (block starts include every run start), so
    each block decodes independently with one ``np.cumsum`` -- the
    property that lets the block-max kernel skip a block's decode
    entirely, and that makes a block's first row readable without any
    decode at all.
    """
    if postings.block_offsets is None:
        raise ValueError(
            "delta_encode_blocked needs block metadata; call "
            "TermPostings.with_blocks first"
        )
    delta = np.diff(postings.rows, prepend=0).astype(np.int64)
    starts = postings.block_offsets[:-1]
    delta[starts] = postings.rows[starts]
    return delta


def encode_postings_sections(
    postings: TermPostings, block_size: int = BLOCK_SIZE
) -> dict[str, np.ndarray]:
    """The five current-format postings sections of one segment.

    Shared by :func:`build_shards`, the ingest delta builder, and the
    compactor, so every writer produces byte-identical sections for
    identical postings (the compaction-parity invariant).
    """
    blocked = (
        postings
        if postings.block_size == block_size
        and postings.block_offsets is not None
        else postings.with_blocks(block_size)
    )
    return {
        "post_offsets": np.asarray(blocked.offsets, dtype=np.int64),
        "post_rows_delta": delta_encode_blocked(blocked),
        "post_tf": np.asarray(blocked.tf, dtype=np.int64),
        "post_block_offsets": np.asarray(
            blocked.block_offsets, dtype=np.int64
        ),
        "post_block_maxtf": np.asarray(
            blocked.block_maxtf, dtype=np.int64
        ),
    }


class BlockPostings:
    """Lazily-decoded block-aligned postings of one shard container.

    Wraps the raw ``post_*`` sections without decoding anything: block
    boundaries, per-block max-tf, and each block's first document row
    (the absolute first entry of its delta slice) are all readable
    up front, while a block's full row list is cumsum-decoded only on
    first touch and cached.  The block-max search kernel consumes this
    interface; the honest bytes-scanned accounting counts exactly the
    blocks touched.

    Corrupt block sections -- boundaries that do not tile the postings,
    term runs not aligned to block boundaries, or a max-tf table of the
    wrong length -- raise :class:`ShardFormatError` naming the
    container path.
    """

    def __init__(self, container: Container, n_docs: int):
        self.path = container.path
        self.n_docs = int(n_docs)
        self.offsets = np.asarray(
            container.load("post_offsets"), dtype=np.int64
        )
        # left as memmaps: a query touches only the blocks it scans
        self.delta = container.load("post_rows_delta")
        self.tf = container.load("post_tf")
        self.block_offsets = np.asarray(
            container.load("post_block_offsets"), dtype=np.int64
        )
        self.block_maxtf = np.asarray(
            container.load("post_block_maxtf"), dtype=np.int64
        )
        self._validate()
        self._rows: dict[tuple[int, int], np.ndarray] = {}
        self._tfs: dict[tuple[int, int], np.ndarray] = {}
        self._firsts: np.ndarray | None = None

    def _fail(self, reason: str) -> None:
        raise ShardFormatError(self.path, reason)

    def _validate(self) -> None:
        bo = self.block_offsets
        total = int(self.delta.shape[0])
        if bo.ndim != 1 or bo.shape[0] < 1:
            self._fail("corrupt block sections: empty post_block_offsets")
        if int(bo[0]) != 0 or int(bo[-1]) != total:
            self._fail(
                "corrupt block sections: post_block_offsets "
                f"[{int(bo[0])}..{int(bo[-1])}] do not tile "
                f"{total} postings"
            )
        if bo.shape[0] > 1 and not np.all(np.diff(bo) > 0):
            self._fail(
                "corrupt block sections: post_block_offsets not "
                "strictly increasing"
            )
        if self.block_maxtf.shape != (bo.shape[0] - 1,):
            self._fail(
                "corrupt block sections: post_block_maxtf has "
                f"{self.block_maxtf.shape[0]} entries for "
                f"{bo.shape[0] - 1} blocks (truncated?)"
            )
        if int(self.tf.shape[0]) != total:
            self._fail(
                "corrupt postings: post_tf length "
                f"{int(self.tf.shape[0])} != post_rows_delta length "
                f"{total}"
            )
        # every term run must start and end on a block boundary
        hits = np.searchsorted(bo, self.offsets)
        if not np.array_equal(bo[np.minimum(hits, bo.shape[0] - 1)],
                              self.offsets):
            self._fail(
                "corrupt block sections: term offsets misaligned with "
                "post_block_offsets"
            )

    @property
    def n_terms(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @property
    def n_blocks(self) -> int:
        return int(self.block_offsets.shape[0] - 1)

    def __len__(self) -> int:
        return int(self.delta.shape[0])

    def term_block_range(self, term_row: int) -> tuple[int, int]:
        """Block-index range ``[lo, hi)`` of one term's run."""
        lo = int(
            np.searchsorted(self.block_offsets, self.offsets[term_row])
        )
        hi = int(
            np.searchsorted(
                self.block_offsets, self.offsets[term_row + 1]
            )
        )
        return lo, hi

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Posting-index range ``[lo, hi)`` of one block."""
        return (
            int(self.block_offsets[block]),
            int(self.block_offsets[block + 1]),
        )

    def block_len(self, block: int) -> int:
        return int(
            self.block_offsets[block + 1] - self.block_offsets[block]
        )

    @property
    def block_firsts(self) -> np.ndarray:
        """First document row of every block, without any decode
        (block-aligned coding stores each block's first row absolute)."""
        if self._firsts is None:
            self._firsts = np.asarray(
                self.delta[self.block_offsets[:-1]], dtype=np.int64
            )
        return self._firsts

    def block_first_row(self, block: int) -> int:
        return int(self.block_firsts[block])

    def run_rows(self, j0: int, j1: int) -> np.ndarray:
        """Decoded document rows of the contiguous block run
        ``[j0, j1)``, via one segmented cumsum (cached per run)."""
        rows = self._rows.get((j0, j1))
        if rows is None:
            lo = int(self.block_offsets[j0])
            hi = int(self.block_offsets[j1])
            cs = np.cumsum(
                np.asarray(self.delta[lo:hi], dtype=np.int64)
            )
            starts = (
                np.asarray(self.block_offsets[j0 + 1 : j1]) - lo
            )
            if starts.size:
                # each later block's prefix sums carry the spurious
                # running total of everything before its absolute
                # first row; subtract it per segment
                seg_lens = np.diff(
                    np.concatenate(([0], starts, [hi - lo]))
                )
                corr = np.concatenate(([0], cs[starts - 1]))
                rows = cs - np.repeat(corr, seg_lens)
            else:
                rows = cs
            self._rows[(j0, j1)] = rows
        return rows

    def cached_rows(self, j0: int, j1: int) -> np.ndarray | None:
        """The run's decoded rows if already cached, else ``None``
        (a pure cache probe -- never decodes)."""
        return self._rows.get((j0, j1))

    def run_tf(self, j0: int, j1: int) -> np.ndarray:
        tf = self._tfs.get((j0, j1))
        if tf is None:
            lo = int(self.block_offsets[j0])
            hi = int(self.block_offsets[j1])
            tf = np.asarray(self.tf[lo:hi], dtype=np.int64)
            self._tfs[(j0, j1)] = tf
        return tf

    def block_rows(self, block: int) -> np.ndarray:
        """Decoded (absolute, ascending) document rows of one block."""
        return self.run_rows(block, block + 1)

    def block_tf(self, block: int) -> np.ndarray:
        return self.run_tf(block, block + 1)

    def to_term_postings(self) -> TermPostings:
        """Fully-decoded postings (compaction and parity tests)."""
        if self.n_blocks:
            rows = self.run_rows(0, self.n_blocks)
        else:
            rows = np.empty(0, dtype=np.int64)
        return TermPostings(
            n_docs=self.n_docs,
            offsets=self.offsets,
            rows=rows,
            tf=np.asarray(self.tf, dtype=np.int64),
        )


def load_segment_postings(
    container: Container, n_docs: int
) -> TermPostings:
    """Fully-decoded postings of one segment, any supported coding.

    Containers with block sections decode block-aligned; legacy
    containers decode run-aligned.  Used by the compactor, which needs
    whole posting lists regardless of on-disk layout.
    """
    if "post_block_offsets" in container:
        return BlockPostings(container, n_docs).to_term_postings()
    return decode_postings(
        n_docs,
        np.asarray(container.load("post_offsets")),
        np.asarray(container.load("post_rows_delta")),
        np.asarray(container.load("post_tf")),
    )


# ----------------------------------------------------------------------
# facet sections (stamped collections, container version 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FacetData:
    """Row-aligned facet arrays of one collection (or one batch).

    ``stamp_s`` is the per-document arrival stamp (virtual seconds,
    float64) and ``source`` the per-document source-region id (int64,
    ``0 <= source < n_sources``), both in document-row order.
    """

    stamp_s: np.ndarray
    source: np.ndarray
    n_sources: int
    source_names: tuple[str, ...] = ()

    def __post_init__(self):
        stamp = np.asarray(self.stamp_s, dtype=np.float64)
        source = np.asarray(self.source, dtype=np.int64)
        if stamp.ndim != 1 or source.shape != stamp.shape:
            raise ValueError(
                "facet stamp_s and source must be 1-D arrays of "
                f"equal length, got {stamp.shape} and {source.shape}"
            )
        object.__setattr__(self, "stamp_s", stamp)
        object.__setattr__(self, "source", source)

    @property
    def n_docs(self) -> int:
        return int(self.stamp_s.shape[0])

    def slice(self, row_lo: int, row_hi: int) -> "FacetData":
        return FacetData(
            stamp_s=self.stamp_s[row_lo:row_hi],
            source=self.source[row_lo:row_hi],
            n_sources=self.n_sources,
            source_names=self.source_names,
        )


def facet_data_from_meta(meta: dict) -> FacetData | None:
    """Decode a corpus's ``meta["facets"]`` carrier, if present.

    The generators and the ingest feed stamp corpora by attaching
    ``{"stamp_s": [...], "source": [...], "n_sources": k,
    "source_names": [...]}`` to ``Corpus.meta`` (which round-trips
    through the jsonl journal).  Unstamped corpora return ``None``.
    """
    fac = (meta or {}).get("facets")
    if fac is None:
        return None
    try:
        return FacetData(
            stamp_s=np.asarray(fac["stamp_s"], dtype=np.float64),
            source=np.asarray(fac["source"], dtype=np.int64),
            n_sources=int(fac["n_sources"]),
            source_names=tuple(fac.get("source_names", ())),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"corrupt corpus facet metadata: {exc}") from exc


def encode_facet_sections(
    stamp_s: np.ndarray,
    source: np.ndarray,
    block_rows: int = FACET_BLOCK_ROWS,
) -> dict[str, np.ndarray]:
    """The four facet sections of one stamped segment.

    Shared by :func:`build_shards`, the ingest delta builder, and the
    compactor, so every writer produces byte-identical facet sections
    for identical rows (the compaction-parity invariant extends to
    facets).
    """
    stamp = np.ascontiguousarray(np.asarray(stamp_s, dtype=np.float64))
    src = np.ascontiguousarray(np.asarray(source, dtype=np.int64))
    if stamp.ndim != 1 or src.shape != stamp.shape:
        raise ValueError(
            "facet stamp/source must be 1-D arrays of equal length, "
            f"got {stamp.shape} and {src.shape}"
        )
    n = stamp.shape[0]
    if n:
        starts = np.arange(0, n, block_rows, dtype=np.int64)
        block_lo = np.minimum.reduceat(stamp, starts)
        block_hi = np.maximum.reduceat(stamp, starts)
    else:
        block_lo = np.empty(0, dtype=np.float64)
        block_hi = np.empty(0, dtype=np.float64)
    return {
        "facet_stamp_s": stamp,
        "facet_source": src,
        "facet_block_lo": np.asarray(block_lo, dtype=np.float64),
        "facet_block_hi": np.asarray(block_hi, dtype=np.float64),
    }


class FacetSections:
    """Lazily-read facet arrays of one shard container.

    Stamps and sources stay memmapped; the small per-block stamp
    bounds are materialized eagerly so a window query can prune whole
    blocks -- ``[t0, t1)`` only touches blocks whose
    ``[block_lo, block_hi]`` envelope intersects the window.  The
    honest bytes-scanned accounting counts the bounds scan plus
    exactly the stamp/source bytes of the blocks touched.

    Corrupt facet sections -- stamp or source arrays whose length is
    not the shard's row count, a bounds table of the wrong length, or
    an inverted ``lo > hi`` envelope -- raise
    :class:`ShardFormatError` naming the container path.
    """

    def __init__(self, container: Container, n_docs: int):
        self.path = container.path
        self.n_docs = int(n_docs)
        self.block_rows = FACET_BLOCK_ROWS
        self.stamp_s = container.load("facet_stamp_s")
        self.source = container.load("facet_source")
        self.block_lo = np.asarray(
            container.load("facet_block_lo"), dtype=np.float64
        )
        self.block_hi = np.asarray(
            container.load("facet_block_hi"), dtype=np.float64
        )
        self._validate()

    def _fail(self, reason: str) -> None:
        raise ShardFormatError(self.path, reason)

    def _validate(self) -> None:
        n = self.n_docs
        if self.stamp_s.ndim != 1 or int(self.stamp_s.shape[0]) != n:
            self._fail(
                "corrupt facet sections: facet_stamp_s has "
                f"{int(self.stamp_s.shape[0])} stamps for {n} rows"
            )
        if self.source.shape != self.stamp_s.shape:
            self._fail(
                "corrupt facet sections: facet_source has "
                f"{int(self.source.shape[0])} entries for {n} rows"
            )
        nblocks = -(-n // self.block_rows) if n else 0
        if self.block_lo.shape != (nblocks,) or self.block_hi.shape != (
            nblocks,
        ):
            self._fail(
                "corrupt facet sections: stamp bounds have "
                f"{int(self.block_lo.shape[0])}/"
                f"{int(self.block_hi.shape[0])} entries for "
                f"{nblocks} blocks (truncated?)"
            )
        if nblocks and bool(np.any(self.block_lo > self.block_hi)):
            self._fail(
                "corrupt facet sections: block stamp envelope has "
                "lo > hi"
            )

    @property
    def n_blocks(self) -> int:
        return int(self.block_lo.shape[0])

    def window_rows(
        self, t0: float, t1: float, source: int = -1
    ) -> tuple[np.ndarray, int]:
        """Ascending local rows with ``t0 <= stamp < t1``.

        ``source >= 0`` additionally filters to one source region.
        Returns ``(rows, bytes_scanned)``; the scan count is the full
        bounds table plus the stamp (and, under a source filter, the
        source) bytes of every block the pruning could not skip.
        """
        scanned = 16 * self.n_blocks
        if t1 <= t0 or not self.n_blocks:
            return np.empty(0, dtype=np.int64), scanned
        cand = np.flatnonzero(
            (self.block_lo < t1) & (self.block_hi >= t0)
        )
        parts = []
        for b in cand:
            lo = int(b) * self.block_rows
            hi = min(lo + self.block_rows, self.n_docs)
            stamps = np.asarray(self.stamp_s[lo:hi], dtype=np.float64)
            scanned += 8 * (hi - lo)
            rows = np.flatnonzero((stamps >= t0) & (stamps < t1)) + lo
            if source >= 0 and rows.size:
                scanned += 8 * int(rows.size)
                src = np.asarray(self.source[rows], dtype=np.int64)
                rows = rows[src == source]
            if rows.size:
                parts.append(rows)
        if not parts:
            return np.empty(0, dtype=np.int64), scanned
        return np.concatenate(parts).astype(np.int64), scanned

    def source_counts(
        self, t0: float, t1: float, n_sources: int
    ) -> tuple[np.ndarray, int]:
        """Per-source document counts within ``[t0, t1)`` (int64)."""
        rows, scanned = self.window_rows(t0, t1)
        counts = np.zeros(n_sources, dtype=np.int64)
        if rows.size:
            scanned += 8 * int(rows.size)
            src = np.asarray(self.source[rows], dtype=np.int64)
            src = src[(src >= 0) & (src < n_sources)]
            counts += np.bincount(src, minlength=n_sources).astype(
                np.int64
            )
        return counts, scanned


def load_facet_sections(
    container: Container, n_docs: int
) -> FacetSections | None:
    """The container's facet sections, or ``None`` if unstamped."""
    if "facet_stamp_s" not in container:
        return None
    return FacetSections(container, n_docs)


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardInfo:
    """One shard's row/doc coverage as recorded in the manifest."""

    file: str
    row_lo: int
    row_hi: int
    doc_lo: int
    doc_hi: int
    nbytes: int

    @property
    def n_docs(self) -> int:
        return self.row_hi - self.row_lo


@dataclass(frozen=True)
class DeltaInfo:
    """One delta segment appended by a published generation.

    ``owner`` is the index of the base shard whose server rank also
    serves this segment; rows are global (appended after every earlier
    segment's rows).
    """

    file: str
    generation: int
    owner: int
    row_lo: int
    row_hi: int
    doc_lo: int
    doc_hi: int
    nbytes: int

    @property
    def n_docs(self) -> int:
        return self.row_hi - self.row_lo


@dataclass(frozen=True)
class FacetsInfo:
    """Store-level facet summary recorded in a stamped manifest.

    ``stamp_lo`` / ``stamp_hi`` bracket every stamp in the store
    (base shards plus deltas) so a dashboard can pick windows without
    scanning; unstamped stores simply omit the entry
    (``StoreManifest.facets is None``).
    """

    n_sources: int
    source_names: tuple[str, ...]
    stamp_lo: float
    stamp_hi: float
    block_rows: int = FACET_BLOCK_ROWS


@dataclass(frozen=True)
class StoreManifest:
    """Directory-level description of a sharded store.

    A static store is generation 0 with an empty ``deltas`` tuple.  In
    a generational store ``shards`` stays the base shard table (which a
    compaction rewrites) while ``deltas`` is the ordered list of live
    delta segments; ``n_docs`` always counts base plus deltas.
    """

    format: str
    nshards: int
    n_docs: int
    corpus_name: str
    model_file: str
    bbox: tuple[float, float, float, float]
    shards: tuple[ShardInfo, ...]
    generation: int = 0
    deltas: tuple[DeltaInfo, ...] = ()
    ingested_batches: int = 0
    #: virtual publish instant within the serving session that wrote
    #: this generation (0.0 = published offline / before the session);
    #: the broker only adopts generations with ``published_s <= now``
    published_s: float = 0.0
    #: replicas per shard the replicated tier should place by default
    #: (1 = unreplicated; carried through every later generation)
    replication: int = 1
    #: facet summary of a stamped store (None = unstamped; facet
    #: queries get a typed error instead of a fan-out)
    facets: FacetsInfo | None = None

    @property
    def base_n_docs(self) -> int:
        """Documents covered by the base shards alone."""
        return self.shards[-1].row_hi if self.shards else 0

    @property
    def delta_nbytes(self) -> int:
        return sum(d.nbytes for d in self.deltas)

    @property
    def base_nbytes(self) -> int:
        return sum(s.nbytes for s in self.shards)

    def shard_of_row(self, row: int) -> int:
        """Index of the base shard whose rank owns a global row.

        Delta rows map to the *serving* shard (their ``owner``), not a
        base row range.
        """
        for i, s in enumerate(self.shards):
            if s.row_lo <= row < s.row_hi:
                return i
        for d in self.deltas:
            if d.row_lo <= row < d.row_hi:
                return d.owner
        raise KeyError(f"row {row} outside store of {self.n_docs} docs")


def _facets_doc(facets: FacetsInfo) -> dict:
    """JSON form of a manifest's facet summary."""
    return {
        "n_sources": facets.n_sources,
        "source_names": list(facets.source_names),
        "stamp_lo": facets.stamp_lo,
        "stamp_hi": facets.stamp_hi,
        "block_rows": facets.block_rows,
    }


def _manifest_from_data(
    path: str, data: dict, expect_format: str
) -> StoreManifest:
    try:
        if data["format"] != expect_format:
            raise ShardFormatError(
                path,
                f"unsupported store format {data['format']!r} "
                f"(reader supports {expect_format!r})",
            )
        fac = data.get("facets")
        facets = (
            FacetsInfo(
                n_sources=int(fac["n_sources"]),
                source_names=tuple(fac["source_names"]),
                stamp_lo=float(fac["stamp_lo"]),
                stamp_hi=float(fac["stamp_hi"]),
                block_rows=int(fac.get("block_rows", FACET_BLOCK_ROWS)),
            )
            if fac is not None
            else None
        )
        return StoreManifest(
            format=data["format"],
            nshards=int(data["nshards"]),
            n_docs=int(data["n_docs"]),
            corpus_name=data["corpus_name"],
            model_file=data["model_file"],
            bbox=tuple(data["bbox"]),
            shards=tuple(
                ShardInfo(
                    file=s["file"],
                    row_lo=int(s["row_lo"]),
                    row_hi=int(s["row_hi"]),
                    doc_lo=int(s["doc_lo"]),
                    doc_hi=int(s["doc_hi"]),
                    nbytes=int(s["nbytes"]),
                )
                for s in data["shards"]
            ),
            generation=int(data.get("generation", 0)),
            deltas=tuple(
                DeltaInfo(
                    file=d["file"],
                    generation=int(d["generation"]),
                    owner=int(d["owner"]),
                    row_lo=int(d["row_lo"]),
                    row_hi=int(d["row_hi"]),
                    doc_lo=int(d["doc_lo"]),
                    doc_hi=int(d["doc_hi"]),
                    nbytes=int(d["nbytes"]),
                )
                for d in data.get("deltas", ())
            ),
            ingested_batches=int(data.get("ingested_batches", 0)),
            published_s=float(data.get("published_s", 0.0)),
            replication=int(data.get("replication", 1)),
            facets=facets,
        )
    except ShardFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardFormatError(path, f"corrupt manifest: {exc}") from exc


def _read_json(path: str, what: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as exc:
        raise ShardFormatError(path, f"unreadable: {exc}") from exc
    except ValueError as exc:
        raise ShardFormatError(path, f"corrupt {what}: {exc}") from exc


def current_generation(store_dir: str | os.PathLike) -> int:
    """The published generation of a store (0 = static layout).

    Reads only the small ``CURRENT`` pointer, so polling between
    queries is cheap.
    """
    path = os.path.join(str(store_dir), CURRENT_FILE)
    if not os.path.exists(path):
        return 0
    data = _read_json(path, "generation pointer")
    try:
        if data["format"] != CURRENT_FORMAT:
            raise ShardFormatError(
                path,
                f"unsupported pointer format {data['format']!r} "
                f"(reader supports {CURRENT_FORMAT!r})",
            )
        return int(data["generation"])
    except ShardFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardFormatError(
            path, f"corrupt generation pointer: {exc}"
        ) from exc


def load_manifest_generation(
    store_dir: str | os.PathLike, generation: int
) -> StoreManifest:
    """Load one specific generation's manifest.

    Generation 0 is the static ``manifest.json``; generation ``k >= 1``
    is ``manifest-0000k.json`` as published by the ingest subsystem.  A
    missing generation manifest raises :class:`ShardFormatError`
    naming it a *stale generation pointer* -- the pointer survived but
    the generation it names is gone.
    """
    store = str(store_dir)
    if generation == 0:
        path = os.path.join(store, MANIFEST_FILE)
        return _manifest_from_data(
            path, _read_json(path, "manifest"), MANIFEST_FORMAT
        )
    path = os.path.join(store, generation_manifest_file(generation))
    if not os.path.exists(path):
        raise ShardFormatError(
            path,
            f"stale generation pointer: generation {generation} "
            "manifest does not exist",
        )
    return _manifest_from_data(
        path, _read_json(path, "manifest"), MANIFEST_FORMAT_GEN
    )


def load_manifest(store_dir: str | os.PathLike) -> StoreManifest:
    """Parse and validate a store's *current* manifest.

    Static stores read ``manifest.json`` directly; generational stores
    follow the atomic ``CURRENT`` pointer to the active generation.
    """
    return load_manifest_generation(
        store_dir, current_generation(store_dir)
    )


def write_generation_manifest(
    store_dir: str | os.PathLike, manifest: StoreManifest
) -> str:
    """Write one generation's manifest file (not yet published)."""
    if manifest.generation < 1:
        raise ValueError(
            "generation manifests start at 1; generation 0 is the "
            "static manifest.json"
        )
    path = os.path.join(
        str(store_dir), generation_manifest_file(manifest.generation)
    )
    doc = {
        "format": MANIFEST_FORMAT_GEN,
        "generation": manifest.generation,
        "nshards": manifest.nshards,
        "n_docs": manifest.n_docs,
        "ingested_batches": manifest.ingested_batches,
        "published_s": manifest.published_s,
        "replication": manifest.replication,
        "corpus_name": manifest.corpus_name,
        "model_file": manifest.model_file,
        "bbox": list(manifest.bbox),
        "shards": [
            {
                "file": s.file,
                "row_lo": s.row_lo,
                "row_hi": s.row_hi,
                "doc_lo": s.doc_lo,
                "doc_hi": s.doc_hi,
                "nbytes": s.nbytes,
            }
            for s in manifest.shards
        ],
        "deltas": [
            {
                "file": d.file,
                "generation": d.generation,
                "owner": d.owner,
                "row_lo": d.row_lo,
                "row_hi": d.row_hi,
                "doc_lo": d.doc_lo,
                "doc_hi": d.doc_hi,
                "nbytes": d.nbytes,
            }
            for d in manifest.deltas
        ],
    }
    if manifest.facets is not None:
        doc["facets"] = _facets_doc(manifest.facets)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def publish_generation(
    store_dir: str | os.PathLike, manifest: StoreManifest
) -> None:
    """Atomically flip the store's ``CURRENT`` pointer to a manifest.

    The generation's containers and manifest must already be on disk;
    the pointer is written to a temporary file and ``os.replace``\\ d
    into place, so concurrent readers see either the previous or the
    new generation in full.
    """
    store = str(store_dir)
    manifest_file = generation_manifest_file(manifest.generation)
    if not os.path.exists(os.path.join(store, manifest_file)):
        raise ValueError(
            f"generation {manifest.generation} manifest not written; "
            "call write_generation_manifest first"
        )
    tmp = os.path.join(store, CURRENT_FILE + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(
            {
                "format": CURRENT_FORMAT,
                "generation": manifest.generation,
                "manifest": manifest_file,
            },
            f,
            sort_keys=True,
        )
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, os.path.join(store, CURRENT_FILE))


def verify_store(store_dir: str | os.PathLike) -> StoreManifest:
    """Open every container the current generation references.

    Validates the generation pointer, the manifest, and each referenced
    container's header and section table (which catches truncation and
    a missing generation directory), raising :class:`ShardFormatError`
    with the offending path on the first problem.  Returns the verified
    manifest.
    """
    store = str(store_dir)
    manifest = load_manifest(store)
    Container(os.path.join(store, manifest.model_file))
    for s in manifest.shards:
        Container(os.path.join(store, s.file))
    for d in manifest.deltas:
        Container(os.path.join(store, d.file))
    return manifest


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------
def build_shards(
    result: EngineResult,
    out_dir: str | os.PathLike,
    nshards: int,
    corpus=None,
    postings: TermPostings | None = None,
    tokenizer_config=None,
    replication: int = 1,
    facets: FacetData | None = None,
) -> StoreManifest:
    """Partition an engine result into a P-shard on-disk store.

    Documents are split into ``nshards`` contiguous row ranges (the
    same ``np.array_split`` convention as the pipeline's partitioner).
    Term postings come from ``postings`` or are inverted from
    ``corpus``; without either, the store serves signature/cluster
    queries but not ranked term search.  ``replication`` is recorded
    in the manifest as the replicated tier's default copy count; it
    does not change the on-disk layout (every worker reads the same
    immutable containers).

    ``facets`` (or a stamped ``corpus`` whose ``meta["facets"]``
    carries them) makes the store *stamped*: every shard gains the
    facet sections, the containers are written at version 3, and the
    manifest records a :class:`FacetsInfo` summary.  Unstamped builds
    are byte-identical to what this function wrote before facets
    existed.
    """
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    if result.signatures is None:
        raise ValueError(
            "build_shards needs signatures; run the engine with "
            "keep_signatures=True"
        )
    if nshards < 1:
        raise ValueError(f"nshards must be >= 1, got {nshards}")
    n_docs = int(result.doc_ids.shape[0])
    if postings is None and corpus is not None:
        postings = build_term_postings(
            corpus, result, tokenizer_config=tokenizer_config
        )
    if facets is None and corpus is not None:
        facets = facet_data_from_meta(corpus.meta)
    if facets is not None and facets.n_docs != n_docs:
        raise ValueError(
            f"facet arrays cover {facets.n_docs} docs but the result "
            f"has {n_docs}"
        )
    version = FACET_FORMAT_VERSION if facets is not None else FORMAT_VERSION
    out = str(out_dir)
    os.makedirs(out, exist_ok=True)

    model_meta = {
        "kind": "model",
        "corpus_name": result.corpus_name,
        "n_docs": n_docs,
        "n_topics": int(result.centroids.shape[1]),
        "terms": [t.term for t in result.major_terms],
        "topic_terms": [t.term for t in result.topic_terms],
        "has_postings": postings is not None,
    }
    model_arrays = {
        "association": np.asarray(result.association, dtype=np.float64),
        "centroids": np.asarray(result.centroids, dtype=np.float64),
        "term_gid": np.array(
            [t.gid for t in result.major_terms], dtype=np.int64
        ),
        "term_score": np.array(
            [t.score for t in result.major_terms], dtype=np.float64
        ),
        "term_df": np.array(
            [t.df for t in result.major_terms], dtype=np.int64
        ),
        "term_cf": np.array(
            [t.cf for t in result.major_terms], dtype=np.int64
        ),
    }
    if result.projection is not None:
        model_arrays["pca_mean"] = np.asarray(
            result.projection.mean, dtype=np.float64
        )
        model_arrays["pca_components"] = np.asarray(
            result.projection.components, dtype=np.float64
        )
        model_arrays["pca_explained_variance"] = np.asarray(
            result.projection.explained_variance, dtype=np.float64
        )
    write_container(os.path.join(out, MODEL_FILE), model_arrays, model_meta)

    splits = np.array_split(np.arange(n_docs, dtype=np.int64), nshards)
    shards: list[ShardInfo] = []
    for i, rows in enumerate(splits):
        row_lo = int(rows[0]) if rows.size else (
            shards[-1].row_hi if shards else 0
        )
        row_hi = int(rows[-1]) + 1 if rows.size else row_lo
        fname = f"shard-{i:03d}.repro"
        arrays = {
            "doc_ids": np.asarray(
                result.doc_ids[row_lo:row_hi], dtype=np.int64
            ),
            "signatures": np.asarray(
                result.signatures[row_lo:row_hi], dtype=np.float64
            ),
            "coords": np.asarray(
                result.coords[row_lo:row_hi], dtype=np.float64
            ),
            "assignments": np.asarray(
                result.assignments[row_lo:row_hi], dtype=np.int64
            ),
        }
        if postings is not None:
            local = postings.restrict(row_lo, row_hi)
            arrays.update(encode_postings_sections(local))
        if facets is not None:
            arrays.update(
                encode_facet_sections(
                    facets.stamp_s[row_lo:row_hi],
                    facets.source[row_lo:row_hi],
                )
            )
        meta = {
            "kind": "shard",
            "shard": i,
            "row_lo": row_lo,
            "row_hi": row_hi,
            "corpus_name": result.corpus_name,
        }
        nbytes = write_container(
            os.path.join(out, fname), arrays, meta, version=version
        )
        shards.append(
            ShardInfo(
                file=fname,
                row_lo=row_lo,
                row_hi=row_hi,
                doc_lo=int(result.doc_ids[row_lo]) if row_hi > row_lo else 0,
                doc_hi=int(result.doc_ids[row_hi - 1])
                if row_hi > row_lo
                else 0,
                nbytes=nbytes,
            )
        )

    bbox = (
        float(result.coords[:, 0].min()) if n_docs else 0.0,
        float(result.coords[:, 1].min()) if n_docs else 0.0,
        float(result.coords[:, 0].max()) if n_docs else 0.0,
        float(result.coords[:, 1].max()) if n_docs else 0.0,
    )
    facets_info = None
    if facets is not None:
        facets_info = FacetsInfo(
            n_sources=facets.n_sources,
            source_names=tuple(facets.source_names),
            stamp_lo=float(facets.stamp_s.min()) if n_docs else 0.0,
            stamp_hi=float(facets.stamp_s.max()) if n_docs else 0.0,
        )
    manifest = StoreManifest(
        format=MANIFEST_FORMAT,
        nshards=nshards,
        n_docs=n_docs,
        corpus_name=result.corpus_name,
        model_file=MODEL_FILE,
        bbox=bbox,
        shards=tuple(shards),
        replication=replication,
        facets=facets_info,
    )
    doc = {
        "format": manifest.format,
        "nshards": manifest.nshards,
        "n_docs": manifest.n_docs,
        "replication": manifest.replication,
        "corpus_name": manifest.corpus_name,
        "model_file": manifest.model_file,
        "bbox": list(manifest.bbox),
        "shards": [
            {
                "file": s.file,
                "row_lo": s.row_lo,
                "row_hi": s.row_hi,
                "doc_lo": s.doc_lo,
                "doc_hi": s.doc_hi,
                "nbytes": s.nbytes,
            }
            for s in manifest.shards
        ],
    }
    if manifest.facets is not None:
        doc["facets"] = _facets_doc(manifest.facets)
    with open(
        os.path.join(out, MANIFEST_FILE), "w", encoding="utf-8"
    ) as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return manifest


# ----------------------------------------------------------------------
# model-side loading helpers
# ----------------------------------------------------------------------
def load_model(store_dir: str | os.PathLike) -> "ServeModel":
    """Open the store's replicated model container."""
    manifest = load_manifest(store_dir)
    cont = Container(os.path.join(str(store_dir), manifest.model_file))
    return ServeModel(manifest=manifest, container=cont)


@dataclass
class ServeModel:
    """Replicated per-collection state every query consults."""

    manifest: StoreManifest
    container: Container

    def __post_init__(self):
        c = self.container
        self.terms: list[str] = list(c.meta["terms"])
        self.topic_terms: list[str] = list(c.meta["topic_terms"])
        self.term_row = {t: i for i, t in enumerate(self.terms)}
        self.association = np.asarray(c.load("association"))
        self.centroids = np.asarray(c.load("centroids"))
        self.term_df = np.asarray(c.load("term_df"))
        self.has_postings = bool(c.meta["has_postings"])

    @property
    def n_docs(self) -> int:
        return self.manifest.n_docs

    def major_terms(self) -> list[RankedTerm]:
        c = self.container
        gid = np.asarray(c.load("term_gid"))
        score = np.asarray(c.load("term_score"))
        cf = np.asarray(c.load("term_cf"))
        return [
            RankedTerm(
                term=t,
                gid=int(gid[i]),
                score=float(score[i]),
                df=int(self.term_df[i]),
                cf=int(cf[i]),
            )
            for i, t in enumerate(self.terms)
        ]

    def projection(self) -> PCATransform | None:
        c = self.container
        if "pca_mean" not in c:
            return None
        return PCATransform(
            mean=np.asarray(c.load("pca_mean")),
            components=np.asarray(c.load("pca_components")),
            explained_variance=np.asarray(
                c.load("pca_explained_variance")
            ),
        )
