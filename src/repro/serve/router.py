"""Replicated, multi-broker serving tier on the deterministic runtime.

Topology: ``nprocs = 1 + brokers + workers`` SPMD ranks (plus one
optional ingest-driver rank).  Rank 0 is the front-end *router*: it
assigns every client to a broker by consistent hash (sticky sessions),
ships each broker its script subset, collects the per-broker session
reports, and stops the worker tier.  Ranks ``1..B`` are brokers, each
running the PR-4 closed-loop event pump over its own clients with its
own admission queue and result cache.  Ranks ``B+1..B+W`` are replica
workers: worker ``w`` serves *every* shard that
:class:`~repro.serve.replica.ReplicaMap` places on it, for whatever
epoch a request pins.  Replicas of a shard resolve the identical
per-epoch segment list through the same
:func:`~repro.serve.broker.execute_shard_op` code path, so any copy
answers bit-identically at every epoch -- which is what lets a broker
fail over mid-query without perturbing a single response byte.

Failure handling replaces PR-4 degradation with failover:

- ``RankFailedError`` during a fan-out marks the dead workers DOWN
  (permanently) and re-sends each orphaned shard request to the next
  live replica in ring order, after a seeded jittered backoff in
  virtual time.
- A silent shard (``CommTimeoutError`` after ``hedge_delay_s``) gets a
  *hedged* duplicate request on the next replica; the first answer
  wins and stragglers are drained by query id.  The silent worker is
  marked SUSPECT for ``probation_s`` virtual seconds and deprioritized.
- Only when a shard has no replica left does the broker drop it and
  flag the response partial -- with ``replicas=1`` this reduces
  exactly to the PR-4 flagged-degradation behavior.

Overload protection: admission is by priority class (priority ``p``
admits while the in-flight depth is below ``max_inflight / 2**p``), so
as a broker saturates it sheds its lowest classes first.  Shed queries
surface as typed :class:`ShedResponse` records in the report -- never
as silently inflated latency -- and count into the ``serve.shed``
metric by class.

Every response still carries no timing fields, so the merged, (client,
seq)-sorted response list remains the byte-compare oracle: identical
across broker counts, replica counts, scheduler mechanisms, and -- with
``replicas >= 2`` -- identical with and without a worker crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.runtime.cluster import Cluster, MachineSpec
from repro.runtime.errors import CommTimeoutError, RankFailedError
from repro.serve.broker import (
    TAG_REQ,
    TAG_RESP,
    _Broker,
    execute_shard_op,
)
from repro.serve.query import ShardStore
from repro.serve.replica import ReplicaHealth, ReplicaMap, stable_hash
from repro.serve.store import (
    Container,
    ShardFormatError,
    StoreManifest,
    load_manifest,
    load_manifest_generation,
    load_model,
)
from repro.serve.workload import ClientScript

TAG_SCRIPTS = 104
TAG_REPORT = 105

#: modelled router-side routing cost per client script (abstract ops)
_ROUTE_OPS = 50


@dataclass(frozen=True)
class RouterConfig:
    """Policy knobs of one replicated serving session."""

    #: broker ranks fronting the worker tier
    brokers: int = 2
    #: worker ranks; 0 means ``max(nshards, replicas)``
    workers: int = 0
    #: replicas per shard; 0 means the store manifest's ``replication``
    replicas: int = 0
    #: virtual nodes per worker on the placement ring
    vnodes: int = 16
    #: placement / routing hash seed
    seed: int = 0
    #: virtual seconds before a silent shard gets a hedged duplicate
    hedge_delay_s: float = 1.0
    #: virtual seconds a post-hedge round waits before retrying
    shard_timeout_s: float = 5.0
    #: resend rounds after hedging before dropping a shard
    retries: int = 1
    #: base of the jittered failover/retry backoff (virtual seconds)
    retry_jitter_s: float = 0.05
    #: how long a timeout keeps a worker SUSPECT (virtual seconds)
    probation_s: float = 10.0
    #: per-broker in-flight depth admitting priority-0 queries
    max_inflight: int = 8
    #: per-broker LRU result-cache capacity; 0 disables caching
    cache_capacity: int = 128
    #: block-max pruned top-k for search ops (exact either way)
    pruned_search: bool = True
    #: max queued search queries drained into one shard round-trip;
    #: 1 preserves the strictly per-query fan-out
    batch_max_queries: int = 1


@dataclass(frozen=True)
class ShedResponse:
    """One query turned away by admission control (typed, not silent)."""

    client: int
    seq: int
    kind: str
    priority: int
    broker: int
    depth: int


@dataclass
class TierReport:
    """Outcome of one replicated-tier session over a workload."""

    responses: list[dict]
    latencies: list[float]
    shed: list[ShedResponse]
    failed_ranks: list[int]
    makespan: float
    replica_map: dict
    brokers: int
    workers: int
    failovers: int = 0
    hedges: int = 0
    suspicions: int = 0
    #: final worker health by state ("up" lists only ever-suspected ones)
    health: dict = field(default_factory=dict)
    metrics: dict = field(repr=False, default_factory=dict)
    generations: dict = field(default_factory=dict)
    per_broker: list = field(default_factory=list)
    ingest: Optional[dict] = None

    @property
    def served(self) -> int:
        return len(self.responses)

    @property
    def throughput(self) -> float:
        """Served queries per virtual second."""
        return self.served / self.makespan if self.makespan > 0 else 0.0

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.responses if r["response"].get("partial"))

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.served if self.served else 0.0

    @property
    def shed_rate(self) -> float:
        total = self.served + len(self.shed)
        return len(self.shed) / total if total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        hits = sum(1 for r in self.responses if r.get("cached"))
        return hits / self.served if self.served else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of served-query virtual latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = max(0, int(np.ceil(pct / 100.0 * len(ordered))) - 1)
        return ordered[idx]


def broker_of_client(client: int, brokers: int, seed: int = 0) -> int:
    """Sticky client->broker assignment (pure hash, scheduler-free)."""
    return stable_hash(f"{seed}/client-{client}") % brokers


# ----------------------------------------------------------------------
# replica worker rank
# ----------------------------------------------------------------------
class _ReplicaWorker:
    """One worker rank serving every shard replica placed on it."""

    def __init__(
        self,
        ctx,
        store_dir: str,
        rmap: ReplicaMap,
        n_brokers: int,
    ):
        self.ctx = ctx
        self.store_dir = store_dir
        self.rmap = rmap
        self.n_brokers = n_brokers
        self.worker_id = ctx.rank - 1 - n_brokers
        self.shards = rmap.shards_of(self.worker_id)
        self.model = load_model(store_dir)
        self._manifests: dict[int, StoreManifest] = {}
        self._segments: dict[tuple[int, int], list[ShardStore]] = {}
        self._stores: dict[str, ShardStore] = {}

    def _identity(self, shard: int) -> str:
        hosts = self.rmap.workers_for(shard)
        copy = hosts.index(self.worker_id) if self.worker_id in hosts else -1
        return (
            f"shard {shard} copy {copy} on worker {self.worker_id} "
            f"(rank {self.ctx.rank})"
        )

    def _manifest(self, epoch: int, shard: int) -> StoreManifest:
        m = self._manifests.get(epoch)
        if m is None:
            try:
                m = load_manifest_generation(self.store_dir, epoch)
            except ShardFormatError as exc:
                raise ShardFormatError(
                    exc.path, exc.reason, context=self._identity(shard)
                ) from exc
            self._manifests[epoch] = m
        return m

    def _store(self, fname: str, shard: int) -> ShardStore:
        s = self._stores.get(fname)
        if s is None:
            try:
                s = ShardStore(
                    Container(os.path.join(self.store_dir, fname)),
                    self.model,
                )
            except ShardFormatError as exc:
                raise ShardFormatError(
                    exc.path, exc.reason, context=self._identity(shard)
                ) from exc
            self._stores[fname] = s
        return s

    def segments(self, epoch: int, shard: int) -> list[ShardStore]:
        """The epoch's segment list for one hosted shard.

        Identical files -- base shard plus owned deltas -- on every
        replica of the shard, so replicas answer bit-identically.
        """
        segs = self._segments.get((epoch, shard))
        if segs is None:
            m = self._manifest(epoch, shard)
            files = [m.shards[shard].file]
            files += [d.file for d in m.deltas if d.owner == shard]
            segs = [self._store(f, shard) for f in files]
            self._segments[(epoch, shard)] = segs
        return segs

    def run(self) -> int:
        ctx = self.ctx
        bytes_scanned = ctx.metrics.counter(
            "serve.shard.bytes_scanned", ("shard",)
        )
        blocks_skipped = ctx.metrics.counter(
            "serve.shard.blocks_skipped", ("shard",)
        )
        served = 0
        sources = list(range(self.n_brokers + 1))  # router + brokers
        while True:
            try:
                src, msg = ctx.comm.recv_any(sources=sources, tag=TAG_REQ)
            except CommTimeoutError:
                if 0 in ctx.failed_ranks():
                    return served
                continue
            except RankFailedError as exc:
                if 0 in exc.failed:
                    return served
                sources = [r for r in sources if r not in set(exc.failed)]
                if len(sources) <= 1:  # only the router left
                    continue
                continue
            if msg[0] == "stop":
                return served
            qid, epoch, shard, op, params = msg
            segs = self.segments(epoch, shard)
            payload, scanned, skipped = execute_shard_op(
                ctx, self.model, segs, op, params
            )
            ctx.charge_io(scanned, concurrent_readers=1)
            bytes_scanned.inc(ctx.rank, float(scanned), key=(str(shard),))
            blocks_skipped.inc(ctx.rank, float(skipped), key=(str(shard),))
            ctx.comm.send(src, (qid, shard, payload), tag=TAG_RESP)
            served += 1


# ----------------------------------------------------------------------
# broker rank (tier flavour)
# ----------------------------------------------------------------------
class _TierBroker(_Broker):
    """A PR-4 broker pumping its client subset against replica workers.

    Inherits the closed-loop pump, the per-epoch cache, the hot-reload
    dance, and every operator; overrides the fan-out (replica choice,
    failover, hedging), admission (priority shedding), and shutdown
    (the router owns the workers' lifecycle).
    """

    def __init__(self, ctx, store_dir: str, config: RouterConfig,
                 rmap: ReplicaMap, generational: bool):
        super().__init__(ctx, store_dir, config, generational=generational)
        self.rmap = rmap
        self.broker_idx = ctx.rank - 1
        self.worker_base = 1 + config.brokers
        self.health = ReplicaHealth(probation_s=config.probation_s)
        self.rng = np.random.default_rng((config.seed, ctx.rank))
        self.n_failover = 0
        self.n_hedge = 0
        m = ctx.metrics
        self.c_shed = m.counter("serve.shed", ("priority",))
        self.c_failover = m.counter("serve.failover")
        self.c_hedge = m.counter("serve.hedge")
        self.c_suspect = m.counter("serve.replica.suspect")
        self.c_down = m.counter("serve.replica.down")

    # -- replica health ------------------------------------------------
    def _worker_rank(self, worker: int) -> int:
        return self.worker_base + worker

    def _mark_down(self, worker: int) -> None:
        if not self.health.is_down(worker):
            self.health.mark_down(worker)
            self.c_down.inc(self.mrank)

    def _refresh_live(self) -> None:
        """A shard is live while any replica of it is not DOWN."""
        self.live = [
            s
            for s in range(self.nshards)
            if any(
                not self.health.is_down(w)
                for w in self.rmap.workers_for(s)
            )
        ]

    def _observe_failures(self) -> None:
        """Fold the runtime failure detector into replica health."""
        changed = False
        for r in self.ctx.failed_ranks():
            w = r - self.worker_base
            if 0 <= w < len(self.rmap.workers) and not self.health.is_down(w):
                self._mark_down(w)
                changed = True
        if changed:
            self._refresh_live()

    def _next_replica(
        self, shard: int, tried: list[int], now: float
    ) -> Optional[int]:
        for w in self.health.preference(self.rmap.workers_for(shard), now):
            if w not in tried:
                return w
        return None

    def _jitter(self, attempt: int) -> None:
        """Charge a seeded, jittered backoff before a re-send."""
        base = self.config.retry_jitter_s * max(1, attempt)
        self.ctx.charge(base * float(self.rng.uniform(0.5, 1.5)))

    # -- replica-aware fan-out -----------------------------------------
    def _fanout(
        self, targets: list[int], op: str, params: dict
    ) -> tuple[dict[int, object], list[int]]:
        ctx, cfg = self.ctx, self.config
        self.qid += 1
        qid = self.qid
        self._observe_failures()
        outstanding: dict[int, set[int]] = {}
        tried: dict[int, list[int]] = {}

        def _send(shard: int, worker: int) -> None:
            ctx.comm.send(
                self._worker_rank(worker),
                (qid, self.epoch, shard, op, params),
                tag=TAG_REQ,
            )
            outstanding.setdefault(shard, set()).add(worker)
            tried.setdefault(shard, []).append(worker)

        for s in targets:
            prefs = self.health.preference(
                self.rmap.workers_for(s), ctx.now
            )
            if not prefs:
                continue  # no live replica: dropped below
            # deterministic spread: rotate the preferred replica by
            # query id and broker index so load shares across copies
            _send(s, prefs[(qid + self.broker_idx) % len(prefs)])
        pending = set(outstanding)
        got: dict[int, object] = {}
        hedged = False
        resends = 0
        while pending:
            srcs = sorted(
                {
                    self._worker_rank(w)
                    for s in pending
                    for w in outstanding[s]
                }
            )
            timeout = cfg.shard_timeout_s if hedged else cfg.hedge_delay_s
            try:
                src, msg = ctx.comm.recv_any(
                    sources=srcs, tag=TAG_RESP, timeout=timeout
                )
            except RankFailedError as exc:
                dead = sorted(
                    r - self.worker_base
                    for r in exc.failed
                    if r >= self.worker_base
                )
                for w in dead:
                    self._mark_down(w)
                self._refresh_live()
                for s in sorted(pending):
                    outstanding[s] -= set(dead)
                    if outstanding[s]:
                        continue
                    nxt = self._next_replica(s, tried[s], ctx.now)
                    if nxt is None:
                        pending.discard(s)  # no replica left: drop
                        continue
                    self.n_failover += 1
                    self.c_failover.inc(self.mrank)
                    self._jitter(len(tried[s]))
                    _send(s, nxt)
                continue
            except CommTimeoutError:
                if not hedged:
                    # silent shards get one hedged duplicate on the
                    # next replica; the silent copy turns SUSPECT
                    hedged = True
                    for s in sorted(pending):
                        for w in sorted(outstanding[s]):
                            if self.health.state(w, ctx.now) != "suspect":
                                self.health.mark_suspect(w, ctx.now)
                                self.c_suspect.inc(self.mrank)
                        nxt = self._next_replica(s, tried[s], ctx.now)
                        if nxt is not None:
                            self.n_hedge += 1
                            self.c_hedge.inc(self.mrank)
                            _send(s, nxt)
                    continue
                if resends < cfg.retries:
                    resends += 1
                    self._jitter(resends)
                    for s in sorted(pending):
                        for w in sorted(outstanding[s]):
                            ctx.comm.send(
                                self._worker_rank(w),
                                (qid, self.epoch, s, op, params),
                                tag=TAG_REQ,
                            )
                    continue
                break  # drop whatever is still silent
            rqid, shard, payload = msg
            if rqid != qid or shard not in pending:
                continue  # stale or already-hedged duplicate
            got[shard] = payload
            pending.discard(shard)
        dropped = sorted(set(targets) - set(got))
        return got, dropped

    # -- priority admission --------------------------------------------
    def _admit(self, script: ClientScript, depth: int) -> bool:
        """Class ``p`` admits below ``max_inflight / 2**p`` in-flight.

        Priority 0 is the highest class; as depth grows the lowest
        classes (largest ``p``) shed first, deterministically.
        """
        p = getattr(script, "priority", 0)
        return depth < max(1, self.config.max_inflight // (2**p))

    def _on_reject(self, client, seq, query, script, depth, rejected):
        p = getattr(script, "priority", 0)
        self.c_shed.inc(self.mrank, key=(str(p),))
        rejected.append(
            ShedResponse(
                client=client,
                seq=seq,
                kind=query.kind,
                priority=p,
                broker=self.broker_idx,
                depth=depth,
            )
        )

    # -- lifecycle -----------------------------------------------------
    def _shutdown(self) -> None:
        """The router owns the workers; brokers stop nothing."""

    def _build_report(self, responses, latencies, rejected) -> dict:
        now = self.ctx.now
        return {
            "broker": self.broker_idx,
            "responses": responses,
            "latencies": latencies,
            "shed": rejected,
            "failovers": self.n_failover,
            "hedges": self.n_hedge,
            "suspicions": self.health.suspicions,
            "health": self.health.snapshot(now),
            "gen_stats": self.gen_stats,
            "live": list(self.live),
            "makespan": now,
        }

    def run(self) -> dict:
        ctx = self.ctx
        while True:
            try:
                scripts = ctx.comm.recv(0, tag=TAG_SCRIPTS)
                break
            except CommTimeoutError:
                continue
        report = self.pump(list(scripts))
        ctx.comm.send(0, report, tag=TAG_REPORT)
        return report


# ----------------------------------------------------------------------
# router rank
# ----------------------------------------------------------------------
def _run_router(
    ctx, scripts, cfg: RouterConfig, rmap: ReplicaMap
) -> TierReport:
    nbrokers, nworkers = cfg.brokers, cfg.workers
    worker_base = 1 + nbrokers
    assign: dict[int, list[ClientScript]] = {
        b: [] for b in range(nbrokers)
    }
    for script in scripts:
        assign[broker_of_client(script.client, nbrokers, cfg.seed)].append(
            script
        )
    for b in range(nbrokers):
        ctx.charge_cpu(_ROUTE_OPS * max(1, len(assign[b])))
        ctx.comm.send(1 + b, tuple(assign[b]), tag=TAG_SCRIPTS)
    reports: list[Optional[dict]] = []
    for b in range(nbrokers):
        while True:
            try:
                reports.append(ctx.comm.recv(1 + b, tag=TAG_REPORT))
                break
            except CommTimeoutError:
                continue
            except RankFailedError:
                reports.append(None)
                break
    dead = set(ctx.failed_ranks())
    for w in range(nworkers):
        rank = worker_base + w
        if rank not in dead:
            ctx.comm.send(rank, ("stop",), tag=TAG_REQ)
    return _merge_reports(ctx, reports, cfg, rmap, dead)


def _merge_reports(
    ctx, reports, cfg: RouterConfig, rmap: ReplicaMap, dead: set
) -> TierReport:
    live = [r for r in reports if r is not None]
    indexed: list[tuple[tuple[int, int], dict, float]] = []
    for rep in live:
        for resp, lat in zip(rep["responses"], rep["latencies"]):
            resp = dict(resp, broker=rep["broker"])
            indexed.append(((resp["client"], resp["seq"]), resp, lat))
    indexed.sort(key=lambda t: t[0])
    responses = [r for _, r, _ in indexed]
    latencies = [lat for _, _, lat in indexed]
    shed = sorted(
        (s for rep in live for s in rep["shed"]),
        key=lambda s: (s.client, s.seq),
    )
    generations: dict[int, dict] = {}
    for rep in live:
        for g, stats in rep["gen_stats"].items():
            agg = generations.setdefault(
                g,
                {"queries": 0, "first_virtual_s": stats["first_virtual_s"]},
            )
            agg["queries"] += stats["queries"]
            agg["first_virtual_s"] = min(
                agg["first_virtual_s"], stats["first_virtual_s"]
            )
    health: dict[str, list[int]] = {"up": [], "suspect": [], "down": []}
    rank_of = {"up": 0, "suspect": 1, "down": 2}
    worst: dict[int, str] = {}
    for rep in live:
        for state, workers in rep["health"].items():
            for w in workers:
                if (
                    w not in worst
                    or rank_of[state] > rank_of[worst[w]]
                ):
                    worst[w] = state
    for w in sorted(worst):
        health[worst[w]].append(w)
    return TierReport(
        responses=responses,
        latencies=latencies,
        shed=shed,
        failed_ranks=sorted(dead),
        makespan=max((rep["makespan"] for rep in live), default=ctx.now),
        replica_map=rmap.to_dict(),
        brokers=cfg.brokers,
        workers=cfg.workers,
        failovers=sum(rep["failovers"] for rep in live),
        hedges=sum(rep["hedges"] for rep in live),
        suspicions=sum(rep["suspicions"] for rep in live),
        health=health,
        generations=generations,
        per_broker=[
            {
                "broker": rep["broker"],
                "served": len(rep["responses"]),
                "shed": len(rep["shed"]),
                "failovers": rep["failovers"],
                "hedges": rep["hedges"],
                "makespan": rep["makespan"],
            }
            for rep in live
        ],
    )


def _tier_main(ctx, store_dir, scripts, cfg, rmap, ingest):
    nbrokers, nworkers = cfg.brokers, cfg.workers
    if ctx.rank == 0:
        return _run_router(ctx, scripts, cfg, rmap)
    if ctx.rank <= nbrokers:
        return _TierBroker(
            ctx, store_dir, cfg, rmap, generational=ingest is not None
        ).run()
    if ctx.rank <= nbrokers + nworkers:
        return _ReplicaWorker(ctx, store_dir, rmap, nbrokers).run()
    return ingest.run(ctx, store_dir)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def serve_replicated(
    store_dir: str | os.PathLike,
    scripts: list[ClientScript],
    config: Optional[RouterConfig] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
    ingest=None,
) -> TierReport:
    """Run one replicated-tier session over a sharded store.

    Spawns ``1 + brokers + workers`` ranks (plus one when ``ingest``
    is given), places ``replicas`` copies of every shard by consistent
    hashing, serves every scripted query through the broker tier, and
    returns the router's merged :class:`TierReport` with the run's
    metrics snapshot attached.  Worker crashes under a fault plan fail
    over to surviving replicas; the cluster runs with
    ``raise_on_failure=False``.
    """
    store_dir = str(store_dir)
    manifest = load_manifest(store_dir)
    cfg = config if config is not None else RouterConfig()
    replicas = cfg.replicas or max(1, manifest.replication)
    workers = cfg.workers or max(manifest.nshards, replicas)
    if cfg.brokers < 1:
        raise ValueError(f"need at least one broker, got {cfg.brokers}")
    cfg = replace(cfg, replicas=replicas, workers=workers)
    rmap = ReplicaMap.place(
        manifest.nshards,
        replicas,
        workers,
        vnodes=cfg.vnodes,
        seed=cfg.seed,
    )
    nprocs = 1 + cfg.brokers + workers + (1 if ingest is not None else 0)
    cluster = Cluster(nprocs, machine=machine, faults=faults)
    result = cluster.run(
        _tier_main,
        store_dir,
        tuple(scripts),
        cfg,
        rmap,
        ingest,
        raise_on_failure=False,
    )
    report = result.rank_results[0]
    if report is None:
        raise RankFailedError(result.failed_ranks, "router rank crashed")
    report.metrics = result.metrics.snapshot()
    report.failed_ranks = sorted(
        set(report.failed_ranks) | set(result.failed_ranks)
    )
    if ingest is not None:
        report.ingest = result.rank_results[nprocs - 1]
    return report
